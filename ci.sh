#!/usr/bin/env sh
# One-command verify matrix.  CMake workflow presets cannot chain
# configure presets (each workflow is pinned to its first configure
# step), so the matrix is three workflows run back to back:
#
#   default  Release build, full ctest suite (tier-1 gate)
#   scalar   forced-scalar SIMD fallback, full ctest suite
#   tsan     ThreadSanitizer build, tier1-tsan labelled tests
#
# Usage: ./ci.sh            (from the repository root)
set -e
for wf in ci ci-scalar ci-tsan; do
  echo "==== cmake --workflow --preset ${wf} ===="
  cmake --workflow --preset "${wf}"
done
echo "==== tuning_shootout --smoke ===="
./build/examples/tuning_shootout --smoke \
  --json=build/BENCH_shootout.json > /dev/null
echo "==== verify matrix green ===="
