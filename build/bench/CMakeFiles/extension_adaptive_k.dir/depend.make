# Empty dependencies file for extension_adaptive_k.
# This may be replaced when dependencies are built.
