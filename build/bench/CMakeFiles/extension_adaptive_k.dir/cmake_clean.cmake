file(REMOVE_RECURSE
  "CMakeFiles/extension_adaptive_k.dir/extension_adaptive_k.cc.o"
  "CMakeFiles/extension_adaptive_k.dir/extension_adaptive_k.cc.o.d"
  "extension_adaptive_k"
  "extension_adaptive_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_adaptive_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
