# Empty compiler generated dependencies file for ablation_correlated_noise.
# This may be replaced when dependencies are built.
