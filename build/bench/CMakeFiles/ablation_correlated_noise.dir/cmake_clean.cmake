file(REMOVE_RECURSE
  "CMakeFiles/ablation_correlated_noise.dir/ablation_correlated_noise.cc.o"
  "CMakeFiles/ablation_correlated_noise.dir/ablation_correlated_noise.cc.o.d"
  "ablation_correlated_noise"
  "ablation_correlated_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_correlated_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
