# Empty compiler generated dependencies file for fig04_07_tail.
# This may be replaced when dependencies are built.
