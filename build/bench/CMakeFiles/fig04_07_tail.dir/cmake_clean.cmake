file(REMOVE_RECURSE
  "CMakeFiles/fig04_07_tail.dir/fig04_07_tail.cc.o"
  "CMakeFiles/fig04_07_tail.dir/fig04_07_tail.cc.o.d"
  "fig04_07_tail"
  "fig04_07_tail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_07_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
