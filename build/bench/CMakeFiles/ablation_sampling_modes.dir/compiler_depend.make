# Empty compiler generated dependencies file for ablation_sampling_modes.
# This may be replaced when dependencies are built.
