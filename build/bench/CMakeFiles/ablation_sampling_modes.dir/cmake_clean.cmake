file(REMOVE_RECURSE
  "CMakeFiles/ablation_sampling_modes.dir/ablation_sampling_modes.cc.o"
  "CMakeFiles/ablation_sampling_modes.dir/ablation_sampling_modes.cc.o.d"
  "ablation_sampling_modes"
  "ablation_sampling_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sampling_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
