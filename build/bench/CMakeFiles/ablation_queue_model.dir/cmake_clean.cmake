file(REMOVE_RECURSE
  "CMakeFiles/ablation_queue_model.dir/ablation_queue_model.cc.o"
  "CMakeFiles/ablation_queue_model.dir/ablation_queue_model.cc.o.d"
  "ablation_queue_model"
  "ablation_queue_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_queue_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
