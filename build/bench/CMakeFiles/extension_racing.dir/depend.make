# Empty dependencies file for extension_racing.
# This may be replaced when dependencies are built.
