file(REMOVE_RECURSE
  "CMakeFiles/extension_racing.dir/extension_racing.cc.o"
  "CMakeFiles/extension_racing.dir/extension_racing.cc.o.d"
  "extension_racing"
  "extension_racing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_racing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
