# Empty compiler generated dependencies file for fig03_traces.
# This may be replaced when dependencies are built.
