file(REMOVE_RECURSE
  "CMakeFiles/fig03_traces.dir/fig03_traces.cc.o"
  "CMakeFiles/fig03_traces.dir/fig03_traces.cc.o.d"
  "fig03_traces"
  "fig03_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
