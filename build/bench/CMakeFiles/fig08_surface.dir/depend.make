# Empty dependencies file for fig08_surface.
# This may be replaced when dependencies are built.
