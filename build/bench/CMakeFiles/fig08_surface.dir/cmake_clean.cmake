file(REMOVE_RECURSE
  "CMakeFiles/fig08_surface.dir/fig08_surface.cc.o"
  "CMakeFiles/fig08_surface.dir/fig08_surface.cc.o.d"
  "fig08_surface"
  "fig08_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
