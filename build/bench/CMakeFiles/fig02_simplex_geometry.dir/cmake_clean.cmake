file(REMOVE_RECURSE
  "CMakeFiles/fig02_simplex_geometry.dir/fig02_simplex_geometry.cc.o"
  "CMakeFiles/fig02_simplex_geometry.dir/fig02_simplex_geometry.cc.o.d"
  "fig02_simplex_geometry"
  "fig02_simplex_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_simplex_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
