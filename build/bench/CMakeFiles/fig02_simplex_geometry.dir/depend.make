# Empty dependencies file for fig02_simplex_geometry.
# This may be replaced when dependencies are built.
