file(REMOVE_RECURSE
  "CMakeFiles/fig09_initial_simplex.dir/fig09_initial_simplex.cc.o"
  "CMakeFiles/fig09_initial_simplex.dir/fig09_initial_simplex.cc.o.d"
  "fig09_initial_simplex"
  "fig09_initial_simplex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_initial_simplex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
