# Empty compiler generated dependencies file for fig09_initial_simplex.
# This may be replaced when dependencies are built.
