# Empty compiler generated dependencies file for ablation_expansion_check.
# This may be replaced when dependencies are built.
