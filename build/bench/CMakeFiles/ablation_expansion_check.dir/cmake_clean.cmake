file(REMOVE_RECURSE
  "CMakeFiles/ablation_expansion_check.dir/ablation_expansion_check.cc.o"
  "CMakeFiles/ablation_expansion_check.dir/ablation_expansion_check.cc.o.d"
  "ablation_expansion_check"
  "ablation_expansion_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_expansion_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
