# Empty dependencies file for ablation_algorithms.
# This may be replaced when dependencies are built.
