file(REMOVE_RECURSE
  "CMakeFiles/ablation_probe_policy.dir/ablation_probe_policy.cc.o"
  "CMakeFiles/ablation_probe_policy.dir/ablation_probe_policy.cc.o.d"
  "ablation_probe_policy"
  "ablation_probe_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_probe_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
