file(REMOVE_RECURSE
  "CMakeFiles/fig10_multisample.dir/fig10_multisample.cc.o"
  "CMakeFiles/fig10_multisample.dir/fig10_multisample.cc.o.d"
  "fig10_multisample"
  "fig10_multisample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_multisample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
