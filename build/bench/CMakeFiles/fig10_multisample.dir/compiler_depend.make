# Empty compiler generated dependencies file for fig10_multisample.
# This may be replaced when dependencies are built.
