file(REMOVE_RECURSE
  "CMakeFiles/test_pro_statemachine.dir/test_pro_statemachine.cc.o"
  "CMakeFiles/test_pro_statemachine.dir/test_pro_statemachine.cc.o.d"
  "test_pro_statemachine"
  "test_pro_statemachine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pro_statemachine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
