# Empty compiler generated dependencies file for test_pro_statemachine.
# This may be replaced when dependencies are built.
