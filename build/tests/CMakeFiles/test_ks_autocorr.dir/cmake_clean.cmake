file(REMOVE_RECURSE
  "CMakeFiles/test_ks_autocorr.dir/test_ks_autocorr.cc.o"
  "CMakeFiles/test_ks_autocorr.dir/test_ks_autocorr.cc.o.d"
  "test_ks_autocorr"
  "test_ks_autocorr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ks_autocorr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
