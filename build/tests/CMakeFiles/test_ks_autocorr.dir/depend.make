# Empty dependencies file for test_ks_autocorr.
# This may be replaced when dependencies are built.
