file(REMOVE_RECURSE
  "CMakeFiles/test_racing.dir/test_racing.cc.o"
  "CMakeFiles/test_racing.dir/test_racing.cc.o.d"
  "test_racing"
  "test_racing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_racing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
