file(REMOVE_RECURSE
  "CMakeFiles/test_histogram_ecdf.dir/test_histogram_ecdf.cc.o"
  "CMakeFiles/test_histogram_ecdf.dir/test_histogram_ecdf.cc.o.d"
  "test_histogram_ecdf"
  "test_histogram_ecdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_histogram_ecdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
