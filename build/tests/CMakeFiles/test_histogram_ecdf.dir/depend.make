# Empty dependencies file for test_histogram_ecdf.
# This may be replaced when dependencies are built.
