file(REMOVE_RECURSE
  "CMakeFiles/test_tail.dir/test_tail.cc.o"
  "CMakeFiles/test_tail.dir/test_tail.cc.o.d"
  "test_tail"
  "test_tail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
