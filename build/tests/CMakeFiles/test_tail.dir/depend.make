# Empty dependencies file for test_tail.
# This may be replaced when dependencies are built.
