file(REMOVE_RECURSE
  "CMakeFiles/test_gs2.dir/test_gs2.cc.o"
  "CMakeFiles/test_gs2.dir/test_gs2.cc.o.d"
  "test_gs2"
  "test_gs2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gs2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
