# Empty dependencies file for test_gs2.
# This may be replaced when dependencies are built.
