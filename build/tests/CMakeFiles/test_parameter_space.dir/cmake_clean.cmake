file(REMOVE_RECURSE
  "CMakeFiles/test_parameter_space.dir/test_parameter_space.cc.o"
  "CMakeFiles/test_parameter_space.dir/test_parameter_space.cc.o.d"
  "test_parameter_space"
  "test_parameter_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parameter_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
