# Empty dependencies file for test_order_stats.
# This may be replaced when dependencies are built.
