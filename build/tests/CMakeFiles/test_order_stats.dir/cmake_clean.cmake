file(REMOVE_RECURSE
  "CMakeFiles/test_order_stats.dir/test_order_stats.cc.o"
  "CMakeFiles/test_order_stats.dir/test_order_stats.cc.o.d"
  "test_order_stats"
  "test_order_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_order_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
