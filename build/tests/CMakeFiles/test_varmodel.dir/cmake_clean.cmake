file(REMOVE_RECURSE
  "CMakeFiles/test_varmodel.dir/test_varmodel.cc.o"
  "CMakeFiles/test_varmodel.dir/test_varmodel.cc.o.d"
  "test_varmodel"
  "test_varmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_varmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
