# Empty dependencies file for test_varmodel.
# This may be replaced when dependencies are built.
