file(REMOVE_RECURSE
  "CMakeFiles/test_batch_fuzz.dir/test_batch_fuzz.cc.o"
  "CMakeFiles/test_batch_fuzz.dir/test_batch_fuzz.cc.o.d"
  "test_batch_fuzz"
  "test_batch_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batch_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
