# Empty compiler generated dependencies file for test_fit_sensitivity.
# This may be replaced when dependencies are built.
