file(REMOVE_RECURSE
  "CMakeFiles/test_fit_sensitivity.dir/test_fit_sensitivity.cc.o"
  "CMakeFiles/test_fit_sensitivity.dir/test_fit_sensitivity.cc.o.d"
  "test_fit_sensitivity"
  "test_fit_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fit_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
