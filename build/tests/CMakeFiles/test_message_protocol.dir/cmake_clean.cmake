file(REMOVE_RECURSE
  "CMakeFiles/test_message_protocol.dir/test_message_protocol.cc.o"
  "CMakeFiles/test_message_protocol.dir/test_message_protocol.cc.o.d"
  "test_message_protocol"
  "test_message_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_message_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
