# Empty dependencies file for test_message_protocol.
# This may be replaced when dependencies are built.
