file(REMOVE_RECURSE
  "CMakeFiles/test_session_extras.dir/test_session_extras.cc.o"
  "CMakeFiles/test_session_extras.dir/test_session_extras.cc.o.d"
  "test_session_extras"
  "test_session_extras.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_session_extras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
