# Empty dependencies file for test_session_extras.
# This may be replaced when dependencies are built.
