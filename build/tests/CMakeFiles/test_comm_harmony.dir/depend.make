# Empty dependencies file for test_comm_harmony.
# This may be replaced when dependencies are built.
