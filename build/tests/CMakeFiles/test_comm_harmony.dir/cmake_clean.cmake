file(REMOVE_RECURSE
  "CMakeFiles/test_comm_harmony.dir/test_comm_harmony.cc.o"
  "CMakeFiles/test_comm_harmony.dir/test_comm_harmony.cc.o.d"
  "test_comm_harmony"
  "test_comm_harmony.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_harmony.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
