file(REMOVE_RECURSE
  "CMakeFiles/test_strategy_contract.dir/test_strategy_contract.cc.o"
  "CMakeFiles/test_strategy_contract.dir/test_strategy_contract.cc.o.d"
  "test_strategy_contract"
  "test_strategy_contract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_strategy_contract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
