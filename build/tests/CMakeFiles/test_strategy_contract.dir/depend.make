# Empty dependencies file for test_strategy_contract.
# This may be replaced when dependencies are built.
