file(REMOVE_RECURSE
  "CMakeFiles/test_comm_p2p_db_io.dir/test_comm_p2p_db_io.cc.o"
  "CMakeFiles/test_comm_p2p_db_io.dir/test_comm_p2p_db_io.cc.o.d"
  "test_comm_p2p_db_io"
  "test_comm_p2p_db_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_p2p_db_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
