# Empty dependencies file for test_comm_p2p_db_io.
# This may be replaced when dependencies are built.
