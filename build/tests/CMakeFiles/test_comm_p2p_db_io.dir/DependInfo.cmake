
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_comm_p2p_db_io.cc" "tests/CMakeFiles/test_comm_p2p_db_io.dir/test_comm_p2p_db_io.cc.o" "gcc" "tests/CMakeFiles/test_comm_p2p_db_io.dir/test_comm_p2p_db_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/protuner_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/harmony/CMakeFiles/protuner_harmony.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/protuner_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/gs2/CMakeFiles/protuner_gs2.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/protuner_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/protuner_core.dir/DependInfo.cmake"
  "/root/repo/build/src/varmodel/CMakeFiles/protuner_varmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/protuner_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/protuner_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
