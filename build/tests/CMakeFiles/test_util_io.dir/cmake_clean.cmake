file(REMOVE_RECURSE
  "CMakeFiles/test_util_io.dir/test_util_io.cc.o"
  "CMakeFiles/test_util_io.dir/test_util_io.cc.o.d"
  "test_util_io"
  "test_util_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
