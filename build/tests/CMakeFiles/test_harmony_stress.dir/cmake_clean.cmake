file(REMOVE_RECURSE
  "CMakeFiles/test_harmony_stress.dir/test_harmony_stress.cc.o"
  "CMakeFiles/test_harmony_stress.dir/test_harmony_stress.cc.o.d"
  "test_harmony_stress"
  "test_harmony_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_harmony_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
