# Empty compiler generated dependencies file for test_harmony_stress.
# This may be replaced when dependencies are built.
