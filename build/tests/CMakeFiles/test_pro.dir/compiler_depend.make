# Empty compiler generated dependencies file for test_pro.
# This may be replaced when dependencies are built.
