file(REMOVE_RECURSE
  "CMakeFiles/test_pro.dir/test_pro.cc.o"
  "CMakeFiles/test_pro.dir/test_pro.cc.o.d"
  "test_pro"
  "test_pro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
