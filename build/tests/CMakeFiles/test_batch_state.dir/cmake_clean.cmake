file(REMOVE_RECURSE
  "CMakeFiles/test_batch_state.dir/test_batch_state.cc.o"
  "CMakeFiles/test_batch_state.dir/test_batch_state.cc.o.d"
  "test_batch_state"
  "test_batch_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batch_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
