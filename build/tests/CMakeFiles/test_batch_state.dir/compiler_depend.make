# Empty compiler generated dependencies file for test_batch_state.
# This may be replaced when dependencies are built.
