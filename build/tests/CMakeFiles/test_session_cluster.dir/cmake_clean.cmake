file(REMOVE_RECURSE
  "CMakeFiles/test_session_cluster.dir/test_session_cluster.cc.o"
  "CMakeFiles/test_session_cluster.dir/test_session_cluster.cc.o.d"
  "test_session_cluster"
  "test_session_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_session_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
