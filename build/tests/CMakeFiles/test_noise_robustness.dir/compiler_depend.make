# Empty compiler generated dependencies file for test_noise_robustness.
# This may be replaced when dependencies are built.
