file(REMOVE_RECURSE
  "CMakeFiles/test_noise_robustness.dir/test_noise_robustness.cc.o"
  "CMakeFiles/test_noise_robustness.dir/test_noise_robustness.cc.o.d"
  "test_noise_robustness"
  "test_noise_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noise_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
