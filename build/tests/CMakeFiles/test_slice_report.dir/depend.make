# Empty dependencies file for test_slice_report.
# This may be replaced when dependencies are built.
