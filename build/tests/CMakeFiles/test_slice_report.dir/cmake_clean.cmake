file(REMOVE_RECURSE
  "CMakeFiles/test_slice_report.dir/test_slice_report.cc.o"
  "CMakeFiles/test_slice_report.dir/test_slice_report.cc.o.d"
  "test_slice_report"
  "test_slice_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slice_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
