file(REMOVE_RECURSE
  "CMakeFiles/test_sro_nm.dir/test_sro_nm.cc.o"
  "CMakeFiles/test_sro_nm.dir/test_sro_nm.cc.o.d"
  "test_sro_nm"
  "test_sro_nm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sro_nm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
