# Empty dependencies file for test_sro_nm.
# This may be replaced when dependencies are built.
