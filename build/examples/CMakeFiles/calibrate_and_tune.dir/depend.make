# Empty dependencies file for calibrate_and_tune.
# This may be replaced when dependencies are built.
