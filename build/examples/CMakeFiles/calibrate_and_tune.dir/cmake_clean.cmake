file(REMOVE_RECURSE
  "CMakeFiles/calibrate_and_tune.dir/calibrate_and_tune.cpp.o"
  "CMakeFiles/calibrate_and_tune.dir/calibrate_and_tune.cpp.o.d"
  "calibrate_and_tune"
  "calibrate_and_tune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate_and_tune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
