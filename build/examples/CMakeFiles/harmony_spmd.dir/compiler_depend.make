# Empty compiler generated dependencies file for harmony_spmd.
# This may be replaced when dependencies are built.
