file(REMOVE_RECURSE
  "CMakeFiles/harmony_spmd.dir/harmony_spmd.cpp.o"
  "CMakeFiles/harmony_spmd.dir/harmony_spmd.cpp.o.d"
  "harmony_spmd"
  "harmony_spmd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_spmd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
