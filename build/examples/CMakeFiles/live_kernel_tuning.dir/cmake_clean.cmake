file(REMOVE_RECURSE
  "CMakeFiles/live_kernel_tuning.dir/live_kernel_tuning.cpp.o"
  "CMakeFiles/live_kernel_tuning.dir/live_kernel_tuning.cpp.o.d"
  "live_kernel_tuning"
  "live_kernel_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_kernel_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
