# Empty compiler generated dependencies file for live_kernel_tuning.
# This may be replaced when dependencies are built.
