# Empty dependencies file for harmony_distributed.
# This may be replaced when dependencies are built.
