file(REMOVE_RECURSE
  "CMakeFiles/harmony_distributed.dir/harmony_distributed.cpp.o"
  "CMakeFiles/harmony_distributed.dir/harmony_distributed.cpp.o.d"
  "harmony_distributed"
  "harmony_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
