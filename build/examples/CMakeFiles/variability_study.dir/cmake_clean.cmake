file(REMOVE_RECURSE
  "CMakeFiles/variability_study.dir/variability_study.cpp.o"
  "CMakeFiles/variability_study.dir/variability_study.cpp.o.d"
  "variability_study"
  "variability_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variability_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
