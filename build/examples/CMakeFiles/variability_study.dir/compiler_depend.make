# Empty compiler generated dependencies file for variability_study.
# This may be replaced when dependencies are built.
