# Empty dependencies file for gs2_tuning.
# This may be replaced when dependencies are built.
