file(REMOVE_RECURSE
  "CMakeFiles/gs2_tuning.dir/gs2_tuning.cpp.o"
  "CMakeFiles/gs2_tuning.dir/gs2_tuning.cpp.o.d"
  "gs2_tuning"
  "gs2_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs2_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
