
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/blocked_matmul.cc" "src/apps/CMakeFiles/protuner_apps.dir/blocked_matmul.cc.o" "gcc" "src/apps/CMakeFiles/protuner_apps.dir/blocked_matmul.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/protuner_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/protuner_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
