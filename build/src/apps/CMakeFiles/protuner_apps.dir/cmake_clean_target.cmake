file(REMOVE_RECURSE
  "libprotuner_apps.a"
)
