file(REMOVE_RECURSE
  "CMakeFiles/protuner_apps.dir/blocked_matmul.cc.o"
  "CMakeFiles/protuner_apps.dir/blocked_matmul.cc.o.d"
  "libprotuner_apps.a"
  "libprotuner_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protuner_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
