# Empty compiler generated dependencies file for protuner_apps.
# This may be replaced when dependencies are built.
