file(REMOVE_RECURSE
  "CMakeFiles/protuner_comm.dir/spmd.cc.o"
  "CMakeFiles/protuner_comm.dir/spmd.cc.o.d"
  "libprotuner_comm.a"
  "libprotuner_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protuner_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
