# Empty compiler generated dependencies file for protuner_comm.
# This may be replaced when dependencies are built.
