file(REMOVE_RECURSE
  "libprotuner_comm.a"
)
