file(REMOVE_RECURSE
  "libprotuner_gs2.a"
)
