# Empty dependencies file for protuner_gs2.
# This may be replaced when dependencies are built.
