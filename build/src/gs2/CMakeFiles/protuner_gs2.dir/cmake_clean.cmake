file(REMOVE_RECURSE
  "CMakeFiles/protuner_gs2.dir/database.cc.o"
  "CMakeFiles/protuner_gs2.dir/database.cc.o.d"
  "CMakeFiles/protuner_gs2.dir/slice.cc.o"
  "CMakeFiles/protuner_gs2.dir/slice.cc.o.d"
  "CMakeFiles/protuner_gs2.dir/surface.cc.o"
  "CMakeFiles/protuner_gs2.dir/surface.cc.o.d"
  "CMakeFiles/protuner_gs2.dir/trace.cc.o"
  "CMakeFiles/protuner_gs2.dir/trace.cc.o.d"
  "libprotuner_gs2.a"
  "libprotuner_gs2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protuner_gs2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
