
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gs2/database.cc" "src/gs2/CMakeFiles/protuner_gs2.dir/database.cc.o" "gcc" "src/gs2/CMakeFiles/protuner_gs2.dir/database.cc.o.d"
  "/root/repo/src/gs2/slice.cc" "src/gs2/CMakeFiles/protuner_gs2.dir/slice.cc.o" "gcc" "src/gs2/CMakeFiles/protuner_gs2.dir/slice.cc.o.d"
  "/root/repo/src/gs2/surface.cc" "src/gs2/CMakeFiles/protuner_gs2.dir/surface.cc.o" "gcc" "src/gs2/CMakeFiles/protuner_gs2.dir/surface.cc.o.d"
  "/root/repo/src/gs2/trace.cc" "src/gs2/CMakeFiles/protuner_gs2.dir/trace.cc.o" "gcc" "src/gs2/CMakeFiles/protuner_gs2.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/protuner_core.dir/DependInfo.cmake"
  "/root/repo/build/src/varmodel/CMakeFiles/protuner_varmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/protuner_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/protuner_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
