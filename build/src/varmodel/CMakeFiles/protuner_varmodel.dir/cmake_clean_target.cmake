file(REMOVE_RECURSE
  "libprotuner_varmodel.a"
)
