
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/varmodel/ar1_noise.cc" "src/varmodel/CMakeFiles/protuner_varmodel.dir/ar1_noise.cc.o" "gcc" "src/varmodel/CMakeFiles/protuner_varmodel.dir/ar1_noise.cc.o.d"
  "/root/repo/src/varmodel/burst_noise.cc" "src/varmodel/CMakeFiles/protuner_varmodel.dir/burst_noise.cc.o" "gcc" "src/varmodel/CMakeFiles/protuner_varmodel.dir/burst_noise.cc.o.d"
  "/root/repo/src/varmodel/composite_noise.cc" "src/varmodel/CMakeFiles/protuner_varmodel.dir/composite_noise.cc.o" "gcc" "src/varmodel/CMakeFiles/protuner_varmodel.dir/composite_noise.cc.o.d"
  "/root/repo/src/varmodel/fit.cc" "src/varmodel/CMakeFiles/protuner_varmodel.dir/fit.cc.o" "gcc" "src/varmodel/CMakeFiles/protuner_varmodel.dir/fit.cc.o.d"
  "/root/repo/src/varmodel/pareto_noise.cc" "src/varmodel/CMakeFiles/protuner_varmodel.dir/pareto_noise.cc.o" "gcc" "src/varmodel/CMakeFiles/protuner_varmodel.dir/pareto_noise.cc.o.d"
  "/root/repo/src/varmodel/shock_model.cc" "src/varmodel/CMakeFiles/protuner_varmodel.dir/shock_model.cc.o" "gcc" "src/varmodel/CMakeFiles/protuner_varmodel.dir/shock_model.cc.o.d"
  "/root/repo/src/varmodel/simple_noise.cc" "src/varmodel/CMakeFiles/protuner_varmodel.dir/simple_noise.cc.o" "gcc" "src/varmodel/CMakeFiles/protuner_varmodel.dir/simple_noise.cc.o.d"
  "/root/repo/src/varmodel/two_job_sim.cc" "src/varmodel/CMakeFiles/protuner_varmodel.dir/two_job_sim.cc.o" "gcc" "src/varmodel/CMakeFiles/protuner_varmodel.dir/two_job_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/protuner_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/protuner_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
