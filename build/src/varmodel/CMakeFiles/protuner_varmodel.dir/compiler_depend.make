# Empty compiler generated dependencies file for protuner_varmodel.
# This may be replaced when dependencies are built.
