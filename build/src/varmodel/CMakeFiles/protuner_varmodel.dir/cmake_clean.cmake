file(REMOVE_RECURSE
  "CMakeFiles/protuner_varmodel.dir/ar1_noise.cc.o"
  "CMakeFiles/protuner_varmodel.dir/ar1_noise.cc.o.d"
  "CMakeFiles/protuner_varmodel.dir/burst_noise.cc.o"
  "CMakeFiles/protuner_varmodel.dir/burst_noise.cc.o.d"
  "CMakeFiles/protuner_varmodel.dir/composite_noise.cc.o"
  "CMakeFiles/protuner_varmodel.dir/composite_noise.cc.o.d"
  "CMakeFiles/protuner_varmodel.dir/fit.cc.o"
  "CMakeFiles/protuner_varmodel.dir/fit.cc.o.d"
  "CMakeFiles/protuner_varmodel.dir/pareto_noise.cc.o"
  "CMakeFiles/protuner_varmodel.dir/pareto_noise.cc.o.d"
  "CMakeFiles/protuner_varmodel.dir/shock_model.cc.o"
  "CMakeFiles/protuner_varmodel.dir/shock_model.cc.o.d"
  "CMakeFiles/protuner_varmodel.dir/simple_noise.cc.o"
  "CMakeFiles/protuner_varmodel.dir/simple_noise.cc.o.d"
  "CMakeFiles/protuner_varmodel.dir/two_job_sim.cc.o"
  "CMakeFiles/protuner_varmodel.dir/two_job_sim.cc.o.d"
  "libprotuner_varmodel.a"
  "libprotuner_varmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protuner_varmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
