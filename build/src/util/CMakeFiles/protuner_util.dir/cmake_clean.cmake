file(REMOVE_RECURSE
  "CMakeFiles/protuner_util.dir/ascii_plot.cc.o"
  "CMakeFiles/protuner_util.dir/ascii_plot.cc.o.d"
  "CMakeFiles/protuner_util.dir/rng.cc.o"
  "CMakeFiles/protuner_util.dir/rng.cc.o.d"
  "CMakeFiles/protuner_util.dir/summary.cc.o"
  "CMakeFiles/protuner_util.dir/summary.cc.o.d"
  "libprotuner_util.a"
  "libprotuner_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protuner_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
