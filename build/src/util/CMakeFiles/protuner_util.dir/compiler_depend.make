# Empty compiler generated dependencies file for protuner_util.
# This may be replaced when dependencies are built.
