file(REMOVE_RECURSE
  "libprotuner_util.a"
)
