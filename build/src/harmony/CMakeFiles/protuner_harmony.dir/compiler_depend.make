# Empty compiler generated dependencies file for protuner_harmony.
# This may be replaced when dependencies are built.
