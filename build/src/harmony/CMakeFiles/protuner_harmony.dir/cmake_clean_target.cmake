file(REMOVE_RECURSE
  "libprotuner_harmony.a"
)
