file(REMOVE_RECURSE
  "CMakeFiles/protuner_harmony.dir/api.cc.o"
  "CMakeFiles/protuner_harmony.dir/api.cc.o.d"
  "CMakeFiles/protuner_harmony.dir/message_protocol.cc.o"
  "CMakeFiles/protuner_harmony.dir/message_protocol.cc.o.d"
  "CMakeFiles/protuner_harmony.dir/server.cc.o"
  "CMakeFiles/protuner_harmony.dir/server.cc.o.d"
  "libprotuner_harmony.a"
  "libprotuner_harmony.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protuner_harmony.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
