
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harmony/api.cc" "src/harmony/CMakeFiles/protuner_harmony.dir/api.cc.o" "gcc" "src/harmony/CMakeFiles/protuner_harmony.dir/api.cc.o.d"
  "/root/repo/src/harmony/message_protocol.cc" "src/harmony/CMakeFiles/protuner_harmony.dir/message_protocol.cc.o" "gcc" "src/harmony/CMakeFiles/protuner_harmony.dir/message_protocol.cc.o.d"
  "/root/repo/src/harmony/server.cc" "src/harmony/CMakeFiles/protuner_harmony.dir/server.cc.o" "gcc" "src/harmony/CMakeFiles/protuner_harmony.dir/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/protuner_core.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/protuner_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/protuner_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
