# Empty dependencies file for protuner_stats.
# This may be replaced when dependencies are built.
