file(REMOVE_RECURSE
  "libprotuner_stats.a"
)
