
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/autocorr.cc" "src/stats/CMakeFiles/protuner_stats.dir/autocorr.cc.o" "gcc" "src/stats/CMakeFiles/protuner_stats.dir/autocorr.cc.o.d"
  "/root/repo/src/stats/bootstrap.cc" "src/stats/CMakeFiles/protuner_stats.dir/bootstrap.cc.o" "gcc" "src/stats/CMakeFiles/protuner_stats.dir/bootstrap.cc.o.d"
  "/root/repo/src/stats/common_distributions.cc" "src/stats/CMakeFiles/protuner_stats.dir/common_distributions.cc.o" "gcc" "src/stats/CMakeFiles/protuner_stats.dir/common_distributions.cc.o.d"
  "/root/repo/src/stats/ecdf.cc" "src/stats/CMakeFiles/protuner_stats.dir/ecdf.cc.o" "gcc" "src/stats/CMakeFiles/protuner_stats.dir/ecdf.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/stats/CMakeFiles/protuner_stats.dir/histogram.cc.o" "gcc" "src/stats/CMakeFiles/protuner_stats.dir/histogram.cc.o.d"
  "/root/repo/src/stats/ks.cc" "src/stats/CMakeFiles/protuner_stats.dir/ks.cc.o" "gcc" "src/stats/CMakeFiles/protuner_stats.dir/ks.cc.o.d"
  "/root/repo/src/stats/linreg.cc" "src/stats/CMakeFiles/protuner_stats.dir/linreg.cc.o" "gcc" "src/stats/CMakeFiles/protuner_stats.dir/linreg.cc.o.d"
  "/root/repo/src/stats/order_stats.cc" "src/stats/CMakeFiles/protuner_stats.dir/order_stats.cc.o" "gcc" "src/stats/CMakeFiles/protuner_stats.dir/order_stats.cc.o.d"
  "/root/repo/src/stats/pareto.cc" "src/stats/CMakeFiles/protuner_stats.dir/pareto.cc.o" "gcc" "src/stats/CMakeFiles/protuner_stats.dir/pareto.cc.o.d"
  "/root/repo/src/stats/tail.cc" "src/stats/CMakeFiles/protuner_stats.dir/tail.cc.o" "gcc" "src/stats/CMakeFiles/protuner_stats.dir/tail.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/protuner_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
