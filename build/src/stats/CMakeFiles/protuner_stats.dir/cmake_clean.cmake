file(REMOVE_RECURSE
  "CMakeFiles/protuner_stats.dir/autocorr.cc.o"
  "CMakeFiles/protuner_stats.dir/autocorr.cc.o.d"
  "CMakeFiles/protuner_stats.dir/bootstrap.cc.o"
  "CMakeFiles/protuner_stats.dir/bootstrap.cc.o.d"
  "CMakeFiles/protuner_stats.dir/common_distributions.cc.o"
  "CMakeFiles/protuner_stats.dir/common_distributions.cc.o.d"
  "CMakeFiles/protuner_stats.dir/ecdf.cc.o"
  "CMakeFiles/protuner_stats.dir/ecdf.cc.o.d"
  "CMakeFiles/protuner_stats.dir/histogram.cc.o"
  "CMakeFiles/protuner_stats.dir/histogram.cc.o.d"
  "CMakeFiles/protuner_stats.dir/ks.cc.o"
  "CMakeFiles/protuner_stats.dir/ks.cc.o.d"
  "CMakeFiles/protuner_stats.dir/linreg.cc.o"
  "CMakeFiles/protuner_stats.dir/linreg.cc.o.d"
  "CMakeFiles/protuner_stats.dir/order_stats.cc.o"
  "CMakeFiles/protuner_stats.dir/order_stats.cc.o.d"
  "CMakeFiles/protuner_stats.dir/pareto.cc.o"
  "CMakeFiles/protuner_stats.dir/pareto.cc.o.d"
  "CMakeFiles/protuner_stats.dir/tail.cc.o"
  "CMakeFiles/protuner_stats.dir/tail.cc.o.d"
  "libprotuner_stats.a"
  "libprotuner_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protuner_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
