file(REMOVE_RECURSE
  "libprotuner_core.a"
)
