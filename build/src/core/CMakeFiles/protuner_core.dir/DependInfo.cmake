
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/annealing.cc" "src/core/CMakeFiles/protuner_core.dir/annealing.cc.o" "gcc" "src/core/CMakeFiles/protuner_core.dir/annealing.cc.o.d"
  "/root/repo/src/core/batch_state.cc" "src/core/CMakeFiles/protuner_core.dir/batch_state.cc.o" "gcc" "src/core/CMakeFiles/protuner_core.dir/batch_state.cc.o.d"
  "/root/repo/src/core/compass.cc" "src/core/CMakeFiles/protuner_core.dir/compass.cc.o" "gcc" "src/core/CMakeFiles/protuner_core.dir/compass.cc.o.d"
  "/root/repo/src/core/estimator.cc" "src/core/CMakeFiles/protuner_core.dir/estimator.cc.o" "gcc" "src/core/CMakeFiles/protuner_core.dir/estimator.cc.o.d"
  "/root/repo/src/core/genetic.cc" "src/core/CMakeFiles/protuner_core.dir/genetic.cc.o" "gcc" "src/core/CMakeFiles/protuner_core.dir/genetic.cc.o.d"
  "/root/repo/src/core/grid_search.cc" "src/core/CMakeFiles/protuner_core.dir/grid_search.cc.o" "gcc" "src/core/CMakeFiles/protuner_core.dir/grid_search.cc.o.d"
  "/root/repo/src/core/landscape.cc" "src/core/CMakeFiles/protuner_core.dir/landscape.cc.o" "gcc" "src/core/CMakeFiles/protuner_core.dir/landscape.cc.o.d"
  "/root/repo/src/core/nelder_mead.cc" "src/core/CMakeFiles/protuner_core.dir/nelder_mead.cc.o" "gcc" "src/core/CMakeFiles/protuner_core.dir/nelder_mead.cc.o.d"
  "/root/repo/src/core/parameter_space.cc" "src/core/CMakeFiles/protuner_core.dir/parameter_space.cc.o" "gcc" "src/core/CMakeFiles/protuner_core.dir/parameter_space.cc.o.d"
  "/root/repo/src/core/pro.cc" "src/core/CMakeFiles/protuner_core.dir/pro.cc.o" "gcc" "src/core/CMakeFiles/protuner_core.dir/pro.cc.o.d"
  "/root/repo/src/core/projection.cc" "src/core/CMakeFiles/protuner_core.dir/projection.cc.o" "gcc" "src/core/CMakeFiles/protuner_core.dir/projection.cc.o.d"
  "/root/repo/src/core/random_search.cc" "src/core/CMakeFiles/protuner_core.dir/random_search.cc.o" "gcc" "src/core/CMakeFiles/protuner_core.dir/random_search.cc.o.d"
  "/root/repo/src/core/sensitivity.cc" "src/core/CMakeFiles/protuner_core.dir/sensitivity.cc.o" "gcc" "src/core/CMakeFiles/protuner_core.dir/sensitivity.cc.o.d"
  "/root/repo/src/core/session.cc" "src/core/CMakeFiles/protuner_core.dir/session.cc.o" "gcc" "src/core/CMakeFiles/protuner_core.dir/session.cc.o.d"
  "/root/repo/src/core/simplex.cc" "src/core/CMakeFiles/protuner_core.dir/simplex.cc.o" "gcc" "src/core/CMakeFiles/protuner_core.dir/simplex.cc.o.d"
  "/root/repo/src/core/sro.cc" "src/core/CMakeFiles/protuner_core.dir/sro.cc.o" "gcc" "src/core/CMakeFiles/protuner_core.dir/sro.cc.o.d"
  "/root/repo/src/core/tuning_report.cc" "src/core/CMakeFiles/protuner_core.dir/tuning_report.cc.o" "gcc" "src/core/CMakeFiles/protuner_core.dir/tuning_report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/protuner_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
