# Empty compiler generated dependencies file for protuner_core.
# This may be replaced when dependencies are built.
