# Empty dependencies file for protuner_cluster.
# This may be replaced when dependencies are built.
