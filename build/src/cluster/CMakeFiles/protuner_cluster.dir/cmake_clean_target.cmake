file(REMOVE_RECURSE
  "libprotuner_cluster.a"
)
