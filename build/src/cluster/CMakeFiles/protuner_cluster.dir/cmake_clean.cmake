file(REMOVE_RECURSE
  "CMakeFiles/protuner_cluster.dir/simulated_cluster.cc.o"
  "CMakeFiles/protuner_cluster.dir/simulated_cluster.cc.o.d"
  "CMakeFiles/protuner_cluster.dir/trace_cluster.cc.o"
  "CMakeFiles/protuner_cluster.dir/trace_cluster.cc.o.d"
  "libprotuner_cluster.a"
  "libprotuner_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protuner_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
