// Variability study: generate runtime samples from the mechanistic
// two-priority-queue machine model (paper §4.1), run the paper's heavy-tail
// diagnostics on them, and demonstrate the min-of-K estimator's convergence
// (paper §5) against the failing average.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "stats/common_distributions.h"
#include "stats/ecdf.h"
#include "stats/histogram.h"
#include "stats/order_stats.h"
#include "stats/pareto.h"
#include "stats/tail.h"
#include "util/ascii_plot.h"
#include "util/rng.h"
#include "util/summary.h"
#include "varmodel/two_job_sim.h"

using namespace protuner;

int main() {
  std::cout << "Two-priority-queue machine model study (paper Section 4)\n\n";

  // A machine where housekeeping jobs arrive at rate 0.3/s with
  // heavy-tailed (Pareto alpha=1.7) service times of mean 1s: idle
  // throughput rho = 0.3.
  varmodel::TwoJobConfig cfg;
  cfg.arrival_rate = 0.3;
  cfg.service = std::make_shared<stats::Pareto>(1.7, 1.0 * 0.7 / 1.7);
  const varmodel::TwoJobSimulator sim(cfg);
  std::printf("idle throughput rho = %.3f\n", sim.rho());

  // Measure the application (clean time 5 s) many times.
  util::Rng rng(2005);
  constexpr int kRuns = 20000;
  const double clean = 5.0;
  std::vector<double> ys(kRuns);
  for (auto& y : ys) y = sim.run_application(clean, rng);

  const auto s = util::summarize(ys);
  std::printf("observed completion time: mean=%.3f (Eq.6 predicts %.3f), "
              "median=%.3f, p99=%.3f, max=%.3f\n",
              s.mean, clean / (1.0 - sim.rho()), s.median, s.p99, s.max);

  // Heavy-tail diagnostics on the noise component n = y - f.
  std::vector<double> noise;
  for (double y : ys) {
    if (y > clean + 1e-9) noise.push_back(y - clean);
  }
  const auto tail = stats::diagnose_tail(noise);
  std::printf("noise tail: hill_alpha=%.2f slope_alpha=%.2f r2=%.2f "
              "heavy=%s\n\n",
              tail.hill_alpha, tail.slope_alpha, tail.tail_r2,
              tail.heavy ? "yes" : "no");

  // Log-log survival plot of the completion times.
  const auto ll = stats::Ecdf(ys).log_log_tail();
  util::PlotOptions po;
  po.title = "log10 P[y > x] vs log10 x — linear tail = heavy tail";
  std::cout << util::line_plot("1-cdf", ll.x, ll.q, po) << "\n";

  // Estimator shoot-out: which K-sample estimate orders two configurations
  // (5.0 s vs 5.25 s clean) correctly most often?
  std::cout << "estimator reliability for a 5% performance difference:\n";
  std::cout << "K    min      mean     median\n";
  for (int k : {1, 2, 3, 5, 10}) {
    int min_ok = 0, mean_ok = 0, med_ok = 0;
    constexpr int kTrials = 2000;
    std::vector<double> a(static_cast<std::size_t>(k));
    std::vector<double> b(static_cast<std::size_t>(k));
    for (int t = 0; t < kTrials; ++t) {
      for (int i = 0; i < k; ++i) {
        a[static_cast<std::size_t>(i)] = sim.run_application(5.0, rng);
        b[static_cast<std::size_t>(i)] = sim.run_application(5.25, rng);
      }
      min_ok += util::min(a) < util::min(b);
      mean_ok += util::mean(a) < util::mean(b);
      med_ok += util::median(a) < util::median(b);
    }
    std::printf("%-4d %.3f    %.3f    %.3f\n", k,
                static_cast<double>(min_ok) / kTrials,
                static_cast<double>(mean_ok) / kTrials,
                static_cast<double>(med_ok) / kTrials);
  }

  // The analytic side (Eq. 19-20): min of K Pareto(alpha) samples is
  // Pareto(K alpha) — heavy-tailed samples, light-tailed minimum.
  std::cout << "\nEq. 19: min of K Pareto(0.9) samples (infinite mean!) has "
               "tail index 0.9K:\n";
  const stats::Pareto p(0.9, 1.0);
  for (int k : {1, 2, 4, 8}) {
    const stats::Pareto mk = p.min_of(k);
    std::printf("  K=%d: alpha=%.1f, mean=%s\n", k, mk.alpha(),
                std::isinf(mk.mean()) ? "inf"
                                      : std::to_string(mk.mean()).c_str());
  }
  return 0;
}
