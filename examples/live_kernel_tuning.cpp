// Live on-line tuning of a REAL kernel: cache-blocked matrix multiply with
// tunable block sizes, measured with the wall clock on this machine — the
// variability in the objective is the host's real OS noise, not a model.
//
// PRO with min-of-2 sampling drives the search; the example also verifies
// the tuned kernel still computes the right product, and compares the
// tuned configuration against the naive one.
#include <cstdio>
#include <iostream>

#include "apps/blocked_matmul.h"
#include "core/session.h"
#include "core/strategy_spec.h"

using namespace protuner;

int main() {
  constexpr std::size_t kN = 160;  // 160^3 MACs ~ a few ms per run
  const auto space = apps::BlockedMatmul::tuning_space(kN);
  apps::MatmulEvaluator machine(kN, /*ranks=*/4);

  std::cout << "tuning blocked " << kN << "x" << kN
            << " matmul block sizes (bi, bj, bk) with PRO...\n";

  // Real noise: use the paper's min-of-K estimator (K=2).
  auto pro = core::make_strategy("pro:k=2", space);
  const core::SessionResult r =
      core::run_session(*pro, machine, {.steps = 60});

  std::printf("best blocks: bi=%.0f bj=%.0f bk=%.0f  (converged@%zu)\n",
              r.best[0], r.best[1], r.best[2],
              r.convergence_step.value_or(0));

  // Validate numerics: the blocked kernel at the tuned blocks must match
  // the naive reference.
  auto& kernel = machine.kernel();
  kernel.run_reference();
  (void)kernel.run(static_cast<std::size_t>(r.best[0]),
                   static_cast<std::size_t>(r.best[1]),
                   static_cast<std::size_t>(r.best[2]));
  std::printf("numerical max error vs reference: %.3e\n", kernel.max_error());

  // Compare tuned vs naive performance (median of 5 runs each).
  const auto median5 = [&](std::size_t bi, std::size_t bj, std::size_t bk) {
    double t[5];
    for (auto& x : t) x = kernel.run(bi, bj, bk);
    std::sort(std::begin(t), std::end(t));
    return t[2];
  };
  const double tuned = median5(static_cast<std::size_t>(r.best[0]),
                               static_cast<std::size_t>(r.best[1]),
                               static_cast<std::size_t>(r.best[2]));
  const double naive = median5(kN, kN, kN);
  std::printf("tuned:  %.4f s/run\n", tuned);
  std::printf("naive:  %.4f s/run  (speedup %.2fx)\n", naive, naive / tuned);
  return 0;
}
