// Stitches per-process Chrome trace exports (obs::Tracer::
// write_chrome_trace) into one Perfetto-loadable timeline:
//
//   trace_merge OUT.json IN1.json IN2.json ...
//
// Each input becomes its own pid lane (numbered by argument order) and all
// events are re-sorted by timestamp, so a server export plus N client
// exports line up on one fleet-wide axis.  Cross-process correlation rides
// in each event's args.trace / args.span ids (DESIGN.md §15): filtering a
// merged trace by one trace id shows a single tuning round fleet-wide.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace_merge.h"

using namespace protuner;

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s OUT.json IN1.json [IN2.json ...]\n",
                 argv[0]);
    return 2;
  }
  std::vector<std::vector<obs::MergedEvent>> inputs;
  inputs.reserve(static_cast<std::size_t>(argc - 2));
  for (int i = 2; i < argc; ++i) {
    std::ifstream in(argv[i]);
    std::stringstream text;
    text << in.rdbuf();
    std::vector<obs::MergedEvent> events;
    if (!in || !obs::parse_chrome_trace(text.str(), events)) {
      std::fprintf(stderr, "%s: not a parseable Chrome trace\n", argv[i]);
      return 1;
    }
    inputs.push_back(std::move(events));
  }
  const std::vector<obs::MergedEvent> merged = obs::merge_traces(inputs);
  std::ofstream out(argv[1]);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", argv[1]);
    return 1;
  }
  obs::write_merged(out, merged);
  if (!out.flush()) {
    std::fprintf(stderr, "write to %s failed\n", argv[1]);
    return 1;
  }
  std::printf("merged %zu events from %d trace(s) into %s\n", merged.size(),
              argc - 2, argv[1]);
  return 0;
}
