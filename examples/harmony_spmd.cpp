// Live SPMD tuning through the Active-Harmony-style client/server API:
// eight *real* concurrent ranks (std::jthread + std::barrier) iterate a
// bulk-synchronous application; each rank fetches its configuration from
// the tuning server, "runs" one iteration (simulated compute proportional
// to the GS2 surface plus queue-model noise), reports its time, and
// barriers.  The server runs PRO behind the scenes.
//
// This is the integration shape a real MPI application would use, with the
// comm substrate standing in for MPI.
#include <cstdio>
#include <iostream>
#include <memory>
#include <mutex>

#include "comm/spmd.h"
#include "core/pro.h"
#include "gs2/surface.h"
#include "harmony/session_manager.h"
#include "util/rng.h"
#include "varmodel/pareto_noise.h"

using namespace protuner;

int main() {
  constexpr std::size_t kRanks = 8;
  constexpr int kTimeSteps = 150;

  const auto space = gs2::gs2_space();
  const auto surface = std::make_shared<gs2::Gs2Surface>();
  const varmodel::ParetoNoise noise(0.15, 1.7);

  core::ProOptions opts;
  opts.samples = 2;

  // Host the session through the manager, the way a long-lived tuning
  // service would: any component can attach("gs2") later to observe it.
  // The report deadline is generous here (no rank ever misses it); it
  // demonstrates the straggler guard a production deployment would set.
  harmony::ServerOptions server_options;
  server_options.report_timeout = std::chrono::duration<double>(10.0);
  server_options.straggler_policy = harmony::StragglerPolicy::kShrink;
  harmony::SessionManager manager;
  const std::shared_ptr<harmony::Server> session = manager.create(
      "gs2", std::make_unique<core::ProStrategy>(space, opts), kRanks,
      server_options);
  harmony::Server& server = *session;

  std::mutex log_mutex;

  comm::spmd_run(kRanks, [&](comm::Communicator& comm) {
    harmony::Client client(server, comm.rank());
    util::Rng rng(1000 + comm.rank());

    for (int step = 0; step < kTimeSteps; ++step) {
      // Fetch this rank's configuration for the current time step.
      const core::Point cfg = client.fetch();

      // "Run" one application iteration: the simulated duration is the GS2
      // surface time plus machine noise.  (A real application would time
      // its actual iteration here.)
      const double t = noise.observe(surface->clean_time(cfg), rng);

      // The barrier models the application's own per-iteration
      // synchronisation; the step cost is the slowest rank (Eq. 1).
      const double step_cost = comm.allreduce_max(t);

      client.report(t);

      if (comm.rank() == 0 && (step + 1) % 30 == 0) {
        const std::scoped_lock lock(log_mutex);
        std::printf("step %3d: T_k=%6.3f  cumulative=%8.2f  converged=%s\n",
                    step + 1, step_cost, server.total_time(),
                    server.converged() ? "yes" : "no");
      }
    }
  });

  const harmony::SessionManager::SessionStats stats = manager.stats("gs2");
  const core::Point& best = stats.best;
  std::cout << "\nsession '" << stats.name << "' (" << stats.strategy
            << "): " << stats.rounds << " rounds, " << stats.active_ranks
            << "/" << stats.clients << " ranks active\n"
            << "best configuration (ntheta=" << best[gs2::kNtheta]
            << ", negrid=" << best[gs2::kNegrid]
            << ", nodes=" << best[gs2::kNodes] << ")\n"
            << "clean time there: " << surface->clean_time(best)
            << " s/iter (default was "
            << surface->clean_time(space.center()) << ")\n"
            << "Total_Time: " << stats.total_time << "\n";
  manager.remove("gs2");
  return 0;
}
