// Live SPMD tuning through the Active-Harmony-style client/server API:
// eight *real* concurrent ranks (std::jthread + std::barrier) iterate a
// bulk-synchronous application; each rank fetches its configuration from
// the tuning server, "runs" one iteration (simulated compute proportional
// to the GS2 surface plus queue-model noise), reports its time, and
// barriers.  The server runs PRO behind the scenes.
//
// This is the integration shape a real MPI application would use, with the
// comm substrate standing in for MPI.
// Telemetry: pass `--metrics-out m.prom` to dump a Prometheus text page of
// the session's counters and latency quantiles at exit, and/or
// `--trace-out t.json` to record spans (fetch/report, round lifecycle) and
// write a Chrome trace_event file loadable in chrome://tracing or Perfetto.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>

#include "comm/spmd.h"
#include "core/strategy_spec.h"
#include "gs2/database.h"
#include "gs2/surface.h"
#include "harmony/session_manager.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "varmodel/pareto_noise.h"

using namespace protuner;

int main(int argc, char** argv) {
  constexpr std::size_t kRanks = 8;
  constexpr int kTimeSteps = 150;

  std::string metrics_out;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(arg, "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      std::cerr << "usage: harmony_spmd [--metrics-out FILE.prom] "
                   "[--trace-out FILE.json]\n";
      return 2;
    }
  }
  if (!trace_out.empty()) {
    // Record every span; OBS_TRACE can still pre-enable sampling for runs
    // without the flag.
    obs::Tracer::global().configure(true, 1);
  }

  const auto space = gs2::gs2_space();
  const auto surface = std::make_shared<gs2::Gs2Surface>();
  // Ranks look their clean times up in the sparse evaluation database (the
  // paper's GS2 workflow); its tier hit counters land in the metrics page.
  const gs2::Database database =
      gs2::Database::measure(space, *surface, gs2::DatabaseOptions{});
  const varmodel::ParetoNoise noise(0.15, 1.7);

  // Host the session through the manager, the way a long-lived tuning
  // service would: any component can attach("gs2") later to observe it.
  // The report deadline is generous here (no rank ever misses it); it
  // demonstrates the straggler guard a production deployment would set.
  harmony::ServerOptions server_options;
  server_options.report_timeout = std::chrono::duration<double>(10.0);
  server_options.straggler_policy = harmony::StragglerPolicy::kShrink;
  harmony::SessionManager manager;
  const std::shared_ptr<harmony::Server> session = manager.create(
      "gs2", core::make_strategy("pro:k=2", space), kRanks,
      server_options);
  harmony::Server& server = *session;

  std::mutex log_mutex;

  comm::spmd_run(kRanks, [&](comm::Communicator& comm) {
    harmony::Client client(server, comm.rank());
    util::Rng rng(1000 + comm.rank());

    for (int step = 0; step < kTimeSteps; ++step) {
      // Fetch this rank's configuration for the current time step.
      const core::Point cfg = client.fetch();

      // "Run" one application iteration: the simulated duration is the GS2
      // database time plus machine noise.  (A real application would time
      // its actual iteration here.)
      const double t = noise.observe(database.clean_time(cfg), rng);

      // The barrier models the application's own per-iteration
      // synchronisation; the step cost is the slowest rank (Eq. 1).
      const double step_cost = comm.allreduce_max(t);

      client.report(t);

      if (comm.rank() == 0 && (step + 1) % 30 == 0) {
        const std::scoped_lock lock(log_mutex);
        std::printf("step %3d: T_k=%6.3f  cumulative=%8.2f  converged=%s\n",
                    step + 1, step_cost, server.total_time(),
                    server.converged() ? "yes" : "no");
      }
    }
  });

  const harmony::SessionManager::SessionStats stats = manager.stats("gs2");
  const core::Point& best = stats.best;
  std::cout << "\nsession '" << stats.name << "' (" << stats.strategy
            << "): " << stats.rounds << " rounds, " << stats.active_ranks
            << "/" << stats.clients << " ranks active\n"
            << "best configuration (ntheta=" << best[gs2::kNtheta]
            << ", negrid=" << best[gs2::kNegrid]
            << ", nodes=" << best[gs2::kNodes] << ")\n"
            << "clean time there: " << surface->clean_time(best)
            << " s/iter (default was "
            << surface->clean_time(space.center()) << ")\n"
            << "Total_Time: " << stats.total_time << "\n";

  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::cerr << "cannot write " << metrics_out << "\n";
      return 1;
    }
    obs::render_prometheus(out, manager.metrics_snapshot());
    std::cout << "metrics written to " << metrics_out << "\n";
  }
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) {
      std::cerr << "cannot write " << trace_out << "\n";
      return 1;
    }
    obs::Tracer::global().write_chrome_trace(out);
    std::cout << "trace written to " << trace_out << " (load in Perfetto / "
                 "chrome://tracing)\n";
  }
  manager.remove("gs2");
  return 0;
}
