// End-to-end GS2 scenario (the paper's case study): build the measured
// performance database, attach heavy-tailed variability, and tune
// (ntheta, negrid, nodes) on-line with PRO — printing the tuning
// trajectory, comparing against running the default configuration, and
// showing what multi-sampling buys.
#include <cstdio>
#include <iostream>
#include <memory>

#include "cluster/simulated_cluster.h"
#include "core/session.h"
#include "core/strategy_spec.h"
#include "gs2/database.h"
#include "gs2/surface.h"
#include "varmodel/noise_spec.h"

using namespace protuner;

namespace {

void report(const char* label, const core::SessionResult& r) {
  std::printf("%-28s NTT=%8.2f  best=(ntheta=%3.0f negrid=%3.0f nodes=%3.0f)"
              "  f(best)=%.3f  converged@%zu\n",
              label, r.ntt, r.best[gs2::kNtheta], r.best[gs2::kNegrid],
              r.best[gs2::kNodes], r.best_clean,
              r.convergence_step.value_or(0));
}

}  // namespace

int main() {
  std::cout << "GS2 on-line tuning demo (paper Section 6 setting)\n\n";

  // The measured performance database: a sparse sweep of the GS2 surface
  // with weighted-nearest-neighbour interpolation for off-grid points.
  const auto space = gs2::gs2_space();
  const gs2::Gs2Surface surface;
  auto db = std::make_shared<gs2::Database>(
      gs2::Database::measure(space, surface, {}));
  std::cout << "database entries: " << db->entries() << "\n";
  const core::Point center = space.center();
  std::cout << "default configuration f = " << db->clean_time(center)
            << " s/iter at (ntheta=" << center[0] << ", negrid=" << center[1]
            << ", nodes=" << center[2] << ")\n\n";

  auto noise = varmodel::make_noise("pareto:rho=0.25,alpha=1.7");

  // Baseline: run the default configuration untuned.
  {
    cluster::SimulatedCluster machine(db, noise, {.ranks = 6, .seed = 7});
    auto fixed = core::make_strategy("fixed", space);
    report("no tuning (default config)",
           core::run_session(*fixed, machine, {.steps = 300}));
  }

  // PRO, single sample.
  {
    cluster::SimulatedCluster machine(db, noise, {.ranks = 6, .seed = 7});
    auto pro = core::make_strategy("pro", space);
    const auto r = core::run_session(*pro, machine, {.steps = 300});
    report("PRO (K=1)", r);
  }

  // PRO with the paper's min-of-K modification.
  {
    cluster::SimulatedCluster machine(db, noise, {.ranks = 6, .seed = 7});
    auto pro = core::make_strategy("pro:k=3", space);
    const auto r = core::run_session(*pro, machine, {.steps = 300});
    report("PRO (min of K=3)", r);

    // Show the tuning trajectory: cumulative time every 30 steps.
    std::cout << "\ntrajectory (PRO K=3): step -> cumulative time\n";
    for (std::size_t k = 29; k < r.cumulative.size(); k += 30) {
      std::printf("  %3zu -> %8.2f\n", k + 1, r.cumulative[k]);
    }
  }

  // Plenty of processors: spend them on parallel replicated samples
  // (§5.2 — extra samples at no time cost).
  {
    cluster::SimulatedCluster machine(db, noise, {.ranks = 24, .seed = 7});
    auto pro = core::make_strategy("pro:k=4,replicas=1", space);
    report("\nPRO (K=4, parallel, 24 ranks)",
           core::run_session(*pro, machine, {.steps = 300}));
  }
  return 0;
}
