// The full production workflow the library supports:
//   1. MEASURE: run the default configuration repeatedly on the "real"
//      machine (here: the two-priority-queue simulator standing in for a
//      noisy cluster) and record the runtimes;
//   2. FIT: calibrate the paper's noise model (rho, alpha) to the trace;
//   3. SIMULATE: rehearse tuning strategies offline against the fitted
//      model + the performance database to pick K before touching the
//      cluster again;
//   4. TUNE: run the chosen configuration on the "real" machine;
//   5. DIAGNOSE: sensitivity analysis around the final configuration.
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cluster/simulated_cluster.h"
#include "core/sensitivity.h"
#include "core/session.h"
#include "core/strategy_spec.h"
#include "gs2/database.h"
#include "gs2/surface.h"
#include "stats/pareto.h"
#include "util/rng.h"
#include "varmodel/fit.h"
#include "varmodel/two_job_sim.h"

using namespace protuner;

int main() {
  const auto space = gs2::gs2_space();
  const gs2::Gs2Surface surface;
  auto db = std::make_shared<gs2::Database>(
      gs2::Database::measure(space, surface, {}));
  const core::Point defaults = space.center();
  const double f_default = db->clean_time(defaults);

  // --- 1. MEASURE: the "real" machine is a priority queue we can't see
  // inside; we only observe completion times of the default config.
  varmodel::TwoJobConfig machine_truth;
  machine_truth.arrival_rate = 0.28;
  machine_truth.service = std::make_shared<stats::Pareto>(1.6, 0.6 / 1.6);
  const varmodel::TwoJobSimulator real_machine(machine_truth);
  util::Rng rng(77);
  std::vector<double> trace(3000);
  for (auto& y : trace) y = real_machine.run_application(f_default, rng);
  std::printf("measured %zu runs of the default config (f=%.3f)\n",
              trace.size(), f_default);

  // --- 2. FIT the paper's model.
  const varmodel::NoiseFit fit = varmodel::fit_noise(trace);
  std::printf("fit: floor=%.3f rho=%.3f (eq17-corrected %.3f) alpha=%.2f "
              "heavy=%s   [truth: rho=%.3f]\n",
              fit.clean_time, fit.rho, fit.rho_eq17, fit.alpha,
              fit.heavy ? "yes" : "no", real_machine.rho());

  // --- 3. SIMULATE: rehearse K = 1..4 offline against the fitted model.
  auto fitted = std::make_shared<varmodel::ParetoNoise>(
      varmodel::to_pareto_noise(fit));
  std::printf("\noffline rehearsal on the fitted model (NTT(200), 40 reps):\n");
  int best_k = 1;
  double best_ntt = 1e300;
  for (int k = 1; k <= 4; ++k) {
    double acc = 0.0;
    for (int rep = 0; rep < 40; ++rep) {
      cluster::SimulatedCluster sim(
          db, fitted,
          {.ranks = 6, .seed = static_cast<std::uint64_t>(900 + rep)});
      auto pro =
          core::make_strategy("pro:k=" + std::to_string(k), space);
      acc += core::run_session(*pro, sim, {.steps = 200}).ntt;
    }
    const double ntt = acc / 40.0;
    std::printf("  K=%d: avg NTT=%.2f\n", k, ntt);
    if (ntt < best_ntt) {
      best_ntt = ntt;
      best_k = k;
    }
  }
  std::printf("chosen K* = %d\n\n", best_k);

  // --- 4. TUNE on the "real" machine with the chosen K.
  class RealCluster final : public core::StepEvaluator {
   public:
    RealCluster(core::LandscapePtr land, const varmodel::TwoJobSimulator& m,
                std::size_t ranks)
        : land_(std::move(land)), machine_(m), rng_(4242) {
      (void)ranks;
    }
    void run_step_into(std::span<const core::Point> configs,
                       std::span<double> out) override {
      for (std::size_t p = 0; p < configs.size(); ++p) {
        out[p] = machine_.run_application(land_->clean_time(configs[p]), rng_);
      }
    }
    std::size_t ranks() const override { return 6; }
    double clean_time(const core::Point& x) const override {
      return land_->clean_time(x);
    }
   private:
    core::LandscapePtr land_;
    const varmodel::TwoJobSimulator& machine_;
    util::Rng rng_;
  } real_cluster(db, real_machine, 6);

  auto pro =
      core::make_strategy("pro:k=" + std::to_string(best_k), space);
  const core::SessionResult result =
      core::run_session(*pro, real_cluster, {.steps = 200});
  std::printf("tuned on the real machine: best=(%.0f, %.0f, %.0f) "
              "f=%.3f (default %.3f), Total_Time=%.1f\n",
              result.best[0], result.best[1], result.best[2],
              result.best_clean, f_default, result.total_time);

  // --- 5. DIAGNOSE: which knobs matter around the final configuration?
  const auto report = core::analyze_sensitivity(space, *db, result.best);
  std::printf("\nsensitivity around the final configuration:\n");
  for (const auto& axis : report.axes) {
    std::printf("  %-8s rel_range=%5.1f%%  axis-optimal=%s\n",
                axis.name.c_str(), 100.0 * axis.rel_range,
                axis.anchor_is_axis_optimum ? "yes" : "no");
  }
  return 0;
}
