// Strategy shootout CLI — the cross-product driver over the declarative
// spec layer (see src/apps/tuning_shootout.h and DESIGN.md §13).
//
//   tuning_shootout                     # full matrix, CSV + plots to stdout
//   tuning_shootout --smoke             # CI-sized matrix (~1 s)
//   tuning_shootout --json=OUT.json     # also write a JSON summary
//   tuning_shootout --list              # print every registered spec family
//   tuning_shootout --strategies=pro,spsa --landscapes=quad:dims=2 \
//       --noises=none --steps=60        # custom cells (';'-separated specs
//                                       # when a spec itself contains ',')
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "apps/tuning_shootout.h"
#include "cluster/evaluator_spec.h"
#include "core/strategy_spec.h"
#include "gs2/landscape_spec.h"
#include "spec/spec.h"
#include "varmodel/noise_spec.h"

namespace {

// Spec lists are ';'-separated on the command line because specs themselves
// use ','.
std::vector<std::string> split_specs(std::string_view text) {
  std::vector<std::string> out;
  while (!text.empty()) {
    const std::size_t semi = text.find(';');
    const std::string_view part =
        semi == std::string_view::npos ? text : text.substr(0, semi);
    if (!part.empty()) out.emplace_back(part);
    if (semi == std::string_view::npos) break;
    text = text.substr(semi + 1);
  }
  return out;
}

bool flag_value(std::string_view arg, std::string_view name,
                std::string_view& value) {
  if (arg.size() <= name.size() || arg.substr(0, name.size()) != name ||
      arg[name.size()] != '=') {
    return false;
  }
  value = arg.substr(name.size() + 1);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using protuner::apps::ShootoutOptions;

  ShootoutOptions opt;
  opt.strategies = {"pro",  "pro:racing=1", "sro", "nm:iters=200",
                    "spsa", "rs:m=12",      "compass"};
  opt.landscapes = {"gs2", "gs2db", "quad:dims=3", "multimodal:dims=3"};
  opt.noises = {"none", "pareto:rho=0.1,alpha=1.7",
                "exp:rho=0.05+pareto:rho=0.05,alpha=1.5"};
  opt.min_of_k = {0, 3};

  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::string_view v;
    if (arg == "--smoke") {
      opt.strategies = {"pro", "sro", "nm:iters=150", "spsa",
                        "rs:m=10,n0=3"};
      opt.landscapes = {"gs2", "quad:dims=3", "multimodal:dims=2"};
      opt.min_of_k = {0, 3};
      opt.seeds = 2;
      opt.steps = 40;
      opt.plots = false;
    } else if (arg == "--list") {
      std::cout << "strategies:\n"
                << protuner::core::strategy_registry().help()
                << "landscapes:\n"
                << protuner::gs2::landscape_registry().help() << "noises:\n"
                << protuner::varmodel::noise_registry().help()
                << "evaluators:\n"
                << protuner::cluster::evaluator_registry().help();
      return 0;
    } else if (arg == "--no-plots") {
      opt.plots = false;
    } else if (flag_value(arg, "--json", v)) {
      json_path = v;
    } else if (flag_value(arg, "--strategies", v)) {
      opt.strategies = split_specs(v);
    } else if (flag_value(arg, "--landscapes", v)) {
      opt.landscapes = split_specs(v);
    } else if (flag_value(arg, "--noises", v)) {
      opt.noises = split_specs(v);
    } else if (flag_value(arg, "--evaluator", v)) {
      opt.evaluator = std::string(v);
    } else if (flag_value(arg, "--steps", v)) {
      opt.steps = std::stoul(std::string(v));
    } else if (flag_value(arg, "--ranks", v)) {
      opt.ranks = std::stoul(std::string(v));
    } else if (flag_value(arg, "--seeds", v)) {
      opt.seeds = std::stoul(std::string(v));
    } else if (flag_value(arg, "--k", v)) {
      opt.min_of_k.clear();
      for (const std::string& s : split_specs(v)) {
        opt.min_of_k.push_back(std::stoi(s));
      }
    } else {
      std::cerr << "unknown argument: " << arg << "\n"
                << "usage: tuning_shootout [--smoke] [--list] [--no-plots]\n"
                << "  [--json=PATH] [--strategies=S;S;...]\n"
                << "  [--landscapes=L;L;...] [--noises=N;N;...]\n"
                << "  [--evaluator=E] [--steps=N] [--ranks=N] [--seeds=N]\n"
                << "  [--k=K;K;...]\n";
      return 2;
    }
  }

  try {
    const protuner::apps::ShootoutReport report =
        protuner::apps::run_shootout(opt, std::cout);
    if (!json_path.empty()) {
      std::ofstream json(json_path);
      if (!json) {
        std::cerr << "cannot open " << json_path << "\n";
        return 1;
      }
      protuner::apps::write_shootout_json(report, opt, json);
      std::cout << "\nwrote " << report.rows.size() << " rows to "
                << json_path << "\n";
    }
  } catch (const protuner::spec::SpecError& e) {
    std::cerr << "spec error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
