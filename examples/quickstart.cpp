// Quickstart: tune two integer parameters of a synthetic application with
// PRO on a simulated 8-rank machine, in ~30 lines of user code.
//
//   1. declare the tunable parameters,
//   2. wrap the application's per-iteration cost as a Landscape,
//   3. pick a noise model for the machine,
//   4. run a tuning session and read off the best configuration.
#include <cmath>
#include <iostream>

#include "cluster/simulated_cluster.h"
#include "core/landscape.h"
#include "core/session.h"
#include "core/strategy_spec.h"
#include "varmodel/noise_spec.h"

using namespace protuner;

int main() {
  // 1. Two tunable parameters: a block size (powers of two) and a thread
  //    count (integer range).
  const core::ParameterSpace space({
      core::Parameter::discrete("block", {8, 16, 32, 64, 128, 256}),
      core::Parameter::integer("threads", 1, 16),
  });

  // 2. The application: per-iteration seconds as a function of the
  //    configuration.  (Here synthetic; in production this is a measurement.)
  auto app = std::make_shared<core::FunctionLandscape>(
      "demo-app", [](const core::Point& x) {
        const double block = x[0];
        const double threads = x[1];
        const double compute = 40.0 / threads + 0.05 * threads;  // contention
        const double cache = 0.4 * std::abs(std::log2(block) - 5.0);
        return 1.0 + compute + cache;
      });

  // 3. The machine: 8 ranks with heavy-tailed variability (idle throughput
  //    20%, Pareto tail index 1.7 — the paper's model).
  auto noise = varmodel::make_noise("pareto:rho=0.2,alpha=1.7");
  cluster::SimulatedCluster machine(app, noise, {.ranks = 8, .seed = 42});

  // 4. PRO with min-of-3 sampling; tune over 120 application time steps.
  //    Strategies are built from declarative specs (DESIGN.md §13):
  //    swap in "spsa", "nm:iters=200", "rs:m=12", ... without recompiling.
  auto pro = core::make_strategy("pro:k=3", space);
  const core::SessionResult result =
      core::run_session(*pro, machine, {.steps = 120});

  std::cout << "best configuration: block=" << result.best[0]
            << " threads=" << result.best[1] << "\n"
            << "clean time at best: " << result.best_clean << " s/iter\n"
            << "Total_Time(120):    " << result.total_time << " s\n"
            << "NTT:                " << result.ntt << " s\n"
            << "converged at step:  " << result.convergence_step.value_or(0)
            << "\n";

  // Ground truth for comparison (block=32, threads where 40/t + .05t min).
  std::cout << "ground-truth optimum is block=32, threads~16 -> "
            << app->clean_time(core::Point{32.0, 16.0}) << " s/iter\n";
  return 0;
}
