// Live telemetry dashboard over the obs:: metrics registry.
//
// Hosts two concurrent tuning sessions (PRO and Nelder-Mead over the GS2
// surface, both under Pareto noise) in one harmony::SessionManager, drives
// them step by step, and every few rounds redraws an ASCII dashboard from
// metrics_snapshot(): per-session round-cost percentiles (p50/p90/p99/
// p99.9/max — no mean, by design), database-tier hit counters, and a
// log-bucketed histogram of the round costs rendered with
// util::ascii_plot.  Everything shown is read from the same registry a
// Prometheus scrape would see.
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/strategy_spec.h"
#include "gs2/database.h"
#include "gs2/surface.h"
#include "harmony/session_manager.h"
#include "obs/metrics.h"
#include "util/ascii_plot.h"
#include "util/rng.h"
#include "varmodel/pareto_noise.h"

using namespace protuner;

namespace {

/// Drives every rank of one session through a single fetch/report round.
/// Clean times come from the sparse evaluation database (so the dashboard's
/// tier counters show real exact/memo/kd-tree traffic).
void drive_round(harmony::Server& server, const gs2::Database& db,
                 const varmodel::ParetoNoise& noise, util::Rng& rng) {
  const std::size_t ranks = server.clients();
  for (std::size_t r = 0; r < ranks; ++r) {
    const core::Point cfg = server.fetch(r);
    server.report(r, noise.observe(db.clean_time(cfg), rng));
  }
}

void print_session(const harmony::Server& server) {
  const obs::RegistrySnapshot snap = server.metrics_snapshot();
  const std::string& name = server.session_name();
  const obs::InstrumentSnapshot* cost = snap.find("protuner_round_cost", name);
  const obs::InstrumentSnapshot* rounds =
      snap.find("protuner_rounds_total", name);
  if (cost == nullptr || rounds == nullptr) return;
  std::printf("  %-10s rounds=%5.0f  T_k p50=%7.3f p90=%7.3f p99=%7.3f "
              "p99.9=%7.3f max=%7.3f\n",
              name.c_str(), rounds->value, cost->hist.p50(), cost->hist.p90(),
              cost->hist.p99(), cost->hist.p999(), cost->hist.max);
}

/// ASCII histogram of one session's round costs: only the occupied bucket
/// range is drawn, each bin labelled by its power-of-two lower edge.
void print_cost_histogram(const harmony::Server& server) {
  const obs::RegistrySnapshot snap = server.metrics_snapshot();
  const obs::InstrumentSnapshot* cost =
      snap.find("protuner_round_cost", server.session_name());
  if (cost == nullptr || cost->hist.count == 0) return;
  const auto& counts = cost->hist.counts;
  std::size_t lo = counts.size();
  std::size_t hi = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] > 0) {
      lo = std::min(lo, i);
      hi = std::max(hi, i);
    }
  }
  if (lo > hi) return;
  std::vector<double> edges;
  std::vector<double> bars;
  for (std::size_t i = lo; i <= hi; ++i) {
    edges.push_back(obs::Histogram::bucket_lower(i));
    bars.push_back(static_cast<double>(counts[i]));
  }
  edges.push_back(obs::Histogram::bucket_upper(hi) > cost->hist.max
                      ? cost->hist.max
                      : obs::Histogram::bucket_upper(hi));
  util::PlotOptions popts;
  popts.title = "round cost T_k [" + server.session_name() + "]";
  popts.height = static_cast<int>(bars.size());
  std::cout << util::histogram_plot(edges, bars, popts);
}

}  // namespace

int main(int argc, char** argv) {
  const int kSteps = argc > 1 ? std::atoi(argv[1]) : 120;
  constexpr std::size_t kRanks = 6;
  constexpr int kRedrawEvery = 30;

  const auto space = gs2::gs2_space();
  const gs2::Gs2Surface surface;
  const gs2::Database db =
      gs2::Database::measure(space, surface, gs2::DatabaseOptions{});
  const varmodel::ParetoNoise noise(0.15, 1.7);

  harmony::SessionManager manager;
  const auto pro =
      manager.create("pro", core::make_strategy("pro:k=2", space), kRanks);
  const auto nm =
      manager.create("nm", core::make_strategy("nm", space), kRanks);

  util::Rng rng_pro(42);
  util::Rng rng_nm(43);

  for (int step = 1; step <= kSteps; ++step) {
    drive_round(*pro, db, noise, rng_pro);
    drive_round(*nm, db, noise, rng_nm);
    if (step % kRedrawEvery == 0 || step == kSteps) {
      std::printf("\n== obs dashboard · step %d/%d ==\n", step, kSteps);
      print_session(*pro);
      print_session(*nm);
      const obs::RegistrySnapshot all = obs::Registry::global().snapshot();
      std::printf("  db lookups:");
      for (const char* tier : {"exact", "memo", "kdtree"}) {
        for (const auto& inst : all.instruments) {
          if (inst.name != "protuner_db_lookups_total") continue;
          for (const auto& [k, v] : inst.labels) {
            if (k == "tier" && v == tier) {
              std::printf("  %s=%.0f", tier, inst.value);
            }
          }
        }
      }
      std::printf("\n");
    }
  }

  std::cout << "\n";
  print_cost_histogram(*pro);
  print_cost_histogram(*nm);

  manager.remove("pro");
  manager.remove("nm");
  return 0;
}
