// Distributed Harmony: a dedicated tuning-server rank and application
// ranks communicating ONLY via point-to-point messages — the in-process
// analogue of Active Harmony's socket architecture.  Porting this to MPI
// means swapping comm::Communicator::send/recv for MPI_Send/MPI_Recv.
//
// Rank 0 runs the tuning server (PRO, min-of-2); ranks 1..8 run the
// "application" (GS2 surface + heavy-tailed noise) and fetch/report each
// iteration.
#include <cstdio>
#include <iostream>
#include <memory>

#include "comm/spmd.h"
#include "core/strategy_spec.h"
#include "gs2/surface.h"
#include "harmony/message_protocol.h"
#include "util/rng.h"
#include "varmodel/pareto_noise.h"

using namespace protuner;

int main() {
  constexpr std::size_t kWorld = 9;   // 1 server + 8 application ranks
  constexpr int kTimeSteps = 120;

  const auto space = gs2::gs2_space();
  const auto surface = std::make_shared<gs2::Gs2Surface>();
  const varmodel::ParetoNoise noise(0.2, 1.7);

  harmony::MessageServerResult result;

  comm::spmd_run(kWorld, [&](comm::Communicator& comm) {
    if (comm.rank() == 0) {
      result = harmony::run_message_server(
          comm, core::make_strategy("pro:k=2", space), kWorld - 1);
    } else {
      harmony::MessageClient client(comm, /*server_rank=*/0);
      util::Rng rng(7000 + comm.rank());
      for (int step = 0; step < kTimeSteps; ++step) {
        const core::Point cfg = client.fetch();
        const double t = noise.observe(surface->clean_time(cfg), rng);
        client.report(t);
      }
      client.goodbye();
    }
  });

  std::printf("server completed %zu rounds, Total_Time=%.2f, converged=%s\n",
              result.rounds, result.total_time,
              result.converged ? "yes" : "no");
  std::printf("best configuration: ntheta=%.0f negrid=%.0f nodes=%.0f "
              "(clean %.3f s/iter; default %.3f)\n",
              result.best[gs2::kNtheta], result.best[gs2::kNegrid],
              result.best[gs2::kNodes], surface->clean_time(result.best),
              surface->clean_time(space.center()));
  return 0;
}
