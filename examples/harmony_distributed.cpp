// Distributed Harmony over real sockets: one tuning-server PROCESS and N
// application-client PROCESSES speaking the binary wire protocol
// (DESIGN.md §14) through net::NetServer / net::HarmonyClient — the
// multi-process analogue of Active Harmony's socket architecture, and the
// successor of the message-passing (in-process) version of this example.
//
// Modes:
//   harmony_distributed                       # fork/exec demo: server +
//                                             #   64 client processes
//   harmony_distributed --clients N --steps K --seed S
//   harmony_distributed --selfcheck           # demo + CSV equivalence:
//                                             #   the telemetry streamed by
//                                             #   the socket-served session
//                                             #   must equal in-process
//                                             #   core::run_session for the
//                                             #   same seed
//   harmony_distributed --serve [--port P]    # server only (prints port)
//   harmony_distributed --client HOST PORT --rank R
//                                             # one client rank
//   harmony_distributed --trace-out PREFIX    # any mode: enable tracing;
//                                             #   each process exports
//                                             #   PREFIX.{server,rankR}.json
//                                             #   and the demo parent merges
//                                             #   them into PREFIX.merged.json
//                                             #   (Perfetto-loadable),
//                                             #   verifying every client
//                                             #   fetch span joins a server
//                                             #   round by trace id
//
// Each client reproduces cluster::SimulatedCluster's per-rank noise stream
// (util::Rng(seed).split_streams(N)[rank]) so the distributed run observes
// exactly the measurements the in-process simulator would — which is what
// makes --selfcheck's byte-identical CSV comparison possible.
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/simulated_cluster.h"
#include "core/session.h"
#include "core/session_log.h"
#include "core/strategy_spec.h"
#include "gs2/surface.h"
#include "net/client.h"
#include "net/net_server.h"
#include "obs/trace.h"
#include "obs/trace_merge.h"
#include "util/rng.h"
#include "varmodel/pareto_noise.h"

using namespace protuner;

namespace {

constexpr const char* kSession = "gs2-dist";
constexpr double kRho = 0.2;
constexpr double kAlpha = 1.7;

struct Args {
  bool serve = false;
  bool selfcheck = false;
  bool client = false;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint32_t rank = 0;
  std::size_t clients = 64;
  std::size_t steps = 40;
  std::uint64_t seed = 42;
  std::string trace_out;  ///< export prefix; empty = tracing off
};

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--serve") {
      a.serve = true;
    } else if (arg == "--selfcheck") {
      a.selfcheck = true;
    } else if (arg == "--client") {
      a.client = true;
      a.host = next();
      a.port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--rank") {
      a.rank = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (arg == "--port") {
      a.port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--clients") {
      a.clients = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--steps") {
      a.steps = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--seed") {
      a.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--trace-out") {
      a.trace_out = next();
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return a;
}

// Writes this process's spans as Chrome trace JSON (Perfetto-loadable).
bool export_trace(const std::string& path, std::uint32_t pid) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "trace: cannot write %s\n", path.c_str());
    return false;
  }
  obs::Tracer::global().write_chrome_trace(out, pid);
  return static_cast<bool>(out);
}

std::string client_trace_path(const std::string& prefix, std::uint32_t rank) {
  return prefix + ".rank" + std::to_string(rank) + ".json";
}

// One application rank: fetch a configuration, "run" it on the GS2
// surface under per-rank Pareto noise, report the observed time.
int run_client(const Args& a) {
  if (!a.trace_out.empty()) obs::Tracer::global().configure(true);
  const gs2::Gs2Surface surface;
  const varmodel::ParetoNoise noise(kRho, kAlpha);
  util::Rng rng = util::Rng(a.seed).split_streams(a.clients)[a.rank];
  try {
    net::HarmonyClient client({.host = a.host, .port = a.port});
    client.attach(kSession, a.rank);
    core::Point cfg;
    for (std::size_t k = 0; k < a.steps; ++k) {
      client.fetch_into(a.rank, cfg);
      client.report(a.rank, noise.observe(surface.clean_time(cfg), rng));
    }
    client.detach(a.rank);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "rank %u: %s\n", a.rank, ex.what());
    return 1;
  }
  if (!a.trace_out.empty() &&
      !export_trace(client_trace_path(a.trace_out, a.rank), a.rank + 2)) {
    return 1;
  }
  return 0;
}

// Parent-side trace stitching: load the server's and every client's export,
// verify the cross-process join — every client fetch span must carry a
// trace id that some server-side round span also carries — then merge into
// one Perfetto-loadable timeline, one pid lane per process.
int merge_and_check_traces(const Args& a) {
  std::vector<std::vector<obs::MergedEvent>> inputs;
  const auto load = [&inputs](const std::string& path) {
    std::ifstream in(path);
    std::stringstream text;
    text << in.rdbuf();
    std::vector<obs::MergedEvent> events;
    if (!in || !obs::parse_chrome_trace(text.str(), events)) {
      std::fprintf(stderr, "trace: failed to parse %s\n", path.c_str());
      return false;
    }
    inputs.push_back(std::move(events));
    return true;
  };
  if (!load(a.trace_out + ".server.json")) return 1;
  for (std::size_t r = 0; r < a.clients; ++r) {
    if (!load(client_trace_path(a.trace_out,
                                static_cast<std::uint32_t>(r)))) {
      return 1;
    }
  }

  std::set<std::string> server_rounds;
  for (const obs::MergedEvent& e : inputs[0]) {
    if (!e.trace_id.empty()) server_rounds.insert(e.trace_id);
  }
  std::size_t joined = 0;
  std::size_t orphaned = 0;
  for (std::size_t i = 1; i < inputs.size(); ++i) {
    for (const obs::MergedEvent& e : inputs[i]) {
      if (e.name != "client/fetch" || e.trace_id.empty()) continue;
      if (server_rounds.count(e.trace_id) > 0) {
        ++joined;
      } else {
        ++orphaned;
      }
    }
  }

  const std::vector<obs::MergedEvent> merged = obs::merge_traces(inputs);
  const std::string merged_path = a.trace_out + ".merged.json";
  std::ofstream out(merged_path);
  if (!out) {
    std::fprintf(stderr, "trace: cannot write %s\n", merged_path.c_str());
    return 1;
  }
  obs::write_merged(out, merged);
  std::printf("trace: merged %zu spans from %zu processes into %s "
              "(%zu client fetch spans joined to server rounds)\n",
              merged.size(), inputs.size(), merged_path.c_str(), joined);
  if (joined == 0 || orphaned > 0) {
    std::fprintf(stderr,
                 "trace check FAILED: %zu joined, %zu orphaned client "
                 "fetch spans\n",
                 joined, orphaned);
    return 1;
  }
  return 0;
}

// Hosts the session and runs the event loop until the requested number of
// rounds completes, then drains client goodbyes (bounded grace period).
void serve_session(harmony::SessionManager& manager, net::NetServer& net,
                   const std::shared_ptr<harmony::Server>& server,
                   std::size_t steps) {
  std::chrono::steady_clock::time_point grace_until{};
  net.run_until([&] {
    if (server->rounds_completed() < steps) return false;
    const auto now = std::chrono::steady_clock::now();
    if (grace_until == std::chrono::steady_clock::time_point{}) {
      grace_until = now + std::chrono::seconds(5);
    }
    return net.connections_closed() >= net.connections_accepted() ||
           now >= grace_until;
  });
  (void)manager;
}

void print_summary(const harmony::Server& server, const net::NetServer& net,
                   const core::ParameterSpace& space) {
  const gs2::Gs2Surface surface;
  const core::Point best = server.best_point();
  std::printf("server completed %zu rounds, Total_Time=%.2f, converged=%s\n",
              server.rounds_completed(), server.total_time(),
              server.converged() ? "yes" : "no");
  std::printf("best configuration: ntheta=%.0f negrid=%.0f nodes=%.0f "
              "(clean %.3f s/iter; default %.3f)\n",
              best[gs2::kNtheta], best[gs2::kNegrid], best[gs2::kNodes],
              surface.clean_time(best), surface.clean_time(space.center()));
  std::printf("net: %llu connections, %llu closed, %llu decode errors\n",
              static_cast<unsigned long long>(net.connections_accepted()),
              static_cast<unsigned long long>(net.connections_closed()),
              static_cast<unsigned long long>(net.decode_errors()));
}

// Server-only mode, for running the demo across terminals or machines.
int run_serve(const Args& a) {
  if (!a.trace_out.empty()) obs::Tracer::global().configure(true);
  const auto space = gs2::gs2_space();
  harmony::SessionManager manager;
  harmony::ServerOptions so;
  auto server = manager.create(
      kSession, core::make_strategy("pro:k=2", space, a.seed), a.clients,
      so);
  net::NetServer net(manager, {.port = a.port});
  std::printf("serving session %s for %zu clients on 127.0.0.1:%u\n",
              kSession, a.clients, net.port());
  std::fflush(stdout);
  serve_session(manager, net, server, a.steps);
  print_summary(*server, net, space);
  if (!a.trace_out.empty() &&
      !export_trace(a.trace_out + ".server.json", 1)) {
    return 1;
  }
  return 0;
}

// Forks one client process per rank, exec'ing this same binary in
// --client mode.  The parent stays single-threaded until after every
// fork, and all loop fds are CLOEXEC, so the children start clean.
std::vector<pid_t> spawn_clients(const Args& a, std::uint16_t port) {
  char self[64];
  std::snprintf(self, sizeof(self), "/proc/self/exe");
  std::vector<pid_t> pids;
  pids.reserve(a.clients);
  for (std::size_t r = 0; r < a.clients; ++r) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      std::exit(1);
    }
    if (pid == 0) {
      char port_s[16], rank_s[24], clients_s[24], steps_s[24], seed_s[32];
      std::snprintf(port_s, sizeof(port_s), "%u", port);
      std::snprintf(rank_s, sizeof(rank_s), "%zu", r);
      std::snprintf(clients_s, sizeof(clients_s), "%zu", a.clients);
      std::snprintf(steps_s, sizeof(steps_s), "%zu", a.steps);
      std::snprintf(seed_s, sizeof(seed_s), "%llu",
                    static_cast<unsigned long long>(a.seed));
      std::vector<char*> argv{self,      const_cast<char*>("--client"),
                              const_cast<char*>("127.0.0.1"),
                              port_s,    const_cast<char*>("--rank"),
                              rank_s,    const_cast<char*>("--clients"),
                              clients_s, const_cast<char*>("--steps"),
                              steps_s,   const_cast<char*>("--seed"),
                              seed_s};
      if (!a.trace_out.empty()) {
        argv.push_back(const_cast<char*>("--trace-out"));
        argv.push_back(const_cast<char*>(a.trace_out.c_str()));
      }
      argv.push_back(nullptr);
      ::execv(self, argv.data());
      std::perror("execv");
      ::_exit(127);
    }
    pids.push_back(pid);
  }
  return pids;
}

int reap_clients(const std::vector<pid_t>& pids) {
  int failures = 0;
  for (const pid_t pid : pids) {
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid ||
        !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      ++failures;
    }
  }
  return failures;
}

// The full demo: hosts the session, forks the clients, runs the loop in
// this process.  With --selfcheck the served session streams its CSV
// telemetry into memory and the result is compared byte-for-byte against
// core::run_session driving cluster::SimulatedCluster with the same seed.
int run_demo(const Args& a) {
  if (!a.trace_out.empty()) obs::Tracer::global().configure(true);
  const auto space = gs2::gs2_space();

  std::ostringstream reference_csv;
  if (a.selfcheck) {
    core::CsvSessionLogger logger(reference_csv);
    cluster::SimulatedCluster machine(
        std::make_shared<gs2::Gs2Surface>(),
        std::make_shared<varmodel::ParetoNoise>(kRho, kAlpha),
        {.ranks = a.clients, .seed = a.seed});
    const auto strategy = core::make_strategy("pro:k=2", space, a.seed);
    core::SessionOptions so;
    so.steps = a.steps;
    so.observer = &logger;
    (void)core::run_session(*strategy, machine, so);
  }

  std::ostringstream served_csv;
  core::CsvSessionLogger logger(served_csv);
  harmony::SessionManager manager;
  harmony::ServerOptions so;
  if (a.selfcheck) so.observer = &logger;
  auto server = manager.create(
      kSession, core::make_strategy("pro:k=2", space, a.seed), a.clients,
      so);
  net::NetServer net(manager, {});

  const std::vector<pid_t> pids = spawn_clients(a, net.port());
  serve_session(manager, net, server, a.steps);
  const int failures = reap_clients(pids);

  print_summary(*server, net, space);
  if (failures != 0) {
    std::fprintf(stderr, "%d client process(es) failed\n", failures);
    return 1;
  }
  if (!a.trace_out.empty()) {
    if (!export_trace(a.trace_out + ".server.json", 1)) return 1;
    if (const int rc = merge_and_check_traces(a); rc != 0) return rc;
  }
  if (a.selfcheck) {
    if (served_csv.str() != reference_csv.str() ||
        served_csv.str().empty()) {
      std::fprintf(stderr,
                   "selfcheck FAILED: socket-served telemetry differs from "
                   "in-process run_session (%zu vs %zu bytes)\n",
                   served_csv.str().size(), reference_csv.str().size());
      return 1;
    }
    std::printf("selfcheck OK: %zu bytes of telemetry identical across "
                "in-process and distributed serving\n",
                served_csv.str().size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse_args(argc, argv);
  if (a.client) return run_client(a);
  if (a.serve) return run_serve(a);
  return run_demo(a);
}
