// Serving-soak driver for apps::run_loadgen: N concurrent tuning sessions
// × P ranks of fetch/report traffic with heavy-tailed (Pareto) think
// times, optional deadline ticker and monitor/exporter antagonists.  Use
// it to size the serving tier or to reproduce the BENCH_serving.json
// numbers interactively:
//
//   harmony_loadgen --sessions 8 --ranks 64 --rounds 200 --workers 4
//   harmony_loadgen --sessions 4 --ranks 16 --monitor --tick-hz 1000 \
//       --timeout-ms 50
//
// All results come from the obs:: histograms the servers publish anyway
// (aggregated across session labels), so what this prints is exactly what
// a Prometheus scrape of the process would see.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "apps/harmony_loadgen.h"

using namespace protuner;

namespace {

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
         "  --sessions N     concurrent sessions        (default 4)\n"
         "  --ranks P        ranks per session          (default 16)\n"
         "  --workers W      worker threads per session (default 2)\n"
         "  --rounds R       rounds per session         (default 200)\n"
         "  --dims D         configuration dimensions   (default 4)\n"
         "  --think SEC      clean think time f         (default 50e-6)\n"
         "  --rho RHO        noise throughput rho       (default 0.3)\n"
         "  --alpha A        Pareto tail index          (default 1.7)\n"
         "  --no-noise       deterministic think times\n"
         "  --pacing         busy-wait the drawn think time\n"
         "  --timeout-ms MS  round report deadline      (default off)\n"
         "  --tick-hz HZ     Server::tick() ticker      (default off)\n"
         "  --monitor        stats/metrics exporter antagonist\n"
         "  --scrape-hz HZ   HTTP /metrics scraper antagonist (socket\n"
         "                   modes; default off)\n"
         "  --seed S         rng seed                   (default 42)\n"
         "  --loopback       drive the traffic through the wire protocol\n"
         "                   against an in-process localhost server\n"
         "  --serve PORT     host the sessions on PORT and run the event\n"
         "                   loop; a --remote loadgen drives the traffic\n"
         "  --remote H:P     drive traffic against a --serve loadgen at\n"
         "                   host H port P (same sessions/ranks/rounds)\n";
}

}  // namespace

int main(int argc, char** argv) {
  apps::LoadgenOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (std::strcmp(arg, "--sessions") == 0 && has_value) {
      options.sessions = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--ranks") == 0 && has_value) {
      options.ranks = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--workers") == 0 && has_value) {
      options.workers = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--rounds") == 0 && has_value) {
      options.rounds = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--dims") == 0 && has_value) {
      options.dims = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--think") == 0 && has_value) {
      options.think_mean = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(arg, "--rho") == 0 && has_value) {
      options.rho = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(arg, "--alpha") == 0 && has_value) {
      options.alpha = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(arg, "--no-noise") == 0) {
      options.heavy_tail = false;
    } else if (std::strcmp(arg, "--pacing") == 0) {
      options.think_pacing = true;
    } else if (std::strcmp(arg, "--timeout-ms") == 0 && has_value) {
      options.report_timeout =
          std::chrono::duration<double>(std::strtod(argv[++i], nullptr) /
                                        1000.0);
    } else if (std::strcmp(arg, "--tick-hz") == 0 && has_value) {
      options.tick_hz = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(arg, "--monitor") == 0) {
      options.monitor = true;
    } else if (std::strcmp(arg, "--scrape-hz") == 0 && has_value) {
      options.scrape_hz = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(arg, "--seed") == 0 && has_value) {
      options.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--loopback") == 0) {
      options.mode = apps::LoadgenMode::kLoopback;
    } else if (std::strcmp(arg, "--serve") == 0 && has_value) {
      options.mode = apps::LoadgenMode::kServe;
      options.port =
          static_cast<std::uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(arg, "--remote") == 0 && has_value) {
      options.mode = apps::LoadgenMode::kRemote;
      const std::string hp = argv[++i];
      const std::size_t colon = hp.rfind(':');
      if (colon == std::string::npos) {
        std::cerr << "--remote expects HOST:PORT\n";
        return 2;
      }
      options.remote_host = hp.substr(0, colon);
      options.port = static_cast<std::uint16_t>(
          std::strtoul(hp.c_str() + colon + 1, nullptr, 10));
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  std::cout << "harmony_loadgen: " << options.sessions << " session(s) x "
            << options.ranks << " rank(s), " << options.workers
            << " worker(s)/session, " << options.rounds << " round(s)\n";
  const apps::LoadgenReport report = apps::run_loadgen(options);
  std::cout << report.summary();
  return 0;
}
