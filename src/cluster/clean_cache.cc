#include "cluster/clean_cache.h"

#include <cstring>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.h"

namespace protuner::cluster {

namespace {

/// Replay-vs-recompute tallies, shared by every cache in the process and
/// resolved once: protuner_clean_cache_total{result=replay|recompute}.
struct CacheCounters {
  obs::Counter& replay;
  obs::Counter& recompute;
};

CacheCounters& cache_counters() {
  static CacheCounters c{
      obs::Registry::global().counter(
          "protuner_clean_cache_total",
          "Clean-time batch refreshes by outcome", {{"result", "replay"}}),
      obs::Registry::global().counter("protuner_clean_cache_total", {},
                                      {{"result", "recompute"}})};
  return c;
}

}  // namespace

bool CleanTimeCache::matches(std::span<const core::Point> configs,
                             std::uint64_t version) const {
  if (!valid_ || version != version_ || configs.size() != sizes_.size()) {
    return false;
  }
  std::size_t off = 0;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const core::Point& x = configs[i];
    if (x.size() != sizes_[i]) return false;
    // Bitwise compare: strictly conservative (a -0.0 vs 0.0 mismatch just
    // recomputes) and the per-point hot-path cost is three inline 8-byte
    // compares instead of a bounds-checked double loop.
    if (std::memcmp(x.data(), coords_.data() + off,
                    x.size() * sizeof(double)) != 0) {
      return false;
    }
    off += x.size();
  }
  return true;
}

void CleanTimeCache::store(std::span<const core::Point> configs,
                           std::uint64_t version) {
  sizes_.resize(configs.size());
  std::size_t total = 0;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    sizes_[i] = static_cast<std::uint32_t>(configs[i].size());
    total += configs[i].size();
  }
  coords_.resize(total);
  std::size_t off = 0;
  for (const core::Point& x : configs) {
    for (std::size_t d = 0; d < x.size(); ++d) coords_[off + d] = x[d];
    off += x.size();
  }
  version_ = version;
  valid_ = true;
}

bool CleanTimeCache::refresh(const core::Landscape& landscape,
                             std::span<const core::Point> configs) {
  const std::uint64_t version = landscape.version();
  if (matches(configs, version)) {
    cache_counters().replay.add();
    return true;
  }
  cache_counters().recompute.add();

  clean_.resize(configs.size());
  landscape.clean_times(configs, {clean_.data(), clean_.size()});
  for (std::size_t i = 0; i < clean_.size(); ++i) {
    if (!(clean_[i] > 0.0)) {
      valid_ = false;  // don't replay a batch we rejected
      std::ostringstream ss;
      ss << "CleanTimeCache: landscape '" << landscape.name()
         << "' returned non-positive clean time " << clean_[i]
         << " for batch entry " << i
         << " (clean times must be strictly positive)";
      throw std::domain_error(ss.str());
    }
  }
  store(configs, version);
  return false;
}

}  // namespace protuner::cluster
