// Spec-driven construction of step evaluators (DESIGN.md §13) — the tier
// that turns (landscape, noise) into observed per-rank times.
//
//   auto land = gs2::make_landscape("gs2");
//   auto ev = cluster::make_evaluator("simulated:ranks=16",
//                                     land.landscape,
//                                     varmodel::make_noise("pareto:rho=0.1"),
//                                     /*seed=*/42);
//
// Registered families:
//   simulated — i.i.d. per-rank noise (SimulatedCluster).  If the caller
//               passes a null noise model, rho/alpha keys synthesize a
//               ParetoNoise so "simulated:ranks=16,rho=0.1,alpha=1.7" is a
//               self-contained spec.
//   trace     — the correlated shock process (TraceCluster); noise argument
//               ignored, shock structure set by keys.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "core/evaluator.h"
#include "core/landscape.h"
#include "spec/registry.h"
#include "varmodel/noise_model.h"

namespace protuner::cluster {

using EvaluatorRegistry = spec::Registry<
    std::unique_ptr<core::StepEvaluator>, core::LandscapePtr,
    std::shared_ptr<const varmodel::NoiseModel>, std::uint64_t>;

/// The evaluator family registry.
EvaluatorRegistry& evaluator_registry();

/// Parses `text` and builds the evaluator over `landscape` with `noise`
/// (may be null — see header comment).  `seed` is the default RNG seed
/// unless the spec pins `seed=`.  Throws spec::SpecError on unknown
/// names/keys or out-of-range values.
std::unique_ptr<core::StepEvaluator> make_evaluator(
    std::string_view text, core::LandscapePtr landscape,
    std::shared_ptr<const varmodel::NoiseModel> noise,
    std::uint64_t seed = 42);

}  // namespace protuner::cluster
