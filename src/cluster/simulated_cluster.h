// SPMD cluster simulator: P logical ranks executing one application
// iteration per time step, barrier-synchronised (paper §2).  The observed
// time of rank p is f(v_p) + n_p, with f from a Landscape (e.g. the GS2
// database) and n_p drawn per-rank from a NoiseModel — i.i.d. across ranks,
// matching the independence assumption of the paper's Fig. 10 study
// (footnote 3).
//
// The step is a zero-allocation batch pipeline: clean times come from a
// CleanTimeCache (replayed outright when the assignment repeats, as it does
// every step once the optimizer converges) and noise is drawn through
// NoiseModel::sample_batch, which is stream-equivalent to the scalar
// per-rank loop by contract.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "cluster/clean_cache.h"
#include "core/evaluator.h"
#include "core/landscape.h"
#include "util/rng.h"
#include "varmodel/noise_model.h"

namespace protuner::cluster {

struct ClusterConfig {
  std::size_t ranks = 8;
  std::uint64_t seed = 42;
};

class SimulatedCluster final : public core::StepEvaluator {
 public:
  SimulatedCluster(core::LandscapePtr landscape,
                   std::shared_ptr<const varmodel::NoiseModel> noise,
                   ClusterConfig config);

  void run_step_into(std::span<const core::Point> configs,
                     std::span<double> out) override;

  double rho() const override { return noise_->rho(); }
  double clean_time(const core::Point& x) const override {
    return landscape_->clean_time(x);
  }

  std::size_t ranks() const override { return config_.ranks; }
  std::size_t steps_run() const { return steps_run_; }

  /// Resets the per-rank noise streams (fresh repetition of an experiment).
  void reseed(std::uint64_t seed);

 private:
  core::LandscapePtr landscape_;
  std::shared_ptr<const varmodel::NoiseModel> noise_;
  ClusterConfig config_;
  std::vector<util::Rng> rank_rng_;
  std::size_t steps_run_ = 0;
  // Batched landscape lookup with repeat-assignment replay; holds the
  // per-step clean-time scratch so the steady-state step does not allocate.
  CleanTimeCache clean_cache_;
};

}  // namespace protuner::cluster
