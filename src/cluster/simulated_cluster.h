// SPMD cluster simulator: P logical ranks executing one application
// iteration per time step, barrier-synchronised (paper §2).  The observed
// time of rank p is f(v_p) + n_p, with f from a Landscape (e.g. the GS2
// database) and n_p drawn per-rank from a NoiseModel — i.i.d. across ranks,
// matching the independence assumption of the paper's Fig. 10 study
// (footnote 3).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/evaluator.h"
#include "core/landscape.h"
#include "util/rng.h"
#include "varmodel/noise_model.h"

namespace protuner::cluster {

struct ClusterConfig {
  std::size_t ranks = 8;
  std::uint64_t seed = 42;
};

class SimulatedCluster final : public core::StepEvaluator {
 public:
  SimulatedCluster(core::LandscapePtr landscape,
                   std::shared_ptr<const varmodel::NoiseModel> noise,
                   ClusterConfig config);

  std::vector<double> run_step(
      std::span<const core::Point> configs) override;

  double rho() const override { return noise_->rho(); }
  double clean_time(const core::Point& x) const override {
    return landscape_->clean_time(x);
  }

  std::size_t ranks() const override { return config_.ranks; }
  std::size_t steps_run() const { return steps_run_; }

  /// Resets the per-rank noise streams (fresh repetition of an experiment).
  void reseed(std::uint64_t seed);

 private:
  core::LandscapePtr landscape_;
  std::shared_ptr<const varmodel::NoiseModel> noise_;
  ClusterConfig config_;
  std::vector<util::Rng> rank_rng_;
  std::size_t steps_run_ = 0;
  // Per-step scratch for the batched landscape lookup, hoisted out of
  // run_step so the steady-state step does not allocate for it.
  std::vector<double> clean_scratch_;
};

}  // namespace protuner::cluster
