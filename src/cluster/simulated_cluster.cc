#include "cluster/simulated_cluster.h"

#include <cassert>

namespace protuner::cluster {

SimulatedCluster::SimulatedCluster(
    core::LandscapePtr landscape,
    std::shared_ptr<const varmodel::NoiseModel> noise, ClusterConfig config)
    : landscape_(std::move(landscape)),
      noise_(std::move(noise)),
      config_(config) {
  assert(landscape_ != nullptr);
  assert(noise_ != nullptr);
  assert(config_.ranks >= 1);
  reseed(config_.seed);
}

void SimulatedCluster::reseed(std::uint64_t seed) {
  rank_rng_.clear();
  rank_rng_.reserve(config_.ranks);
  util::Rng base(seed);
  for (std::size_t p = 0; p < config_.ranks; ++p) {
    rank_rng_.push_back(base.split(static_cast<unsigned>(p)));
  }
  steps_run_ = 0;
}

std::vector<double> SimulatedCluster::run_step(
    std::span<const core::Point> configs) {
  assert(!configs.empty());
  assert(configs.size() <= config_.ranks);
  // One batched landscape evaluation for the whole step (one config per
  // rank): substrates like gs2::Database amortize cache probes and dedupe
  // repeated configs across the batch.  Noise is drawn afterwards in rank
  // order, so the streams see exactly the sequence the scalar loop drew.
  clean_scratch_.resize(configs.size());
  landscape_->clean_times(configs, clean_scratch_);
  std::vector<double> times(configs.size());
  for (std::size_t p = 0; p < configs.size(); ++p) {
    const double clean = clean_scratch_[p];
    assert(clean > 0.0);
    times[p] = clean + noise_->sample(clean, rank_rng_[p]);
  }
  ++steps_run_;
  return times;
}

}  // namespace protuner::cluster
