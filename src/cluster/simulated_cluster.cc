#include "cluster/simulated_cluster.h"

#include <cassert>

namespace protuner::cluster {

SimulatedCluster::SimulatedCluster(
    core::LandscapePtr landscape,
    std::shared_ptr<const varmodel::NoiseModel> noise, ClusterConfig config)
    : landscape_(std::move(landscape)),
      noise_(std::move(noise)),
      config_(config) {
  assert(landscape_ != nullptr);
  assert(noise_ != nullptr);
  assert(config_.ranks >= 1);
  reseed(config_.seed);
}

void SimulatedCluster::reseed(std::uint64_t seed) {
  rank_rng_ = util::Rng(seed).split_streams(config_.ranks);
  steps_run_ = 0;
}

void SimulatedCluster::run_step_into(std::span<const core::Point> configs,
                                     std::span<double> out) {
  assert(!configs.empty());
  assert(configs.size() <= config_.ranks);
  assert(out.size() == configs.size());
  // One batched landscape evaluation for the whole step (one config per
  // rank): substrates like gs2::Database amortize cache probes and dedupe
  // repeated configs across the batch, and a repeated assignment (every
  // step, once converged) replays the previous step's clean times without
  // touching the landscape at all.  Positivity is enforced (release mode
  // included) once per recompute inside the cache.
  clean_cache_.refresh(*landscape_, configs);
  const std::span<const double> clean = clean_cache_.clean();
  // Noise is drawn afterwards — one variate per rank, in rank order — so
  // every per-rank stream sees exactly the sequence the scalar loop drew.
  noise_->sample_batch(clean, {rank_rng_.data(), configs.size()}, out);
  for (std::size_t p = 0; p < configs.size(); ++p) {
    out[p] = clean[p] + out[p];
  }
  ++steps_run_;
}

}  // namespace protuner::cluster
