// Trace-driven SPMD cluster: per-rank noise comes from the correlated
// shock process (system-wide disruptions felt by all ranks in the same
// time step) instead of i.i.d. per-rank draws.
//
// The paper's Fig. 10 analysis assumes independence of the variability
// across processors within a time step (footnote 3) while its own Fig. 3
// measurements show strong cross-rank correlation — this evaluator is the
// substrate for testing how much that assumption matters
// (bench/ablation_correlated_noise).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "cluster/clean_cache.h"
#include "core/evaluator.h"
#include "core/landscape.h"
#include "varmodel/shock_model.h"

namespace protuner::cluster {

struct TraceClusterConfig {
  std::size_t ranks = 8;
  std::uint64_t seed = 42;
  varmodel::ShockConfig shocks;  ///< correlation structure of the noise
};

class TraceCluster final : public core::StepEvaluator {
 public:
  TraceCluster(core::LandscapePtr landscape, TraceClusterConfig config);

  void run_step_into(std::span<const core::Point> configs,
                     std::span<double> out) override;

  std::size_t ranks() const override { return config_.ranks; }
  double clean_time(const core::Point& x) const override {
    return landscape_->clean_time(x);
  }
  /// The shock process has no closed-form rho; report the relative mean
  /// load it injects so NTT normalisation stays meaningful.
  double rho() const override { return 0.0; }

  std::size_t steps_run() const { return steps_run_; }

 private:
  core::LandscapePtr landscape_;
  TraceClusterConfig config_;
  varmodel::ShockTraceGenerator shocks_;
  std::size_t steps_run_ = 0;
  // Per-step scratch (unit shock draw) and the batched landscape lookup
  // with repeat-assignment replay — both reused so the steady-state step
  // does not allocate.
  std::vector<double> unit_scratch_;
  CleanTimeCache clean_cache_;
};

}  // namespace protuner::cluster
