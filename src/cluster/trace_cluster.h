// Trace-driven SPMD cluster: per-rank noise comes from the correlated
// shock process (system-wide disruptions felt by all ranks in the same
// time step) instead of i.i.d. per-rank draws.
//
// The paper's Fig. 10 analysis assumes independence of the variability
// across processors within a time step (footnote 3) while its own Fig. 3
// measurements show strong cross-rank correlation — this evaluator is the
// substrate for testing how much that assumption matters
// (bench/ablation_correlated_noise).
#pragma once

#include <cstddef>
#include <memory>

#include "core/evaluator.h"
#include "core/landscape.h"
#include "varmodel/shock_model.h"

namespace protuner::cluster {

struct TraceClusterConfig {
  std::size_t ranks = 8;
  std::uint64_t seed = 42;
  varmodel::ShockConfig shocks;  ///< correlation structure of the noise
};

class TraceCluster final : public core::StepEvaluator {
 public:
  TraceCluster(core::LandscapePtr landscape, TraceClusterConfig config);

  std::vector<double> run_step(
      std::span<const core::Point> configs) override;

  std::size_t ranks() const override { return config_.ranks; }
  double clean_time(const core::Point& x) const override {
    return landscape_->clean_time(x);
  }
  /// The shock process has no closed-form rho; report the relative mean
  /// load it injects so NTT normalisation stays meaningful.
  double rho() const override { return 0.0; }

  std::size_t steps_run() const { return steps_run_; }

 private:
  core::LandscapePtr landscape_;
  TraceClusterConfig config_;
  varmodel::ShockTraceGenerator shocks_;
  std::size_t steps_run_ = 0;
  // Per-step scratch (unit shock draw, batched clean times), hoisted out of
  // run_step so the steady-state step does not allocate for them.
  std::vector<double> unit_scratch_;
  std::vector<double> clean_scratch_;
};

}  // namespace protuner::cluster
