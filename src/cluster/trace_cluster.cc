#include "cluster/trace_cluster.h"

#include <cassert>

namespace protuner::cluster {

TraceCluster::TraceCluster(core::LandscapePtr landscape,
                           TraceClusterConfig config)
    : landscape_(std::move(landscape)),
      config_(config),
      shocks_(config.shocks, config.ranks, config.seed) {
  assert(landscape_ != nullptr);
  assert(config_.ranks >= 1);
}

void TraceCluster::run_step_into(std::span<const core::Point> configs,
                                 std::span<double> out) {
  assert(!configs.empty());
  assert(configs.size() <= config_.ranks);
  assert(out.size() == configs.size());
  // The shock generator draws its *shared* (system-wide) shock once per
  // step, so cross-rank correlation is preserved.  Running it at unit clean
  // time yields each rank's disturbance d_p = unit[p] - 1 (jitter + shared
  // shock + idiosyncratic spike), which is an absolute machine event and is
  // added to each rank's own clean time.  The unit-shock draw lands in
  // member scratch and the clean times replay from the cache when the
  // assignment repeats, so the steady-state step performs no allocation
  // and no landscape call.
  shocks_.step_into(1.0, unit_scratch_);
  clean_cache_.refresh(*landscape_, configs);
  const std::span<const double> clean = clean_cache_.clean();
  for (std::size_t p = 0; p < configs.size(); ++p) {
    out[p] = clean[p] + (unit_scratch_[p] - 1.0);
  }
  ++steps_run_;
}

}  // namespace protuner::cluster
