#include "cluster/trace_cluster.h"

#include <cassert>

namespace protuner::cluster {

TraceCluster::TraceCluster(core::LandscapePtr landscape,
                           TraceClusterConfig config)
    : landscape_(std::move(landscape)),
      config_(config),
      shocks_(config.shocks, config.ranks, config.seed) {
  assert(landscape_ != nullptr);
  assert(config_.ranks >= 1);
}

std::vector<double> TraceCluster::run_step(
    std::span<const core::Point> configs) {
  assert(!configs.empty());
  assert(configs.size() <= config_.ranks);
  // The shock generator draws its *shared* (system-wide) shock once per
  // step, so cross-rank correlation is preserved.  Running it at unit clean
  // time yields each rank's disturbance d_p = unit[p] - 1 (jitter + shared
  // shock + idiosyncratic spike), which is an absolute machine event and is
  // added to each rank's own clean time.  Both the unit-shock draw and the
  // clean times land in member scratch (batched landscape lookup), so the
  // steady-state step only allocates its result vector.
  shocks_.step_into(1.0, unit_scratch_);
  clean_scratch_.resize(configs.size());
  landscape_->clean_times(configs, clean_scratch_);
  std::vector<double> times(configs.size());
  for (std::size_t p = 0; p < configs.size(); ++p) {
    const double clean = clean_scratch_[p];
    assert(clean > 0.0);
    times[p] = clean + (unit_scratch_[p] - 1.0);
  }
  ++steps_run_;
  return times;
}

}  // namespace protuner::cluster
