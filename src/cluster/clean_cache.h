// Per-evaluator cache of the last step's clean times.
//
// A converged (or fixed-assignment) tuning loop proposes the same per-rank
// configuration step after step, and a Landscape is a deterministic map, so
// the batched landscape lookup — the per-step cost that remains after the
// indexed database work — is redundant whenever the assignment repeats.
// CleanTimeCache keeps a flattened (SoA) copy of the last batch plus its
// clean times and replays them when the incoming batch matches, guarded by
// core::Landscape::version() so a mutated substrate (gs2::Database::insert)
// forces a recompute.
//
// The cache also owns the release-mode positivity check: every clean time
// is validated once per recompute (not per step), so a bad landscape can't
// silently feed negative times into an optimized bench build.
//
// One instance per evaluator; not thread-safe (evaluators are single-driver
// by contract).  All buffers are reused across steps: the steady-state
// refresh() performs zero heap allocations on both the hit and the
// same-shape miss path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/landscape.h"

namespace protuner::cluster {

class CleanTimeCache {
 public:
  /// Makes clean() valid for `configs`: replays the cached times when the
  /// batch is identical to the previous call (same configs, same landscape
  /// version), otherwise recomputes through landscape.clean_times() and
  /// validates positivity.  Throws std::domain_error on a non-positive
  /// clean time.  Returns true on a cache hit (no landscape call).
  bool refresh(const core::Landscape& landscape,
               std::span<const core::Point> configs);

  /// Clean times for the batch passed to the last refresh(), same order.
  std::span<const double> clean() const {
    return {clean_.data(), clean_.size()};
  }

  /// Drops the cached batch (e.g. after swapping landscapes).
  void invalidate() { valid_ = false; }

 private:
  bool matches(std::span<const core::Point> configs,
               std::uint64_t version) const;
  void store(std::span<const core::Point> configs, std::uint64_t version);

  // SoA snapshot of the last batch: all coordinates concatenated plus each
  // config's offset — flat buffers so the compare is a linear scan and the
  // steady-state copy reuses capacity instead of per-Point allocations.
  std::vector<double> coords_;
  std::vector<std::uint32_t> sizes_;
  std::vector<double> clean_;
  std::uint64_t version_ = 0;
  bool valid_ = false;
};

}  // namespace protuner::cluster
