#include "cluster/evaluator_spec.h"

#include <utility>

#include "cluster/simulated_cluster.h"
#include "cluster/trace_cluster.h"
#include "varmodel/pareto_noise.h"

namespace protuner::cluster {

namespace {

using Reg = spec::Registrar<EvaluatorRegistry>;

EvaluatorRegistry& mutable_registry() {
  static EvaluatorRegistry registry("evaluator");
  return registry;
}

const Reg reg_simulated{
    mutable_registry(),
    "simulated",
    {"sim", "cluster"},
    "barrier-synchronised SPMD simulator, i.i.d. per-rank noise",
    "simulated:ranks=16,seed=42",
    [](spec::Options& o, core::LandscapePtr landscape,
       std::shared_ptr<const varmodel::NoiseModel> noise,
       std::uint64_t seed) -> std::unique_ptr<core::StepEvaluator> {
      ClusterConfig cfg;
      cfg.ranks = static_cast<std::size_t>(
          o.get_int("ranks", static_cast<long>(cfg.ranks), 1, 65536));
      cfg.seed = o.get_u64("seed", seed);
      if (noise == nullptr) {
        // Self-contained form: synthesize the paper's Pareto model from
        // rho/alpha keys (defaults = the Eq. 17 baseline).
        const double rho = o.get_double("rho", 0.1, 0.0, 0.999);
        const double alpha = o.get_double("alpha", 1.7, 1.0 + 1e-9, 100.0);
        noise = std::make_shared<varmodel::ParetoNoise>(rho, alpha);
      }
      return std::make_unique<SimulatedCluster>(std::move(landscape),
                                                std::move(noise), cfg);
    }};

const Reg reg_trace{
    mutable_registry(),
    "trace",
    {"shock"},
    "correlated shock-trace simulator (system-wide disruption episodes)",
    "trace:ranks=16,jitter=0.01,big_p=0.01,big_alpha=1.3,big_scale=5,"
    "small_p=0.05,small_alpha=1.7,small_scale=0.3,corr=1,seed=42",
    [](spec::Options& o, core::LandscapePtr landscape,
       std::shared_ptr<const varmodel::NoiseModel>,
       std::uint64_t seed) -> std::unique_ptr<core::StepEvaluator> {
      TraceClusterConfig cfg;
      cfg.ranks = static_cast<std::size_t>(
          o.get_int("ranks", static_cast<long>(cfg.ranks), 1, 65536));
      cfg.seed = o.get_u64("seed", seed);
      varmodel::ShockConfig& s = cfg.shocks;
      s.jitter_cv = o.get_double("jitter", s.jitter_cv, 0.0, 10.0);
      s.big_prob = o.get_double("big_p", s.big_prob, 0.0, 1.0);
      s.big_alpha = o.get_double("big_alpha", s.big_alpha, 1.0 + 1e-9, 100.0);
      s.big_scale = o.get_double("big_scale", s.big_scale, 0.0, 1e9);
      s.small_prob = o.get_double("small_p", s.small_prob, 0.0, 1.0);
      s.small_alpha =
          o.get_double("small_alpha", s.small_alpha, 1.0 + 1e-9, 100.0);
      s.small_scale = o.get_double("small_scale", s.small_scale, 0.0, 1e9);
      s.correlation = o.get_double("corr", s.correlation, 0.0, 1.0);
      return std::make_unique<TraceCluster>(std::move(landscape), cfg);
    }};

}  // namespace

EvaluatorRegistry& evaluator_registry() { return mutable_registry(); }

std::unique_ptr<core::StepEvaluator> make_evaluator(
    std::string_view text, core::LandscapePtr landscape,
    std::shared_ptr<const varmodel::NoiseModel> noise, std::uint64_t seed) {
  return evaluator_registry().make(spec::parse(text), std::move(landscape),
                                   std::move(noise), seed);
}

}  // namespace protuner::cluster
