// Self-registering factory registry, one instance per component family
// (strategies, noise models, landscapes, evaluators).  Each component
// registers itself with a name, optional aliases, a doc line and an
// example spec exercising its keys; make() resolves a parsed Spec to the
// factory and enforces the unknown-key contract centrally:
//
//   Registry<TuningStrategyPtr, const ParameterSpace&, uint64_t>&
//   strategy_registry();                                  // family accessor
//
//   const Registrar reg_pro{strategy_registry(), "pro", {}, "doc",
//                           "pro:k=4", [](spec::Options& o, auto& space,
//                                         uint64_t seed) { ... }};
//
// Registrar objects live in the same translation unit as the family's
// accessor and factory entry point, so a static-library link always pulls
// the registrations in with the code that needs them.
#pragma once

#include <algorithm>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "spec/spec.h"

namespace protuner::spec {

template <typename Product, typename... Args>
class Registry {
 public:
  using Factory = std::function<Product(Options&, Args...)>;

  struct Entry {
    std::string name;                  ///< canonical name
    std::vector<std::string> aliases;  ///< accepted alternative names
    std::string doc;                   ///< one-line description
    std::string example;               ///< spec string exercising the keys
    Factory make;
  };

  explicit Registry(std::string family) : family_(std::move(family)) {}

  const std::string& family() const { return family_; }

  void add(Entry entry) {
    if (resolve(entry.name) != nullptr) {
      throw SpecError(family_ + " '" + entry.name + "' registered twice");
    }
    for (const auto& a : entry.aliases) {
      if (resolve(a) != nullptr) {
        throw SpecError(family_ + " alias '" + a + "' registered twice");
      }
    }
    entries_.push_back(std::move(entry));
  }

  /// Constructs from a parsed spec.  Unknown names get a did-you-mean over
  /// every registered name and alias; unknown keys are rejected by
  /// Options::finish() after the factory returns.
  Product make(const Spec& s, Args... args) const {
    const Entry* e = resolve(s.name);
    if (e == nullptr) {
      std::string msg = "unknown " + family_ + " '" + s.name + "'";
      const std::string hint = nearest_key(s.name, all_names());
      if (!hint.empty()) msg += "; did you mean '" + hint + "'?";
      msg += " (known: ";
      const auto names = this->names();
      for (std::size_t i = 0; i < names.size(); ++i) {
        if (i != 0) msg += ", ";
        msg += names[i];
      }
      msg += ")";
      throw SpecError(msg);
    }
    Options opts(family_, s);
    Product p = e->make(opts, std::forward<Args>(args)...);
    opts.finish();
    return p;
  }

  /// Convenience: parse + make.
  Product make(std::string_view text, Args... args) const {
    return make(parse(text), std::forward<Args>(args)...);
  }

  bool contains(std::string_view name) const {
    return resolve(name) != nullptr;
  }

  /// Canonical names, sorted.
  std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& e : entries_) out.push_back(e.name);
    std::sort(out.begin(), out.end());
    return out;
  }

  const std::vector<Entry>& entries() const { return entries_; }

  /// "name — doc (e.g. example)" lines for --help output.
  std::string help() const {
    std::vector<const Entry*> ordered;
    for (const auto& e : entries_) ordered.push_back(&e);
    std::sort(ordered.begin(), ordered.end(),
              [](const Entry* a, const Entry* b) { return a->name < b->name; });
    std::string out;
    for (const Entry* e : ordered) {
      out += "  " + e->name;
      for (const auto& a : e->aliases) out += "|" + a;
      out += " — " + e->doc;
      if (!e->example.empty()) out += "  (e.g. \"" + e->example + "\")";
      out += "\n";
    }
    return out;
  }

 private:
  const Entry* resolve(std::string_view name) const {
    for (const auto& e : entries_) {
      if (e.name == name) return &e;
      for (const auto& a : e.aliases) {
        if (a == name) return &e;
      }
    }
    return nullptr;
  }

  std::vector<std::string> all_names() const {
    std::vector<std::string> out;
    for (const auto& e : entries_) {
      out.push_back(e.name);
      out.insert(out.end(), e.aliases.begin(), e.aliases.end());
    }
    return out;
  }

  std::string family_;
  std::vector<Entry> entries_;
};

/// Registers one component at static-initialisation time.
template <typename RegistryT>
struct Registrar {
  Registrar(RegistryT& registry, std::string name,
            std::vector<std::string> aliases, std::string doc,
            std::string example, typename RegistryT::Factory make) {
    registry.add({std::move(name), std::move(aliases), std::move(doc),
                  std::move(example), std::move(make)});
  }
};

}  // namespace protuner::spec
