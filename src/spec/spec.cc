#include "spec/spec.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>
#include <sstream>

namespace protuner::spec {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool valid_ident(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '.' && c != '-') {
      return false;
    }
  }
  return true;
}

std::size_t levenshtein(std::string_view a, std::string_view b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace

Spec parse(std::string_view text) {
  const std::string_view whole = trim(text);
  if (whole.empty()) throw SpecError("empty spec");

  Spec s;
  std::string_view rest;
  const std::size_t colon = whole.find(':');
  if (colon == std::string_view::npos) {
    s.name = std::string(trim(whole));
  } else {
    s.name = std::string(trim(whole.substr(0, colon)));
    rest = whole.substr(colon + 1);
  }
  if (!valid_ident(s.name)) {
    throw SpecError("spec '" + std::string(whole) +
                    "': component name must be non-empty [A-Za-z0-9_.-]+");
  }
  if (colon != std::string_view::npos && trim(rest).empty()) {
    throw SpecError("spec '" + std::string(whole) +
                    "': dangling ':' with no options");
  }

  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view item =
        comma == std::string_view::npos ? rest : rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (comma != std::string_view::npos && trim(rest).empty()) {
      throw SpecError("spec '" + std::string(whole) +
                      "': empty option (dangling ',')");
    }
    const std::string_view opt = trim(item);
    if (opt.empty()) {
      throw SpecError("spec '" + std::string(whole) +
                      "': empty option (dangling ',')");
    }
    std::string key, value;
    const std::size_t eq = opt.find('=');
    if (eq == std::string_view::npos) {
      key = std::string(trim(opt));
      value = "1";  // bare key is a flag
    } else {
      key = std::string(trim(opt.substr(0, eq)));
      value = std::string(trim(opt.substr(eq + 1)));
      if (value.empty()) {
        throw SpecError("spec '" + std::string(whole) + "': option '" + key +
                        "' has an empty value");
      }
    }
    if (!valid_ident(key)) {
      throw SpecError("spec '" + std::string(whole) +
                      "': option key '" + key +
                      "' must be non-empty [A-Za-z0-9_.-]+");
    }
    for (const auto& [k, v] : s.options) {
      if (k == key) {
        throw SpecError("spec '" + std::string(whole) +
                        "': duplicate option '" + key + "'");
      }
    }
    s.options.emplace_back(std::move(key), std::move(value));
  }
  return s;
}

std::string to_string(const Spec& s) {
  std::string out = s.name;
  for (std::size_t i = 0; i < s.options.size(); ++i) {
    out += i == 0 ? ':' : ',';
    out += s.options[i].first;
    out += '=';
    out += s.options[i].second;
  }
  return out;
}

std::string nearest_key(std::string_view key,
                        const std::vector<std::string>& candidates) {
  std::string best;
  std::size_t best_d = key.size() + 1;
  for (const auto& c : candidates) {
    const std::size_t d = levenshtein(key, c);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  const std::size_t budget = std::max<std::size_t>(1, key.size() / 3);
  if (best_d > budget) return {};
  return best;
}

Options::Options(std::string family, Spec s)
    : family_(std::move(family)), spec_(std::move(s)) {
  opts_.reserve(spec_.options.size());
  for (const auto& [k, v] : spec_.options) {
    opts_.push_back(Opt{k, v, false});
  }
}

Options::Opt* Options::find(std::string_view key) {
  for (auto& o : opts_) {
    if (o.key == key) return &o;
  }
  return nullptr;
}

bool Options::has(std::string_view key) const {
  for (const auto& o : opts_) {
    if (o.key == key) return true;
  }
  return false;
}

const std::string* Options::consume(std::string_view key) {
  known_.emplace_back(key);
  if (Opt* o = find(key)) {
    o->consumed = true;
    return &o->value;
  }
  return nullptr;
}

void Options::alias(std::string_view alias, std::string_view key) {
  known_.emplace_back(alias);
  Opt* from = find(alias);
  if (from == nullptr) return;
  if (find(key) != nullptr) {
    throw SpecError(family_ + " '" + spec_.name + "': options '" +
                    std::string(alias) + "' and '" + std::string(key) +
                    "' are aliases; give only one");
  }
  from->key = std::string(key);
}

void Options::fail_value(std::string_view key, const std::string& value,
                         std::string_view expected) const {
  throw SpecError(family_ + " '" + spec_.name + "': option '" +
                  std::string(key) + "': expected " + std::string(expected) +
                  ", got '" + value + "'");
}

double Options::get_double(std::string_view key, double def) {
  const std::string* v = consume(key);
  if (v == nullptr) return def;
  char* end = nullptr;
  const double x = std::strtod(v->c_str(), &end);
  if (end != v->c_str() + v->size() || v->empty()) {
    fail_value(key, *v, "a number");
  }
  return x;
}

double Options::get_double(std::string_view key, double def, double lo,
                           double hi) {
  const double x = get_double(key, def);
  if (x < lo || x > hi) {
    std::ostringstream msg;
    msg << family_ << " '" << spec_.name << "': option " << key << "=" << x
        << " out of range [" << lo << ", " << hi << "]";
    throw SpecError(msg.str());
  }
  return x;
}

long Options::get_int(std::string_view key, long def) {
  const std::string* v = consume(key);
  if (v == nullptr) return def;
  long x = 0;
  const auto [ptr, ec] =
      std::from_chars(v->data(), v->data() + v->size(), x);
  if (ec != std::errc{} || ptr != v->data() + v->size()) {
    fail_value(key, *v, "an integer");
  }
  return x;
}

long Options::get_int(std::string_view key, long def, long lo, long hi) {
  const long x = get_int(key, def);
  if (x < lo || x > hi) {
    std::ostringstream msg;
    msg << family_ << " '" << spec_.name << "': option " << key << "=" << x
        << " out of range [" << lo << ", " << hi << "]";
    throw SpecError(msg.str());
  }
  return x;
}

std::uint64_t Options::get_u64(std::string_view key, std::uint64_t def) {
  const std::string* v = consume(key);
  if (v == nullptr) return def;
  std::uint64_t x = 0;
  const auto [ptr, ec] =
      std::from_chars(v->data(), v->data() + v->size(), x);
  if (ec != std::errc{} || ptr != v->data() + v->size()) {
    fail_value(key, *v, "an unsigned integer");
  }
  return x;
}

bool Options::get_bool(std::string_view key, bool def) {
  const std::string* v = consume(key);
  if (v == nullptr) return def;
  if (*v == "1" || *v == "true" || *v == "on" || *v == "yes") return true;
  if (*v == "0" || *v == "false" || *v == "off" || *v == "no") return false;
  fail_value(key, *v, "a boolean (1/0/true/false/on/off/yes/no)");
}

std::string Options::get_string(std::string_view key, std::string def) {
  const std::string* v = consume(key);
  return v == nullptr ? def : *v;
}

std::vector<double> Options::get_doubles(std::string_view key) {
  const std::string* v = consume(key);
  std::vector<double> out;
  if (v == nullptr) return out;
  std::string_view rest = *v;
  while (!rest.empty()) {
    const std::size_t slash = rest.find('/');
    const std::string item(
        trim(slash == std::string_view::npos ? rest : rest.substr(0, slash)));
    rest = slash == std::string_view::npos ? std::string_view{}
                                           : rest.substr(slash + 1);
    char* end = nullptr;
    const double x = std::strtod(item.c_str(), &end);
    if (item.empty() || end != item.c_str() + item.size()) {
      fail_value(key, *v, "a '/'-separated list of numbers");
    }
    out.push_back(x);
  }
  if (out.empty()) fail_value(key, *v, "a '/'-separated list of numbers");
  return out;
}

std::string Options::get_choice(std::string_view key, std::string_view def,
                                const std::vector<std::string>& allowed) {
  const std::string choice = get_string(key, std::string(def));
  if (std::find(allowed.begin(), allowed.end(), choice) != allowed.end()) {
    return choice;
  }
  std::string msg = family_ + " '" + spec_.name + "': option '" +
                    std::string(key) + "': '" + choice + "' is not one of {";
  for (std::size_t i = 0; i < allowed.size(); ++i) {
    if (i != 0) msg += ", ";
    msg += allowed[i];
  }
  msg += "}";
  const std::string hint = nearest_key(choice, allowed);
  if (!hint.empty()) msg += "; did you mean '" + hint + "'?";
  throw SpecError(msg);
}

void Options::finish() const {
  for (const auto& o : opts_) {
    if (o.consumed) continue;
    std::vector<std::string> known = known_;
    std::sort(known.begin(), known.end());
    known.erase(std::unique(known.begin(), known.end()), known.end());
    std::string msg =
        family_ + " '" + spec_.name + "': unknown option '" + o.key + "'";
    const std::string hint = nearest_key(o.key, known);
    if (!hint.empty()) msg += "; did you mean '" + hint + "'?";
    msg += " (known: ";
    for (std::size_t i = 0; i < known.size(); ++i) {
      if (i != 0) msg += ", ";
      msg += known[i];
    }
    msg += ")";
    throw SpecError(msg);
  }
}

}  // namespace protuner::spec
