// Declarative component specs: the one-line grammar every pluggable family
// (strategies, noise models, landscapes, evaluators) is constructed from.
//
//   spec      := name [ ":" option ("," option)* ]
//   option    := key [ "=" value ]            (bare key means "=1", a flag)
//   name, key := [A-Za-z0-9_.-]+
//   value     := anything except "," (trimmed; "/" separates vector items)
//
// Examples: "pro:k=4,racing", "spsa:a=0.2,c=0.1", "pareto:rho=0.1,alpha=1.7",
// "gs2", "simulated:ranks=16,rho=0.3".
//
// The design contract is the round trip: parse(to_string(s)) == s for every
// Spec s that parse() can produce — specs are data, not config files, so
// harnesses can log them, diff them, and sweep cross products of them.
// Typed option access goes through Options, which records every key a
// factory asks about and turns leftovers into a did-you-mean diagnostic.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace protuner::spec {

/// Malformed spec text, unknown component name, unknown option key, or an
/// out-of-range / untypeable value.  The message always names the family
/// and component so a sweep over hundreds of cells fails readably.
class SpecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A parsed spec: component name plus ordered key=value options.  Values
/// stay raw strings — typing happens at consumption (Options), so the
/// round trip through to_string() is exact.
struct Spec {
  std::string name;
  std::vector<std::pair<std::string, std::string>> options;

  bool operator==(const Spec&) const = default;
};

/// Parses the grammar above.  Throws SpecError on empty names/keys,
/// malformed charset, duplicate keys, or dangling separators.
Spec parse(std::string_view text);

/// Canonical text form: "name:key=value,key=value" ("name" alone when there
/// are no options).  parse(to_string(s)) == s for any parseable s.
std::string to_string(const Spec& s);

/// Nearest candidate to `key` by edit distance, or "" when nothing is close
/// enough to plausibly be a typo (distance must be <= max(1, len/3)).
std::string nearest_key(std::string_view key,
                        const std::vector<std::string>& candidates);

/// Typed option consumption with unknown-key detection.  A factory asks for
/// each key it understands (get_* records the key as known whether or not
/// it is present); finish() then rejects any option the caller supplied
/// that nobody asked about, with a nearest-key hint:
///
///   spec::Options o("strategy", parse("pro:reflct=2"));
///   o.get_int("reflect", 1);
///   o.finish();  // throws: unknown option 'reflct'; did you mean 'reflect'?
class Options {
 public:
  Options(std::string family, Spec s);

  const std::string& name() const { return spec_.name; }
  const Spec& raw() const { return spec_; }

  bool has(std::string_view key) const;

  /// Typed getters: return the default when the key is absent; throw
  /// SpecError when the value does not parse as the requested type.
  double get_double(std::string_view key, double def);
  long get_int(std::string_view key, long def);
  std::uint64_t get_u64(std::string_view key, std::uint64_t def);
  bool get_bool(std::string_view key, bool def);
  std::string get_string(std::string_view key, std::string def);

  /// Range-checked variants ([lo, hi] inclusive): out-of-range values name
  /// the option, the offending value and the admissible interval.
  double get_double(std::string_view key, double def, double lo, double hi);
  long get_int(std::string_view key, long def, long lo, long hi);

  /// "/"-separated list of doubles (e.g. "at=32/16/8"); empty default list
  /// when absent.
  std::vector<double> get_doubles(std::string_view key);

  /// Declares `alias` to mean `key` (e.g. pareto accepts scale= for rho=).
  /// Must be called before the getter for `key`.
  void alias(std::string_view alias, std::string_view key);

  /// One enum-style choice out of `allowed`; rejects anything else with the
  /// full list in the message.
  std::string get_choice(std::string_view key, std::string_view def,
                         const std::vector<std::string>& allowed);

  /// Throws SpecError if any supplied option was never asked about.
  void finish() const;

 private:
  struct Opt {
    std::string key;
    std::string value;
    bool consumed = false;
  };
  Opt* find(std::string_view key);
  const std::string* consume(std::string_view key);
  [[noreturn]] void fail_value(std::string_view key, const std::string& value,
                               std::string_view expected) const;

  std::string family_;
  Spec spec_;
  std::vector<Opt> opts_;
  std::vector<std::string> known_;
};

}  // namespace protuner::spec
