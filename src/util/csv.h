// Minimal CSV table writer used by the bench harnesses to emit
// figure-reproduction series in a machine-readable form.
#pragma once

#include <initializer_list>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace protuner::util {

/// Streams rows of a CSV table.  Quotes fields containing separators.
/// Usage:
///   CsvWriter csv(std::cout);
///   csv.header({"rho", "samples", "ntt"});
///   csv.row(0.1, 3, 128.5);
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out, char sep = ',') : out_(out), sep_(sep) {}

  void header(std::initializer_list<std::string_view> names) {
    bool first = true;
    for (auto n : names) {
      if (!first) out_ << sep_;
      write_field(std::string(n));
      first = false;
    }
    out_ << '\n';
  }

  /// Writes one row from heterogeneous values (anything streamable).
  template <typename... Ts>
  void row(const Ts&... vals) {
    bool first = true;
    (write_cell(vals, first), ...);
    out_ << '\n';
  }

 private:
  template <typename T>
  void write_cell(const T& v, bool& first) {
    if (!first) out_ << sep_;
    first = false;
    std::ostringstream ss;
    ss << v;
    write_field(ss.str());
  }

  void write_field(const std::string& s) {
    const bool needs_quote = s.find(sep_) != std::string::npos ||
                             s.find('"') != std::string::npos ||
                             s.find('\n') != std::string::npos;
    if (!needs_quote) {
      out_ << s;
      return;
    }
    out_ << '"';
    for (char c : s) {
      if (c == '"') out_ << '"';
      out_ << c;
    }
    out_ << '"';
  }

  std::ostream& out_;
  char sep_;
};

}  // namespace protuner::util
