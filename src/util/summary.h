// Small numeric summaries over spans of doubles: mean, variance, quantiles.
// These back the statistics modules and the bench reporting.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace protuner::util {

/// Arithmetic mean.  Returns 0 for an empty span.
double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator).  Returns 0 for n < 2.
double variance(std::span<const double> xs);

/// Sample standard deviation.
double stddev(std::span<const double> xs);

/// Minimum value; requires a non-empty span.
double min(std::span<const double> xs);

/// Maximum value; requires a non-empty span.
double max(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0,1].  Copies and partially sorts.
/// Requires a non-empty span.
double quantile(std::span<const double> xs, double q);

/// Median (quantile 0.5).
double median(std::span<const double> xs);

/// Running (streaming) mean/variance via Welford's algorithm.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Five-number-plus summary used by the bench harnesses.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Computes the full Summary in one pass over a copy of the data.
Summary summarize(std::span<const double> xs);

}  // namespace protuner::util
