// Thin, portable data-parallel kernels for the measured hot paths: batched
// noise-sampling transforms (uniform draw -> transcendental inverse-CDF) and
// k-NN distance scans over SoA coordinate blocks.
//
// Three backends behind one contract:
//   - AVX2+FMA (x86-64): 4-lane __m256d kernels compiled via per-function
//     target attributes, so the default (baseline -march) build still
//     carries them; selected at runtime with __builtin_cpu_supports.
//   - NEON (aarch64): 2-lane float64x2_t kernels (NEON is baseline there).
//   - Scalar: the same algorithm, one lane at a time, with std::fma so every
//     rounding step matches the fused vector arithmetic bit for bit.
//
// The contract that makes the backends interchangeable: every kernel runs
// the SAME algorithm (same polynomial, same argument reduction, same fused
// multiply-adds) on every backend, so a given input produces bit-identical
// output whether the vector ISA is present, compiled out
// (-DPROTUNER_FORCE_SCALAR_SIMD=ON / PROTUNER_SIMD_FORCE_SCALAR), or
// unsupported by the CPU.  Loop tails use the scalar kernel, which is why
// scalar/vector bit-agreement is load-bearing and unit-tested.
//
// Determinism contract (the reason callers must gate on fast_math_enabled):
// the fast exp/log/pow are polynomial approximations, NOT libm.  They are
// ULP-bounded against libm (see test_simd_math) but not bit-identical to
// it, and the FMA distance reduction contracts the reference's mul-then-add
// rounding.  Callers therefore keep their deterministic scalar path as the
// default and consult fast_math_enabled() — off unless the PROTUNER_FAST_MATH
// environment variable (or a set_fast_math(true) call) opts in — so
// bit-pinned reproductions stay byte-identical.
//
// Domain contract for the transcendentals (asserted, not branched): inputs
// are finite; exp arguments are clamped to [-708, 709] (beyond which the
// result saturates to 0 / +inf monotonically); log/pow bases are strictly
// positive normal doubles.  That covers both call sites: Pareto/Exponential
// bases are 1-u in (0, 1], and distance inputs are normalised coordinates.
#pragma once

#include <bit>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>

#if !defined(PROTUNER_SIMD_FORCE_SCALAR)
#if defined(__x86_64__) || defined(_M_X64)
#define PROTUNER_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define PROTUNER_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

#if defined(PROTUNER_SIMD_X86)
#define PROTUNER_SIMD_TARGET __attribute__((target("avx2,fma")))
#else
#define PROTUNER_SIMD_TARGET
#endif

namespace protuner::util::simd {

/// Runtime fast-math knob.  Initialised once from the PROTUNER_FAST_MATH
/// environment variable (unset/0 -> off, anything else -> on; a build with
/// -DPROTUNER_FAST_MATH_DEFAULT=ON flips the unset default).  Tests and
/// benches may override programmatically; the setter wins over the env.
bool fast_math_enabled();
void set_fast_math(bool on);

/// True when a vector backend is compiled in AND the running CPU supports
/// it.  Purely informational for callers (kernels dispatch internally);
/// used by tests to report which backend the ULP bounds were checked on.
bool vector_isa_available();

/// Human-readable backend name for bench labels: "avx2", "neon", "scalar".
const char* backend_name();

/// SoA block width: coordinates are stored transposed in blocks of kBlock
/// rows (lane-major within an axis), the layout dist2_blocks consumes.  One
/// width for every backend so the layout — and therefore the index memory
/// image — does not depend on the ISA; the 2-lane NEON kernel simply takes
/// two passes per block.
inline constexpr std::size_t kBlock = 4;

// ---------------------------------------------------------------------------
// Scalar reference algorithm.  Every backend must reproduce these bit for
// bit; they are also the tail/fallback implementation.

namespace detail {

// exp via Cody&Waite range reduction (x = n ln2 + r, |r| <= ln2/2) and a
// degree-13 Taylor polynomial in r, all fused.  Max observed error vs libm
// is ~1 ulp on the contract domain (test_simd_math pins <= 4).
inline constexpr double kLog2E = 1.4426950408889634074;
inline constexpr double kLn2Hi = 6.93147180369123816490e-01;
inline constexpr double kLn2Lo = 1.90821492927058770002e-10;
inline constexpr double kExpLo = -708.0;
inline constexpr double kExpHi = 709.0;
// 1/k! for k = 13 .. 2 (Horner order), then the linear/constant terms are
// folded in explicitly.
inline constexpr double kExpC[] = {
    1.6059043836821614599e-10,  // 1/13!
    2.0876756987868098979e-9,   // 1/12!
    2.5052108385441718775e-8,   // 1/11!
    2.7557319223985890653e-7,   // 1/10!
    2.7557319223985892510e-6,   // 1/9!
    2.4801587301587301566e-5,   // 1/8!
    1.9841269841269841253e-4,   // 1/7!
    1.3888888888888889419e-3,   // 1/6!
    8.3333333333333332177e-3,   // 1/5!
    4.1666666666666664354e-2,   // 1/4!
    1.6666666666666665741e-1,   // 1/3!
    5.0e-1,                     // 1/2!
};

inline double fast_exp(double x) {
  assert(std::isfinite(x));
  x = x < kExpLo ? kExpLo : (x > kExpHi ? kExpHi : x);
  const double n = std::nearbyint(x * kLog2E);
  double r = std::fma(n, -kLn2Hi, x);
  r = std::fma(n, -kLn2Lo, r);
  double p = kExpC[0];
  for (int i = 1; i < 12; ++i) p = std::fma(p, r, kExpC[i]);
  // exp(r) = 1 + r + r^2 * P(r): two more fused steps, r(rP + 1) + 1.
  p = std::fma(p, r, 1.0);
  p = std::fma(p, r, 1.0);
  // Scale by 2^n through the exponent field (n in [-1023, 1024) after the
  // clamp, so the biased exponent stays in range).
  const auto bits = static_cast<std::uint64_t>(
                        static_cast<std::int64_t>(n) + 1023)
                    << 52;
  return p * std::bit_cast<double>(bits);
}

// log via exponent extraction, mantissa normalised to [sqrt(1/2), sqrt(2)),
// and the atanh series log(m) = 2t(1 + t^2/3 + t^4/5 + ...) with
// t = (m-1)/(m+1), degree 9 in t^2.  Same fused evaluation order on every
// backend.
inline constexpr double kSqrt2 = 1.41421356237309504880;
inline constexpr double kLogC[] = {
    1.0 / 19.0, 1.0 / 17.0, 1.0 / 15.0, 1.0 / 13.0, 1.0 / 11.0,
    1.0 / 9.0,  1.0 / 7.0,  1.0 / 5.0,  1.0 / 3.0,
};

inline double fast_log(double x) {
  assert(x > 0.0 && std::isfinite(x));
  assert(std::bit_cast<std::uint64_t>(x) >= (1ULL << 52));  // normal
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
  double e = static_cast<double>(
      static_cast<std::int64_t>(bits >> 52) - 1023);
  double m = std::bit_cast<double>(
      (bits & 0x000FFFFFFFFFFFFFULL) | 0x3FF0000000000000ULL);
  if (m >= kSqrt2) {  // fold [sqrt(2), 2) down: m ends in [sqrt(1/2), sqrt(2))
    m *= 0.5;
    e += 1.0;
  }
  const double t = (m - 1.0) / (m + 1.0);
  const double s = t * t;
  double p = kLogC[0];
  for (int i = 1; i < 9; ++i) p = std::fma(p, s, kLogC[i]);
  const double poly = std::fma(2.0 * t, s * p, 2.0 * t);  // 2t + 2t*s*P(s)
  // e*ln2 + log(m), accumulated hi/lo so the exponent term does not swamp
  // the mantissa term's low bits.
  return std::fma(e, kLn2Hi, std::fma(e, kLn2Lo, poly));
}

inline double fast_pow(double base, double e) {
  return fast_exp(e * fast_log(base));
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Batch kernels (runtime-dispatched; out may alias none of the inputs).

/// out[i] = fast_exp(x[i]).
void exp_batch(const double* x, double* out, std::size_t n);

/// out[i] = fast_log(x[i]).
void log_batch(const double* x, double* out, std::size_t n);

/// out[i] = (k * scale[i]) * pow(1 - u[i], e) — the Pareto inverse-CDF
/// transform shape: u is a uniform draw in [0, 1), k the hoisted Eq. 17
/// constant, scale the per-rank clean time.
void pow1m_scale_batch(const double* u, double e, double k,
                       const double* scale, double* out, std::size_t n);

/// out[i] = (k * scale[i]) * -log(1 - u[i]) — the exponential transform
/// shape (the deterministic path uses log1p; this is the documented
/// fast-math deviation, ULP-bounded in test_simd_math).
void neglog1m_scale_batch(const double* u, double k, const double* scale,
                          double* out, std::size_t n);

/// Fused squared-distance reduction over SoA coordinate blocks:
/// for each row r in [block_begin*kBlock, block_end*kBlock),
///   out[r - block_begin*kBlock] =
///       sum_d (fma(diff, diff, acc) with diff = (x[d] - p_r[d]) * inv_range[d])
/// where the block layout stores soa[(b*dim + d)*kBlock + lane] for row
/// b*kBlock + lane.  Rows are padded to a whole block by the index builder;
/// padded lanes produce garbage distances the caller must ignore.
void dist2_blocks(const double* soa, std::size_t dim, std::size_t block_begin,
                  std::size_t block_end, const double* x,
                  const double* inv_range, double* out);

}  // namespace protuner::util::simd
