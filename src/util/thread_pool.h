// Fixed-size worker pool over std::jthread — the execution substrate for the
// parallel repetition runner (exp::run_repetitions) and any other
// embarrassingly parallel work in the library.
//
// Design points:
//   * submit() returns a std::future, so exceptions thrown by a task are
//     captured and rethrown at the caller's .get() — tasks never terminate
//     the process.
//   * Destruction is graceful: the queue is closed to new work, every task
//     already queued still runs, and the jthreads are joined.  Work handed
//     to the pool is therefore never silently dropped.
//   * No task stealing or priorities: repetition workloads are uniform, a
//     single mutex-protected deque is contention-free next to the seconds of
//     simulation each task performs.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace protuner::util {

class ThreadPool {
 public:
  /// Starts `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (never less than one worker).
  explicit ThreadPool(unsigned threads = 0);

  /// Closes the queue, runs every task still queued, joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues `fn` and returns a future for its result.  An exception
  /// escaping `fn` is delivered through the future.  Throws
  /// std::runtime_error if called after shutdown began.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn&>> {
    using R = std::invoke_result_t<Fn&>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    enqueue([task]() { (*task)(); });
    return result;
  }

 private:
  void enqueue(std::function<void()> job);
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool closed_ = false;
  std::vector<std::jthread> workers_;
};

}  // namespace protuner::util
