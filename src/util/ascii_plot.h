// ASCII rendering of line charts and histograms.  The bench binaries use
// these to show the *shape* of each reproduced figure directly in the
// terminal, alongside the CSV data.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace protuner::util {

struct PlotOptions {
  int width = 72;       ///< plot area width in characters
  int height = 18;      ///< plot area height in characters
  bool log_y = false;   ///< log10-scale the y axis
  bool log_x = false;   ///< log10-scale the x axis
  std::string title;
};

/// One named series for a line plot.
struct Series {
  std::string name;
  std::vector<double> xs;
  std::vector<double> ys;
};

/// Renders one or more series as an ASCII scatter/line chart.  Each series
/// gets its own glyph; a legend is appended.  NaN/inf points are skipped, as
/// are non-positive points on log-scaled axes.
std::string line_plot(std::span<const Series> series, const PlotOptions& opts);

/// Convenience overload for a single series.
std::string line_plot(std::string_view name, std::span<const double> xs,
                      std::span<const double> ys, const PlotOptions& opts);

/// Renders a horizontal-bar histogram: one row per bin with a bar whose
/// length is proportional to the bin count (or its log when log_y is set).
std::string histogram_plot(std::span<const double> bin_edges,
                           std::span<const double> counts,
                           const PlotOptions& opts);

}  // namespace protuner::util
