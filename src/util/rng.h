// Deterministic random-number generation for reproducible experiments.
//
// Every randomized component in this library takes an explicit seed (or an
// Rng&) so that benches and tests are exactly reproducible.  The generator is
// xoshiro256++, seeded through SplitMix64 as its authors recommend, with
// jump() support so independent parallel streams can be split from one seed
// without statistical overlap.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace protuner::util {

/// SplitMix64: tiny generator used to expand a 64-bit seed into the 256-bit
/// xoshiro state.  Also usable standalone for cheap hashing of seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ — fast, high-quality 64-bit generator.
/// Satisfies std::uniform_random_bit_generator, so it can drive the
/// <random> distributions as well as the protuner::stats distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state from a 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).  Uses the top 53 bits.
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bulk generation: out[i] = uniform(), in order.  Bit-identical to
  /// calling uniform() out.size() times (the batch sampling paths rely on
  /// this equivalence); one tight loop lets the compiler keep the 256-bit
  /// state in registers instead of spilling it per call.
  void fill_uniform(std::span<double> out);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive.  Uses Lemire-style rejection to
  /// avoid modulo bias.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Marsaglia polar method (no cached spare: branchless
  /// reproducibility across call sites matters more than the 2x speedup).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Standard exponential (rate 1).
  double exponential();

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Jump ahead 2^128 steps: produces a generator whose future output stream
  /// is disjoint from this one for any realistic run length.  Used to derive
  /// independent per-rank / per-repetition streams from one seed.
  void jump();

  /// Convenience: returns a copy that has been jumped `n + 1` times past this
  /// generator, leaving *this untouched.  Costs n + 1 jumps: when deriving
  /// many consecutive streams, prefer split_streams(), which is linear in
  /// the stream count instead of quadratic.
  Rng split(std::uint64_t n = 0) const;

  /// `count` independent streams derived from this generator:
  /// out[i] == split(i) for every i, built with one jump per stream.
  /// *this is untouched.
  std::vector<Rng> split_streams(std::size_t count) const;

  /// Exact state comparison — two equal generators produce identical
  /// future streams.  Used by the batch-vs-scalar equivalence tests to
  /// assert that a batched path consumed exactly the same variates.
  friend bool operator==(const Rng&, const Rng&) = default;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace protuner::util
