// Environment-variable helpers for the bench harnesses: repetition counts
// default to laptop-friendly values and can be raised to the paper's full
// scale via REPRO_REPS etc.
#pragma once

#include <cstdlib>
#include <string>

namespace protuner::util {

/// Reads an integer environment variable, returning `fallback` when unset or
/// unparsable.
inline long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

/// Reads a double environment variable, returning `fallback` when unset or
/// unparsable.
inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

}  // namespace protuner::util
