#include "util/thread_pool.h"

#include <algorithm>
#include <stdexcept>

namespace protuner::util {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
  // std::jthread joins on destruction; workers drain the queue first.
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    const std::scoped_lock lock(mutex_);
    if (closed_) {
      throw std::runtime_error("ThreadPool::submit after shutdown");
    }
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closed and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();  // packaged_task: exceptions land in the caller's future
  }
}

}  // namespace protuner::util
