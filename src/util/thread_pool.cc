#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "obs/metrics.h"

namespace protuner::util {

namespace {

/// Pool telemetry, shared process-wide (pools are fungible workers) and
/// resolved once on first use.
struct PoolMetrics {
  obs::Counter& tasks;
  obs::Gauge& queue_depth;
  obs::Histogram& task_ns;
};

PoolMetrics& pool_metrics() {
  static PoolMetrics m{
      obs::Registry::global().counter("protuner_pool_tasks_total",
                                      "Tasks executed by thread pools"),
      obs::Registry::global().gauge("protuner_pool_queue_depth",
                                    "Tasks queued and not yet started"),
      obs::Registry::global().histogram("protuner_pool_task_ns",
                                        "Task execution latency (ns)")};
  return m;
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
  // std::jthread joins on destruction; workers drain the queue first.
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    const std::scoped_lock lock(mutex_);
    if (closed_) {
      throw std::runtime_error("ThreadPool::submit after shutdown");
    }
    queue_.push_back(std::move(job));
  }
  pool_metrics().queue_depth.add();
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closed and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    PoolMetrics& m = pool_metrics();
    m.queue_depth.sub();
    const auto start = std::chrono::steady_clock::now();
    job();  // packaged_task: exceptions land in the caller's future
    const auto end = std::chrono::steady_clock::now();
    m.tasks.add();
    m.task_ns.record(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count()));
  }
}

}  // namespace protuner::util
