#include "util/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace protuner::util {
namespace {

constexpr std::string_view kGlyphs = "*o+x#@%&";

struct Range {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();

  void include(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  bool valid() const { return lo <= hi; }
  double span() const { return hi > lo ? hi - lo : 1.0; }
};

double transform(double v, bool log_scale) {
  return log_scale ? std::log10(v) : v;
}

bool usable(double v, bool log_scale) {
  if (!std::isfinite(v)) return false;
  return !log_scale || v > 0.0;
}

std::string format_tick(double v) {
  char buf[32];
  if (v != 0.0 && (std::fabs(v) >= 1e5 || std::fabs(v) < 1e-3)) {
    std::snprintf(buf, sizeof buf, "%9.2e", v);
  } else {
    std::snprintf(buf, sizeof buf, "%9.3f", v);
  }
  return buf;
}

}  // namespace

std::string line_plot(std::span<const Series> series, const PlotOptions& opts) {
  const int w = std::max(opts.width, 16);
  const int h = std::max(opts.height, 6);

  Range xr, yr;
  for (const auto& s : series) {
    const std::size_t n = std::min(s.xs.size(), s.ys.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (usable(s.xs[i], opts.log_x) && usable(s.ys[i], opts.log_y)) {
        xr.include(transform(s.xs[i], opts.log_x));
        yr.include(transform(s.ys[i], opts.log_y));
      }
    }
  }

  std::ostringstream out;
  if (!opts.title.empty()) out << opts.title << '\n';
  if (!xr.valid() || !yr.valid()) {
    out << "(no plottable points)\n";
    return out.str();
  }

  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % kGlyphs.size()];
    const auto& s = series[si];
    const std::size_t n = std::min(s.xs.size(), s.ys.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (!usable(s.xs[i], opts.log_x) || !usable(s.ys[i], opts.log_y)) continue;
      const double tx = transform(s.xs[i], opts.log_x);
      const double ty = transform(s.ys[i], opts.log_y);
      const int col = static_cast<int>(
          std::lround((tx - xr.lo) / xr.span() * (w - 1)));
      const int row = static_cast<int>(
          std::lround((ty - yr.lo) / yr.span() * (h - 1)));
      const auto r = static_cast<std::size_t>(h - 1 - row);
      grid[r][static_cast<std::size_t>(col)] = glyph;
    }
  }

  const auto ylab = [&](int row) {
    const double frac =
        static_cast<double>(h - 1 - row) / static_cast<double>(h - 1);
    double v = yr.lo + frac * yr.span();
    if (opts.log_y) v = std::pow(10.0, v);
    return format_tick(v);
  };

  for (int r = 0; r < h; ++r) {
    const bool labelled = r == 0 || r == h - 1 || r == h / 2;
    out << (labelled ? ylab(r) : std::string(9, ' ')) << " |"
        << grid[static_cast<std::size_t>(r)] << '\n';
  }
  out << std::string(10, ' ') << '+' << std::string(static_cast<std::size_t>(w), '-') << '\n';
  double xlo = xr.lo, xhi = xr.hi;
  if (opts.log_x) {
    xlo = std::pow(10.0, xlo);
    xhi = std::pow(10.0, xhi);
  }
  out << std::string(10, ' ') << format_tick(xlo)
      << std::string(static_cast<std::size_t>(std::max(1, w - 18)), ' ')
      << format_tick(xhi) << '\n';

  out << "legend:";
  for (std::size_t si = 0; si < series.size(); ++si) {
    out << "  [" << kGlyphs[si % kGlyphs.size()] << "] " << series[si].name;
  }
  out << '\n';
  return out.str();
}

std::string line_plot(std::string_view name, std::span<const double> xs,
                      std::span<const double> ys, const PlotOptions& opts) {
  Series s{std::string(name),
           std::vector<double>(xs.begin(), xs.end()),
           std::vector<double>(ys.begin(), ys.end())};
  return line_plot(std::span<const Series>(&s, 1), opts);
}

std::string histogram_plot(std::span<const double> bin_edges,
                           std::span<const double> counts,
                           const PlotOptions& opts) {
  std::ostringstream out;
  if (!opts.title.empty()) out << opts.title << '\n';
  if (counts.empty() || bin_edges.size() != counts.size() + 1) {
    out << "(empty histogram)\n";
    return out.str();
  }
  const int w = std::max(opts.width, 16);
  double peak = 0.0;
  for (double c : counts) {
    const double v = opts.log_y ? std::log10(1.0 + c) : c;
    peak = std::max(peak, v);
  }
  if (peak <= 0.0) peak = 1.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double v = opts.log_y ? std::log10(1.0 + counts[i]) : counts[i];
    const int len = static_cast<int>(std::lround(v / peak * w));
    out << format_tick(bin_edges[i]) << ".." << format_tick(bin_edges[i + 1])
        << " |" << std::string(static_cast<std::size_t>(std::max(0, len)), '#');
    char buf[32];
    std::snprintf(buf, sizeof buf, " %.6g", counts[i]);
    out << buf << '\n';
  }
  return out.str();
}

}  // namespace protuner::util
