#include "util/simd.h"

#include <atomic>
#include <cstdlib>

namespace protuner::util::simd {

// ---------------------------------------------------------------------------
// Fast-math knob.  -1 = uninitialised; resolved from the environment on
// first query, overridable by set_fast_math (tests/benches toggle it
// mid-process, hence an atomic rather than a plain static const).

namespace {

std::atomic<int> g_fast_math{-1};

int fast_math_from_env() {
#if defined(PROTUNER_FAST_MATH_DEFAULT)
  constexpr int kDefault = 1;
#else
  constexpr int kDefault = 0;
#endif
  const char* v = std::getenv("PROTUNER_FAST_MATH");
  if (v == nullptr || *v == '\0') return kDefault;
  return (v[0] == '0' && v[1] == '\0') ? 0 : 1;
}

}  // namespace

bool fast_math_enabled() {
  int s = g_fast_math.load(std::memory_order_relaxed);
  if (s < 0) {
    s = fast_math_from_env();
    // Racing first queries resolve the same env value; last store wins and
    // all agree.
    g_fast_math.store(s, std::memory_order_relaxed);
  }
  return s != 0;
}

void set_fast_math(bool on) {
  g_fast_math.store(on ? 1 : 0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Backend selection.

#if defined(PROTUNER_SIMD_X86)

bool vector_isa_available() {
  static const bool ok =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return ok;
}

const char* backend_name() { return vector_isa_available() ? "avx2" : "scalar"; }

#elif defined(PROTUNER_SIMD_NEON)

bool vector_isa_available() { return true; }
const char* backend_name() { return "neon"; }

#else

bool vector_isa_available() { return false; }
const char* backend_name() { return "scalar"; }

#endif

// ---------------------------------------------------------------------------
// AVX2 backend: 4-lane mirrors of detail::fast_exp / detail::fast_log.
// Compiled with per-function target attributes so this TU builds at the
// baseline -march; never executed unless __builtin_cpu_supports passes.

#if defined(PROTUNER_SIMD_X86)

namespace {

PROTUNER_SIMD_TARGET inline __m256d exp4(__m256d x) {
  using namespace detail;
  x = _mm256_min_pd(_mm256_max_pd(x, _mm256_set1_pd(kExpLo)),
                    _mm256_set1_pd(kExpHi));
  const __m256d n = _mm256_round_pd(
      _mm256_mul_pd(x, _mm256_set1_pd(kLog2E)),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256d r = _mm256_fmadd_pd(n, _mm256_set1_pd(-kLn2Hi), x);
  r = _mm256_fmadd_pd(n, _mm256_set1_pd(-kLn2Lo), r);
  __m256d p = _mm256_set1_pd(kExpC[0]);
  for (int i = 1; i < 12; ++i) {
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(kExpC[i]));
  }
  const __m256d one = _mm256_set1_pd(1.0);
  p = _mm256_fmadd_pd(p, r, one);
  p = _mm256_fmadd_pd(p, r, one);
  // 2^n via the exponent field: (int64(n) + 1023) << 52.  n is integral and
  // within [-708*log2e - 1, 709*log2e + 1], so the int32 conversion is safe.
  const __m128i n32 = _mm256_cvtpd_epi32(n);
  const __m256i n64 = _mm256_cvtepi32_epi64(n32);
  const __m256i bits = _mm256_slli_epi64(
      _mm256_add_epi64(n64, _mm256_set1_epi64x(1023)), 52);
  return _mm256_mul_pd(p, _mm256_castsi256_pd(bits));
}

PROTUNER_SIMD_TARGET inline __m256d log4(__m256d x) {
  using namespace detail;
  const __m256i bits = _mm256_castpd_si256(x);
  // Unbiased exponent as a double: (bits >> 52) - 1023.  The shifted value
  // fits in 32 bits, so go through the int32 lane-compression converter.
  const __m256i expo64 = _mm256_sub_epi64(
      _mm256_srli_epi64(bits, 52), _mm256_set1_epi64x(1023));
  // Pack the four int64 lanes (each in [-1022, 1023]) into int32s: the low
  // 32 bits of each lane, gathered by the shuffle, then cvt to double.
  const __m256i lo32 = _mm256_shuffle_epi32(expo64, _MM_SHUFFLE(2, 0, 2, 0));
  const __m128i packed = _mm_castps_si128(_mm_shuffle_ps(
      _mm_castsi128_ps(_mm256_castsi256_si128(lo32)),
      _mm_castsi128_ps(_mm256_extracti128_si256(lo32, 1)),
      _MM_SHUFFLE(1, 0, 1, 0)));
  __m256d e = _mm256_cvtepi32_pd(packed);
  __m256d m = _mm256_castsi256_pd(_mm256_or_si256(
      _mm256_and_si256(bits, _mm256_set1_epi64x(0x000FFFFFFFFFFFFFLL)),
      _mm256_set1_epi64x(0x3FF0000000000000LL)));
  // Fold m >= sqrt(2) down by one octave, exactly as the scalar kernel.
  const __m256d fold = _mm256_cmp_pd(m, _mm256_set1_pd(kSqrt2), _CMP_GE_OQ);
  m = _mm256_blendv_pd(m, _mm256_mul_pd(m, _mm256_set1_pd(0.5)), fold);
  e = _mm256_blendv_pd(e, _mm256_add_pd(e, _mm256_set1_pd(1.0)), fold);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d t =
      _mm256_div_pd(_mm256_sub_pd(m, one), _mm256_add_pd(m, one));
  const __m256d s = _mm256_mul_pd(t, t);
  __m256d p = _mm256_set1_pd(kLogC[0]);
  for (int i = 1; i < 9; ++i) {
    p = _mm256_fmadd_pd(p, s, _mm256_set1_pd(kLogC[i]));
  }
  const __m256d t2 = _mm256_add_pd(t, t);
  const __m256d poly = _mm256_fmadd_pd(t2, _mm256_mul_pd(s, p), t2);
  return _mm256_fmadd_pd(
      e, _mm256_set1_pd(kLn2Hi),
      _mm256_fmadd_pd(e, _mm256_set1_pd(kLn2Lo), poly));
}

PROTUNER_SIMD_TARGET void exp_batch_vec(const double* x, double* out,
                                        std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, exp4(_mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) out[i] = detail::fast_exp(x[i]);
}

PROTUNER_SIMD_TARGET void log_batch_vec(const double* x, double* out,
                                        std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, log4(_mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) out[i] = detail::fast_log(x[i]);
}

PROTUNER_SIMD_TARGET void pow1m_scale_batch_vec(const double* u, double e,
                                                double k, const double* scale,
                                                double* out, std::size_t n) {
  const __m256d ve = _mm256_set1_pd(e);
  const __m256d vk = _mm256_set1_pd(k);
  const __m256d one = _mm256_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d base = _mm256_sub_pd(one, _mm256_loadu_pd(u + i));
    const __m256d p = exp4(_mm256_mul_pd(ve, log4(base)));
    const __m256d ks = _mm256_mul_pd(vk, _mm256_loadu_pd(scale + i));
    _mm256_storeu_pd(out + i, _mm256_mul_pd(ks, p));
  }
  for (; i < n; ++i) {
    out[i] = (k * scale[i]) * detail::fast_pow(1.0 - u[i], e);
  }
}

PROTUNER_SIMD_TARGET void neglog1m_scale_batch_vec(const double* u, double k,
                                                   const double* scale,
                                                   double* out,
                                                   std::size_t n) {
  const __m256d vk = _mm256_set1_pd(k);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d neg = _mm256_set1_pd(-0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d base = _mm256_sub_pd(one, _mm256_loadu_pd(u + i));
    const __m256d l = _mm256_xor_pd(log4(base), neg);  // -log(1-u)
    const __m256d ks = _mm256_mul_pd(vk, _mm256_loadu_pd(scale + i));
    _mm256_storeu_pd(out + i, _mm256_mul_pd(ks, l));
  }
  for (; i < n; ++i) {
    out[i] = (k * scale[i]) * -detail::fast_log(1.0 - u[i]);
  }
}

PROTUNER_SIMD_TARGET void dist2_blocks_vec(const double* soa, std::size_t dim,
                                           std::size_t block_begin,
                                           std::size_t block_end,
                                           const double* x,
                                           const double* inv_range,
                                           double* out) {
  static_assert(kBlock == 4);
  for (std::size_t b = block_begin; b < block_end; ++b) {
    const double* block = soa + b * dim * kBlock;
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t d = 0; d < dim; ++d) {
      const __m256d p = _mm256_loadu_pd(block + d * kBlock);
      const __m256d diff = _mm256_mul_pd(
          _mm256_sub_pd(_mm256_set1_pd(x[d]), p),
          _mm256_set1_pd(inv_range[d]));
      acc = _mm256_fmadd_pd(diff, diff, acc);
    }
    _mm256_storeu_pd(out + (b - block_begin) * kBlock, acc);
  }
}

}  // namespace

#endif  // PROTUNER_SIMD_X86

// ---------------------------------------------------------------------------
// NEON backend: 2-lane mirrors, two passes per kBlock.  NEON is baseline on
// aarch64, so no target attributes or cpuid checks are needed.

#if defined(PROTUNER_SIMD_NEON)

namespace {

inline float64x2_t exp2l(float64x2_t x) {
  using namespace detail;
  x = vminq_f64(vmaxq_f64(x, vdupq_n_f64(kExpLo)), vdupq_n_f64(kExpHi));
  const float64x2_t n = vrndnq_f64(vmulq_f64(x, vdupq_n_f64(kLog2E)));
  // vfmaq_f64(a, b, c) = a + b*c, fused.
  float64x2_t r = vfmaq_f64(x, n, vdupq_n_f64(-kLn2Hi));
  r = vfmaq_f64(r, n, vdupq_n_f64(-kLn2Lo));
  float64x2_t p = vdupq_n_f64(kExpC[0]);
  for (int i = 1; i < 12; ++i) p = vfmaq_f64(vdupq_n_f64(kExpC[i]), p, r);
  const float64x2_t one = vdupq_n_f64(1.0);
  p = vfmaq_f64(one, p, r);
  p = vfmaq_f64(one, p, r);
  const int64x2_t n64 = vcvtq_s64_f64(n);
  const int64x2_t bits = vshlq_n_s64(vaddq_s64(n64, vdupq_n_s64(1023)), 52);
  return vmulq_f64(p, vreinterpretq_f64_s64(bits));
}

inline float64x2_t log2l(float64x2_t x) {
  using namespace detail;
  const uint64x2_t bits = vreinterpretq_u64_f64(x);
  const int64x2_t expo = vsubq_s64(
      vreinterpretq_s64_u64(vshrq_n_u64(bits, 52)), vdupq_n_s64(1023));
  float64x2_t e = vcvtq_f64_s64(expo);
  float64x2_t m = vreinterpretq_f64_u64(vorrq_u64(
      vandq_u64(bits, vdupq_n_u64(0x000FFFFFFFFFFFFFULL)),
      vdupq_n_u64(0x3FF0000000000000ULL)));
  const uint64x2_t fold = vcgeq_f64(m, vdupq_n_f64(kSqrt2));
  m = vbslq_f64(fold, vmulq_f64(m, vdupq_n_f64(0.5)), m);
  e = vbslq_f64(fold, vaddq_f64(e, vdupq_n_f64(1.0)), e);
  const float64x2_t one = vdupq_n_f64(1.0);
  const float64x2_t t = vdivq_f64(vsubq_f64(m, one), vaddq_f64(m, one));
  const float64x2_t s = vmulq_f64(t, t);
  float64x2_t p = vdupq_n_f64(kLogC[0]);
  for (int i = 1; i < 9; ++i) p = vfmaq_f64(vdupq_n_f64(kLogC[i]), p, s);
  const float64x2_t t2 = vaddq_f64(t, t);
  const float64x2_t poly = vfmaq_f64(t2, t2, vmulq_f64(s, p));
  return vfmaq_f64(vfmaq_f64(poly, e, vdupq_n_f64(kLn2Lo)), e,
                   vdupq_n_f64(kLn2Hi));
}

void exp_batch_vec(const double* x, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) vst1q_f64(out + i, exp2l(vld1q_f64(x + i)));
  for (; i < n; ++i) out[i] = detail::fast_exp(x[i]);
}

void log_batch_vec(const double* x, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) vst1q_f64(out + i, log2l(vld1q_f64(x + i)));
  for (; i < n; ++i) out[i] = detail::fast_log(x[i]);
}

void pow1m_scale_batch_vec(const double* u, double e, double k,
                           const double* scale, double* out, std::size_t n) {
  const float64x2_t ve = vdupq_n_f64(e);
  const float64x2_t vk = vdupq_n_f64(k);
  const float64x2_t one = vdupq_n_f64(1.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t base = vsubq_f64(one, vld1q_f64(u + i));
    const float64x2_t p = exp2l(vmulq_f64(ve, log2l(base)));
    const float64x2_t ks = vmulq_f64(vk, vld1q_f64(scale + i));
    vst1q_f64(out + i, vmulq_f64(ks, p));
  }
  for (; i < n; ++i) {
    out[i] = (k * scale[i]) * detail::fast_pow(1.0 - u[i], e);
  }
}

void neglog1m_scale_batch_vec(const double* u, double k, const double* scale,
                              double* out, std::size_t n) {
  const float64x2_t vk = vdupq_n_f64(k);
  const float64x2_t one = vdupq_n_f64(1.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t base = vsubq_f64(one, vld1q_f64(u + i));
    const float64x2_t l = vnegq_f64(log2l(base));
    const float64x2_t ks = vmulq_f64(vk, vld1q_f64(scale + i));
    vst1q_f64(out + i, vmulq_f64(ks, l));
  }
  for (; i < n; ++i) {
    out[i] = (k * scale[i]) * -detail::fast_log(1.0 - u[i]);
  }
}

void dist2_blocks_vec(const double* soa, std::size_t dim,
                      std::size_t block_begin, std::size_t block_end,
                      const double* x, const double* inv_range, double* out) {
  static_assert(kBlock == 4);
  for (std::size_t b = block_begin; b < block_end; ++b) {
    const double* block = soa + b * dim * kBlock;
    float64x2_t acc0 = vdupq_n_f64(0.0);
    float64x2_t acc1 = vdupq_n_f64(0.0);
    for (std::size_t d = 0; d < dim; ++d) {
      const float64x2_t xd = vdupq_n_f64(x[d]);
      const float64x2_t ir = vdupq_n_f64(inv_range[d]);
      const float64x2_t p0 = vld1q_f64(block + d * kBlock);
      const float64x2_t p1 = vld1q_f64(block + d * kBlock + 2);
      const float64x2_t d0 = vmulq_f64(vsubq_f64(xd, p0), ir);
      const float64x2_t d1 = vmulq_f64(vsubq_f64(xd, p1), ir);
      acc0 = vfmaq_f64(acc0, d0, d0);
      acc1 = vfmaq_f64(acc1, d1, d1);
    }
    vst1q_f64(out + (b - block_begin) * kBlock, acc0);
    vst1q_f64(out + (b - block_begin) * kBlock + 2, acc1);
  }
}

}  // namespace

#endif  // PROTUNER_SIMD_NEON

// ---------------------------------------------------------------------------
// Public batch entry points: dispatch to the vector backend when present,
// else run the scalar algorithm (bit-identical by contract).

#if defined(PROTUNER_SIMD_X86)
#define PROTUNER_SIMD_DISPATCH(call) \
  if (vector_isa_available()) {      \
    call;                            \
    return;                          \
  }
#elif defined(PROTUNER_SIMD_NEON)
#define PROTUNER_SIMD_DISPATCH(call) \
  {                                  \
    call;                            \
    return;                          \
  }
#else
#define PROTUNER_SIMD_DISPATCH(call)
#endif

void exp_batch(const double* x, double* out, std::size_t n) {
  PROTUNER_SIMD_DISPATCH(exp_batch_vec(x, out, n));
  for (std::size_t i = 0; i < n; ++i) out[i] = detail::fast_exp(x[i]);
}

void log_batch(const double* x, double* out, std::size_t n) {
  PROTUNER_SIMD_DISPATCH(log_batch_vec(x, out, n));
  for (std::size_t i = 0; i < n; ++i) out[i] = detail::fast_log(x[i]);
}

void pow1m_scale_batch(const double* u, double e, double k,
                       const double* scale, double* out, std::size_t n) {
  PROTUNER_SIMD_DISPATCH(pow1m_scale_batch_vec(u, e, k, scale, out, n));
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = (k * scale[i]) * detail::fast_pow(1.0 - u[i], e);
  }
}

void neglog1m_scale_batch(const double* u, double k, const double* scale,
                          double* out, std::size_t n) {
  PROTUNER_SIMD_DISPATCH(neglog1m_scale_batch_vec(u, k, scale, out, n));
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = (k * scale[i]) * -detail::fast_log(1.0 - u[i]);
  }
}

void dist2_blocks(const double* soa, std::size_t dim, std::size_t block_begin,
                  std::size_t block_end, const double* x,
                  const double* inv_range, double* out) {
  PROTUNER_SIMD_DISPATCH(
      dist2_blocks_vec(soa, dim, block_begin, block_end, x, inv_range, out));
  for (std::size_t b = block_begin; b < block_end; ++b) {
    const double* block = soa + b * dim * kBlock;
    for (std::size_t lane = 0; lane < kBlock; ++lane) {
      double acc = 0.0;
      for (std::size_t d = 0; d < dim; ++d) {
        const double diff =
            (x[d] - block[d * kBlock + lane]) * inv_range[d];
        acc = std::fma(diff, diff, acc);
      }
      out[(b - block_begin) * kBlock + lane] = acc;
    }
  }
}

#undef PROTUNER_SIMD_DISPATCH

}  // namespace protuner::util::simd
