#include "util/summary.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace protuner::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min(std::span<const double> xs) {
  assert(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  assert(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::span<const double> xs, double q) {
  assert(!xs.empty());
  assert(q >= 0.0 && q <= 1.0);
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double RunningStats::stddev() const { return std::sqrt(variance()); }

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  s.min = v.front();
  s.max = v.back();
  s.mean = mean(v);
  s.stddev = protuner::util::stddev(v);
  const auto at = [&](double q) {
    const double pos = q * static_cast<double>(v.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return v[lo] + frac * (v[hi] - v[lo]);
  };
  s.p25 = at(0.25);
  s.median = at(0.5);
  s.p75 = at(0.75);
  s.p95 = at(0.95);
  s.p99 = at(0.99);
  return s;
}

}  // namespace protuner::util
