#include "util/rng.h"

#include <cmath>

namespace protuner::util {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling: draw until the value falls in the largest multiple
  // of `range` below 2^64, which removes modulo bias.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t v = (*this)();
  while (v >= limit) v = (*this)();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::normal() {
  // Marsaglia polar method; discard the second variate for call-site
  // reproducibility (a cached spare would make output depend on call order).
  for (;;) {
    const double u = uniform(-1.0, 1.0);
    const double v = uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

void Rng::fill_uniform(std::span<double> out) {
  // Same draw as uniform(), hoisted into one loop: the state array stays in
  // registers for the whole block instead of round-tripping through memory
  // per call.  Must stay bit-identical to repeated uniform() calls.
  std::array<std::uint64_t, 4> s = state_;
  for (double& v : out) {
    const std::uint64_t r = rotl(s[0] + s[3], 23) + s[0];
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    v = static_cast<double>(r >> 11) * 0x1.0p-53;
  }
  state_ = s;
}

double Rng::exponential() {
  // -log(1 - U) with U in [0,1) keeps the argument strictly positive.
  return -std::log1p(-uniform());
}

void Rng::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^= state_[static_cast<std::size_t>(i)];
      }
      (*this)();
    }
  }
  state_ = acc;
}

Rng Rng::split(std::uint64_t n) const {
  Rng out = *this;
  for (std::uint64_t i = 0; i <= n; ++i) out.jump();
  return out;
}

std::vector<Rng> Rng::split_streams(std::size_t count) const {
  std::vector<Rng> out;
  out.reserve(count);
  Rng stream = *this;
  for (std::size_t i = 0; i < count; ++i) {
    stream.jump();  // stream now equals split(i)
    out.push_back(stream);
  }
  return out;
}

}  // namespace protuner::util
