#include "util/rng.h"

#include <cmath>

namespace protuner::util {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling: draw until the value falls in the largest multiple
  // of `range` below 2^64, which removes modulo bias.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t v = (*this)();
  while (v >= limit) v = (*this)();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::normal() {
  // Marsaglia polar method; discard the second variate for call-site
  // reproducibility (a cached spare would make output depend on call order).
  for (;;) {
    const double u = uniform(-1.0, 1.0);
    const double v = uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double Rng::exponential() {
  // -log(1 - U) with U in [0,1) keeps the argument strictly positive.
  return -std::log1p(-uniform());
}

void Rng::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^= state_[static_cast<std::size_t>(i)];
      }
      (*this)();
    }
  }
  state_ = acc;
}

Rng Rng::split(unsigned n) const {
  Rng out = *this;
  for (unsigned i = 0; i <= n; ++i) out.jump();
  return out;
}

}  // namespace protuner::util
