// Body codec for Stats frames (wire v2, DESIGN.md §15): a serialized
// obs::RegistrySnapshot, the client half of the fleet telemetry push.
//
// Layout (little-endian throughout):
//
//   u32 instrument_count
//   per instrument:
//     u8  kind          0 counter, 1 gauge, 2 histogram
//     u16 name_len      + name bytes
//     u16 help_len      + help bytes
//     u8  label_count   per label: u16 key_len + key, u16 value_len + value
//     payload:
//       counter / gauge    f64 value
//       histogram          u32 nonzero_buckets,
//                          nonzero × (u16 bucket_index, u64 count),
//                          f64 max
//
// Senders ship *deltas* (counters and histogram buckets since the last
// push; max and gauges as current levels) so the receiving
// obs::Registry::merge_from accumulates correctly across repeated pushes.
// The decoder is defensive — it faces network bytes — and rejects any
// truncation or overrun without throwing.  It also rejects instrument
// names and label keys outside the Prometheus identifier charset (they
// would be rendered verbatim into the /metrics exposition) and histogram
// entries whose bucket indices are not strictly increasing (a duplicate
// would desynchronize count from the bucket sum).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "obs/metrics.h"

namespace protuner::net {

/// Appends the encoded snapshot to `out` (does not clear it).
void encode_stats(std::vector<std::uint8_t>& out,
                  const obs::RegistrySnapshot& snap);

/// Parses a Stats body into `snap` (replacing its contents).  Returns false
/// on any malformed input; never throws.
bool decode_stats(std::span<const std::uint8_t> body,
                  obs::RegistrySnapshot& snap);

/// The delta between two snapshots of the same registry: counters and
/// histogram buckets subtract (`prev` may lack instruments that appeared
/// since — they pass through whole); gauges and histogram max carry the
/// current level.  Instruments whose delta is all-zero are omitted, so a
/// quiet period encodes to an empty snapshot.
obs::RegistrySnapshot stats_delta(const obs::RegistrySnapshot& current,
                                  const obs::RegistrySnapshot& prev);

}  // namespace protuner::net
