#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

#include "harmony/server.h"  // harmony::ProtocolError
#include "net/stats_codec.h"
#include "obs/fast_clock.h"
#include "obs/trace.h"

namespace protuner::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw NetError(std::string(what) + ": " + std::strerror(errno));
}

void set_timeout(int fd, int opt, std::chrono::milliseconds ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms.count() % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, opt, &tv, sizeof(tv));
}

}  // namespace

HarmonyClient::HarmonyClient(ClientOptions options)
    : options_(std::move(options)) {
  in_.resize(4096);
  connect_with_retry();
}

HarmonyClient::~HarmonyClient() { close(); }

void HarmonyClient::connect_with_retry() {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    throw NetError("bad host address: " + options_.host);
  }
  const auto give_up =
      std::chrono::steady_clock::now() + options_.connect_timeout;
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw_errno("socket");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      set_timeout(fd, SO_RCVTIMEO, options_.io_timeout);
      set_timeout(fd, SO_SNDTIMEO, options_.io_timeout);
      fd_ = fd;
      return;
    }
    const int err = errno;
    ::close(fd);
    if (std::chrono::steady_clock::now() >= give_up) {
      errno = err;
      throw_errno("connect");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

void HarmonyClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void HarmonyClient::send_buffer() {
  if (fd_ < 0) throw NetError("client is not connected");
  std::size_t off = 0;
  while (off < out_.size()) {
    const ssize_t n =
        ::send(fd_, out_.data() + off, out_.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      close();
      throw NetError("send timed out");
    }
    const int err = errno;
    close();
    errno = err;
    throw_errno("send");
  }
}

const Frame& HarmonyClient::recv_frame() {
  if (fd_ < 0) throw NetError("client is not connected");
  if (consumed_ > 0) {
    std::memmove(in_.data(), in_.data() + consumed_, in_used_ - consumed_);
    in_used_ -= consumed_;
    consumed_ = 0;
  }
  for (;;) {
    const Decoded d =
        decode_frame({in_.data(), in_used_}, options_.max_frame);
    if (d.status == DecodeStatus::kFrame) {
      consumed_ = d.consumed;
      frame_ = d.frame;
      return frame_;
    }
    if (d.status == DecodeStatus::kBadFrame) {
      close();
      throw NetError("server sent a malformed frame: " +
                     std::string(d.error));
    }
    if (in_used_ == in_.size()) {
      const std::size_t cap = 4 + options_.max_frame;
      if (in_.size() >= cap) {
        close();
        throw NetError("server frame exceeds the size cap");
      }
      in_.resize(std::min(cap, in_.size() * 2));
    }
    const ssize_t n =
        ::recv(fd_, in_.data() + in_used_, in_.size() - in_used_, 0);
    if (n == 0) {
      close();
      throw NetError("server closed the connection");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        close();
        throw NetError("receive timed out");
      }
      const int err = errno;
      close();
      errno = err;
      throw_errno("recv");
    }
    in_used_ += static_cast<std::size_t>(n);
  }
}

const Frame& HarmonyClient::expect_reply(MsgType type) {
  const Frame& f = recv_frame();
  if (f.type == MsgType::kError) {
    std::string message(reinterpret_cast<const char*>(f.body.data()),
                        f.body.size());
    close();  // the server closes its side after an Error frame
    throw harmony::ProtocolError(message);
  }
  if (f.type != type) {
    close();
    throw NetError("unexpected reply type from server");
  }
  return f;
}

std::uint32_t HarmonyClient::attach(const std::string& session,
                                    std::uint32_t rank) {
  session_ = session;
  out_.clear();
  append_simple(out_, MsgType::kAttach, rank, session,
                options_.wire_version);
  send_buffer();
  const Frame& f = expect_reply(MsgType::kAttach);
  std::uint32_t clients = 0;
  if (!parse_u32_body(f.body, clients)) {
    close();
    throw NetError("malformed attach ack");
  }
  if (options_.metrics != nullptr) {
    const obs::Labels labels{{"session", session_}};
    fetch_ns_ = &options_.metrics->histogram(
        "protuner_net_client_fetch_ns",
        "Client-observed fetch call latency over the wire (ns)", labels);
    report_ns_ = &options_.metrics->histogram(
        "protuner_net_client_report_ns",
        "Client-observed report call latency over the wire (ns)", labels);
  }
  return clients;
}

void HarmonyClient::fetch_into(std::uint32_t rank, core::Point& out) {
  obs::ScopedSpan span(obs::Tracer::global(), "client/fetch");
  const std::uint64_t entered = obs::LatencyClock::now();
  out_.clear();
  append_simple(out_, MsgType::kFetch, rank, {}, options_.wire_version);
  send_buffer();
  const Frame& f = expect_reply(MsgType::kFetch);
  if (!parse_config_body(f.body, out)) {
    close();
    throw NetError("malformed configuration reply");
  }
  if (f.has_trace) {
    // The reply trailer names the server round that satisfied this fetch;
    // adopting it stitches this span into the cross-process trace.
    last_trace_ = f.trace;
    has_last_trace_ = true;
    if (span.active()) {
      span.set_context({f.trace.trace_id, f.trace.span_id});
    }
  }
  if (fetch_ns_ != nullptr) {
    fetch_ns_->record(
        obs::LatencyClock::to_ns(obs::LatencyClock::now() - entered));
  }
}

void HarmonyClient::report(std::uint32_t rank, double time) {
  obs::ScopedSpan span(obs::Tracer::global(), "client/report");
  const std::uint64_t entered = obs::LatencyClock::now();
  const bool trace = has_last_trace_ && options_.wire_version >= 2;
  if (trace && span.active()) {
    span.set_context({last_trace_.trace_id, last_trace_.span_id});
  }
  out_.clear();
  append_report(out_, rank, {}, time, options_.wire_version,
                trace ? &last_trace_ : nullptr);
  send_buffer();
  expect_reply(MsgType::kReport);
  if (report_ns_ != nullptr) {
    report_ns_->record(
        obs::LatencyClock::to_ns(obs::LatencyClock::now() - entered));
  }
  if (options_.stats_every_rounds > 0 &&
      ++reports_since_push_ >= options_.stats_every_rounds) {
    reports_since_push_ = 0;
    push_stats(rank);
  }
}

void HarmonyClient::push_stats(std::uint32_t rank) {
  if (fd_ < 0 || options_.wire_version < 2 || options_.metrics == nullptr) {
    return;
  }
  obs::RegistrySnapshot current = options_.metrics->snapshot();
  const obs::RegistrySnapshot delta = stats_delta(current, last_pushed_);
  // An empty delta still advances the baseline: the comparison work is
  // done, and the wire stays quiet during idle periods.
  if (!delta.instruments.empty()) {
    stats_body_.clear();
    encode_stats(stats_body_, delta);
    out_.clear();
    append_frame(out_, MsgType::kStats, rank, {}, stats_body_,
                 options_.wire_version);
    send_buffer();
    expect_reply(MsgType::kStats);
  }
  last_pushed_ = std::move(current);
}

void HarmonyClient::detach(std::uint32_t rank) {
  if (fd_ < 0) return;
  try {
    push_stats(rank);
  } catch (const NetError&) {
    // Telemetry must never turn a clean goodbye into a failure.
  }
  if (fd_ < 0) return;  // the push may have torn the connection down
  out_.clear();
  append_simple(out_, MsgType::kDetach, rank, {}, options_.wire_version);
  send_buffer();
  try {
    expect_reply(MsgType::kDetach);
  } catch (const NetError&) {
    // The server may close right after (or while) acking; a torn-down
    // socket during goodbye is not an error worth surfacing.
  }
  close();
}

}  // namespace protuner::net
