#include "net/frame.h"

#include <limits>

namespace protuner::net {

namespace {

Decoded bad(std::string_view why) {
  Decoded d;
  d.status = DecodeStatus::kBadFrame;
  d.error = why;
  return d;
}

}  // namespace

Decoded decode_frame(std::span<const std::uint8_t> buf,
                     std::size_t max_frame) {
  Decoded d;
  if (buf.size() < 4) return d;  // kNeedMore
  const std::uint32_t length = load_u32(buf.data());
  if (length < 8) return bad("frame length below the 8-byte header minimum");
  if (length > max_frame) return bad("frame exceeds the size cap");
  if (buf.size() < 4 + static_cast<std::size_t>(length)) return d;
  const std::uint8_t version = buf[4];
  if (version != kWireVersion) return bad("unsupported wire version");
  const std::uint8_t type = buf[5];
  if (type < static_cast<std::uint8_t>(MsgType::kAttach) ||
      type > static_cast<std::uint8_t>(MsgType::kError)) {
    return bad("unknown message type");
  }
  const std::uint16_t session_len = load_u16(buf.data() + 6);
  if (8u + session_len > length) {
    return bad("session name overruns the frame");
  }
  d.status = DecodeStatus::kFrame;
  d.consumed = 4 + static_cast<std::size_t>(length);
  d.frame.type = static_cast<MsgType>(type);
  d.frame.version = version;
  d.frame.rank = load_u32(buf.data() + 8);
  d.frame.session = std::string_view(
      reinterpret_cast<const char*>(buf.data() + kFixedHeaderBytes),
      session_len);
  d.frame.body = buf.subspan(kFixedHeaderBytes + session_len,
                             length - 8 - session_len);
  return d;
}

void append_header(std::vector<std::uint8_t>& out, MsgType type,
                   std::uint32_t rank, std::string_view session,
                   std::size_t body_len) {
  const std::size_t length = 8 + session.size() + body_len;
  append_u32(out, static_cast<std::uint32_t>(length));
  out.push_back(kWireVersion);
  out.push_back(static_cast<std::uint8_t>(type));
  append_u16(out, static_cast<std::uint16_t>(session.size()));
  append_u32(out, rank);
  out.insert(out.end(), session.begin(), session.end());
}

void append_frame(std::vector<std::uint8_t>& out, MsgType type,
                  std::uint32_t rank, std::string_view session,
                  std::span<const std::uint8_t> body) {
  append_header(out, type, rank, session, body.size());
  out.insert(out.end(), body.begin(), body.end());
}

void append_simple(std::vector<std::uint8_t>& out, MsgType type,
                   std::uint32_t rank, std::string_view session) {
  append_header(out, type, rank, session, 0);
}

void append_attach_ack(std::vector<std::uint8_t>& out, std::uint32_t rank,
                       std::uint32_t clients) {
  append_header(out, MsgType::kAttach, rank, {}, 4);
  append_u32(out, clients);
}

void append_report(std::vector<std::uint8_t>& out, std::uint32_t rank,
                   std::string_view session, double time) {
  append_header(out, MsgType::kReport, rank, session, 8);
  append_f64(out, time);
}

void append_config(std::vector<std::uint8_t>& out, std::uint32_t rank,
                   const core::Point& config) {
  append_header(out, MsgType::kFetch, rank, {}, 4 + 8 * config.size());
  append_u32(out, static_cast<std::uint32_t>(config.size()));
  for (const double v : config) append_f64(out, v);
}

void append_error(std::vector<std::uint8_t>& out, std::uint32_t rank,
                  std::string_view message) {
  append_header(out, MsgType::kError, rank, {}, message.size());
  out.insert(out.end(), message.begin(), message.end());
}

bool parse_u32_body(std::span<const std::uint8_t> body, std::uint32_t& out) {
  if (body.size() != 4) return false;
  out = load_u32(body.data());
  return true;
}

bool parse_f64_body(std::span<const std::uint8_t> body, double& out) {
  if (body.size() != 8) return false;
  out = load_f64(body.data());
  return true;
}

bool parse_config_body(std::span<const std::uint8_t> body, core::Point& out) {
  if (body.size() < 4) return false;
  const std::uint32_t n = load_u32(body.data());
  if (body.size() != 4 + 8 * static_cast<std::size_t>(n)) return false;
  out.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    out[i] = load_f64(body.data() + 4 + 8 * static_cast<std::size_t>(i));
  }
  return true;
}

}  // namespace protuner::net
