#include "net/frame.h"

#include <limits>

namespace protuner::net {

namespace {

Decoded bad(std::string_view why) {
  Decoded d;
  d.status = DecodeStatus::kBadFrame;
  d.error = why;
  return d;
}

}  // namespace

Decoded decode_frame(std::span<const std::uint8_t> buf,
                     std::size_t max_frame) {
  Decoded d;
  if (buf.size() < 4) return d;  // kNeedMore
  const std::uint32_t length = load_u32(buf.data());
  if (length < 8) return bad("frame length below the 8-byte header minimum");
  if (length > max_frame) return bad("frame exceeds the size cap");
  if (buf.size() < 4 + static_cast<std::size_t>(length)) return d;
  const std::uint8_t version = buf[4];
  if (version < kMinWireVersion || version > kWireVersion) {
    return bad("unsupported wire version");
  }
  const std::uint8_t raw_type = buf[5];
  // v1: types 1..5, no trailer flag.  v2: bit 7 announces the trailer and
  // the low bits must name a type (1..6).
  const bool has_trace = version >= 2 && (raw_type & kTraceFlag) != 0;
  const std::uint8_t type =
      version >= 2 ? static_cast<std::uint8_t>(raw_type & ~kTraceFlag)
                   : raw_type;
  const std::uint8_t max_type = version >= 2
                                    ? static_cast<std::uint8_t>(MsgType::kStats)
                                    : static_cast<std::uint8_t>(MsgType::kError);
  if (type < static_cast<std::uint8_t>(MsgType::kAttach) || type > max_type) {
    return bad("unknown message type");
  }
  const std::uint16_t session_len = load_u16(buf.data() + 6);
  const std::size_t trailer = has_trace ? kTraceTrailerBytes : 0;
  if (8u + session_len + trailer > length) {
    return bad("session name overruns the frame");
  }
  d.status = DecodeStatus::kFrame;
  d.consumed = 4 + static_cast<std::size_t>(length);
  d.frame.type = static_cast<MsgType>(type);
  d.frame.version = version;
  d.frame.rank = load_u32(buf.data() + 8);
  d.frame.session = std::string_view(
      reinterpret_cast<const char*>(buf.data() + kFixedHeaderBytes),
      session_len);
  d.frame.body = buf.subspan(kFixedHeaderBytes + session_len,
                             length - 8 - session_len - trailer);
  d.frame.has_trace = has_trace;
  if (has_trace) {
    const std::uint8_t* t = buf.data() + 4 + length - kTraceTrailerBytes;
    d.frame.trace.trace_id = load_u64(t);
    d.frame.trace.span_id = load_u64(t + 8);
  }
  return d;
}

void append_header(std::vector<std::uint8_t>& out, MsgType type,
                   std::uint32_t rank, std::string_view session,
                   std::size_t body_len, std::uint8_t version,
                   const WireTrace* trace) {
  if (version < 2) trace = nullptr;  // v1 peers cannot parse the trailer
  const std::size_t trailer = trace != nullptr ? kTraceTrailerBytes : 0;
  const std::size_t length = 8 + session.size() + body_len + trailer;
  append_u32(out, static_cast<std::uint32_t>(length));
  out.push_back(version);
  std::uint8_t raw_type = static_cast<std::uint8_t>(type);
  if (trace != nullptr) raw_type |= kTraceFlag;
  out.push_back(raw_type);
  append_u16(out, static_cast<std::uint16_t>(session.size()));
  append_u32(out, rank);
  out.insert(out.end(), session.begin(), session.end());
}

void append_trace_trailer(std::vector<std::uint8_t>& out,
                          const WireTrace& trace) {
  append_u64(out, trace.trace_id);
  append_u64(out, trace.span_id);
}

void append_frame(std::vector<std::uint8_t>& out, MsgType type,
                  std::uint32_t rank, std::string_view session,
                  std::span<const std::uint8_t> body, std::uint8_t version,
                  const WireTrace* trace) {
  append_header(out, type, rank, session, body.size(), version, trace);
  out.insert(out.end(), body.begin(), body.end());
  if (trace != nullptr && version >= 2) append_trace_trailer(out, *trace);
}

void append_simple(std::vector<std::uint8_t>& out, MsgType type,
                   std::uint32_t rank, std::string_view session,
                   std::uint8_t version, const WireTrace* trace) {
  append_header(out, type, rank, session, 0, version, trace);
  if (trace != nullptr && version >= 2) append_trace_trailer(out, *trace);
}

void append_attach_ack(std::vector<std::uint8_t>& out, std::uint32_t rank,
                       std::uint32_t clients, std::uint8_t version) {
  append_header(out, MsgType::kAttach, rank, {}, 4, version);
  append_u32(out, clients);
}

void append_report(std::vector<std::uint8_t>& out, std::uint32_t rank,
                   std::string_view session, double time,
                   std::uint8_t version, const WireTrace* trace) {
  append_header(out, MsgType::kReport, rank, session, 8, version, trace);
  append_f64(out, time);
  if (trace != nullptr && version >= 2) append_trace_trailer(out, *trace);
}

void append_config(std::vector<std::uint8_t>& out, std::uint32_t rank,
                   const core::Point& config, std::uint8_t version,
                   const WireTrace* trace) {
  append_header(out, MsgType::kFetch, rank, {}, 4 + 8 * config.size(),
                version, trace);
  append_u32(out, static_cast<std::uint32_t>(config.size()));
  for (const double v : config) append_f64(out, v);
  if (trace != nullptr && version >= 2) append_trace_trailer(out, *trace);
}

void append_error(std::vector<std::uint8_t>& out, std::uint32_t rank,
                  std::string_view message, std::uint8_t version) {
  append_header(out, MsgType::kError, rank, {}, message.size(), version);
  out.insert(out.end(), message.begin(), message.end());
}

bool parse_u32_body(std::span<const std::uint8_t> body, std::uint32_t& out) {
  if (body.size() != 4) return false;
  out = load_u32(body.data());
  return true;
}

bool parse_f64_body(std::span<const std::uint8_t> body, double& out) {
  if (body.size() != 8) return false;
  out = load_f64(body.data());
  return true;
}

bool parse_config_body(std::span<const std::uint8_t> body, core::Point& out) {
  if (body.size() < 4) return false;
  const std::uint32_t n = load_u32(body.data());
  if (body.size() != 4 + 8 * static_cast<std::size_t>(n)) return false;
  out.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    out[i] = load_f64(body.data() + 4 + 8 * static_cast<std::size_t>(i));
  }
  return true;
}

}  // namespace protuner::net
