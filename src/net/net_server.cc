#include "net/net_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <iostream>
#include <sstream>

#include "net/stats_codec.h"
#include "obs/fast_clock.h"
#include "obs/trace.h"

namespace protuner::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw NetError(std::string(what) + ": " + std::strerror(errno));
}

double wire_ns(std::uint64_t entered) {
  return obs::LatencyClock::to_ns(obs::LatencyClock::now() - entered);
}

obs::Registry& resolve_registry(const NetServerOptions& options) {
  return options.metrics != nullptr ? *options.metrics
                                    : obs::Registry::global();
}

obs::FlightRecorder& resolve_flight(const NetServerOptions& options) {
  return options.flight != nullptr ? *options.flight
                                   : obs::FlightRecorder::global();
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(ch);
    } else if (c < 0x20) {
      static const char hex[] = "0123456789abcdef";
      out += "\\u00";
      out.push_back(hex[c >> 4]);
      out.push_back(hex[c & 15]);
    } else {
      out.push_back(ch);
    }
  }
}

}  // namespace

NetServer::NetServer(harmony::SessionManager& manager,
                     NetServerOptions options)
    : manager_(manager),
      options_(std::move(options)),
      registry_(resolve_registry(options_)),
      flight_(resolve_flight(options_)),
      obs_bytes_in_(registry_.counter("protuner_net_bytes_in_total",
                                      "Bytes received by the net tier")),
      obs_bytes_out_(registry_.counter("protuner_net_bytes_out_total",
                                       "Bytes sent by the net tier")),
      obs_accepted_(registry_.counter(
          "protuner_net_connections_accepted_total",
          "Connections accepted by the net tier")),
      obs_closed_(registry_.counter("protuner_net_connections_closed_total",
                                    "Connections closed by the net tier")),
      obs_decode_errors_(registry_.counter(
          "protuner_net_decode_errors_total",
          "Malformed frames that closed their connection")),
      obs_stall_dumps_(registry_.counter(
          "protuner_stall_dumps_total",
          "Flight-recorder dumps (stall watchdog episodes and SIGUSR1)")) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) throw_errno("eventfd");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) throw_errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    throw NetError("bad bind address: " + options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    throw_errno("bind");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, options_.backlog) < 0) throw_errno("listen");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = &listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    throw_errno("epoll_ctl(listen)");
  }
  ev.data.ptr = &wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    throw_errno("epoll_ctl(wake)");
  }
  events_.resize(256);
  last_tick_ = std::chrono::steady_clock::now();
  // Pre-pay the TSC calibration so the first wire-latency stamp is honest.
  obs::LatencyClock::ns_per_tick();
}

NetServer::~NetServer() {
  for (auto& c : conns_) {
    if (c && c->fd >= 0) ::close(c->fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void NetServer::run() { run_until({}); }

void NetServer::run_until(const std::function<bool()>& done) {
  // Arm the operator escape hatch: SIGUSR1 flags the global recorder and
  // the loop performs the (allocating) dump from normal context below.
  obs::FlightRecorder::install_sigusr1_handler();
  while (!stopping_.load(std::memory_order_relaxed)) {
    loop_iteration();
    if (done && done()) break;
  }
}

void NetServer::stop() {
  stopping_.store(true, std::memory_order_relaxed);
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void NetServer::loop_iteration() {
  const int timeout = static_cast<int>(options_.poll_interval.count());
  const int n =
      ::epoll_wait(epoll_fd_, events_.data(),
                   static_cast<int>(events_.size()), timeout);
  if (n < 0 && errno != EINTR) {
    // epoll itself failing is unrecoverable for the loop; stop cleanly
    // rather than spin on the error.
    stopping_.store(true, std::memory_order_relaxed);
    return;
  }
  for (int i = 0; i < n; ++i) {
    void* p = events_[i].data.ptr;
    if (p == &listen_fd_) {
      handle_listen();
      continue;
    }
    if (p == &wake_fd_) {
      std::uint64_t drained = 0;
      [[maybe_unused]] const ssize_t r =
          ::read(wake_fd_, &drained, sizeof(drained));
      continue;
    }
    Connection* c = static_cast<Connection*>(p);
    if (c->closed) continue;  // closed earlier in this batch
    if (events_[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) {
      handle_readable(c);
    }
    if (!c->closed && (events_[i].events & EPOLLOUT)) handle_writable(c);
  }
  const auto now = std::chrono::steady_clock::now();
  const bool tick_due = now - last_tick_ >= options_.poll_interval;
  if (tick_due) last_tick_ = now;
  sweep_sessions(tick_due);
  if (flight_.consume_dump_request()) dump_flight("SIGUSR1");
  destroy_pending();
}

void NetServer::handle_listen() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN, or a transient accept error: epoll will re-fire
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (static_cast<std::size_t>(fd) >= conns_.size()) {
      conns_.resize(static_cast<std::size_t>(fd) + 1);
    }
    std::unique_ptr<Connection> c;
    if (!pool_.empty()) {
      c = std::move(pool_.back());
      pool_.pop_back();
    } else {
      c = std::make_unique<Connection>();
    }
    c->fd = fd;
    if (c->in.size() < 4096) c->in.resize(4096);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = c.get();
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      c->fd = -1;
      pool_.push_back(std::move(c));
      continue;
    }
    conns_[static_cast<std::size_t>(fd)] = std::move(c);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    obs_accepted_.add();
  }
}

void NetServer::handle_readable(Connection* c) {
  while (!c->closed) {
    if (c->in_used == c->in.size()) {
      // A partial frame larger than the buffer: grow toward the frame cap.
      // decode_frame rejects length > max_frame from the first 4 bytes, so
      // the buffer never needs more than the cap plus its length prefix.
      const std::size_t cap = 4 + options_.max_frame;
      if (c->in.size() >= cap) {
        obs_decode_errors_.add();
        decode_errors_.fetch_add(1, std::memory_order_relaxed);
        flight_.record("error/decode",
                       c->entry >= 0
                           ? std::string_view(
                                 sessions_[static_cast<std::size_t>(c->entry)]
                                     .name)
                           : std::string_view{});
        error_close(c, "frame exceeds the size cap");
        return;
      }
      c->in.resize(std::min(cap, c->in.size() * 2));
    }
    const std::size_t want = c->in.size() - c->in_used;
    const ssize_t n = ::recv(c->fd, c->in.data() + c->in_used, want, 0);
    if (n == 0) {
      // Peer closed.  If it held an unreported assignment it is now a
      // straggler; the deadline machinery (tick sweep) handles the round.
      close_conn(c);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_conn(c);
      return;
    }
    c->in_used += static_cast<std::size_t>(n);
    obs_bytes_in_.add(static_cast<std::uint64_t>(n));

    // First bytes classify the connection: "GET " cannot start a frame
    // (as a u32 length it dwarfs kMaxFrameBytes), so the one listen port
    // serves the wire protocol and plain HTTP scrapes side by side.
    if (c->mode == kModeUnknown && c->in_used >= 4) {
      c->mode = std::memcmp(c->in.data(), "GET ", 4) == 0 ? kModeHttp
                                                          : kModeFrames;
    }
    if (c->mode != kModeFrames) {
      if (c->mode == kModeHttp) {
        handle_http(c);
        if (c->closed) return;
      }
      if (static_cast<std::size_t>(n) < want) break;
      continue;
    }

    std::size_t off = 0;
    while (!c->closed) {
      const Decoded d = decode_frame(
          {c->in.data() + off, c->in_used - off}, options_.max_frame);
      if (d.status == DecodeStatus::kFrame) {
        handle_frame(c, d.frame);
        off += d.consumed;
        continue;
      }
      if (d.status == DecodeStatus::kBadFrame) {
        obs_decode_errors_.add();
        decode_errors_.fetch_add(1, std::memory_order_relaxed);
        flight_.record("error/decode",
                       c->entry >= 0
                           ? std::string_view(
                                 sessions_[static_cast<std::size_t>(c->entry)]
                                     .name)
                           : std::string_view{});
        error_close(c, d.error);
        return;
      }
      break;  // kNeedMore
    }
    if (c->closed) return;
    if (off > 0) {
      std::memmove(c->in.data(), c->in.data() + off, c->in_used - off);
      c->in_used -= off;
    }
    if (static_cast<std::size_t>(n) < want) break;  // socket drained
  }
  if (!c->closed && c->out.size() > c->out_off) flush_out(c);
}

void NetServer::handle_writable(Connection* c) { flush_out(c); }

void NetServer::handle_frame(Connection* c, const Frame& f) {
  const std::uint64_t entered = obs::LatencyClock::now();
  // A server answers in the version its peer speaks, so a v1 client never
  // sees a trailer (or a Stats ack) it cannot decode.
  c->peer_version = f.version;
  switch (f.type) {
    case MsgType::kAttach:
      handle_attach(c, f);
      return;
    case MsgType::kFetch:
      handle_fetch(c, f, entered);
      return;
    case MsgType::kReport:
      handle_report(c, f, entered);
      return;
    case MsgType::kStats:
      handle_stats(c, f);
      return;
    case MsgType::kDetach:
      append_simple(c->out, MsgType::kDetach, f.rank, {}, c->peer_version);
      c->draining = true;  // close once the ack flushes
      return;
    case MsgType::kError:
      close_conn(c);  // the client aborted its side
      return;
  }
  error_close(c, "unknown message type");
}

void NetServer::handle_attach(Connection* c, const Frame& f) {
  if (c->entry >= 0) {
    error_close(c, "attach: connection is already attached");
    return;
  }
  if (f.session.empty()) {
    error_close(c, "attach: a session name is required");
    return;
  }
  const int idx = entry_index_for(f.session);
  if (idx < 0) {
    error_close(c, "attach: unknown session");
    return;
  }
  c->entry = idx;
  ++sessions_[static_cast<std::size_t>(idx)].attached_conns;
  append_attach_ack(
      c->out, f.rank,
      static_cast<std::uint32_t>(sessions_[idx].server->clients()),
      c->peer_version);
}

int NetServer::entry_index_for(std::string_view name) {
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    if (sessions_[i].name == name) {
      // Another connection of a known session: count the attachment.
      try {
        (void)manager_.attach(sessions_[i].name);
      } catch (const harmony::SessionError&) {
        return -1;  // removed since — treat as unknown
      }
      return static_cast<int>(i);
    }
  }
  SessionEntry e;
  e.name.assign(name);
  try {
    e.server = manager_.attach(e.name);
  } catch (const harmony::SessionError&) {
    return -1;
  }
  const obs::Labels labels{{"session", e.name}};
  e.fetch_wire_ns = &registry_.histogram(
      "protuner_net_fetch_wire_ns",
      "Fetch wire latency: frame decoded to reply queued, including the "
      "wait for the round to open (ns)",
      labels);
  e.report_wire_ns = &registry_.histogram(
      "protuner_net_report_wire_ns",
      "Report wire latency: frame decoded to ack queued (ns)", labels);
  e.last_rounds = e.server->rounds_completed();
  e.last_advance = std::chrono::steady_clock::now();
  sessions_.push_back(std::move(e));
  return static_cast<int>(sessions_.size()) - 1;
}

bool NetServer::session_matches(const Connection* c, const Frame& f) const {
  return f.session.empty() ||
         f.session == sessions_[static_cast<std::size_t>(c->entry)].name;
}

void NetServer::handle_fetch(Connection* c, const Frame& f,
                             std::uint64_t entered) {
  if (c->entry < 0) {
    error_close(c, "fetch: attach first");
    return;
  }
  if (!session_matches(c, f)) {
    error_close(c, "fetch: frame names a different session");
    return;
  }
  SessionEntry& e = sessions_[static_cast<std::size_t>(c->entry)];
  try {
    obs::TraceContext trace;
    if (e.server->try_fetch_into(f.rank, scratch_, trace)) {
      const WireTrace wt{trace.trace_id, trace.span_id};
      append_config(c->out, f.rank, scratch_, c->peer_version,
                    trace ? &wt : nullptr);
      e.fetch_wire_ns->record(wire_ns(entered));
    } else {
      park_fetch(c, f.rank, entered);
    }
  } catch (const harmony::ProtocolError& ex) {
    error_close(c, ex.what());
  }
}

void NetServer::handle_report(Connection* c, const Frame& f,
                              std::uint64_t entered) {
  if (c->entry < 0) {
    error_close(c, "report: attach first");
    return;
  }
  if (!session_matches(c, f)) {
    error_close(c, "report: frame names a different session");
    return;
  }
  double time = 0.0;
  if (!parse_f64_body(f.body, time)) {
    obs_decode_errors_.add();
    decode_errors_.fetch_add(1, std::memory_order_relaxed);
    error_close(c, "report: malformed body");
    return;
  }
  SessionEntry& e = sessions_[static_cast<std::size_t>(c->entry)];
  try {
    // The client's trailer names the round it measured; installing it here
    // threads the server-side report span into the same trace.
    const obs::ScopedTraceContext ctx(
        f.has_trace ? obs::TraceContext{f.trace.trace_id, f.trace.span_id}
                    : obs::TraceContext{});
    e.server->report(f.rank, time);
    append_simple(c->out, MsgType::kReport, f.rank, {}, c->peer_version);
    e.report_wire_ns->record(wire_ns(entered));
  } catch (const harmony::ProtocolError& ex) {
    error_close(c, ex.what());
  }
}

void NetServer::handle_stats(Connection* c, const Frame& f) {
  if (c->entry < 0) {
    error_close(c, "stats: attach first");
    return;
  }
  if (!session_matches(c, f)) {
    error_close(c, "stats: frame names a different session");
    return;
  }
  obs::RegistrySnapshot snap;
  if (!decode_stats(f.body, snap)) {
    obs_decode_errors_.add();
    decode_errors_.fetch_add(1, std::memory_order_relaxed);
    error_close(c, "stats: malformed body");
    return;
  }
  SessionEntry& e = sessions_[static_cast<std::size_t>(c->entry)];
  const std::size_t budget = options_.max_stats_series > c->stats_series
                                 ? options_.max_stats_series - c->stats_series
                                 : 0;
  obs::Registry::MergeResult merged;
  try {
    merged = registry_.merge_from(
        snap, {{"client", std::to_string(f.rank)}}, budget);
  } catch (const std::exception& ex) {
    // A kind collision with an already-registered instrument throws; like
    // every other client misbehaviour it costs the one connection, never
    // the loop (an escaped exception here would std::terminate the server).
    obs_decode_errors_.add();
    decode_errors_.fetch_add(1, std::memory_order_relaxed);
    flight_.record("error/decode", std::string_view(e.name));
    error_close(c, ex.what());
    return;
  }
  c->stats_series += merged.created;
  if (merged.dropped != 0) {
    // Rejected instruments (hostile identifier or value, or series past
    // this connection's minting cap) are treated like a malformed body.
    obs_decode_errors_.add();
    decode_errors_.fetch_add(1, std::memory_order_relaxed);
    flight_.record("error/decode", std::string_view(e.name));
    error_close(c, "stats: push rejected (bad instrument or series cap)");
    return;
  }
  append_simple(c->out, MsgType::kStats, f.rank, {}, c->peer_version);
}

// ------------------------------------------------------------- HTTP scrapes
// The observability plane, served from the same loop: no scraper thread, no
// blocking, just another readable fd.  HTTP/1.0, GET only, one request per
// connection (the response carries Connection: close and the existing
// draining machinery tears the socket down once it flushes).  Allocation
// here is fine — scrapes are the control plane, not the per-fetch data path.

void NetServer::handle_http(Connection* c) {
  const std::string_view req(reinterpret_cast<const char*>(c->in.data()),
                             c->in_used);
  const std::size_t head_end = req.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    if (c->in_used > kMaxHttpRequest) close_conn(c);
    return;  // headers still in flight
  }
  // Request line: "GET <path> HTTP/1.x".  Classification guarantees the
  // method; anything unparseable gets a 400 rather than a frame Error.
  const std::size_t line_end = req.find("\r\n");
  const std::string_view line = req.substr(0, line_end);
  const std::size_t path_begin = line.find(' ');
  const std::size_t path_end =
      path_begin == std::string_view::npos
          ? std::string_view::npos
          : line.find(' ', path_begin + 1);
  if (path_end == std::string_view::npos) {
    http_respond(c, 400, "Bad Request", "text/plain", "bad request\n");
    return;
  }
  std::string_view path = line.substr(path_begin + 1,
                                      path_end - path_begin - 1);
  if (const std::size_t q = path.find('?'); q != std::string_view::npos) {
    path = path.substr(0, q);
  }

  if (path == "/metrics") {
    std::ostringstream body;
    obs::render_prometheus(body, registry_.snapshot());
    http_respond(c, 200, "OK", "text/plain; version=0.0.4", body.str());
    return;
  }
  if (path == "/healthz") {
    bool stalled = false;
    for (const SessionEntry& e : sessions_) stalled = stalled || e.stalled;
    if (stalled) {
      http_respond(c, 503, "Service Unavailable", "text/plain", "stalled\n");
    } else {
      http_respond(c, 200, "OK", "text/plain", "ok\n");
    }
    return;
  }
  if (path == "/sessions") {
    std::string body = "[";
    bool first = true;
    for (const auto& s : manager_.stats_all()) {
      if (!first) body += ',';
      first = false;
      body += "{\"name\":\"";
      append_json_escaped(body, s.name);
      body += "\",\"strategy\":\"";
      append_json_escaped(body, s.strategy);
      body += "\",\"clients\":" + std::to_string(s.clients);
      body += ",\"active_ranks\":" + std::to_string(s.active_ranks);
      body += ",\"attached\":" + std::to_string(s.attached);
      body += ",\"rounds\":" + std::to_string(s.rounds);
      body += ",\"total_time\":" + std::to_string(s.total_time);
      body += ",\"converged\":";
      body += s.converged ? "true" : "false";
      body += '}';
    }
    body += "]\n";
    http_respond(c, 200, "OK", "application/json", body);
    return;
  }
  http_respond(c, 404, "Not Found", "text/plain", "not found\n");
}

void NetServer::http_respond(Connection* c, int status,
                             std::string_view reason,
                             std::string_view content_type,
                             std::string_view body) {
  std::string head = "HTTP/1.0 " + std::to_string(status) + ' ';
  head += reason;
  head += "\r\nContent-Type: ";
  head += content_type;
  head += "\r\nContent-Length: " + std::to_string(body.size());
  head += "\r\nConnection: close\r\n\r\n";
  c->out.insert(c->out.end(), head.begin(), head.end());
  c->out.insert(c->out.end(), body.begin(), body.end());
  c->in_used = 0;          // the one request is consumed
  c->draining = true;      // close once the response flushes
  flush_out(c);
}

void NetServer::park_fetch(Connection* c, std::uint32_t rank,
                           std::uint64_t entered) {
  SessionEntry& e = sessions_[static_cast<std::size_t>(c->entry)];
  c->parked.push_back({rank, entered});
  if (!c->in_parked_list) {
    e.parked.push_back(c);
    c->in_parked_list = true;
  }
  flight_.record("fetch/park", e.name, rank, e.server->rounds_completed());
}

void NetServer::retry_parked(SessionEntry& e) {
  std::size_t keep = 0;
  for (std::size_t ci = 0; ci < e.parked.size(); ++ci) {
    Connection* c = e.parked[ci];
    if (c->closed) continue;  // purged at end of batch
    std::size_t w = 0;
    for (std::size_t i = 0; i < c->parked.size() && !c->closed; ++i) {
      const ParkedFetch pf = c->parked[i];
      try {
        obs::TraceContext trace;
        if (e.server->try_fetch_into(pf.rank, scratch_, trace)) {
          const WireTrace wt{trace.trace_id, trace.span_id};
          append_config(c->out, pf.rank, scratch_, c->peer_version,
                        trace ? &wt : nullptr);
          e.fetch_wire_ns->record(wire_ns(pf.entered));
        } else {
          c->parked[w++] = pf;
        }
      } catch (const harmony::ProtocolError& ex) {
        error_close(c, ex.what());  // marks closed; loop exits
      }
    }
    if (c->closed) continue;
    c->parked.resize(w);
    if (w > 0) {
      e.parked[keep++] = c;
    } else {
      c->in_parked_list = false;
    }
    if (c->out.size() > c->out_off) flush_out(c);
  }
  e.parked.resize(keep);
}

void NetServer::sweep_sessions(bool tick_due) {
  const auto now = std::chrono::steady_clock::now();
  for (SessionEntry& e : sessions_) {
    if (tick_due) {
      try {
        e.server->tick();
      } catch (const harmony::ProtocolError&) {
        // Poisoned session: parked retries below surface the failure to
        // each waiting client as an Error frame.
      }
    }
    const std::size_t rounds = e.server->rounds_completed();
    const bool advanced = rounds != e.last_rounds;
    e.last_rounds = rounds;
    if (advanced) {
      e.last_advance = now;
      e.stalled = false;  // the stall episode (if any) is over
    }
    if (!e.parked.empty() && (advanced || tick_due)) retry_parked(e);
    if (tick_due && !e.stalled) check_stall(e, now);
  }
}

void NetServer::check_stall(SessionEntry& e,
                            std::chrono::steady_clock::time_point now) {
  if (e.attached_conns == 0) return;  // nobody is driving: idle, not stalled
  std::chrono::duration<double> timeout = options_.stall_timeout;
  if (timeout <= std::chrono::duration<double>::zero()) {
    const auto deadline = e.server->report_timeout();
    if (deadline <= std::chrono::duration<double>::zero()) return;
    timeout = deadline * options_.stall_factor;
  }
  if (std::chrono::duration<double>(now - e.last_advance) < timeout) return;
  e.stalled = true;
  flight_.record("stall/dump", e.name,
                 static_cast<std::uint32_t>(e.attached_conns), e.last_rounds);
  dump_flight(e.name.c_str());
}

void NetServer::dump_flight(const char* why) {
  stall_dumps_.fetch_add(1, std::memory_order_relaxed);
  obs_stall_dumps_.add();
  std::cerr << "protuner: flight-recorder dump (" << why << ")\n";
  flight_.dump(std::cerr);
}

void NetServer::flush_out(Connection* c) {
  if (c->closed) return;
  while (c->out_off < c->out.size()) {
    const ssize_t n = ::send(c->fd, c->out.data() + c->out_off,
                             c->out.size() - c->out_off, MSG_NOSIGNAL);
    if (n > 0) {
      c->out_off += static_cast<std::size_t>(n);
      obs_bytes_out_.add(static_cast<std::uint64_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!c->want_write) {
        c->want_write = true;
        epoll_update(c, true);
      }
      return;
    }
    close_conn(c);
    return;
  }
  c->out.clear();
  c->out_off = 0;
  if (c->want_write) {
    c->want_write = false;
    epoll_update(c, false);
  }
  if (c->draining) close_conn(c);
}

void NetServer::epoll_update(Connection* c, bool want_write) {
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  ev.data.ptr = c;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c->fd, &ev);
}

void NetServer::error_close(Connection* c, std::string_view why) {
  if (c->closed) return;
  append_error(c->out, 0, why);
  // Best-effort flush: the peer deserves the diagnostic, but a blocked
  // socket must not stall the loop — the close proceeds regardless.
  while (c->out_off < c->out.size()) {
    const ssize_t n = ::send(c->fd, c->out.data() + c->out_off,
                             c->out.size() - c->out_off,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      c->out_off += static_cast<std::size_t>(n);
      obs_bytes_out_.add(static_cast<std::uint64_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  close_conn(c);
}

void NetServer::close_conn(Connection* c) {
  if (c->closed) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c->fd, nullptr);
  if (c->entry >= 0) {
    SessionEntry& e = sessions_[static_cast<std::size_t>(c->entry)];
    if (e.attached_conns > 0) --e.attached_conns;
    try {
      manager_.detach(e.name);
    } catch (const harmony::SessionError&) {
    }
  }
  c->closed = true;
  c->in_parked_list = false;
  c->parked.clear();
  closed_.fetch_add(1, std::memory_order_relaxed);
  obs_closed_.add();
  pending_destroy_.push_back(c);
}

void NetServer::destroy_pending() {
  if (pending_destroy_.empty()) return;
  for (SessionEntry& e : sessions_) {
    if (!e.parked.empty()) {
      std::erase_if(e.parked, [](Connection* c) { return c->closed; });
    }
  }
  for (Connection* c : pending_destroy_) {
    ::close(c->fd);
    auto owned = std::move(conns_[static_cast<std::size_t>(c->fd)]);
    c->fd = -1;
    c->entry = -1;
    c->stats_series = 0;
    c->closed = false;
    c->draining = false;
    c->want_write = false;
    c->mode = kModeUnknown;
    c->peer_version = kWireVersion;
    c->in_used = 0;
    c->out.clear();
    c->out_off = 0;
    pool_.push_back(std::move(owned));
  }
  pending_destroy_.clear();
}

}  // namespace protuner::net
