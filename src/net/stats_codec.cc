#include "net/stats_codec.h"

#include <algorithm>
#include <string>

#include "net/frame.h"

namespace protuner::net {

namespace {

void append_string(std::vector<std::uint8_t>& out, const std::string& s) {
  const std::size_t n = std::min<std::size_t>(s.size(), 0xFFFF);
  append_u16(out, static_cast<std::uint16_t>(n));
  out.insert(out.end(), s.begin(), s.begin() + n);
}

/// Cursor over the body with bounds-checked reads.
struct Reader {
  std::span<const std::uint8_t> buf;
  std::size_t off = 0;

  bool need(std::size_t n) const { return off + n <= buf.size(); }
  bool read_u8(std::uint8_t& v) {
    if (!need(1)) return false;
    v = buf[off++];
    return true;
  }
  bool read_u16(std::uint16_t& v) {
    if (!need(2)) return false;
    v = load_u16(buf.data() + off);
    off += 2;
    return true;
  }
  bool read_u32(std::uint32_t& v) {
    if (!need(4)) return false;
    v = load_u32(buf.data() + off);
    off += 4;
    return true;
  }
  bool read_u64(std::uint64_t& v) {
    if (!need(8)) return false;
    v = load_u64(buf.data() + off);
    off += 8;
    return true;
  }
  bool read_f64(double& v) {
    if (!need(8)) return false;
    v = load_f64(buf.data() + off);
    off += 8;
    return true;
  }
  bool read_string(std::string& s) {
    std::uint16_t n = 0;
    if (!read_u16(n) || !need(n)) return false;
    s.assign(reinterpret_cast<const char*>(buf.data() + off), n);
    off += n;
    return true;
  }
};

}  // namespace

void encode_stats(std::vector<std::uint8_t>& out,
                  const obs::RegistrySnapshot& snap) {
  append_u32(out, static_cast<std::uint32_t>(snap.instruments.size()));
  for (const obs::InstrumentSnapshot& s : snap.instruments) {
    out.push_back(static_cast<std::uint8_t>(s.kind));
    append_string(out, s.name);
    append_string(out, s.help);
    const std::size_t labels = std::min<std::size_t>(s.labels.size(), 0xFF);
    out.push_back(static_cast<std::uint8_t>(labels));
    for (std::size_t i = 0; i < labels; ++i) {
      append_string(out, s.labels[i].first);
      append_string(out, s.labels[i].second);
    }
    switch (s.kind) {
      case obs::InstrumentKind::kCounter:
      case obs::InstrumentKind::kGauge:
        append_f64(out, s.value);
        break;
      case obs::InstrumentKind::kHistogram: {
        std::uint32_t nonzero = 0;
        for (const std::uint64_t c : s.hist.counts) nonzero += c != 0;
        append_u32(out, nonzero);
        for (std::size_t i = 0; i < s.hist.counts.size(); ++i) {
          if (s.hist.counts[i] == 0) continue;
          append_u16(out, static_cast<std::uint16_t>(i));
          append_u64(out, s.hist.counts[i]);
        }
        append_f64(out, s.hist.max);
        break;
      }
    }
  }
}

bool decode_stats(std::span<const std::uint8_t> body,
                  obs::RegistrySnapshot& snap) {
  snap.instruments.clear();
  Reader r{body};
  std::uint32_t count = 0;
  if (!r.read_u32(count)) return false;
  // Each instrument needs at least kind + two length prefixes + label count
  // + an 8-byte payload: a cheap upper bound that stops absurd counts from
  // reserving gigabytes off a 4-byte lie.
  if (static_cast<std::size_t>(count) * 14 > body.size()) return false;
  snap.instruments.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    obs::InstrumentSnapshot s;
    std::uint8_t kind = 0;
    if (!r.read_u8(kind) || kind > 2) return false;
    s.kind = static_cast<obs::InstrumentKind>(kind);
    // Names and label keys are written verbatim into the Prometheus text
    // exposition: restricting them to the identifier charset here keeps a
    // hostile push from injecting fake series lines (label *values* are
    // escaped at render time and stay free-form).
    if (!r.read_string(s.name) || !obs::is_valid_metric_name(s.name)) {
      return false;
    }
    if (!r.read_string(s.help)) return false;
    std::uint8_t labels = 0;
    if (!r.read_u8(labels)) return false;
    s.labels.reserve(labels);
    for (std::uint8_t l = 0; l < labels; ++l) {
      std::string k, v;
      if (!r.read_string(k) || !r.read_string(v)) return false;
      if (!obs::is_valid_label_key(k)) return false;
      s.labels.emplace_back(std::move(k), std::move(v));
    }
    switch (s.kind) {
      case obs::InstrumentKind::kCounter:
      case obs::InstrumentKind::kGauge:
        if (!r.read_f64(s.value)) return false;
        break;
      case obs::InstrumentKind::kHistogram: {
        std::uint32_t nonzero = 0;
        if (!r.read_u32(nonzero)) return false;
        if (nonzero > obs::Histogram::kBucketCount) return false;
        s.hist.counts.assign(obs::Histogram::kBucketCount, 0);
        // The encoder walks buckets in order, so indices are strictly
        // increasing; enforcing that rejects duplicates, which would leave
        // count (accumulated per entry) inconsistent with the bucket sum.
        int prev = -1;
        for (std::uint32_t b = 0; b < nonzero; ++b) {
          std::uint16_t idx = 0;
          std::uint64_t c = 0;
          if (!r.read_u16(idx) || !r.read_u64(c)) return false;
          if (idx >= obs::Histogram::kBucketCount) return false;
          if (static_cast<int>(idx) <= prev) return false;
          prev = static_cast<int>(idx);
          s.hist.counts[idx] = c;
          s.hist.count += c;
        }
        if (!r.read_f64(s.hist.max)) return false;
        s.value = static_cast<double>(s.hist.count);
        break;
      }
    }
    snap.instruments.push_back(std::move(s));
  }
  return r.off == body.size();
}

obs::RegistrySnapshot stats_delta(const obs::RegistrySnapshot& current,
                                  const obs::RegistrySnapshot& prev) {
  obs::RegistrySnapshot out;
  for (const obs::InstrumentSnapshot& cur : current.instruments) {
    const obs::InstrumentSnapshot* old = nullptr;
    for (const obs::InstrumentSnapshot& p : prev.instruments) {
      if (p.name == cur.name && p.labels == cur.labels) {
        old = &p;
        break;
      }
    }
    obs::InstrumentSnapshot d = cur;
    bool all_zero = true;
    switch (cur.kind) {
      case obs::InstrumentKind::kCounter:
        if (old != nullptr) d.value = cur.value - old->value;
        all_zero = d.value == 0.0;
        break;
      case obs::InstrumentKind::kGauge:
        // Levels don't delta; push only when the level moved (or is new).
        all_zero = old != nullptr && old->value == cur.value;
        break;
      case obs::InstrumentKind::kHistogram: {
        std::uint64_t total = 0;
        if (old != nullptr) {
          const std::size_t n =
              std::min(d.hist.counts.size(), old->hist.counts.size());
          for (std::size_t i = 0; i < n; ++i) {
            d.hist.counts[i] -= old->hist.counts[i];
          }
        }
        for (const std::uint64_t c : d.hist.counts) total += c;
        d.hist.count = total;
        d.value = static_cast<double>(total);
        all_zero = total == 0;
        break;
      }
    }
    if (!all_zero) out.instruments.push_back(std::move(d));
  }
  return out;
}

}  // namespace protuner::net
