// Network serving tier for harmony:: — a single-threaded, level-triggered
// epoll event loop translating the binary wire protocol (net/frame.h) into
// the existing zero-allocation harmony::Server fetch/report calls
// (DESIGN.md §14).
//
// Architecture: ONE loop thread owns everything mutable here — the listen
// socket, the epoll set, every connection's buffers and parked fetches.
// harmony::Server and harmony::SessionManager are internally thread-safe,
// so the loop calls straight into them; nothing in net:: takes a lock.
// Thousands of connections multiplex on the one loop (C10k-style): a
// connection is a pooled pair of byte buffers plus protocol state, not a
// thread.
//
// Blocking is forbidden on the loop, so the blocking part of the Harmony
// protocol — fetch() waiting for the next round to open — becomes a parked
// request: Server::try_fetch_into() either serves the open round or the
// loop parks the (connection, rank) pair and answers it when the session's
// round counter advances (checked once per poll iteration; the counter is
// a relaxed atomic read).  Deadlines are enforced the same way a tick
// driver would: the loop calls Server::tick() at poll_interval, and a
// connection that dies mid-round is simply a straggler for the PR-3
// deadline/imputation machinery — never a server error.
//
// Error containment: a malformed frame or a harmony::ProtocolError maps to
// one Error frame (best-effort flush) plus connection close.  The loop
// never throws out of run(), never corrupts a session, and never dies on
// client behaviour.
//
// Steady-state hot path is allocation-free: connection buffers, parked
// lists, the epoll event array and the one configuration scratch Point are
// all warm after the first rounds; decoding yields views, encoding appends
// into recycled capacity, and closed connections return their buffers to a
// pool for the next accept.
#pragma once

#include <sys/epoll.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/types.h"
#include "harmony/session_manager.h"
#include "net/frame.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace protuner::net {

/// Transport-level failure (bind/listen/epoll errors, address in use).
/// Client misbehaviour is NOT a NetError — it closes the one connection.
class NetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct NetServerOptions {
  /// Address to bind; the default serves loopback only.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  int backlog = 1024;
  /// Hard cap on accepted frame length (see net/frame.h).
  std::size_t max_frame = kMaxFrameBytes;
  /// epoll_wait timeout: the cadence of deadline ticks and parked-fetch
  /// sweeps when the loop is otherwise idle.
  std::chrono::milliseconds poll_interval{5};
  /// Registry the wire telemetry is registered in; null means
  /// obs::Registry::global().  Use the same registry the hosted sessions
  /// record into so Server::metrics_snapshot/SessionManager::
  /// metrics_snapshot see the net tier too — and so the in-loop /metrics
  /// page serves everything in one exposition.
  obs::Registry* metrics = nullptr;
  /// Stall watchdog: a session whose round watermark has not advanced for
  /// this long while connections are attached is declared stalled — the
  /// flight recorder dumps to stderr once per episode and /healthz answers
  /// 503 until the watermark moves again.  Zero derives the timeout from
  /// the session's own report deadline (report_timeout × stall_factor);
  /// sessions with neither an explicit stall_timeout nor a deadline are
  /// never declared stalled.
  std::chrono::duration<double> stall_timeout{0};
  double stall_factor = 4.0;
  /// Flight recorder the loop's control-plane events land in; null means
  /// obs::FlightRecorder::global() (which SIGUSR1 dumps target).
  obs::FlightRecorder* flight = nullptr;
  /// Cap on the number of distinct registry series one connection may
  /// create via Stats pushes — the series-churn counterpart of max_frame:
  /// without it a buggy or adversarial client minting unique metric
  /// names/label sets grows server memory (and the /metrics page) without
  /// bound.  Merging into existing series is never limited; a push that
  /// would exceed the cap is rejected and the connection closed.
  std::size_t max_stats_series = 256;
};

class NetServer {
 public:
  /// Binds and listens immediately (port() is valid after construction);
  /// the loop itself starts in run().  Sessions are resolved by name in
  /// `manager` at Attach time — create them before clients connect.
  NetServer(harmony::SessionManager& manager, NetServerOptions options = {});
  ~NetServer();
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  std::uint16_t port() const { return port_; }

  /// Runs the event loop on the calling thread until stop() is called.
  void run();
  /// run() with an exit predicate, checked once per poll iteration (on the
  /// loop thread — it may touch loop-owned state via the counters below).
  void run_until(const std::function<bool()>& done);
  /// Thread-safe: wakes the loop and makes run() return.  Idempotent.
  void stop();

  /// Loop-lifetime counters (also exported via obs::, these accessors are
  /// for tests and drivers; safe from any thread).
  std::uint64_t connections_accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  std::uint64_t connections_closed() const {
    return closed_.load(std::memory_order_relaxed);
  }
  std::uint64_t decode_errors() const {
    return decode_errors_.load(std::memory_order_relaxed);
  }
  /// Flight-recorder dumps performed by this loop (stall watchdog episodes
  /// plus SIGUSR1 requests).
  std::uint64_t stall_dumps() const {
    return stall_dumps_.load(std::memory_order_relaxed);
  }

 private:
  // How a connection's first bytes classified it.  The wire protocol's
  // length prefix makes the split unambiguous: "GET " read as a u32 length
  // is ~542 MB, far beyond kMaxFrameBytes, so no valid frame starts with it.
  static constexpr std::uint8_t kModeUnknown = 0;
  static constexpr std::uint8_t kModeFrames = 1;
  static constexpr std::uint8_t kModeHttp = 2;
  /// Cap on a buffered HTTP request (we only serve bare GETs).
  static constexpr std::size_t kMaxHttpRequest = 8192;
  struct ParkedFetch {
    std::uint32_t rank = 0;
    std::uint64_t entered = 0;  ///< LatencyClock stamp at frame decode
  };

  struct Connection;

  // One hosted session as seen by the loop: the pinned server handle, its
  // wire-latency instruments (resolved once, at first attach), the parked
  // list and the round counter watermark that triggers its retry sweep.
  struct SessionEntry {
    std::string name;
    std::shared_ptr<harmony::Server> server;
    obs::Histogram* fetch_wire_ns = nullptr;
    obs::Histogram* report_wire_ns = nullptr;
    std::size_t last_rounds = 0;
    std::vector<Connection*> parked;  ///< connections with parked fetches
    // Stall watchdog state (loop thread only).
    std::size_t attached_conns = 0;   ///< live connections bound to this entry
    std::chrono::steady_clock::time_point last_advance{};
    bool stalled = false;             ///< one dump per stall episode
  };

  struct Connection {
    int fd = -1;
    bool closed = false;        ///< destroy deferred to end of batch
    bool draining = false;      ///< close once the out buffer flushes
    bool want_write = false;    ///< EPOLLOUT armed
    bool in_parked_list = false;
    std::uint8_t mode = kModeUnknown;        ///< frames vs HTTP demux
    std::uint8_t peer_version = kWireVersion;  ///< replies match the peer
    int entry = -1;             ///< index into sessions_ once attached
    std::size_t stats_series = 0;  ///< registry series minted by its pushes
    std::vector<std::uint8_t> in;
    std::size_t in_used = 0;
    std::vector<std::uint8_t> out;
    std::size_t out_off = 0;
    std::vector<ParkedFetch> parked;
  };

  void loop_iteration();
  void handle_listen();
  void handle_readable(Connection* c);
  void handle_writable(Connection* c);
  void handle_frame(Connection* c, const Frame& f);
  void handle_attach(Connection* c, const Frame& f);
  void handle_fetch(Connection* c, const Frame& f, std::uint64_t entered);
  void handle_report(Connection* c, const Frame& f, std::uint64_t entered);
  void handle_stats(Connection* c, const Frame& f);
  /// Serves one buffered HTTP GET (/metrics, /healthz, /sessions) and puts
  /// the connection into draining (HTTP/1.0: one request, then close).
  void handle_http(Connection* c);
  void http_respond(Connection* c, int status, std::string_view reason,
                    std::string_view content_type, std::string_view body);
  /// True when the frame's session field names the bound session (empty
  /// means "the bound session").
  bool session_matches(const Connection* c, const Frame& f) const;
  /// Sends an Error frame (best-effort) and closes the connection.
  void error_close(Connection* c, std::string_view why);
  void close_conn(Connection* c);
  void destroy_pending();
  /// Writes as much of c->out as the socket accepts; arms/disarms EPOLLOUT.
  void flush_out(Connection* c);
  void park_fetch(Connection* c, std::uint32_t rank, std::uint64_t entered);
  /// Re-runs every parked fetch of `e`; called when its round advances.
  void retry_parked(SessionEntry& e);
  /// Round-advance sweep + deadline ticks, once per poll iteration.
  void sweep_sessions(bool tick_due);
  /// Declares `e` stalled (and dumps the flight recorder) when its round
  /// watermark has sat still past the watchdog timeout.
  void check_stall(SessionEntry& e, std::chrono::steady_clock::time_point now);
  void dump_flight(const char* why);
  void epoll_update(Connection* c, bool want_write);
  int entry_index_for(std::string_view name);

  harmony::SessionManager& manager_;
  const NetServerOptions options_;
  obs::Registry& registry_;
  obs::FlightRecorder& flight_;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};

  std::vector<std::unique_ptr<Connection>> conns_;  ///< indexed by fd
  std::vector<std::unique_ptr<Connection>> pool_;   ///< warm buffer reuse
  std::vector<Connection*> pending_destroy_;
  std::vector<SessionEntry> sessions_;
  core::Point scratch_;
  std::vector<epoll_event> events_;
  std::chrono::steady_clock::time_point last_tick_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> closed_{0};
  std::atomic<std::uint64_t> decode_errors_{0};
  std::atomic<std::uint64_t> stall_dumps_{0};

  obs::Counter& obs_bytes_in_;
  obs::Counter& obs_bytes_out_;
  obs::Counter& obs_accepted_;
  obs::Counter& obs_closed_;
  obs::Counter& obs_decode_errors_;
  obs::Counter& obs_stall_dumps_;
};

}  // namespace protuner::net
