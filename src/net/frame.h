// Binary wire protocol for the Harmony serving tier (DESIGN.md §14/§15).
//
// Every message on the wire is one length-prefixed little-endian frame:
//
//   offset  size  field
//   0       4     length       bytes following this field (8 .. kMaxFrameBytes)
//   4       1     version      1 or 2 (kWireVersion)
//   5       1     type         MsgType (v2: low 7 bits; bit 7 = trace trailer)
//   6       2     session_len  bytes of session name following the header
//   8       4     rank         client rank the frame concerns
//   12      s     session      UTF-8 session name (s == session_len)
//   12+s    b     body         type-specific payload
//   end-16  16    trace        OPTIONAL v2 trailer: u64 trace_id, u64 span_id
//
// The trailer is present iff bit 7 of the type byte is set (v2 frames only);
// it is counted in `length` and sits at the very end of the frame, after the
// body, so `b == length - 8 - s - (trailer ? 16 : 0)`.  Version 1 frames are
// exactly the PR-9 format: types 1..5, no trailer, no Stats — a v2 endpoint
// accepts them unchanged and replies in version 1 (old clients keep working).
//
// Bodies (all integers little-endian, doubles IEEE-754 little-endian):
//   Attach  request: empty            reply: u32 clients (session width)
//   Fetch   request: empty            reply: u32 n, n × f64 configuration
//   Report  request: f64 time         reply: empty (ack)
//   Detach  request: empty            reply: empty (ack)
//   Error   server → client only: UTF-8 message; the connection closes next
//   Stats   request: metric deltas (v2 only, see net/stats_codec.h)
//                                     reply: empty (ack)
//
// After Attach binds a connection to a session, requests may carry an empty
// session name (meaning "the bound session") to keep steady-state frames
// small; replies always do.
//
// The decoder is incremental and allocation-free: feed it the unconsumed
// prefix of a receive buffer and it either yields one complete frame (views
// into the buffer — valid only until the buffer is next mutated), asks for
// more bytes, or rejects the stream.  Truncation is never an error (the
// bytes may still be in flight); a malformed header is fatal to the
// connection because framing can no longer be trusted.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>
#include <vector>

#include "core/types.h"

namespace protuner::net {

inline constexpr std::uint8_t kWireVersion = 2;
/// Oldest version the decoder still accepts (PR-9 peers).
inline constexpr std::uint8_t kMinWireVersion = 1;
/// Fixed header: length prefix + version + type + session_len + rank.
inline constexpr std::size_t kFixedHeaderBytes = 12;
/// Bit 7 of the type byte (v2): a 16-byte trace trailer ends the frame.
inline constexpr std::uint8_t kTraceFlag = 0x80;
inline constexpr std::size_t kTraceTrailerBytes = 16;
/// Hard cap on the `length` field.  A frame can carry a ~128k-dimensional
/// configuration, far beyond any tunable space in the repo; anything larger
/// is a corrupt stream or an attack, not a workload.
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;

enum class MsgType : std::uint8_t {
  kAttach = 1,
  kFetch = 2,
  kReport = 3,
  kDetach = 4,
  kError = 5,
  kStats = 6,  ///< v2 only: client telemetry push
};

/// Cross-process trace correlation carried by the v2 trailer: which round
/// (trace_id) and which server-side span (span_id) a frame belongs to.
struct WireTrace {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};

/// One decoded frame.  `session` and `body` view the caller's buffer.
struct Frame {
  MsgType type = MsgType::kError;
  std::uint8_t version = kWireVersion;
  std::uint32_t rank = 0;
  std::string_view session;
  std::span<const std::uint8_t> body;
  bool has_trace = false;  ///< the frame carried a trace trailer
  WireTrace trace;         ///< valid when has_trace
};

enum class DecodeStatus {
  kNeedMore,  ///< no complete frame yet — read more bytes and retry
  kFrame,     ///< one frame decoded; drop `consumed` bytes and retry
  kBadFrame,  ///< framing is broken — the connection must be closed
};

struct Decoded {
  DecodeStatus status = DecodeStatus::kNeedMore;
  std::size_t consumed = 0;        ///< valid for kFrame
  Frame frame;                     ///< valid for kFrame
  std::string_view error;          ///< static message, valid for kBadFrame
};

/// Attempts to decode one frame from the front of `buf`.  Never throws,
/// never allocates, never reads past `buf`.
Decoded decode_frame(std::span<const std::uint8_t> buf,
                     std::size_t max_frame = kMaxFrameBytes);

// ----------------------------------------------------------- LE primitives

inline void append_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}
inline void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}
inline void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}
inline void append_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  append_u64(out, bits);
}
inline std::uint16_t load_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
inline std::uint32_t load_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}
inline std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}
inline double load_f64(const std::uint8_t* p) {
  const std::uint64_t bits = load_u64(p);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// ---------------------------------------------------------------- encoders
// All encoders append to `out` (they never clear it), so one buffer can
// batch several frames before a single send.  Appending into a warm vector
// reuses its capacity — no allocation in steady state.
//
// Each encoder takes the wire version to emit (a server replies in the
// version its peer spoke) and an optional trace trailer.  Trailers require
// version 2; passing one with version 1 is a caller bug and is dropped.

/// Appends the 12-byte fixed header plus the session bytes.  The caller
/// must then append exactly `body_len` body bytes, then the 16-byte trace
/// trailer iff `trace` was non-null (see append_trace_trailer).
void append_header(std::vector<std::uint8_t>& out, MsgType type,
                   std::uint32_t rank, std::string_view session,
                   std::size_t body_len,
                   std::uint8_t version = kWireVersion,
                   const WireTrace* trace = nullptr);

/// Appends the 16-byte trailer announced to append_header via `trace`.
void append_trace_trailer(std::vector<std::uint8_t>& out,
                          const WireTrace& trace);

/// Frame with an arbitrary body.
void append_frame(std::vector<std::uint8_t>& out, MsgType type,
                  std::uint32_t rank, std::string_view session,
                  std::span<const std::uint8_t> body,
                  std::uint8_t version = kWireVersion,
                  const WireTrace* trace = nullptr);

/// Body-less frame (Attach/Fetch/Detach requests, Report/Detach acks).
void append_simple(std::vector<std::uint8_t>& out, MsgType type,
                   std::uint32_t rank, std::string_view session,
                   std::uint8_t version = kWireVersion,
                   const WireTrace* trace = nullptr);

/// Attach ack: u32 session width.
void append_attach_ack(std::vector<std::uint8_t>& out, std::uint32_t rank,
                       std::uint32_t clients,
                       std::uint8_t version = kWireVersion);

/// Report request: one f64 observed time.
void append_report(std::vector<std::uint8_t>& out, std::uint32_t rank,
                   std::string_view session, double time,
                   std::uint8_t version = kWireVersion,
                   const WireTrace* trace = nullptr);

/// Fetch reply: u32 count + count × f64.
void append_config(std::vector<std::uint8_t>& out, std::uint32_t rank,
                   const core::Point& config,
                   std::uint8_t version = kWireVersion,
                   const WireTrace* trace = nullptr);

/// Error frame: UTF-8 message as the body.
void append_error(std::vector<std::uint8_t>& out, std::uint32_t rank,
                  std::string_view message,
                  std::uint8_t version = kWireVersion);

// ------------------------------------------------------------- body parsers
// Return false on malformed bodies (wrong size); never throw.

bool parse_u32_body(std::span<const std::uint8_t> body, std::uint32_t& out);
bool parse_f64_body(std::span<const std::uint8_t> body, double& out);
/// Parses a Fetch reply into `out`, reusing its capacity.
bool parse_config_body(std::span<const std::uint8_t> body, core::Point& out);

}  // namespace protuner::net
