// Client side of the harmony wire protocol (net/frame.h, DESIGN.md §14):
// a blocking, single-connection library a tuning client process links to
// speak fetch/report with a remote NetServer.
//
// The call surface deliberately mirrors harmony::Server so in-process code
// ports to remote serving by swapping the handle: attach() then
// fetch_into()/report() per measurement, detach() when done.  fetch_into()
// blocks until the server opens the round for this rank — exactly like the
// in-process fetch — bounded by Options::io_timeout.
//
// Error mapping: an Error frame from the server carries a harmony protocol
// diagnostic and is rethrown as harmony::ProtocolError, so remote clients
// see the identical exception type in-process clients do.  Transport
// failures (refused, reset, timeout, malformed reply) are NetError.
//
// One connection may drive many ranks (each frame carries the rank), which
// is how the load generator multiplexes a worker's rank slice over a single
// socket.  Calls are synchronous request/reply; the class is not
// thread-safe — one owner thread per client.
//
// Steady-state fetch/report is allocation-free: the encode and decode
// buffers are reused across calls and replies are parsed in place.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "core/types.h"
#include "net/frame.h"
#include "net/net_server.h"  // NetError
#include "obs/metrics.h"

namespace protuner::net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Window during which connect() retries (the server process may still
  /// be binding when a forked client starts).
  std::chrono::milliseconds connect_timeout{5000};
  /// Bound on each blocking send/receive.  fetch_into() waits up to this
  /// long for the server to open the round.
  std::chrono::milliseconds io_timeout{60000};
  std::size_t max_frame = kMaxFrameBytes;
  /// When set, the client records its end-to-end call latencies as
  /// protuner_net_client_{fetch,report}_ns{session=...} in this registry.
  /// It is also the registry the telemetry push ships from (see
  /// push_stats): detach — and every stats_every_rounds reports when
  /// enabled — sends the delta since the last push as a Stats frame, which
  /// the server merges under {client="<rank>"} labels.  Give the client its
  /// OWN registry (as a separate client process naturally would), not one a
  /// co-resident server merges pushes into — pushing a registry you are
  /// merged into echoes the merged series back on every push.
  obs::Registry* metrics = nullptr;
  /// Wire version to speak.  Version 2 (the default) carries trace
  /// trailers and Stats pushes; set 1 to emulate a PR-9 peer against a
  /// newer server (no trailers, no Stats).
  std::uint8_t wire_version = kWireVersion;
  /// Push metric deltas every N successful reports (0: only on detach).
  std::size_t stats_every_rounds = 0;
};

class HarmonyClient {
 public:
  /// Connects immediately, retrying inside connect_timeout.  Throws
  /// NetError when the server never becomes reachable.
  explicit HarmonyClient(ClientOptions options);
  ~HarmonyClient();
  HarmonyClient(const HarmonyClient&) = delete;
  HarmonyClient& operator=(const HarmonyClient&) = delete;

  /// Binds this connection to `session` and registers interest for `rank`.
  /// Returns the session's expected client count (P).  Further frames omit
  /// the session name.
  std::uint32_t attach(const std::string& session, std::uint32_t rank);

  /// Blocks until the server assigns `rank` a configuration for the
  /// current round.  harmony::ProtocolError mirrors the in-process
  /// misuse/deadline failures; NetError covers the transport.
  void fetch_into(std::uint32_t rank, core::Point& out);

  /// Reports the measured time for `rank`'s outstanding configuration and
  /// waits for the server's ack (keeping the call ordering identical to
  /// the in-process API).
  void report(std::uint32_t rank, double time);

  /// Graceful goodbye: pushes any outstanding metric deltas, then the
  /// server acks and closes; so does the client.
  void detach(std::uint32_t rank);

  /// Ships the delta of Options::metrics since the last push as a Stats
  /// frame and waits for the ack.  No-op when disconnected, speaking wire
  /// v1, or no registry was configured; a quiet period (empty delta) sends
  /// nothing.  detach() calls this; call it directly for mid-run pushes.
  void push_stats(std::uint32_t rank);

  /// Drops the connection without the detach handshake (the server treats
  /// it as a dead client: a straggler if mid-round).  Idempotent.
  void close();

  bool connected() const { return fd_ >= 0; }

 private:
  void connect_with_retry();
  void send_buffer();
  /// Receives exactly one frame (handles partial and coalesced reads).
  const Frame& recv_frame();
  /// recv_frame + Error-frame mapping + type check.
  const Frame& expect_reply(MsgType type);

  ClientOptions options_;
  int fd_ = -1;
  std::string session_;
  std::vector<std::uint8_t> out_;
  std::vector<std::uint8_t> in_;
  std::size_t in_used_ = 0;
  std::size_t consumed_ = 0;  ///< bytes of in_ owned by the last frame
  Frame frame_;               ///< views into in_; valid until the next call
  obs::Histogram* fetch_ns_ = nullptr;
  obs::Histogram* report_ns_ = nullptr;
  WireTrace last_trace_;      ///< trailer of the last fetch reply
  bool has_last_trace_ = false;
  obs::RegistrySnapshot last_pushed_;  ///< baseline for the next stats delta
  std::vector<std::uint8_t> stats_body_;
  std::size_t reports_since_push_ = 0;
};

}  // namespace protuner::net
