// GS2 runtime-trace generation (Fig. 3 substrate): fixed-parameter
// per-iteration runtimes on P ranks with the big/small spike structure and
// cross-rank correlation the paper measured on its 64-node cluster.
#pragma once

#include <cstddef>
#include <vector>

#include "core/landscape.h"
#include "core/types.h"
#include "varmodel/shock_model.h"

namespace protuner::gs2 {

struct TraceConfig {
  std::size_t ranks = 64;
  std::size_t iterations = 800;
  std::uint64_t seed = 7;
  varmodel::ShockConfig shocks;  ///< spike process (defaults match Fig. 3 shape)
};

/// result[p][k] = iteration time of rank p at step k, for the fixed
/// configuration `config_point` evaluated on `landscape`.
std::vector<std::vector<double>> generate_trace(
    const core::Landscape& landscape, const core::Point& config_point,
    const TraceConfig& config);

/// Flattens a per-rank trace into one sample vector (the paper's "pdf of
/// all 64 processors performance data").
std::vector<double> flatten(const std::vector<std::vector<double>>& trace);

/// Pearson correlation between two ranks' iteration-time series — used to
/// verify the cross-processor similarity Fig. 3 shows.
double rank_correlation(const std::vector<double>& a,
                        const std::vector<double>& b);

}  // namespace protuner::gs2
