#include "gs2/landscape_spec.h"

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "gs2/database.h"
#include "gs2/surface.h"

namespace protuner::gs2 {

namespace {

using Reg = spec::Registrar<LandscapeRegistry>;

LandscapeRegistry& mutable_registry() {
  static LandscapeRegistry registry("landscape");
  return registry;
}

SurfaceConfig surface_config(spec::Options& o) {
  SurfaceConfig cfg;
  cfg.work_scale = o.get_double("work", cfg.work_scale, 1e-9, 1e3);
  cfg.alltoall_cost = o.get_double("alltoall", cfg.alltoall_cost, 0.0, 1e3);
  cfg.pernode_cost = o.get_double("pernode", cfg.pernode_cost, 0.0, 1e3);
  cfg.ripple = o.get_double("ripple", cfg.ripple, 0.0, 10.0);
  cfg.base_time = o.get_double("base", cfg.base_time, 0.0, 1e3);
  return cfg;
}

/// N continuous axes over [0, 10]; the synthetic surfaces put their global
/// minimum at a deterministic interior point that is NOT the centre, so a
/// strategy that never moves cannot look optimal.
core::ParameterSpace synthetic_space(std::size_t dims) {
  std::vector<core::Parameter> params;
  params.reserve(dims);
  for (std::size_t i = 0; i < dims; ++i) {
    params.push_back(
        core::Parameter::continuous("x" + std::to_string(i), 0.0, 10.0));
  }
  return core::ParameterSpace(std::move(params));
}

core::Point synthetic_minimum(std::size_t dims) {
  core::Point m(dims);
  for (std::size_t i = 0; i < dims; ++i) {
    // 2.0, 7.0, 3.0, 6.0, ... — alternating off-centre coordinates.
    m[i] = (i % 2 == 0) ? 2.0 : 7.0;
    if (i >= 2) m[i] += (i % 2 == 0) ? 1.0 : -1.0;
  }
  return m;
}

const Reg reg_gs2{
    mutable_registry(),
    "gs2",
    {},
    "analytic GS2 surrogate surface over (ntheta, negrid, nodes)",
    "gs2:work=0.006,alltoall=0.03,pernode=0.004,ripple=0.25,base=0.05",
    [](spec::Options& o) -> LandscapeBundle {
      return {gs2_space(), std::make_shared<Gs2Surface>(surface_config(o))};
    }};

const Reg reg_gs2db{
    mutable_registry(),
    "gs2db",
    {},
    "GS2 surface measured into a sparse database (the paper's substrate)",
    "gs2db:stride=2,k=4,power=2",
    [](spec::Options& o) -> LandscapeBundle {
      DatabaseOptions db;
      db.stride = static_cast<std::size_t>(
          o.get_int("stride", static_cast<long>(db.stride), 1, 64));
      db.interpolation_neighbors = static_cast<std::size_t>(o.get_int(
          "k", static_cast<long>(db.interpolation_neighbors), 1, 64));
      db.idw_power = o.get_double("power", db.idw_power, 0.1, 16.0);
      const SurfaceConfig surface = surface_config(o);
      const core::ParameterSpace space = gs2_space();
      return {space, std::make_shared<Database>(Database::measure(
                         space, Gs2Surface(surface), db))};
    }};

const Reg reg_quad{
    mutable_registry(),
    "quad",
    {"quadratic"},
    "convex quadratic bowl (dims continuous axes, off-centre minimum)",
    "quad:dims=3,floor=1.0,curv=0.05",
    [](spec::Options& o) -> LandscapeBundle {
      const auto dims = static_cast<std::size_t>(o.get_int("dims", 3, 1, 64));
      const double floor_time = o.get_double("floor", 1.0, 1e-9, 1e9);
      const double curvature = o.get_double("curv", 0.05, 1e-9, 1e9);
      return {synthetic_space(dims),
              std::make_shared<core::QuadraticLandscape>(
                  synthetic_minimum(dims), floor_time, curvature)};
    }};

const Reg reg_multimodal{
    mutable_registry(),
    "multimodal",
    {"rastrigin"},
    "Rastrigin-style multimodal surface (amp/freq control the trap field)",
    "multimodal:dims=3,floor=1.0,amp=0.3,freq=1.5",
    [](spec::Options& o) -> LandscapeBundle {
      const auto dims = static_cast<std::size_t>(o.get_int("dims", 3, 1, 64));
      const double floor_time = o.get_double("floor", 1.0, 1e-9, 1e9);
      const double amplitude = o.get_double("amp", 0.3, 0.0, 1e9);
      const double frequency = o.get_double("freq", 1.5, 1e-9, 1e3);
      return {synthetic_space(dims),
              std::make_shared<core::MultimodalLandscape>(
                  synthetic_minimum(dims), floor_time, amplitude, frequency)};
    }};

const Reg reg_mixed{
    mutable_registry(),
    "mixed",
    {},
    "integer + discrete + continuous axes (strategy-contract stress space)",
    "mixed",
    [](spec::Options&) -> LandscapeBundle {
      core::ParameterSpace space({
          core::Parameter::integer("i", 0, 15),
          core::Parameter::discrete("d", {1.0, 2.0, 4.0, 8.0}),
          core::Parameter::continuous("c", -1.0, 1.0),
      });
      auto land = std::make_shared<core::FunctionLandscape>(
          "Mixed", [](const core::Point& x) {
            return 1.0 + 0.05 * (x[0] - 7.0) * (x[0] - 7.0) + 0.1 * x[1] +
                   0.5 * x[2] * x[2];
          });
      return {std::move(space), std::move(land)};
    }};

}  // namespace

LandscapeRegistry& landscape_registry() { return mutable_registry(); }

LandscapeBundle make_landscape(std::string_view text) {
  return landscape_registry().make(spec::parse(text));
}

}  // namespace protuner::gs2
