#include "gs2/database.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstring>
#include <istream>
#include <limits>
#include <mutex>
#include <ostream>
#include <shared_mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace protuner::gs2 {

namespace {

/// Admissible values of one parameter, decimated by `stride`.
std::vector<double> axis_values(const core::Parameter& p, std::size_t stride) {
  std::vector<double> all;
  switch (p.kind()) {
    case core::ParamKind::kDiscrete:
      all = p.values();
      break;
    case core::ParamKind::kInteger:
      for (double v = p.lower(); v <= p.upper(); v += 1.0) all.push_back(v);
      break;
    case core::ParamKind::kContinuous: {
      // Sample nine evenly spaced levels for continuous axes.
      constexpr int kLevels = 9;
      for (int i = 0; i < kLevels; ++i) {
        all.push_back(p.lower() + p.range() * i / (kLevels - 1));
      }
      break;
    }
  }
  std::vector<double> out;
  for (std::size_t i = 0; i < all.size(); i += stride) out.push_back(all[i]);
  // Always keep the last value so the grid spans the full range.
  if (out.back() != all.back()) out.push_back(all.back());
  return out;
}

/// SplitMix64-style avalanche over the raw coordinate bits; the shard index
/// only needs to spread nearby grid points across shards.
std::uint64_t point_hash(const core::Point& x) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ x.size();
  for (const double c : x) {
    std::uint64_t bits = std::bit_cast<std::uint64_t>(c);
    bits = (bits ^ (bits >> 30)) * 0xbf58476d1ce4e5b9ULL;
    bits = (bits ^ (bits >> 27)) * 0x94d049bb133111ebULL;
    h = (h ^ (bits ^ (bits >> 31))) * 0x9e3779b97f4a7c15ULL;
  }
  return h ^ (h >> 32);
}

}  // namespace

Database::Cache::Shard& Database::Cache::shard_for(const core::Point& x) {
  return shards[point_hash(x) % kShards];
}

Database::Database(core::ParameterSpace space, DatabaseOptions options)
    : space_(std::move(space)),
      options_(options),
      cache_(std::make_unique<Cache>()) {
  assert(options_.interpolation_neighbors >= 1);
  assert(options_.idw_power > 0.0);
}

Database Database::measure(const core::ParameterSpace& space,
                           const core::Landscape& source,
                           const DatabaseOptions& options,
                           const varmodel::NoiseModel* noise,
                           std::uint64_t seed) {
  Database db(space, options);
  util::Rng rng(seed);

  std::vector<std::vector<double>> axes;
  axes.reserve(space.size());
  for (std::size_t i = 0; i < space.size(); ++i) {
    axes.push_back(axis_values(space.param(i), options.stride));
  }

  // Cartesian product over the decimated axes.
  core::Point x(space.size());
  std::vector<std::size_t> idx(space.size(), 0);
  for (;;) {
    for (std::size_t i = 0; i < space.size(); ++i) x[i] = axes[i][idx[i]];
    double t = source.clean_time(x);
    if (noise != nullptr) t += noise->sample(t, rng);
    db.insert(x, t);
    // Odometer increment.
    std::size_t axis = 0;
    while (axis < space.size() && ++idx[axis] == axes[axis].size()) {
      idx[axis] = 0;
      ++axis;
    }
    if (axis == space.size()) break;
  }
  return db;
}

void Database::insert(const core::Point& x, double time) {
  assert(x.size() == space_.size());
  assert(time > 0.0);
  table_[x] = time;
  for (auto& shard : cache_->shards) {
    const std::unique_lock lock(shard.mutex);
    shard.map.clear();  // interpolated values may all have changed
  }
}

void Database::save(std::ostream& out) const {
  out.precision(std::numeric_limits<double>::max_digits10);
  for (const auto& [pt, val] : table_) {
    for (double c : pt) out << c << ',';
    out << val << '\n';
  }
}

Database Database::load(std::istream& in, core::ParameterSpace space,
                        DatabaseOptions options) {
  Database db(std::move(space), options);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream row(line);
    std::vector<double> fields;
    std::string cell;
    while (std::getline(row, cell, ',')) {
      char* end = nullptr;
      const double v = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str() || *end != '\0') {
        throw std::runtime_error("database load: bad number at line " +
                                 std::to_string(lineno));
      }
      fields.push_back(v);
    }
    if (fields.size() != db.space_.size() + 1) {
      throw std::runtime_error("database load: arity mismatch at line " +
                               std::to_string(lineno));
    }
    const double time = fields.back();
    fields.pop_back();
    db.insert(fields, time);
  }
  return db;
}

std::optional<double> Database::exact(const core::Point& x) const {
  const auto it = table_.find(x);
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

double Database::normalized_distance2(const core::Point& a,
                                      const core::Point& b) const {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = (a[i] - b[i]) / space_.param(i).range();
    s += d * d;
  }
  return s;
}

double Database::clean_time(const core::Point& x) const {
  assert(x.size() == space_.size());
  if (const auto hit = exact(x)) return *hit;

  Cache::Shard& shard = cache_->shard_for(x);
  {
    const std::shared_lock lock(shard.mutex);
    const auto it = shard.map.find(x);
    if (it != shard.map.end()) return it->second;
  }

  // k nearest entries by range-normalised distance.
  const std::size_t k =
      std::min(options_.interpolation_neighbors, table_.size());
  assert(k >= 1);
  std::vector<std::pair<double, double>> nearest;  // (dist2, value)
  nearest.reserve(table_.size());
  for (const auto& [pt, val] : table_) {
    nearest.emplace_back(normalized_distance2(x, pt), val);
  }
  std::partial_sort(nearest.begin(), nearest.begin() + static_cast<long>(k),
                    nearest.end());

  // Inverse-distance weighting (paper: "weighted average of its closest
  // neighbors performance values").
  double wsum = 0.0;
  double vsum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double d = std::sqrt(nearest[i].first);
    const double w = 1.0 / std::pow(d + 1e-12, options_.idw_power);
    wsum += w;
    vsum += w * nearest[i].second;
  }
  const double value = vsum / wsum;

  {
    const std::unique_lock lock(shard.mutex);
    shard.map[x] = value;
  }
  return value;
}

}  // namespace protuner::gs2
