#include "gs2/database.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstring>
#include <istream>
#include <limits>
#include <mutex>
#include <ostream>
#include <shared_mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/simd.h"

namespace protuner::gs2 {

namespace {

/// Which read-path tier answered a clean-time lookup.  Process-global (all
/// databases share them): the counters live in the global registry under
/// protuner_db_lookups_total{tier=...}, resolved once on first use.
struct TierCounters {
  obs::Counter& exact;
  obs::Counter& memo;
  obs::Counter& kdtree;
};

TierCounters& tier_counters() {
  static TierCounters c{
      obs::Registry::global().counter(
          "protuner_db_lookups_total",
          "Database clean-time lookups by answering tier",
          {{"tier", "exact"}}),
      obs::Registry::global().counter("protuner_db_lookups_total", {},
                                      {{"tier", "memo"}}),
      obs::Registry::global().counter("protuner_db_lookups_total", {},
                                      {{"tier", "kdtree"}})};
  return c;
}

/// Admissible values of one parameter, decimated by `stride`.
std::vector<double> axis_values(const core::Parameter& p, std::size_t stride) {
  std::vector<double> all;
  switch (p.kind()) {
    case core::ParamKind::kDiscrete:
      all = p.values();
      break;
    case core::ParamKind::kInteger:
      for (double v = p.lower(); v <= p.upper(); v += 1.0) all.push_back(v);
      break;
    case core::ParamKind::kContinuous: {
      // Sample nine evenly spaced levels for continuous axes.
      constexpr int kLevels = 9;
      for (int i = 0; i < kLevels; ++i) {
        all.push_back(p.lower() + p.range() * i / (kLevels - 1));
      }
      break;
    }
  }
  return Database::decimate_axis(std::move(all), stride);
}

/// SplitMix64-style avalanche over the raw coordinate bits.  Used both for
/// shard selection and as the open-addressing key, so it must agree with
/// operator== on doubles: -0.0 is canonicalised to +0.0 before hashing.
/// Never returns 0 (reserved as the empty-slot sentinel).
std::uint64_t point_hash(const core::Point& x) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ x.size();
  for (const double c : x) {
    std::uint64_t bits = std::bit_cast<std::uint64_t>(c == 0.0 ? 0.0 : c);
    bits = (bits ^ (bits >> 30)) * 0xbf58476d1ce4e5b9ULL;
    bits = (bits ^ (bits >> 27)) * 0x94d049bb133111ebULL;
    h = (h ^ (bits ^ (bits >> 31))) * 0x9e3779b97f4a7c15ULL;
  }
  h ^= h >> 32;
  return h == 0 ? 1 : h;
}

}  // namespace

// ---------------------------------------------------------------------------
// Open-addressing memo map: (precomputed hash, point) -> interpolated value.
// Linear probing over a power-of-two slot array; hash 0 marks an empty slot
// (point_hash never returns 0).  The read path allocates nothing and touches
// the Point only for one vector equality on a full hash match.
struct Database::FlatMap {
  struct Slot {
    std::uint64_t hash = 0;
    double value = 0.0;
    core::Point key;
  };
  std::vector<Slot> slots;
  std::size_t count = 0;

  const double* find(std::uint64_t h, const core::Point& x) const {
    if (slots.empty()) return nullptr;
    const std::size_t mask = slots.size() - 1;
    for (std::size_t i = h & mask;; i = (i + 1) & mask) {
      const Slot& s = slots[i];
      if (s.hash == 0) return nullptr;
      if (s.hash == h && s.key == x) return &s.value;
    }
  }

  void insert(std::uint64_t h, const core::Point& x, double value) {
    if (slots.empty() || (count + 1) * 10 > slots.size() * 7) grow();
    const std::size_t mask = slots.size() - 1;
    for (std::size_t i = h & mask;; i = (i + 1) & mask) {
      Slot& s = slots[i];
      if (s.hash == 0) {
        s.hash = h;
        s.value = value;
        s.key = x;
        ++count;
        return;
      }
      if (s.hash == h && s.key == x) return;  // racing recompute: same value
    }
  }

  void clear() {
    for (Slot& s : slots) {
      s.hash = 0;
      s.key.clear();
    }
    count = 0;
  }

 private:
  void grow() {
    std::vector<Slot> old = std::move(slots);
    slots.assign(old.empty() ? 64 : old.size() * 2, Slot{});
    count = 0;
    const std::size_t mask = slots.size() - 1;
    for (Slot& s : old) {
      if (s.hash == 0) continue;
      std::size_t i = s.hash & mask;
      while (slots[i].hash != 0) i = (i + 1) & mask;
      slots[i] = std::move(s);
      ++count;
    }
  }
};

// ---------------------------------------------------------------------------
// Sharded memo cache.  See the invalidation discussion in database.h: shard
// assignment is by hash, so one insert can affect entries in every shard —
// a full clear is semantically required, and is made O(1) by bumping
// `epoch`; shards lazily reset themselves on next touch.
struct Database::Cache {
  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable std::shared_mutex mutex;
    std::uint64_t epoch = 0;
    FlatMap map;
  };
  std::atomic<std::uint64_t> epoch{0};
  std::array<Shard, kShards> shards;

  Shard& shard(std::uint64_t h) { return shards[h % kShards]; }
};

// ---------------------------------------------------------------------------
// Spatial index: SoA storage of the table (tree order), a median-split k-d
// tree over it, and an open-addressing exact-hit table.  Built once per
// table revision; immutable afterwards, so concurrent lookups need no
// locking.
//
// Exactness contract: the k-NN selection and the per-neighbour distances
// must reproduce the brute-force reference bit-for-bit.  Distances are
// therefore computed with the reference's exact expression
// ((x[d] - p[d]) / range[d], squared and summed left-to-right), neighbours
// are ranked by the reference's (dist2, value) pair order (partial_sort on
// pairs), and subtree pruning is strict (>) so equal-distance candidates
// with smaller values are never skipped.
struct Database::Index {
  std::size_t dim = 0;
  std::size_t n = 0;
  std::vector<double> pts;    ///< row-major coordinates, tree order
  std::vector<double> vals;   ///< measured times, tree order
  std::vector<double> range;  ///< per-axis range for normalisation

  // SoA mirror of pts for the simd:: fast-math scans: rows grouped into
  // blocks of simd::kBlock, coordinates transposed within a block
  // (soa[(block*dim + d)*kBlock + lane] = row block*kBlock+lane, axis d),
  // zero-padded to a whole final block.  inv_range caches 1/range[d] so the
  // fma reduction trades the reference's division for a multiply — one of
  // the documented fast-math deviations.
  std::vector<double> soa;
  std::vector<double> inv_range;
  std::size_t blocks = 0;

  /// Fast-path leaf/full scans chunk the SoA this many blocks at a time
  /// into a stack buffer.
  static constexpr std::size_t kScanChunk = 4;

  struct Node {
    std::uint32_t begin = 0, end = 0;  ///< row range (leaf scan)
    std::uint32_t left = 0, right = 0;
    std::int32_t axis = -1;  ///< -1 marks a leaf
    double lo_split = 0.0;   ///< max coordinate of the left subtree on axis
    double hi_split = 0.0;   ///< min coordinate of the right subtree on axis
  };
  std::vector<Node> nodes;

  // Exact-hit table: hash -> tree-order row, linear probing, hash 0 empty.
  std::vector<std::uint64_t> slot_hash;
  std::vector<std::uint32_t> slot_row;

  bool row_equals(std::uint32_t r, const core::Point& x) const {
    const double* p = &pts[static_cast<std::size_t>(r) * dim];
    for (std::size_t d = 0; d < dim; ++d) {
      if (p[d] != x[d]) return false;
    }
    return true;
  }

  const double* exact_find(std::uint64_t h, const core::Point& x) const {
    if (slot_hash.empty() || x.size() != dim) return nullptr;
    const std::size_t mask = slot_hash.size() - 1;
    for (std::size_t i = h & mask;; i = (i + 1) & mask) {
      if (slot_hash[i] == 0) return nullptr;
      if (slot_hash[i] == h && row_equals(slot_row[i], x)) {
        return &vals[slot_row[i]];
      }
    }
  }

  double dist2(std::uint32_t r, const double* x) const {
    const double* p = &pts[static_cast<std::size_t>(r) * dim];
    double s = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      const double diff = (x[d] - p[d]) / range[d];
      s += diff * diff;
    }
    return s;
  }

  /// Heap insert shared by the scalar and fast leaf scans: keeps the k
  /// smallest (dist2, value) pairs (max-heap under pair ordering — top is
  /// the current worst neighbour).
  static void heap_push(std::vector<std::pair<double, double>>& heap,
                        std::size_t k, std::pair<double, double> cand) {
    if (heap.size() < k) {
      heap.push_back(cand);
      std::push_heap(heap.begin(), heap.end());
    } else if (cand < heap.front()) {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = cand;
      std::push_heap(heap.begin(), heap.end());
    }
  }

  /// Fast-math scan over rows [begin, end): distances come from the SoA
  /// blocks via simd::dist2_blocks (fma reduction, multiply by the cached
  /// 1/range), chunked through a small stack buffer.  ULP-level deviation
  /// from dist2(), which is why callers only take this path behind the
  /// fast-math opt-in.
  void scan_rows_fast(std::uint32_t begin, std::uint32_t end, const double* x,
                      std::size_t k,
                      std::vector<std::pair<double, double>>& heap) const {
    namespace simd = util::simd;
    double dbuf[simd::kBlock * kScanChunk];
    std::uint32_t r = begin;
    while (r < end) {
      const std::size_t b0 = r / simd::kBlock;
      const std::size_t b_end = (static_cast<std::size_t>(end) +
                                 simd::kBlock - 1) / simd::kBlock;
      const std::size_t b1 = std::min(b_end, b0 + kScanChunk);
      simd::dist2_blocks(soa.data(), dim, b0, b1, x, inv_range.data(), dbuf);
      const std::uint32_t lim = std::min<std::size_t>(end, b1 * simd::kBlock);
      for (; r < lim; ++r) {
        heap_push(heap, k, {dbuf[r - b0 * simd::kBlock], vals[r]});
      }
    }
  }

  /// Collects the k nearest rows as (dist2, value) pairs into `heap`
  /// (a max-heap under pair ordering — top is the current worst neighbour).
  /// `fast` routes leaf scans through the simd:: SoA kernel; callers pass
  /// util::simd::fast_math_enabled() sampled once per query.
  void knn(const double* x, std::size_t k,
           std::vector<std::pair<double, double>>& heap, bool fast) const {
    heap.clear();
    if (n == 0 || k == 0) return;
    search(0, x, k, heap, fast);
  }

  void search(std::uint32_t id, const double* x, std::size_t k,
              std::vector<std::pair<double, double>>& heap, bool fast) const {
    const Node& nd = nodes[id];
    if (nd.axis < 0) {
      if (fast) {
        scan_rows_fast(nd.begin, nd.end, x, k, heap);
        return;
      }
      for (std::uint32_t r = nd.begin; r < nd.end; ++r) {
        heap_push(heap, k, {dist2(r, x), vals[r]});
      }
      return;
    }
    const double xa = x[static_cast<std::size_t>(nd.axis)];
    const double ra = range[static_cast<std::size_t>(nd.axis)];
    // Lower bound on the normalised dist2 of any point in each subtree,
    // computed with the same expression shape as dist2() so the bound is
    // conservative in floating point as well.
    double lb = 0.0;
    if (xa > nd.lo_split) {
      const double diff = (xa - nd.lo_split) / ra;
      lb = diff * diff;
    }
    double rb = 0.0;
    if (xa < nd.hi_split) {
      const double diff = (xa - nd.hi_split) / ra;
      rb = diff * diff;
    }
    const std::uint32_t first = lb <= rb ? nd.left : nd.right;
    const std::uint32_t second = lb <= rb ? nd.right : nd.left;
    const double first_bound = lb <= rb ? lb : rb;
    const double second_bound = lb <= rb ? rb : lb;
    // Prune only on strict >: an equal-bound subtree can still hold a point
    // at the same distance with a smaller value (reference tie-break).
    if (heap.size() < k || first_bound <= heap.front().first) {
      search(first, x, k, heap, fast);
    }
    if (heap.size() < k || second_bound <= heap.front().first) {
      search(second, x, k, heap, fast);
    }
  }

  /// Recursive median-split builder over rows[b, e); returns the node id.
  static std::uint32_t build_node(Index& idx, std::vector<std::uint32_t>& rows,
                                  const std::vector<double>& rp,
                                  std::uint32_t b, std::uint32_t e);
};

std::uint32_t Database::Index::build_node(Index& idx,
                                          std::vector<std::uint32_t>& rows,
                                          const std::vector<double>& rp,
                                          std::uint32_t b, std::uint32_t e) {
  constexpr std::uint32_t kLeafSize = 8;
  const std::uint32_t id = static_cast<std::uint32_t>(idx.nodes.size());
  idx.nodes.emplace_back();
  idx.nodes[id].begin = b;
  idx.nodes[id].end = e;
  if (e - b <= kLeafSize) return id;  // leaf (axis stays -1)

  // Split on the axis with the widest normalised spread.
  const std::size_t dim = idx.dim;
  std::size_t axis = 0;
  double best_spread = -1.0;
  for (std::size_t d = 0; d < dim; ++d) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (std::uint32_t i = b; i < e; ++i) {
      const double c = rp[static_cast<std::size_t>(rows[i]) * dim + d];
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
    const double spread = (hi - lo) / idx.range[d];
    if (spread > best_spread) {
      best_spread = spread;
      axis = d;
    }
  }
  if (best_spread <= 0.0) return id;  // all points coincide: keep as leaf

  const std::uint32_t mid = b + (e - b) / 2;
  std::nth_element(rows.begin() + b, rows.begin() + mid, rows.begin() + e,
                   [&](std::uint32_t r, std::uint32_t q) {
                     return rp[static_cast<std::size_t>(r) * dim + axis] <
                            rp[static_cast<std::size_t>(q) * dim + axis];
                   });
  double lo_split = -std::numeric_limits<double>::infinity();
  for (std::uint32_t i = b; i < mid; ++i) {
    lo_split = std::max(lo_split,
                        rp[static_cast<std::size_t>(rows[i]) * dim + axis]);
  }
  double hi_split = std::numeric_limits<double>::infinity();
  for (std::uint32_t i = mid; i < e; ++i) {
    hi_split = std::min(hi_split,
                        rp[static_cast<std::size_t>(rows[i]) * dim + axis]);
  }
  idx.nodes[id].axis = static_cast<std::int32_t>(axis);
  idx.nodes[id].lo_split = lo_split;
  idx.nodes[id].hi_split = hi_split;
  const std::uint32_t left = build_node(idx, rows, rp, b, mid);
  const std::uint32_t right = build_node(idx, rows, rp, mid, e);
  idx.nodes[id].left = left;
  idx.nodes[id].right = right;
  return id;
}

Database::Database(core::ParameterSpace space, DatabaseOptions options)
    : space_(std::move(space)),
      options_(options),
      cache_(std::make_unique<Cache>()) {
  assert(options_.interpolation_neighbors >= 1);
  assert(options_.idw_power > 0.0);
}

Database::Database(Database&& other) noexcept
    : space_(std::move(other.space_)),
      options_(other.options_),
      table_(std::move(other.table_)),
      index_(std::move(other.index_)),
      index_ptr_(other.index_ptr_.load(std::memory_order_acquire)),
      cache_(std::move(other.cache_)) {
  other.index_ptr_.store(nullptr, std::memory_order_release);
}

Database& Database::operator=(Database&& other) noexcept {
  if (this != &other) {
    space_ = std::move(other.space_);
    options_ = other.options_;
    table_ = std::move(other.table_);
    index_ = std::move(other.index_);
    index_ptr_.store(other.index_ptr_.load(std::memory_order_acquire),
                     std::memory_order_release);
    cache_ = std::move(other.cache_);
    other.index_ptr_.store(nullptr, std::memory_order_release);
  }
  return *this;
}

Database::~Database() = default;

Database Database::measure(const core::ParameterSpace& space,
                           const core::Landscape& source,
                           const DatabaseOptions& options,
                           const varmodel::NoiseModel* noise,
                           std::uint64_t seed) {
  Database db(space, options);
  util::Rng rng(seed);

  std::vector<std::vector<double>> axes;
  axes.reserve(space.size());
  for (std::size_t i = 0; i < space.size(); ++i) {
    axes.push_back(axis_values(space.param(i), options.stride));
  }

  // Cartesian product over the decimated axes.  Bulk inserts: no per-entry
  // cache invalidation (the database is still private to this builder);
  // the index is built once, lazily, on the first lookup.
  core::Point x(space.size());
  std::vector<std::size_t> idx(space.size(), 0);
  for (;;) {
    for (std::size_t i = 0; i < space.size(); ++i) x[i] = axes[i][idx[i]];
    double t = source.clean_time(x);
    if (noise != nullptr) t += noise->sample(t, rng);
    db.insert_bulk(x, t);
    // Odometer increment.
    std::size_t axis = 0;
    while (axis < space.size() && ++idx[axis] == axes[axis].size()) {
      idx[axis] = 0;
      ++axis;
    }
    if (axis == space.size()) break;
  }
  return db;
}

void Database::insert_bulk(const core::Point& x, double time) {
  assert(x.size() == space_.size());
  assert(time > 0.0);
  table_[x] = time;
}

void Database::insert(const core::Point& x, double time) {
  assert(x.size() == space_.size());
  assert(time > 0.0);
  const auto [it, inserted] = table_.try_emplace(x, time);
  if (!inserted) {
    if (it->second == time) return;  // no observable change: keep everything
    it->second = time;
  }
  // The new measurement may enter the k-NN set of any interpolated point,
  // and shards are keyed by hash rather than by position, so every shard
  // is potentially stale.  Invalidate in O(1): drop the index (rebuilt on
  // next lookup) and bump the cache generation (shards reset lazily).
  index_ptr_.store(nullptr, std::memory_order_release);
  index_.reset();
  cache_->epoch.fetch_add(1, std::memory_order_acq_rel);
}

std::uint64_t Database::version() const {
  return cache_->epoch.load(std::memory_order_acquire);
}

void Database::save(std::ostream& out) const {
  out.precision(std::numeric_limits<double>::max_digits10);
  for (const auto& [pt, val] : table_) {
    for (double c : pt) out << c << ',';
    out << val << '\n';
  }
}

Database Database::load(std::istream& in, core::ParameterSpace space,
                        DatabaseOptions options) {
  Database db(std::move(space), options);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream row(line);
    std::vector<double> fields;
    std::string cell;
    while (std::getline(row, cell, ',')) {
      char* end = nullptr;
      const double v = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str() || *end != '\0') {
        throw std::runtime_error("database load: bad number at line " +
                                 std::to_string(lineno));
      }
      fields.push_back(v);
    }
    if (fields.size() != db.space_.size() + 1) {
      throw std::runtime_error("database load: arity mismatch at line " +
                               std::to_string(lineno));
    }
    const double time = fields.back();
    fields.pop_back();
    db.insert_bulk(fields, time);
  }
  return db;
}

const Database::Index& Database::index() const {
  if (const Index* idx = index_ptr_.load(std::memory_order_acquire)) {
    return *idx;
  }
  const std::lock_guard lock(index_build_mutex_);
  if (index_ == nullptr) {
    auto idx = std::make_unique<Index>();
    idx->dim = space_.size();
    idx->n = table_.size();
    idx->range.reserve(idx->dim);
    for (std::size_t d = 0; d < idx->dim; ++d) {
      idx->range.push_back(space_.param(d).range());
    }
    // Raw AoS copy in table order, then a row permutation from the
    // recursive median splits, then the final SoA-per-row fill.
    std::vector<double> rp(idx->n * idx->dim);
    std::vector<double> rv(idx->n);
    std::size_t r = 0;
    for (const auto& [pt, val] : table_) {
      std::copy(pt.begin(), pt.end(), rp.begin() + r * idx->dim);
      rv[r] = val;
      ++r;
    }
    if (idx->n > 0) {
      std::vector<std::uint32_t> rows(idx->n);
      for (std::uint32_t i = 0; i < idx->n; ++i) rows[i] = i;
      Index::build_node(*idx, rows, rp, 0, static_cast<std::uint32_t>(idx->n));
      idx->pts.resize(idx->n * idx->dim);
      idx->vals.resize(idx->n);
      for (std::size_t i = 0; i < idx->n; ++i) {
        const std::size_t src = rows[i];
        std::copy(rp.begin() + src * idx->dim,
                  rp.begin() + (src + 1) * idx->dim,
                  idx->pts.begin() + i * idx->dim);
        idx->vals[i] = rv[src];
      }
      // Block-transposed SoA mirror of pts for the simd:: fast-math scans,
      // zero-padded to a whole final block (padded lanes produce finite
      // garbage distances that the row-bounded scan loops never read).
      namespace simd = util::simd;
      idx->blocks = (idx->n + simd::kBlock - 1) / simd::kBlock;
      idx->soa.assign(idx->blocks * idx->dim * simd::kBlock, 0.0);
      for (std::size_t i = 0; i < idx->n; ++i) {
        const std::size_t blk = i / simd::kBlock;
        const std::size_t lane = i % simd::kBlock;
        for (std::size_t d = 0; d < idx->dim; ++d) {
          idx->soa[(blk * idx->dim + d) * simd::kBlock + lane] =
              idx->pts[i * idx->dim + d];
        }
      }
      idx->inv_range.reserve(idx->dim);
      for (std::size_t d = 0; d < idx->dim; ++d) {
        idx->inv_range.push_back(1.0 / idx->range[d]);
      }
      // Exact-hit table at load factor <= 0.5.
      std::size_t cap = 16;
      while (cap < idx->n * 2) cap *= 2;
      idx->slot_hash.assign(cap, 0);
      idx->slot_row.assign(cap, 0);
      const std::size_t mask = cap - 1;
      core::Point tmp(idx->dim);
      for (std::size_t i = 0; i < idx->n; ++i) {
        std::copy(idx->pts.begin() + i * idx->dim,
                  idx->pts.begin() + (i + 1) * idx->dim, tmp.begin());
        const std::uint64_t h = point_hash(tmp);
        std::size_t pos = h & mask;
        while (idx->slot_hash[pos] != 0) pos = (pos + 1) & mask;
        idx->slot_hash[pos] = h;
        idx->slot_row[pos] = static_cast<std::uint32_t>(i);
      }
    }
    index_ = std::move(idx);
    index_ptr_.store(index_.get(), std::memory_order_release);
  }
  return *index_;
}

std::optional<double> Database::exact(const core::Point& x) const {
  if (table_.empty()) return std::nullopt;
  const Index& idx = index();
  if (const double* v = idx.exact_find(point_hash(x), x)) return *v;
  return std::nullopt;
}

double Database::normalized_distance2(const core::Point& a,
                                      const core::Point& b) const {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = (a[i] - b[i]) / space_.param(i).range();
    s += d * d;
  }
  return s;
}

double Database::interpolate_reference(const core::Point& x) const {
  assert(x.size() == space_.size());
  // k nearest entries by range-normalised distance: full scan + selection.
  const std::size_t k =
      std::min(options_.interpolation_neighbors, table_.size());
  assert(k >= 1);
  // Bounded-heap selection in per-thread scratch.  This keeps the k
  // smallest (dist2, value) pairs — the same multiset the historical
  // "materialise all + partial_sort" implementation selected (pairs that
  // compare equal are identical in both fields, so any representative is
  // interchangeable) — then sorts them ascending, making the IDW
  // accumulation below bit-identical to the old code while performing no
  // steady-state allocation.
  thread_local std::vector<std::pair<double, double>> nearest;
  nearest.clear();
  if (util::simd::fast_math_enabled() && !table_.empty()) {
    // Fast-math: full scan over the index's SoA coordinate blocks with the
    // simd:: fma-reduced distance kernel.  ULP-level deviation from
    // normalized_distance2 (fma rounding, multiply by cached 1/range), so
    // this path only runs behind the explicit opt-in.
    const Index& idx = index();
    idx.scan_rows_fast(0, static_cast<std::uint32_t>(idx.n), x.data(), k,
                       nearest);
  } else {
    for (const auto& [pt, val] : table_) {
      Index::heap_push(nearest, k, {normalized_distance2(x, pt), val});
    }
  }
  std::sort(nearest.begin(), nearest.end());

  // Inverse-distance weighting (paper: "weighted average of its closest
  // neighbors performance values").
  double wsum = 0.0;
  double vsum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double d = std::sqrt(nearest[i].first);
    const double w = 1.0 / std::pow(d + 1e-12, options_.idw_power);
    wsum += w;
    vsum += w * nearest[i].second;
  }
  return vsum / wsum;
}

std::vector<double> Database::decimate_axis(std::vector<double> all,
                                            std::size_t stride) {
  assert(stride >= 1);
  // Guard the empty axis up front: the keep-last step below dereferences
  // out.back(), which was UB on an empty axis (e.g. a discrete parameter
  // with no values in an assertion-free build).
  if (all.empty()) return all;
  std::vector<double> out;
  for (std::size_t i = 0; i < all.size(); i += stride) out.push_back(all[i]);
  // Always keep the last value so the grid spans the full range.
  if (out.back() != all.back()) out.push_back(all.back());
  return out;
}

double Database::interpolate_uncached(const core::Point& x) const {
  return interpolate_indexed(index(), x);
}

double Database::interpolate_indexed(const Index& idx,
                                     const core::Point& x) const {
  const std::size_t k = std::min(options_.interpolation_neighbors, idx.n);
  assert(k >= 1);
  // Per-thread scratch: the neighbour heap is reused across lookups so the
  // steady-state interpolation path performs no allocation.  The fast-math
  // flag is sampled once per query and threaded through the recursion so a
  // concurrent toggle cannot mix kernels within one search.
  thread_local std::vector<std::pair<double, double>> heap;
  idx.knn(x.data(), k, heap, util::simd::fast_math_enabled());
  // Ascending (dist2, value) order — the exact order the reference's
  // partial_sort produces — so the IDW accumulation is bit-identical.
  std::sort(heap.begin(), heap.end());
  double wsum = 0.0;
  double vsum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double d = std::sqrt(heap[i].first);
    const double w = 1.0 / std::pow(d + 1e-12, options_.idw_power);
    wsum += w;
    vsum += w * heap[i].second;
  }
  return vsum / wsum;
}

double Database::clean_time(const core::Point& x) const {
  assert(x.size() == space_.size());
  const Index& idx = index();
  const std::uint64_t h = point_hash(x);
  TierCounters& tiers = tier_counters();
  if (const double* v = idx.exact_find(h, x)) {
    tiers.exact.add();
    return *v;
  }

  Cache::Shard& shard = cache_->shard(h);
  const std::uint64_t now = cache_->epoch.load(std::memory_order_acquire);
  {
    const std::shared_lock lock(shard.mutex);
    if (shard.epoch == now) {
      if (const double* v = shard.map.find(h, x)) {
        tiers.memo.add();
        return *v;
      }
    }
  }

  tiers.kdtree.add();
  const double value = interpolate_indexed(idx, x);

  {
    const std::unique_lock lock(shard.mutex);
    if (shard.epoch != now) {
      shard.map.clear();
      shard.epoch = now;
    }
    shard.map.insert(h, x, value);
  }
  return value;
}

void Database::clean_times(std::span<const core::Point> xs,
                           std::span<double> out) const {
  assert(xs.size() == out.size());
  if (xs.empty()) return;
  const Index& idx = index();
  const std::uint64_t now = cache_->epoch.load(std::memory_order_acquire);

  // Per-thread scratch: hashes and the indices of cache misses.
  thread_local std::vector<std::uint64_t> hashes;
  thread_local std::vector<std::size_t> misses;
  hashes.resize(xs.size());
  misses.clear();

  // Pass 1: exact hits and one memo probe per point.  Tier tallies are
  // batched locally — one relaxed add per tier per batch — so a wide batch
  // doesn't ping-pong the counters' cachelines between ranks.
  std::uint64_t exact_hits = 0;
  std::uint64_t memo_hits = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const core::Point& x = xs[i];
    assert(x.size() == space_.size());
    const std::uint64_t h = point_hash(x);
    hashes[i] = h;
    if (const double* v = idx.exact_find(h, x)) {
      out[i] = *v;
      ++exact_hits;
      continue;
    }
    Cache::Shard& shard = cache_->shard(h);
    const std::shared_lock lock(shard.mutex);
    if (shard.epoch == now) {
      if (const double* v = shard.map.find(h, x)) {
        out[i] = *v;
        ++memo_hits;
        continue;
      }
    }
    misses.push_back(i);
  }
  TierCounters& tiers = tier_counters();
  if (exact_hits > 0) tiers.exact.add(exact_hits);
  if (memo_hits > 0) tiers.memo.add(memo_hits);
  if (!misses.empty()) tiers.kdtree.add(misses.size());

  // Pass 2: interpolate each *unique* miss once (batches arrive one config
  // per rank, and replicated sampling makes intra-batch duplicates common),
  // publish it to the memo cache, and copy it to any duplicates.
  for (std::size_t m = 0; m < misses.size(); ++m) {
    const std::size_t i = misses[m];
    bool duplicate = false;
    for (std::size_t p = 0; p < m; ++p) {
      const std::size_t j = misses[p];
      if (hashes[j] == hashes[i] && xs[j] == xs[i]) {
        out[i] = out[j];
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    out[i] = interpolate_indexed(idx, xs[i]);
    Cache::Shard& shard = cache_->shard(hashes[i]);
    const std::unique_lock lock(shard.mutex);
    if (shard.epoch != now) {
      shard.map.clear();
      shard.epoch = now;
    }
    shard.map.insert(hashes[i], xs[i], out[i]);
  }
}

}  // namespace protuner::gs2
