// 2-D slicing of a performance landscape over a parameter space — the
// library form of the paper's Fig. 8 ("performance plot as a function of
// two tunable parameters, when the third parameter is fixed"), plus the
// local-minima census used to quantify "multiple local minimums".
#pragma once

#include <cstddef>
#include <vector>

#include "core/landscape.h"
#include "core/parameter_space.h"

namespace protuner::gs2 {

struct Slice {
  std::size_t axis_x = 0;           ///< parameter index on the x axis
  std::size_t axis_y = 0;           ///< parameter index on the y axis
  std::vector<double> x_values;     ///< admissible values swept on x
  std::vector<double> y_values;     ///< admissible values swept on y
  /// grid[i][j] = f at (x_values[i], y_values[j]); fixed axes hold the
  /// anchor's coordinates.
  std::vector<std::vector<double>> grid;

  double min_value = 0.0;
  double max_value = 0.0;

  /// Count of strict interior local minima (4-neighbourhood).
  std::size_t local_minima() const;

  /// Largest |difference| between 4-neighbour cells — the "non-smoothness"
  /// of the slice.
  double max_neighbor_jump() const;

  /// Character map rendering ('.' fast ... '#' slow), one row per x value.
  std::string ascii() const;
};

/// Evaluates the landscape over all admissible combinations of parameters
/// `axis_x` and `axis_y`, holding every other coordinate at `anchor`.
/// Continuous axes are sampled at `continuous_levels` points.
Slice take_slice(const core::ParameterSpace& space,
                 const core::Landscape& landscape, const core::Point& anchor,
                 std::size_t axis_x, std::size_t axis_y,
                 std::size_t continuous_levels = 9);

}  // namespace protuner::gs2
