#include "gs2/surface.h"

#include <cassert>
#include <cmath>
#include <numbers>
#include <vector>

namespace protuner::gs2 {

core::ParameterSpace gs2_space() {
  std::vector<double> ntheta_values;
  for (int v = 16; v <= 128; v += 2) ntheta_values.push_back(v);
  std::vector<double> nodes_values;
  for (int v = 4; v <= 128; v += 4) nodes_values.push_back(v);
  return core::ParameterSpace({
      core::Parameter::discrete("ntheta", std::move(ntheta_values)),
      core::Parameter::integer("negrid", 8, 64),
      core::Parameter::discrete("nodes", std::move(nodes_values)),
  });
}

Gs2Surface::Gs2Surface(SurfaceConfig config) : config_(config) {}

double Gs2Surface::clean_time(const core::Point& x) const {
  assert(x.size() == 3);
  const double ntheta = x[kNtheta];
  const double negrid = x[kNegrid];
  const double nodes = x[kNodes];
  assert(ntheta > 0.0 && negrid > 0.0 && nodes > 0.0);

  // Work: a spectral sweep over ntheta * negrid grid cells, distributed as
  // indivisible blocks of 32 cells ((theta, energy) panels).  Per-iteration
  // compute time is governed by the *slowest* node, which processes
  // ceil(blocks / nodes) blocks — this is the classic load-imbalance
  // staircase and the source of the cliffs between adjacent node counts
  // that the paper's Fig. 8 shows on the measured surface.
  const double work_units = ntheta * negrid;
  const double blocks = std::ceil(work_units / 32.0);
  const double per_node_blocks = std::ceil(blocks / nodes);
  const double compute = config_.work_scale * 32.0 * per_node_blocks;

  // Communication: log-depth collectives per iteration plus linear per-node
  // message handling on the root.
  const double comm = config_.alltoall_cost * std::log2(nodes) +
                      config_.pernode_cost * nodes;

  // Cache/blocking/layout modulation: two incommensurate interference
  // patterns over the parameter axes carve the surface into a field of
  // basins of varying depth — the rugged "multiple local minimums"
  // character of the measured surface in Fig. 8.  Multiplicative, so basin
  // depth scales with the runtime.
  const double s1 = std::sin(2.0 * std::numbers::pi * ntheta / 12.0) *
                    std::sin(2.0 * std::numbers::pi * negrid / 5.0);
  const double s2 = std::sin(2.0 * std::numbers::pi * ntheta / 34.0 + 1.0) *
                    std::sin(2.0 * std::numbers::pi * nodes / 28.0 + 0.5);
  const double ripple = 1.0 + config_.ripple * s1 + 0.6 * config_.ripple * s2;

  return (config_.base_time + compute + comm) * ripple;
}

}  // namespace protuner::gs2
