#include "gs2/trace.h"

#include <cassert>
#include <cmath>

namespace protuner::gs2 {

std::vector<std::vector<double>> generate_trace(
    const core::Landscape& landscape, const core::Point& config_point,
    const TraceConfig& config) {
  const double clean = landscape.clean_time(config_point);
  assert(clean > 0.0);
  varmodel::ShockTraceGenerator gen(config.shocks, config.ranks, config.seed);
  return gen.generate(clean, config.iterations);
}

std::vector<double> flatten(const std::vector<std::vector<double>>& trace) {
  std::vector<double> out;
  std::size_t total = 0;
  for (const auto& row : trace) total += row.size();
  out.reserve(total);
  for (const auto& row : trace) out.insert(out.end(), row.begin(), row.end());
  return out;
}

double rank_correlation(const std::vector<double>& a,
                        const std::vector<double>& b) {
  assert(a.size() == b.size());
  assert(!a.empty());
  const auto n = static_cast<double>(a.size());
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double saa = 0.0, sbb = 0.0, sab = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    saa += da * da;
    sbb += db * db;
    sab += da * db;
  }
  if (saa == 0.0 || sbb == 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

}  // namespace protuner::gs2
