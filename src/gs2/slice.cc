#include "gs2/slice.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace protuner::gs2 {

namespace {

std::vector<double> sweep_values(const core::Parameter& p,
                                 std::size_t continuous_levels) {
  std::vector<double> vals;
  switch (p.kind()) {
    case core::ParamKind::kDiscrete:
      vals = p.values();
      break;
    case core::ParamKind::kInteger:
      for (double v = p.lower(); v <= p.upper(); v += 1.0) vals.push_back(v);
      break;
    case core::ParamKind::kContinuous:
      for (std::size_t l = 0; l < continuous_levels; ++l) {
        vals.push_back(p.lower() +
                       p.range() * static_cast<double>(l) /
                           static_cast<double>(continuous_levels - 1));
      }
      break;
  }
  return vals;
}

}  // namespace

std::size_t Slice::local_minima() const {
  std::size_t count = 0;
  for (std::size_t i = 1; i + 1 < grid.size(); ++i) {
    for (std::size_t j = 1; j + 1 < grid[i].size(); ++j) {
      const double v = grid[i][j];
      if (v < grid[i - 1][j] && v < grid[i + 1][j] && v < grid[i][j - 1] &&
          v < grid[i][j + 1]) {
        ++count;
      }
    }
  }
  return count;
}

double Slice::max_neighbor_jump() const {
  double jump = 0.0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    for (std::size_t j = 0; j < grid[i].size(); ++j) {
      if (i + 1 < grid.size()) {
        jump = std::max(jump, std::fabs(grid[i + 1][j] - grid[i][j]));
      }
      if (j + 1 < grid[i].size()) {
        jump = std::max(jump, std::fabs(grid[i][j + 1] - grid[i][j]));
      }
    }
  }
  return jump;
}

std::string Slice::ascii() const {
  static constexpr std::string_view kShades = ".:-=+*%#";
  std::ostringstream out;
  const double span = std::max(1e-12, max_value - min_value);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    for (std::size_t j = 0; j < grid[i].size(); ++j) {
      const double t = (grid[i][j] - min_value) / span;
      const auto idx = std::min(
          kShades.size() - 1,
          static_cast<std::size_t>(t * static_cast<double>(kShades.size())));
      out << kShades[idx];
    }
    out << '\n';
  }
  return out.str();
}

Slice take_slice(const core::ParameterSpace& space,
                 const core::Landscape& landscape, const core::Point& anchor,
                 std::size_t axis_x, std::size_t axis_y,
                 std::size_t continuous_levels) {
  assert(axis_x < space.size());
  assert(axis_y < space.size());
  assert(axis_x != axis_y);
  assert(anchor.size() == space.size());

  Slice s;
  s.axis_x = axis_x;
  s.axis_y = axis_y;
  s.x_values = sweep_values(space.param(axis_x), continuous_levels);
  s.y_values = sweep_values(space.param(axis_y), continuous_levels);

  s.grid.assign(s.x_values.size(),
                std::vector<double>(s.y_values.size(), 0.0));
  bool first = true;
  core::Point x = anchor;
  for (std::size_t i = 0; i < s.x_values.size(); ++i) {
    x[axis_x] = s.x_values[i];
    for (std::size_t j = 0; j < s.y_values.size(); ++j) {
      x[axis_y] = s.y_values[j];
      const double v = landscape.clean_time(x);
      s.grid[i][j] = v;
      if (first) {
        s.min_value = s.max_value = v;
        first = false;
      } else {
        s.min_value = std::min(s.min_value, v);
        s.max_value = std::max(s.max_value, v);
      }
    }
  }
  return s;
}

}  // namespace protuner::gs2
