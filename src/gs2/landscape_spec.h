// Spec-driven construction of tuning landscapes (DESIGN.md §13).
//
// A landscape spec yields a *bundle* — the admissible region plus the
// clean-time surface over it — because the two are inseparable: the GS2
// study has its own parameter space, and the synthetic surfaces need a
// space to define their optimum against.
//
//   auto [space, land] = gs2::make_landscape("gs2");
//   auto db  = gs2::make_landscape("gs2db:stride=2,k=4");
//   auto q   = gs2::make_landscape("quad:dims=3,floor=1,curv=0.05");
//
// Registered families: gs2 (analytic surface), gs2db (surface measured
// into a sparse gs2::Database, the paper's actual substrate), quad,
// multimodal (Rastrigin-style), and mixed (integer + discrete + continuous
// axes — the strategy-contract stress space).
#pragma once

#include <string_view>

#include "core/landscape.h"
#include "core/parameter_space.h"
#include "spec/registry.h"

namespace protuner::gs2 {

/// A landscape together with the parameter space it is defined over.
struct LandscapeBundle {
  core::ParameterSpace space;
  core::LandscapePtr landscape;
};

using LandscapeRegistry = spec::Registry<LandscapeBundle>;

/// The landscape family registry.  Built-ins register at static-init time;
/// callers may add their own entries (e.g. a future synth:: compositional
/// generator) before first use.
LandscapeRegistry& landscape_registry();

/// Parses `text` and builds the bundle.  Throws spec::SpecError on unknown
/// names/keys or out-of-range values.
LandscapeBundle make_landscape(std::string_view text);

}  // namespace protuner::gs2
