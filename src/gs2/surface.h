// Synthetic GS2 performance surface.
//
// GS2 is a gyrokinetic plasma turbulence code; the paper tunes three of its
// parameters: ntheta (grid points per 2*pi field-line segment), negrid
// (energy grid size) and nodes (processor count).  We cannot run GS2 here,
// so this surface reproduces the *structure* the paper reports (Fig. 8):
// a non-smooth landscape with multiple local minima.
//
// The model is mechanistic rather than arbitrary, so its shape is the kind
// a real SPMD spectral code produces:
//   * per-iteration work grows with ntheta * negrid;
//   * compute time divides across nodes, but only up to the *load balance*
//     the domain decomposition allows: ceil(units/nodes)/(units/nodes)
//     creates the jagged divisibility ridges;
//   * communication adds a log2(nodes) all-reduce term plus a linear
//     per-node message overhead, so more nodes stops paying at some point;
//   * a mild oscillatory cache/blocking term adds extra local minima.
#pragma once

#include "core/landscape.h"
#include "core/parameter_space.h"

namespace protuner::gs2 {

/// Parameter order used throughout the gs2 module.
enum : std::size_t { kNtheta = 0, kNegrid = 1, kNodes = 2 };

struct SurfaceConfig {
  double work_scale = 6e-3;    ///< seconds per work-unit on one node
  double alltoall_cost = 0.03; ///< seconds per log2(nodes) collective stage
  double pernode_cost = 0.004; ///< seconds of per-node message overhead
  double ripple = 0.25;        ///< relative basin-depth modulation
  double base_time = 0.05;     ///< fixed per-iteration serial fraction
};

/// The admissible region of the study: ntheta in even values 16..128,
/// negrid integer 8..64, nodes in multiples of 4 from 4..128.  Wide enough
/// that the descent from the centre takes a substantial fraction of a
/// 100-step tuning run — the regime the paper's §6 experiments operate in.
core::ParameterSpace gs2_space();

/// Analytic clean-time surface over (ntheta, negrid, nodes).
class Gs2Surface final : public core::Landscape {
 public:
  explicit Gs2Surface(SurfaceConfig config = {});

  double clean_time(const core::Point& x) const override;
  std::string name() const override { return "GS2Surface"; }

  const SurfaceConfig& config() const { return config_; }

 private:
  SurfaceConfig config_;
};

}  // namespace protuner::gs2
