#include "harmony/session_manager.h"

#include <algorithm>
#include <functional>
#include <mutex>
#include <utility>

namespace protuner::harmony {

SessionManager::Shard& SessionManager::shard_for(const std::string& name) {
  return shards_[std::hash<std::string>{}(name) % kShardCount];
}

const SessionManager::Shard& SessionManager::shard_for(
    const std::string& name) const {
  return shards_[std::hash<std::string>{}(name) % kShardCount];
}

std::shared_ptr<SessionManager::Hosted> SessionManager::find_hosted(
    const std::string& name) const {
  const Shard& shard = shard_for(name);
  const std::shared_lock lock(shard.mutex);
  const auto it = shard.sessions.find(name);
  return it == shard.sessions.end() ? nullptr : it->second;
}

std::vector<std::pair<std::string, std::shared_ptr<SessionManager::Hosted>>>
SessionManager::pin_all() const {
  std::vector<std::pair<std::string, std::shared_ptr<Hosted>>> out;
  for (const Shard& shard : shards_) {
    const std::shared_lock lock(shard.mutex);
    for (const auto& [name, hosted] : shard.sessions) {
      out.emplace_back(name, hosted);
    }
  }
  // Shards split the namespace by hash; re-establish the global name order
  // callers of names()/stats_all() rely on.
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::shared_ptr<Server> SessionManager::create(const std::string& name,
                                               core::TuningStrategyPtr
                                                   strategy,
                                               std::size_t clients,
                                               ServerOptions options) {
  // Hosted sessions are telemetry-labelled by their registry name unless
  // the caller picked a label explicitly.
  if (options.session.empty()) options.session = name;
  // Build outside the registry lock: Server's constructor runs the
  // strategy's first proposal, which can be arbitrarily expensive.
  auto server =
      std::make_shared<Server>(std::move(strategy), clients, options);
  auto hosted = std::make_shared<Hosted>();
  hosted->server = std::move(server);
  Shard& shard = shard_for(name);
  const std::unique_lock lock(shard.mutex);
  const auto [it, inserted] =
      shard.sessions.try_emplace(name, std::move(hosted));
  if (!inserted) {
    throw SessionError("create: session '" + name + "' already exists");
  }
  return it->second->server;
}

std::shared_ptr<Server> SessionManager::attach(const std::string& name) {
  const Shard& shard = shard_for(name);
  const std::shared_lock lock(shard.mutex);
  const auto it = shard.sessions.find(name);
  if (it == shard.sessions.end()) {
    throw SessionError("attach: no session named '" + name + "'");
  }
  // Reader lock suffices: remove() takes the writer lock, so its
  // attached==0 check cannot interleave with this increment.
  it->second->attached.fetch_add(1, std::memory_order_relaxed);
  return it->second->server;
}

void SessionManager::detach(const std::string& name) {
  const Shard& shard = shard_for(name);
  const std::shared_lock lock(shard.mutex);
  const auto it = shard.sessions.find(name);
  if (it == shard.sessions.end()) {
    throw SessionError("detach: no session named '" + name + "'");
  }
  // CAS loop rather than blind decrement: concurrent over-detach must not
  // wrap the count below zero before the error is raised.
  std::atomic<std::size_t>& attached = it->second->attached;
  std::size_t have = attached.load(std::memory_order_relaxed);
  do {
    if (have == 0) {
      throw SessionError("detach: session '" + name + "' is not attached");
    }
  } while (!attached.compare_exchange_weak(have, have - 1,
                                           std::memory_order_relaxed));
}

std::shared_ptr<Server> SessionManager::find(const std::string& name) const {
  const auto hosted = find_hosted(name);
  return hosted == nullptr ? nullptr : hosted->server;
}

bool SessionManager::remove(const std::string& name) {
  Shard& shard = shard_for(name);
  const std::unique_lock lock(shard.mutex);
  const auto it = shard.sessions.find(name);
  if (it == shard.sessions.end()) return false;
  // Writer lock excludes attach(), so this check is race-free.
  const std::size_t attached =
      it->second->attached.load(std::memory_order_relaxed);
  if (attached > 0) {
    throw SessionError("remove: session '" + name + "' still has " +
                       std::to_string(attached) + " attachment(s)");
  }
  shard.sessions.erase(it);
  return true;
}

std::vector<std::string> SessionManager::names() const {
  const auto pinned = pin_all();
  std::vector<std::string> out;
  out.reserve(pinned.size());
  for (const auto& [name, hosted] : pinned) out.push_back(name);
  return out;
}

std::size_t SessionManager::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    const std::shared_lock lock(shard.mutex);
    total += shard.sessions.size();
  }
  return total;
}

SessionManager::SessionStats SessionManager::stats_of(
    const std::string& name, const Hosted& hosted) {
  const Server& server = *hosted.server;
  SessionStats s;
  s.name = name;
  s.strategy = server.strategy_name();
  s.clients = server.clients();
  s.active_ranks = server.active_ranks();
  s.attached = hosted.attached.load(std::memory_order_relaxed);
  s.rounds = server.rounds_completed();
  s.total_time = server.total_time();
  s.converged = server.converged();
  s.convergence_round = server.convergence_round();
  s.best = server.best_point();
  return s;
}

SessionManager::SessionStats SessionManager::stats(
    const std::string& name) const {
  // Pin the record under the shard's reader lock, aggregate after release:
  // the server accessor calls must never extend the registry critical
  // section (they are cheap today, but stats must not be able to block
  // create/remove however slow the session is).
  const auto hosted = find_hosted(name);
  if (hosted == nullptr) {
    throw SessionError("stats: no session named '" + name + "'");
  }
  return stats_of(name, *hosted);
}

std::vector<SessionManager::SessionStats> SessionManager::stats_all() const {
  const auto pinned = pin_all();
  std::vector<SessionStats> out;
  out.reserve(pinned.size());
  for (const auto& [name, hosted] : pinned) {
    out.push_back(stats_of(name, *hosted));
  }
  return out;
}

obs::RegistrySnapshot SessionManager::metrics_snapshot() const {
  const auto pinned = pin_all();
  // Snapshot outside the registry locks; sessions sharing one obs::Registry
  // may overlap, so duplicate (name, labels) series are dropped.
  obs::RegistrySnapshot out;
  const auto merge = [&out](obs::RegistrySnapshot s) {
    for (auto& inst : s.instruments) {
      const bool seen = std::any_of(
          out.instruments.begin(), out.instruments.end(),
          [&inst](const obs::InstrumentSnapshot& have) {
            return have.name == inst.name && have.labels == inst.labels;
          });
      if (!seen) out.instruments.push_back(std::move(inst));
    }
  };
  for (const auto& [name, hosted] : pinned) {
    merge(hosted->server->metrics_snapshot());
  }
  // Process-wide subsystem telemetry (database tiers, clean-time cache,
  // thread pools) carries no session label but belongs on the serving
  // process's exposition page alongside its sessions.
  obs::RegistrySnapshot process_wide;
  for (auto& inst : obs::Registry::global().snapshot().instruments) {
    const bool session_scoped = std::any_of(
        inst.labels.begin(), inst.labels.end(),
        [](const auto& kv) { return kv.first == "session"; });
    if (!session_scoped) process_wide.instruments.push_back(std::move(inst));
  }
  merge(std::move(process_wide));
  return out;
}

}  // namespace protuner::harmony
