#include "harmony/session_manager.h"

#include <algorithm>
#include <utility>

namespace protuner::harmony {

std::shared_ptr<Server> SessionManager::create(const std::string& name,
                                               core::TuningStrategyPtr
                                                   strategy,
                                               std::size_t clients,
                                               ServerOptions options) {
  // Hosted sessions are telemetry-labelled by their registry name unless
  // the caller picked a label explicitly.
  if (options.session.empty()) options.session = name;
  // Build outside the registry lock: Server's constructor runs the
  // strategy's first proposal, which can be arbitrarily expensive.
  auto server =
      std::make_shared<Server>(std::move(strategy), clients, options);
  const std::scoped_lock lock(mutex_);
  const auto [it, inserted] =
      sessions_.try_emplace(name, Hosted{std::move(server), 0});
  if (!inserted) {
    throw SessionError("create: session '" + name + "' already exists");
  }
  return it->second.server;
}

std::shared_ptr<Server> SessionManager::attach(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  const auto it = sessions_.find(name);
  if (it == sessions_.end()) {
    throw SessionError("attach: no session named '" + name + "'");
  }
  ++it->second.attached;
  return it->second.server;
}

void SessionManager::detach(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  const auto it = sessions_.find(name);
  if (it == sessions_.end()) {
    throw SessionError("detach: no session named '" + name + "'");
  }
  if (it->second.attached == 0) {
    throw SessionError("detach: session '" + name + "' is not attached");
  }
  --it->second.attached;
}

std::shared_ptr<Server> SessionManager::find(const std::string& name) const {
  const std::scoped_lock lock(mutex_);
  const auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : it->second.server;
}

bool SessionManager::remove(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  const auto it = sessions_.find(name);
  if (it == sessions_.end()) return false;
  if (it->second.attached > 0) {
    throw SessionError("remove: session '" + name + "' still has " +
                       std::to_string(it->second.attached) +
                       " attachment(s)");
  }
  sessions_.erase(it);
  return true;
}

std::vector<std::string> SessionManager::names() const {
  const std::scoped_lock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(sessions_.size());
  for (const auto& [name, hosted] : sessions_) out.push_back(name);
  return out;
}

std::size_t SessionManager::size() const {
  const std::scoped_lock lock(mutex_);
  return sessions_.size();
}

SessionManager::SessionStats SessionManager::stats_locked(
    const std::string& name, const Hosted& hosted) const {
  const Server& server = *hosted.server;
  SessionStats s;
  s.name = name;
  s.strategy = server.strategy_name();
  s.clients = server.clients();
  s.active_ranks = server.active_ranks();
  s.attached = hosted.attached;
  s.rounds = server.rounds_completed();
  s.total_time = server.total_time();
  s.converged = server.converged();
  s.convergence_round = server.convergence_round();
  s.best = server.best_point();
  return s;
}

SessionManager::SessionStats SessionManager::stats(
    const std::string& name) const {
  const std::scoped_lock lock(mutex_);
  const auto it = sessions_.find(name);
  if (it == sessions_.end()) {
    throw SessionError("stats: no session named '" + name + "'");
  }
  return stats_locked(name, it->second);
}

std::vector<SessionManager::SessionStats> SessionManager::stats_all() const {
  const std::scoped_lock lock(mutex_);
  std::vector<SessionStats> out;
  out.reserve(sessions_.size());
  for (const auto& [name, hosted] : sessions_) {
    out.push_back(stats_locked(name, hosted));
  }
  return out;
}

obs::RegistrySnapshot SessionManager::metrics_snapshot() const {
  std::vector<std::shared_ptr<Server>> servers;
  {
    const std::scoped_lock lock(mutex_);
    servers.reserve(sessions_.size());
    for (const auto& [name, hosted] : sessions_) {
      servers.push_back(hosted.server);
    }
  }
  // Snapshot outside the registry lock; sessions sharing one obs::Registry
  // may overlap, so duplicate (name, labels) series are dropped.
  obs::RegistrySnapshot out;
  const auto merge = [&out](obs::RegistrySnapshot s) {
    for (auto& inst : s.instruments) {
      const bool seen = std::any_of(
          out.instruments.begin(), out.instruments.end(),
          [&inst](const obs::InstrumentSnapshot& have) {
            return have.name == inst.name && have.labels == inst.labels;
          });
      if (!seen) out.instruments.push_back(std::move(inst));
    }
  };
  for (const auto& server : servers) merge(server->metrics_snapshot());
  // Process-wide subsystem telemetry (database tiers, clean-time cache,
  // thread pools) carries no session label but belongs on the serving
  // process's exposition page alongside its sessions.
  obs::RegistrySnapshot process_wide;
  for (auto& inst : obs::Registry::global().snapshot().instruments) {
    const bool session_scoped = std::any_of(
        inst.labels.begin(), inst.labels.end(),
        [](const auto& kv) { return kv.first == "session"; });
    if (!session_scoped) process_wide.instruments.push_back(std::move(inst));
  }
  merge(std::move(process_wide));
  return out;
}

}  // namespace protuner::harmony
