#include "harmony/api.h"

#include <algorithm>
#include <cassert>

#include "core/nelder_mead.h"
#include "core/pro.h"
#include "core/sro.h"
#include "core/strategy_spec.h"

namespace protuner::harmony {

SessionBuilder& SessionBuilder::add_int(std::string name, long lo, long hi) {
  params_.push_back(core::Parameter::integer(std::move(name), lo, hi));
  return *this;
}

SessionBuilder& SessionBuilder::add_continuous(std::string name, double lo,
                                               double hi) {
  params_.push_back(core::Parameter::continuous(std::move(name), lo, hi));
  return *this;
}

SessionBuilder& SessionBuilder::add_discrete(std::string name,
                                             std::vector<double> values) {
  params_.push_back(
      core::Parameter::discrete(std::move(name), std::move(values)));
  return *this;
}

SessionBuilder& SessionBuilder::algorithm(Algorithm algo) {
  algo_ = algo;
  return *this;
}

SessionBuilder& SessionBuilder::strategy_spec(std::string spec) {
  strategy_spec_ = std::move(spec);
  return *this;
}

SessionBuilder& SessionBuilder::noise_spec(std::string spec) {
  noise_spec_ = std::move(spec);
  return *this;
}

SessionBuilder& SessionBuilder::samples(int k) {
  assert(k >= 1);
  samples_ = k;
  adaptive_ = false;
  return *this;
}

SessionBuilder& SessionBuilder::adaptive_samples(int max_k) {
  assert(max_k >= 1);
  adaptive_ = true;
  max_samples_ = max_k;
  return *this;
}

SessionBuilder& SessionBuilder::initial_simplex_size(double r) {
  assert(r > 0.0);
  initial_size_ = r;
  return *this;
}

SessionBuilder& SessionBuilder::clients(std::size_t n) {
  assert(n >= 1);
  clients_ = n;
  return *this;
}

SessionBuilder& SessionBuilder::report_timeout(double seconds) {
  assert(seconds >= 0.0);
  server_options_.report_timeout = std::chrono::duration<double>(seconds);
  return *this;
}

SessionBuilder& SessionBuilder::impute_penalty(double factor) {
  assert(factor >= 1.0);
  server_options_.impute_penalty = factor;
  return *this;
}

SessionBuilder& SessionBuilder::straggler_policy(StragglerPolicy policy) {
  server_options_.straggler_policy = policy;
  return *this;
}

SessionBuilder& SessionBuilder::observer(core::SessionObserver* obs) {
  server_options_.observer = obs;
  return *this;
}

SessionBuilder& SessionBuilder::session(std::string name) {
  server_options_.session = std::move(name);
  return *this;
}

core::ParameterSpace SessionBuilder::space() const {
  assert(!params_.empty());
  return core::ParameterSpace(params_);
}

std::unique_ptr<Server> SessionBuilder::build() const {
  assert(!params_.empty());
  const core::ParameterSpace sp = space();
  if (!strategy_spec_.empty()) {
    return std::make_unique<Server>(core::make_strategy(strategy_spec_, sp),
                                    clients_, server_options_);
  }
  core::TuningStrategyPtr strategy;
  switch (algo_) {
    case Algorithm::kPro: {
      core::ProOptions o;
      o.initial_size = initial_size_;
      o.samples = samples_;
      o.max_samples = std::max(o.max_samples, samples_);
      if (adaptive_) {
        o.adaptive_samples = true;
        o.max_samples = max_samples_;
        o.refresh_best = true;
      }
      strategy = std::make_unique<core::ProStrategy>(sp, o);
      break;
    }
    case Algorithm::kSro: {
      core::SroOptions o;
      o.initial_size = initial_size_;
      o.samples = samples_;
      strategy = std::make_unique<core::SroStrategy>(sp, o);
      break;
    }
    case Algorithm::kNelderMead: {
      core::NelderMeadOptions o;
      o.initial_size = initial_size_;
      o.samples = samples_;
      strategy = std::make_unique<core::NelderMeadStrategy>(sp, o);
      break;
    }
  }
  return std::make_unique<Server>(std::move(strategy), clients_,
                                  server_options_);
}

}  // namespace protuner::harmony
