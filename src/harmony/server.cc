#include "harmony/server.h"

#include <algorithm>
#include <cassert>

namespace protuner::harmony {

Server::Server(core::TuningStrategyPtr strategy, std::size_t clients)
    : strategy_(std::move(strategy)), clients_(clients) {
  assert(strategy_ != nullptr);
  assert(clients_ >= 1);
  strategy_->start(clients_);
  times_.assign(clients_, 0.0);
  reported_.assign(clients_, false);
  client_round_.assign(clients_, 0);
  const std::scoped_lock lock(mutex_);
  publish_round_locked();
}

void Server::publish_round_locked() {
  const core::StepProposal proposal = strategy_->propose();
  assert(!proposal.configs.empty());
  assert(proposal.configs.size() <= clients_);
  proposal_size_ = proposal.configs.size();
  assignment_ = proposal.configs;
  // Ranks beyond the proposal keep running the strategy's best known
  // configuration (they must run *something* each step; this is the useful
  // choice).  Their times count toward the step cost but are not fed back.
  while (assignment_.size() < clients_) {
    assignment_.push_back(strategy_->best_point());
  }
  std::fill(reported_.begin(), reported_.end(), false);
  reports_ = 0;
}

core::Point Server::fetch(std::size_t rank) {
  assert(rank < clients_);
  std::unique_lock lock(mutex_);
  // A rank may only fetch for the round it is in; it advances its round on
  // report.  The server's round counter trails the slowest rank.
  round_ready_.wait(lock, [&] { return client_round_[rank] == round_; });
  return assignment_[rank];
}

void Server::report(std::size_t rank, double time) {
  assert(rank < clients_);
  std::unique_lock lock(mutex_);
  assert(client_round_[rank] == round_);
  assert(!reported_[rank]);
  reported_[rank] = true;
  times_[rank] = time;
  ++client_round_[rank];
  ++reports_;
  if (reports_ == clients_) {
    const double cost = *std::max_element(times_.begin(), times_.end());
    total_time_ += cost;
    step_costs_.push_back(cost);
    strategy_->observe(
        std::span<const double>(times_.data(), proposal_size_));
    ++round_;
    publish_round_locked();
    lock.unlock();
    round_ready_.notify_all();
  }
}

double Server::total_time() const {
  const std::scoped_lock lock(mutex_);
  return total_time_;
}

std::size_t Server::rounds_completed() const {
  const std::scoped_lock lock(mutex_);
  return round_;
}

core::Point Server::best_point() const {
  const std::scoped_lock lock(mutex_);
  return strategy_->best_point();
}

bool Server::converged() const {
  const std::scoped_lock lock(mutex_);
  return strategy_->converged();
}

std::vector<double> Server::step_costs() const {
  const std::scoped_lock lock(mutex_);
  return step_costs_;
}

}  // namespace protuner::harmony
