#include "harmony/server.h"

#include <stdexcept>
#include <utility>

#include "obs/trace.h"

namespace protuner::harmony {

namespace {

core::RoundEngineOptions engine_options(std::size_t clients,
                                        const ServerOptions& options) {
  if (clients == 0) {
    throw std::invalid_argument("Server: clients must be >= 1");
  }
  core::RoundEngineOptions eo;
  eo.width = clients;
  eo.pad_assignment = true;
  eo.record_series = options.record_series;
  eo.observer = options.observer;
  eo.impute_penalty = options.impute_penalty;
  eo.metrics = options.metrics;
  eo.session = options.session;
  return eo;
}

obs::Registry& server_registry(const ServerOptions& options) {
  return options.metrics != nullptr ? *options.metrics
                                    : obs::Registry::global();
}

obs::Labels server_labels(const ServerOptions& options) {
  if (options.session.empty()) return {};
  return {{"session", options.session}};
}

double elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

Server::Server(core::TuningStrategyPtr strategy, std::size_t clients,
               ServerOptions options)
    : strategy_(std::move(strategy)),
      clients_(clients),
      options_(std::move(options)),
      obs_fetch_ns_(server_registry(options_).histogram(
          "protuner_harmony_fetch_ns",
          "fetch() latency including the wait for the round to open (ns)",
          server_labels(options_))),
      obs_report_ns_(server_registry(options_).histogram(
          "protuner_harmony_report_ns", "report() latency (ns)",
          server_labels(options_))),
      obs_round_wall_ns_(server_registry(options_).histogram(
          "protuner_harmony_round_wall_ns",
          "Wall-clock time a round stayed open (ns)",
          server_labels(options_))),
      obs_protocol_errors_(server_registry(options_).counter(
          "protuner_harmony_protocol_errors_total",
          "Client protocol violations (double fetch, report without fetch, "
          "rank out of range)",
          server_labels(options_))),
      obs_deadline_expiries_(server_registry(options_).counter(
          "protuner_harmony_deadline_expiries_total",
          "Rounds whose report deadline expired", server_labels(options_))),
      obs_discarded_reports_(server_registry(options_).counter(
          "protuner_harmony_discarded_reports_total",
          "Reports that arrived after their round was deadline-closed",
          server_labels(options_))),
      engine_((strategy_ == nullptr
                   ? throw std::invalid_argument(
                         "Server: strategy must not be null")
                   : *strategy_),
              engine_options(clients, options_)) {
  rank_round_.assign(clients_, 0);
  fetched_.assign(clients_, false);
  const std::scoped_lock lock(mutex_);
  engine_.open_round();
  round_opened_ = std::chrono::steady_clock::now();
}

void Server::throw_if_failed_locked() const {
  if (!failure_.empty()) {
    throw ProtocolError("harmony session failed: " + failure_);
  }
}

void Server::fail_locked(const std::string& why) {
  failure_ = why;
  round_ready_.notify_all();
  throw ProtocolError("harmony session failed: " + failure_);
}

void Server::advance_locked() {
  obs_round_wall_ns_.record(elapsed_ns(round_opened_));
  engine_.close_round();
  engine_.open_round();
  round_ = engine_.rounds_completed();
  round_opened_ = std::chrono::steady_clock::now();
  round_ready_.notify_all();
}

bool Server::deadline_enabled() const {
  return options_.report_timeout > std::chrono::duration<double>::zero();
}

std::chrono::steady_clock::time_point Server::deadline_locked() const {
  return round_opened_ +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             options_.report_timeout);
}

bool Server::close_by_deadline_locked() {
  if (!deadline_enabled() || !failure_.empty()) return false;
  if (engine_.pending() == 0) return false;  // closed by the report path
  if (std::chrono::steady_clock::now() < deadline_locked()) return false;

  obs_deadline_expiries_.add();
  if (options_.straggler_policy == StragglerPolicy::kFail) {
    fail_locked("round " + std::to_string(round_) +
                " report deadline expired with " +
                std::to_string(engine_.pending()) + " rank(s) missing");
  }

  // kShrink: close the round with the missing times imputed
  // (max-of-observed × penalty) and drop the stragglers from future rounds.
  std::vector<std::size_t> imputed;
  try {
    imputed = engine_.impute_missing();
  } catch (const core::EngineError&) {
    // Nothing observed this round and no completed round to extrapolate
    // from: there is no defensible imputation — restart the deadline
    // rather than invent a number.
    round_opened_ = std::chrono::steady_clock::now();
    return false;
  }
  for (const std::size_t slot : imputed) engine_.deactivate(slot);
  if (engine_.active_count() == 0) {
    fail_locked("every rank missed the report deadline in round " +
                std::to_string(round_));
  }
  advance_locked();
  return true;
}

core::Point Server::fetch(std::size_t rank) {
  const obs::ScopedSpan span(obs::Tracer::global(), "harmony/fetch");
  const auto entered = std::chrono::steady_clock::now();
  std::unique_lock lock(mutex_);
  if (rank >= clients_) {
    obs_protocol_errors_.add();
    throw ProtocolError("fetch: rank " + std::to_string(rank) +
                        " out of range [0, " + std::to_string(clients_) +
                        ")");
  }
  throw_if_failed_locked();
  if (fetched_[rank] && rank_round_[rank] == round_ &&
      engine_.expected(rank)) {
    obs_protocol_errors_.add();
    throw ProtocolError("fetch: rank " + std::to_string(rank) +
                        " fetched twice without reporting");
  }
  // A rank may only fetch for the round it is in; it advances its round on
  // report.  The server's round counter trails the slowest expected rank.
  for (;;) {
    throw_if_failed_locked();
    if (rank_round_[rank] == round_ && engine_.expected(rank)) break;
    if (rank_round_[rank] <= round_) {
      // Dropped, or overtaken because its round was deadline-closed
      // beneath it: re-enter the session at the next round.
      fetched_[rank] = false;
      engine_.reactivate(rank);
      rank_round_[rank] = round_ + 1;
    }
    if (deadline_enabled()) {
      if (round_ready_.wait_until(lock, deadline_locked()) ==
          std::cv_status::timeout) {
        close_by_deadline_locked();
      }
    } else {
      round_ready_.wait(lock);
    }
  }
  fetched_[rank] = true;
  obs_fetch_ns_.record(elapsed_ns(entered));
  return engine_.assignment_for(rank);
}

void Server::report(std::size_t rank, double time) {
  const obs::ScopedSpan span(obs::Tracer::global(), "harmony/report");
  const auto entered = std::chrono::steady_clock::now();
  const std::scoped_lock lock(mutex_);
  if (rank >= clients_) {
    obs_protocol_errors_.add();
    throw ProtocolError("report: rank " + std::to_string(rank) +
                        " out of range [0, " + std::to_string(clients_) +
                        ")");
  }
  throw_if_failed_locked();
  if (!fetched_[rank]) {
    obs_protocol_errors_.add();
    throw ProtocolError("report: rank " + std::to_string(rank) +
                        " reported without fetching first");
  }
  fetched_[rank] = false;
  if (rank_round_[rank] < round_) {
    // The rank's round was deadline-closed beneath it; its measurement
    // arrived too late to count and is discarded.
    obs_discarded_reports_.add();
    ++rank_round_[rank];
    return;
  }
  engine_.submit(rank, time);
  rank_round_[rank] = round_ + 1;
  if (engine_.complete()) advance_locked();
  obs_report_ns_.record(elapsed_ns(entered));
}

bool Server::tick() {
  const std::scoped_lock lock(mutex_);
  if (!failure_.empty()) return false;
  return close_by_deadline_locked();
}

double Server::total_time() const {
  const std::scoped_lock lock(mutex_);
  return engine_.total_time();
}

std::size_t Server::rounds_completed() const {
  const std::scoped_lock lock(mutex_);
  return engine_.rounds_completed();
}

core::Point Server::best_point() const {
  const std::scoped_lock lock(mutex_);
  return strategy_->best_point();
}

bool Server::converged() const {
  const std::scoped_lock lock(mutex_);
  return strategy_->converged();
}

std::vector<double> Server::step_costs() const {
  const std::scoped_lock lock(mutex_);
  return engine_.step_costs();
}

std::optional<std::size_t> Server::convergence_round() const {
  const std::scoped_lock lock(mutex_);
  return engine_.convergence_round();
}

std::size_t Server::active_ranks() const {
  const std::scoped_lock lock(mutex_);
  return engine_.active_count();
}

std::string Server::strategy_name() const {
  const std::scoped_lock lock(mutex_);
  return strategy_->name();
}

obs::RegistrySnapshot Server::metrics_snapshot() const {
  obs::Registry& registry = server_registry(options_);
  if (options_.session.empty()) return registry.snapshot();
  return registry.snapshot("session", options_.session);
}

}  // namespace protuner::harmony
