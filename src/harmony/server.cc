#include "harmony/server.h"

#include <unistd.h>

#include <cassert>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/trace.h"

namespace protuner::harmony {

namespace {

obs::FlightRecorder& server_flight(const ServerOptions& options) {
  return options.flight != nullptr ? *options.flight
                                   : obs::FlightRecorder::global();
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Per-server entropy for round trace ids: wall entropy + pid + a process
/// counter, so two servers (or two processes) never mint the same stream.
std::uint64_t make_trace_seed() {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t now = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  return splitmix64(now ^ (static_cast<std::uint64_t>(::getpid()) << 32) ^
                    counter.fetch_add(1, std::memory_order_relaxed));
}

core::RoundEngineOptions engine_options(std::size_t clients,
                                        const ServerOptions& options) {
  if (clients == 0) {
    throw std::invalid_argument("Server: clients must be >= 1");
  }
  core::RoundEngineOptions eo;
  eo.width = clients;
  eo.pad_assignment = true;
  eo.record_series = false;  // the server keeps its own series (stats cache)
  eo.observer = options.observer;
  eo.impute_penalty = options.impute_penalty;
  eo.metrics = options.metrics;
  eo.session = options.session;
  return eo;
}

obs::Registry& server_registry(const ServerOptions& options) {
  return options.metrics != nullptr ? *options.metrics
                                    : obs::Registry::global();
}

obs::Labels server_labels(const ServerOptions& options) {
  if (options.session.empty()) return {};
  return {{"session", options.session}};
}

double elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

double elapsed_ns(std::uint64_t entered_ticks) {
  return obs::LatencyClock::to_ns(obs::LatencyClock::now() - entered_ticks);
}

}  // namespace

void Server::gate_lock(RoundBuffer& buf) {
  std::int32_t expected = 0;
  while (!buf.gate.compare_exchange_weak(expected, kGateLocked,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
    expected = 0;
    // Read holds are nanosecond-scale; a non-zero count means the holder
    // is mid-copy (or preempted, which the yield resolves on small boxes).
    std::this_thread::yield();
  }
}

Server::Server(core::TuningStrategyPtr strategy, std::size_t clients,
               ServerOptions options)
    : strategy_(std::move(strategy)),
      clients_(clients),
      options_(std::move(options)),
      obs_fetch_ns_(server_registry(options_).histogram(
          "protuner_harmony_fetch_ns",
          "fetch() latency including the wait for the round to open (ns)",
          server_labels(options_))),
      obs_report_ns_(server_registry(options_).histogram(
          "protuner_harmony_report_ns", "report() latency (ns)",
          server_labels(options_))),
      obs_round_wall_ns_(server_registry(options_).histogram(
          "protuner_harmony_round_wall_ns",
          "Wall-clock time a round stayed open (ns)",
          server_labels(options_))),
      obs_protocol_errors_(server_registry(options_).counter(
          "protuner_harmony_protocol_errors_total",
          "Client protocol violations (double fetch, report without fetch, "
          "rank out of range)",
          server_labels(options_))),
      obs_deadline_expiries_(server_registry(options_).counter(
          "protuner_harmony_deadline_expiries_total",
          "Rounds whose report deadline expired", server_labels(options_))),
      obs_discarded_reports_(server_registry(options_).counter(
          "protuner_harmony_discarded_reports_total",
          "Reports that arrived after their round was deadline-closed",
          server_labels(options_))),
      flight_(server_flight(options_)),
      trace_seed_(make_trace_seed()),
      engine_((strategy_ == nullptr
                   ? throw std::invalid_argument(
                         "Server: strategy must not be null")
                   : *strategy_),
              engine_options(clients, options_)),
      strategy_name_(strategy_->name()) {
  ranks_.resize(clients_);
  for (RoundBuffer& buf : buffers_) {
    buf.assignment.resize(clients_);
    buf.slots = std::make_unique<Slot[]>(clients_);
  }
  // Pre-pay the one-time TSC calibration spin so the first fetch's latency
  // stamp is not inflated by ~200µs of calibration.
  obs::LatencyClock::ns_per_tick();
  const std::scoped_lock lock(mutex_);
  {
    const std::uint64_t id = round_trace_id(0);
    const obs::ScopedTraceContext ctx({id, id});
    engine_.open_round();
  }
  refresh_stats_cache_locked(0.0);
  publish_round_locked(0);
}

std::uint64_t Server::round_trace_id(std::uint64_t round) const {
  const std::uint64_t id = splitmix64(trace_seed_ + round + 1);
  return id != 0 ? id : 1;
}

void Server::note_protocol_error(const char* kind, std::size_t rank) const {
  obs_protocol_errors_.add();
  flight_.record(kind, options_.session, static_cast<std::uint32_t>(rank),
                 round_.load(std::memory_order_relaxed));
}

void Server::throw_if_failed_locked() const {
  if (!failure_.empty()) {
    throw ProtocolError("harmony session failed: " + failure_);
  }
}

void Server::fail_locked(const std::string& why) {
  failure_ = why;
  flight_.record("session/fail", options_.session, 0,
                 round_.load(std::memory_order_relaxed));
  failed_.store(true, std::memory_order_release);
  round_ready_.notify_all();
  throw ProtocolError("harmony session failed: " + failure_);
}

void Server::refresh_stats_cache_locked(double last_cost) {
  stat_rounds_.store(engine_.rounds_completed(), std::memory_order_relaxed);
  stat_total_time_.store(engine_.total_time(), std::memory_order_relaxed);
  stat_converged_.store(strategy_->converged(), std::memory_order_relaxed);
  stat_convergence_round_.store(engine_.convergence_round().value_or(0),
                                std::memory_order_relaxed);
  stat_active_.store(engine_.active_count(), std::memory_order_relaxed);
  const std::scoped_lock stats(stats_mutex_);
  stat_best_ = strategy_->best_point();
  if (options_.record_series && engine_.rounds_completed() > 0) {
    stat_costs_.push_back(last_cost);
  }
}

void Server::publish_round_locked(std::uint64_t round) {
  RoundBuffer& buf = buffers_[round & 1];
  // Drain stragglers still reading this buffer's previous tenant
  // (round - 2); their read share blocks the recycle, never the reverse.
  gate_lock(buf);
  std::size_t expected = 0;
  for (std::size_t s = 0; s < clients_; ++s) {
    buf.assignment[s] = engine_.assignment_for(s);
    const bool exp = engine_.expected(s);
    buf.slots[s].state.store(exp ? kSlotPending : kSlotIdle,
                             std::memory_order_relaxed);
    if (exp) ++expected;
  }
  buf.pending.store(expected, std::memory_order_relaxed);
  gate_unlock(buf);
  flight_.record("round/open", options_.session,
                 static_cast<std::uint32_t>(expected), round);
  round_opened_ = std::chrono::steady_clock::now();
  // Release-publish: a fast-path reader that observes `round` here also
  // observes the buffer contents written above.
  round_.store(round, std::memory_order_release);
  round_ready_.notify_all();
}

void Server::advance_locked() {
  obs_round_wall_ns_.record(elapsed_ns(round_opened_));
  const std::uint64_t cur = round_.load(std::memory_order_relaxed);
  double cost;
  {
    // The engine's round/advance span joins the closing round's trace.
    const std::uint64_t id = round_trace_id(cur);
    const obs::ScopedTraceContext ctx({id, id});
    cost = engine_.close_round();
  }
  flight_.record("round/close", options_.session, 0, cur, cost);
  {
    // ... and its round/assign span joins the successor's.
    const std::uint64_t id = round_trace_id(cur + 1);
    const obs::ScopedTraceContext ctx({id, id});
    engine_.open_round();
  }
  refresh_stats_cache_locked(cost);
  publish_round_locked(cur + 1);
}

void Server::finish_round_locked(std::uint64_t round) {
  assert(round_.load(std::memory_order_relaxed) == round);
  throw_if_failed_locked();
  RoundBuffer& buf = buffers_[round & 1];
  // Every expected slot is claimed (pending == 0), so each slot's state is
  // final and a kSlotReported acquire load synchronizes with the owning
  // rank's release CAS — its time write is visible.
  bool any_imputed = false;
  for (std::size_t s = 0; s < clients_; ++s) {
    const std::uint8_t st = buf.slots[s].state.load(std::memory_order_acquire);
    if (st == kSlotReported) {
      engine_.submit(s, buf.slots[s].time);
    } else if (st == kSlotImputed) {
      any_imputed = true;
    }
  }
  if (any_imputed) {
    // kShrink: close the round with the missing times imputed
    // (max-of-observed × penalty) and drop the stragglers from future
    // rounds.  The deadline sweep pre-checked that an impute base exists.
    for (const std::size_t slot : engine_.impute_missing()) {
      flight_.record("rank/impute", options_.session,
                     static_cast<std::uint32_t>(slot), round);
      engine_.deactivate(slot);
    }
    if (engine_.active_count() == 0) {
      fail_locked("every rank missed the report deadline in round " +
                  std::to_string(round));
    }
  }
  advance_locked();
}

bool Server::deadline_enabled() const {
  return options_.report_timeout > std::chrono::duration<double>::zero();
}

std::chrono::steady_clock::time_point Server::deadline_locked() const {
  return round_opened_ +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             options_.report_timeout);
}

bool Server::close_by_deadline_locked() {
  if (!deadline_enabled() || !failure_.empty()) return false;
  const std::uint64_t round = round_.load(std::memory_order_relaxed);
  RoundBuffer& buf = buffers_[round & 1];
  // pending == 0 means the closing report already owns the round: it is
  // waiting on mutex_ behind us and will advance the moment we release.
  if (buf.pending.load(std::memory_order_acquire) == 0) return false;
  if (std::chrono::steady_clock::now() < deadline_locked()) return false;

  obs_deadline_expiries_.add();
  flight_.record("deadline/expire", options_.session,
                 static_cast<std::uint32_t>(
                     buf.pending.load(std::memory_order_relaxed)),
                 round);
  if (options_.straggler_policy == StragglerPolicy::kFail) {
    fail_locked("round " + std::to_string(round) +
                " report deadline expired with " +
                std::to_string(buf.pending.load(std::memory_order_relaxed)) +
                " rank(s) missing");
  }

  // Nothing observed this round and no completed round to extrapolate
  // from: there is no defensible imputation — restart the deadline rather
  // than invent a number.  (Reports only accumulate, so a positive check
  // here cannot be invalidated before the sweep below.)
  bool have_base = engine_.rounds_completed() > 0;
  for (std::size_t s = 0; !have_base && s < clients_; ++s) {
    have_base =
        buf.slots[s].state.load(std::memory_order_acquire) == kSlotReported;
  }
  if (!have_base) {
    round_opened_ = std::chrono::steady_clock::now();
    return false;
  }

  // Sweep: claim every still-pending slot as imputed.  A rank racing us
  // with a real report wins or loses each slot atomically; losers discard
  // their measurement (it arrived too late to count).
  bool closed_here = false;
  for (std::size_t s = 0; s < clients_; ++s) {
    std::uint8_t expect = kSlotPending;
    if (buf.slots[s].state.compare_exchange_strong(
            expect, kSlotImputed, std::memory_order_acq_rel)) {
      if (buf.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        closed_here = true;
      }
    }
  }
  if (!closed_here) {
    // A concurrent report made the final claim; that rank closes the round
    // as soon as we release the lock.
    return false;
  }
  finish_round_locked(round);
  return true;
}

core::Point Server::fetch(std::size_t rank) {
  core::Point out;
  fetch_into(rank, out);
  return out;
}

void Server::check_fetch_rank(std::size_t rank) const {
  if (rank >= clients_) {
    note_protocol_error("error/fetch-rank", rank);
    throw ProtocolError("fetch: rank " + std::to_string(rank) +
                        " out of range [0, " + std::to_string(clients_) +
                        ")");
  }
}

bool Server::fetch_fast(std::size_t rank, core::Point& out,
                        std::uint64_t entered) {
  RankState& rs = ranks_[rank];
  if (!failed_.load(std::memory_order_acquire)) {
    const std::uint64_t cur = round_.load(std::memory_order_acquire);
    if (rs.round == cur) {
      RoundBuffer& buf = buffers_[cur & 1];
      if (gate_enter(buf)) {
        // Revalidate while holding a read share: the buffer is recycled
        // only with the gate locked and republished before round_ moves
        // again, so content version == cur iff round_ still reads cur.
        if (round_.load(std::memory_order_acquire) == cur &&
            buf.slots[rank].state.load(std::memory_order_acquire) !=
                kSlotIdle) {
          if (rs.fetched) {
            gate_exit(buf);
            note_protocol_error("error/double-fetch", rank);
            throw ProtocolError("fetch: rank " + std::to_string(rank) +
                                " fetched twice without reporting");
          }
          rs.fetched = true;
          out = buf.assignment[rank];
          gate_exit(buf);
          obs_fetch_ns_.record(elapsed_ns(entered));
          return true;
        }
        gate_exit(buf);
      }
    }
  }
  return false;
}

void Server::fetch_into(std::size_t rank, core::Point& out) {
  obs::ScopedSpan span(obs::Tracer::global(), "harmony/fetch");
  const std::uint64_t entered = obs::LatencyClock::now();
  check_fetch_rank(rank);
  if (!fetch_fast(rank, out, entered)) fetch_slow(rank, out, entered);
  if (span.active()) {
    // A fetch leaves rs.round at the round it served.
    const std::uint64_t id = round_trace_id(ranks_[rank].round);
    span.set_context({id, id});
  }
}

bool Server::try_fetch_into(std::size_t rank, core::Point& out) {
  obs::TraceContext ignored;
  return try_fetch_into(rank, out, ignored);
}

bool Server::try_fetch_into(std::size_t rank, core::Point& out,
                            obs::TraceContext& trace) {
  obs::ScopedSpan span(obs::Tracer::global(), "harmony/fetch");
  const std::uint64_t entered = obs::LatencyClock::now();
  check_fetch_rank(rank);
  if (fetch_fast(rank, out, entered)) {
    const std::uint64_t id = round_trace_id(ranks_[rank].round);
    trace = {id, id};
    span.set_context(trace);
    return true;
  }
  // Non-waiting slow path: the same protocol steps fetch_slow takes under
  // the barrier lock — serve if the rank's round is open, re-enter a
  // dropped/overtaken rank — except it returns false where fetch_slow
  // would sleep on round_ready_.
  const std::scoped_lock lock(mutex_);
  throw_if_failed_locked();
  RankState& rs = ranks_[rank];
  const std::uint64_t cur = round_.load(std::memory_order_relaxed);
  if (rs.round == cur && engine_.expected(rank)) {
    if (rs.fetched) {
      note_protocol_error("error/double-fetch", rank);
      throw ProtocolError("fetch: rank " + std::to_string(rank) +
                          " fetched twice without reporting");
    }
    rs.fetched = true;
    out = engine_.assignment_for(rank);
    obs_fetch_ns_.record(elapsed_ns(entered));
    const std::uint64_t id = round_trace_id(cur);
    trace = {id, id};
    span.set_context(trace);
    return true;
  }
  if (rs.round <= cur) {
    // Dropped, or overtaken because its round was deadline-closed beneath
    // it: re-enter the session at the next round; the caller retries after
    // the next publish.
    rs.fetched = false;
    flight_.record("rank/reenter", options_.session,
                   static_cast<std::uint32_t>(rank), cur + 1);
    engine_.reactivate(rank);
    stat_active_.store(engine_.active_count(), std::memory_order_relaxed);
    rs.round = cur + 1;
  }
  return false;
}

void Server::fetch_slow(std::size_t rank, core::Point& out,
                        std::uint64_t entered) {
  std::unique_lock lock(mutex_);
  RankState& rs = ranks_[rank];
  // A rank may only fetch for the round it is in; it advances its round on
  // report.  The server's round counter trails the slowest expected rank.
  for (;;) {
    throw_if_failed_locked();
    const std::uint64_t cur = round_.load(std::memory_order_relaxed);
    if (rs.round == cur && engine_.expected(rank)) {
      if (rs.fetched) {
        note_protocol_error("error/double-fetch", rank);
        throw ProtocolError("fetch: rank " + std::to_string(rank) +
                            " fetched twice without reporting");
      }
      break;
    }
    if (rs.round <= cur) {
      // Dropped, or overtaken because its round was deadline-closed
      // beneath it: re-enter the session at the next round.
      rs.fetched = false;
      flight_.record("rank/reenter", options_.session,
                     static_cast<std::uint32_t>(rank), cur + 1);
      engine_.reactivate(rank);
      stat_active_.store(engine_.active_count(), std::memory_order_relaxed);
      rs.round = cur + 1;
    }
    if (deadline_enabled()) {
      if (round_ready_.wait_until(lock, deadline_locked()) ==
          std::cv_status::timeout) {
        close_by_deadline_locked();
      }
    } else {
      round_ready_.wait(lock);
    }
  }
  rs.fetched = true;
  out = engine_.assignment_for(rank);
  obs_fetch_ns_.record(elapsed_ns(entered));
}

void Server::report(std::size_t rank, double time) {
  obs::ScopedSpan span(obs::Tracer::global(), "harmony/report");
  const std::uint64_t entered = obs::LatencyClock::now();
  if (rank >= clients_) {
    note_protocol_error("error/report-rank", rank);
    throw ProtocolError("report: rank " + std::to_string(rank) +
                        " out of range [0, " + std::to_string(clients_) +
                        ")");
  }
  if (failed_.load(std::memory_order_acquire)) {
    const std::scoped_lock lock(mutex_);
    throw_if_failed_locked();
  }
  RankState& rs = ranks_[rank];
  if (!rs.fetched) {
    note_protocol_error("error/report-nofetch", rank);
    throw ProtocolError("report: rank " + std::to_string(rank) +
                        " reported without fetching first");
  }
  bool last = false;
  std::uint64_t round = 0;
  for (;;) {
    const std::uint64_t cur = round_.load(std::memory_order_acquire);
    if (rs.round < cur) {
      // The rank's round was deadline-closed beneath it; its measurement
      // arrived too late to count and is discarded.
      rs.fetched = false;
      ++rs.round;
      obs_discarded_reports_.add();
      flight_.record("report/discard", options_.session,
                     static_cast<std::uint32_t>(rank), cur, time);
      return;
    }
    // rs.round == cur: a rank can never lead the open round — it advances
    // past it only by reporting, after which fetch blocks until the round
    // catches up.
    RoundBuffer& buf = buffers_[cur & 1];
    if (!gate_enter(buf)) continue;  // recycler holds it; round_ has moved
    if (round_.load(std::memory_order_acquire) != cur) {
      gate_exit(buf);
      continue;
    }
    buf.slots[rank].time = time;
    std::uint8_t expect = kSlotPending;
    if (!buf.slots[rank].state.compare_exchange_strong(
            expect, kSlotReported, std::memory_order_release,
            std::memory_order_acquire)) {
      // The deadline sweep claimed this slot first: too late to count.
      gate_exit(buf);
      rs.fetched = false;
      rs.round = cur + 1;
      obs_discarded_reports_.add();
      return;
    }
    rs.fetched = false;
    rs.round = cur + 1;
    last = buf.pending.fetch_sub(1, std::memory_order_acq_rel) == 1;
    gate_exit(buf);
    round = cur;
    break;
  }
  if (last) {
    // This report completed the round: take the barrier lock and advance.
    const std::scoped_lock lock(mutex_);
    finish_round_locked(round);
  }
  obs_report_ns_.record(elapsed_ns(entered));
}

bool Server::tick() {
  const std::scoped_lock lock(mutex_);
  if (!failure_.empty()) return false;
  return close_by_deadline_locked();
}

double Server::total_time() const {
  return stat_total_time_.load(std::memory_order_relaxed);
}

std::size_t Server::rounds_completed() const {
  return stat_rounds_.load(std::memory_order_relaxed);
}

core::Point Server::best_point() const {
  const std::scoped_lock stats(stats_mutex_);
  return stat_best_;
}

bool Server::converged() const {
  return stat_converged_.load(std::memory_order_relaxed);
}

std::vector<double> Server::step_costs() const {
  const std::scoped_lock stats(stats_mutex_);
  return stat_costs_;
}

std::optional<std::size_t> Server::convergence_round() const {
  const std::size_t r =
      stat_convergence_round_.load(std::memory_order_relaxed);
  if (r == 0) return std::nullopt;
  return r;
}

std::size_t Server::active_ranks() const {
  return stat_active_.load(std::memory_order_relaxed);
}

std::string Server::strategy_name() const { return strategy_name_; }

obs::RegistrySnapshot Server::metrics_snapshot() const {
  obs::Registry& registry = server_registry(options_);
  if (options_.session.empty()) return registry.snapshot();
  return registry.snapshot("session", options_.session);
}

}  // namespace protuner::harmony
