// The application-facing facade, mirroring the Active Harmony workflow the
// paper describes in §1: "The user provides Active Harmony with a list of
// the tunable parameters, and their type and range" — then the system
// iteratively runs the program, monitors its running time, and tunes.
//
//   harmony::SessionBuilder builder;
//   builder.add_int("negrid", 8, 64)
//          .add_discrete("nodes", {4, 8, 16, 32, 64})
//          .algorithm(harmony::Algorithm::kPro)
//          .samples(3)
//          .clients(8);
//   harmony::Server server = builder.build();
//
// The returned Server speaks the fetch/report protocol (see server.h) from
// any number of concurrent ranks.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/parameter_space.h"
#include "harmony/server.h"

namespace protuner::harmony {

enum class Algorithm {
  kPro,         ///< Parallel Rank Ordering (the paper's algorithm; default)
  kSro,         ///< Sequential Rank Ordering
  kNelderMead,  ///< the original Active Harmony optimizer
};

class SessionBuilder {
 public:
  /// Tunable declarations (chainable).
  SessionBuilder& add_int(std::string name, long lo, long hi);
  SessionBuilder& add_continuous(std::string name, double lo, double hi);
  SessionBuilder& add_discrete(std::string name, std::vector<double> values);

  /// Optimizer selection and knobs.
  SessionBuilder& algorithm(Algorithm algo);
  /// Declarative optimizer selection (DESIGN.md §13): any registered
  /// strategy spec, e.g. "pro:k=4" or "spsa:a=0.2,c=0.1".  Overrides
  /// algorithm()/samples()/initial_simplex_size(); pass an empty string to
  /// return to the enum path.  The spec is validated (names, keys, ranges)
  /// at build() time.
  SessionBuilder& strategy_spec(std::string spec);
  /// Declarative noise expectation, e.g. "pareto:rho=0.1,alpha=1.7".  The
  /// server does not simulate noise — this is carried for client harnesses
  /// (examples/, loadgen) that build their synthetic environment from the
  /// same session description.
  SessionBuilder& noise_spec(std::string spec);
  const std::string& strategy_spec() const { return strategy_spec_; }
  const std::string& noise_spec() const { return noise_spec_; }
  SessionBuilder& samples(int k);            ///< min-of-K sampling (§5.2)
  SessionBuilder& adaptive_samples(int max_k);  ///< future-work adaptive K
  SessionBuilder& initial_simplex_size(double r);
  SessionBuilder& clients(std::size_t n);    ///< ranks that will fetch/report

  /// Deadline-aware round closing (see ServerOptions): rounds open longer
  /// than `seconds` are force-closed with missing times imputed.  Zero
  /// disables the deadline.
  SessionBuilder& report_timeout(double seconds);
  SessionBuilder& impute_penalty(double factor);
  SessionBuilder& straggler_policy(StragglerPolicy policy);
  /// Per-step telemetry fan-out (not owned; must outlive the Server).
  SessionBuilder& observer(core::SessionObserver* obs);
  /// Telemetry label for the server's metrics ({"session", name}).
  SessionBuilder& session(std::string name);

  /// Number of parameters declared so far.
  std::size_t parameter_count() const { return params_.size(); }

  /// Builds the tuning server.  Requires at least one parameter and one
  /// client.
  std::unique_ptr<Server> build() const;

  /// The declared admissible region (useful for validation and tests).
  core::ParameterSpace space() const;

 private:
  std::vector<core::Parameter> params_;
  std::string strategy_spec_;
  std::string noise_spec_;
  Algorithm algo_ = Algorithm::kPro;
  int samples_ = 1;
  bool adaptive_ = false;
  int max_samples_ = 8;
  double initial_size_ = 0.2;
  std::size_t clients_ = 1;
  ServerOptions server_options_;
};

}  // namespace protuner::harmony
