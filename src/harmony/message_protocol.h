// Message-passing variant of the Harmony protocol: a dedicated server rank
// owns the tuning strategy and application ranks talk to it exclusively
// through comm::Communicator::send/recv — the in-process analogue of
// Active Harmony's socket protocol, and the integration shape for a real
// MPI port (replace send/recv with MPI_Send/MPI_Recv).
//
// Wire format (vector<double>):
//   client -> server:  {kFetch,  client_rank}
//   server -> client:  {kConfig, x_0 ... x_{N-1}}
//   client -> server:  {kReport, client_rank, observed_time}
//   client -> server:  {kBye,    client_rank}
//
// The server runs rounds bulk-synchronously: it answers fetches from the
// current round's assignment and advances the strategy when every client
// has reported.  It returns when every client has said goodbye.
#pragma once

#include <cstddef>
#include <vector>

#include "comm/spmd.h"
#include "core/strategy.h"

namespace protuner::harmony {

enum MessageTag : int {
  kFetch = 1,
  kConfig = 2,
  kReport = 3,
  kBye = 4,
};

/// Result of a completed server loop.
struct MessageServerResult {
  double total_time = 0.0;
  std::size_t rounds = 0;
  core::Point best;
  bool converged = false;
};

/// Runs the tuning server on the calling rank until every client rank has
/// sent kBye.  `clients` is the number of application ranks (the server
/// rank itself is not one of them).
MessageServerResult run_message_server(comm::Communicator& comm,
                                       core::TuningStrategyPtr strategy,
                                       std::size_t clients);

/// Client-side helper bound to the server's rank.
class MessageClient {
 public:
  MessageClient(comm::Communicator& comm, std::size_t server_rank)
      : comm_(comm), server_rank_(server_rank) {}

  /// Requests and returns this rank's configuration for the current round.
  core::Point fetch();

  /// Reports the observed iteration time for the fetched configuration.
  void report(double time);

  /// Tells the server this client is done.
  void goodbye();

 private:
  comm::Communicator& comm_;
  std::size_t server_rank_;
};

}  // namespace protuner::harmony
