// Multi-session hosting for the Harmony front end: one process-wide manager
// owns many named concurrent tuning sessions, each a harmony::Server over
// its own core::RoundEngine.  This is the serving shape of the ROADMAP's
// north star — many applications (or many independent tuning problems of
// one application) registering with a single tuning service, each with its
// own strategy, width, deadline policy and telemetry.
//
//   harmony::SessionManager manager;
//   auto gs2 = manager.create("gs2", std::move(pro_strategy), 8, options);
//   ...                        // ranks drive gs2->fetch()/report()
//   auto same = manager.attach("gs2");   // another component joins
//   manager.stats("gs2");                // live accounting snapshot
//   manager.detach("gs2");
//   manager.remove("gs2");               // only once fully detached
//
// Thread-safe: create/attach/detach/remove/stats may be called from any
// thread while client ranks concurrently drive the sessions themselves
// (Server carries its own lock; the manager's lock only guards the
// registry).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "harmony/server.h"

namespace protuner::harmony {

/// Misuse of the session registry: duplicate create, attach/stats/remove of
/// an unknown name, remove while still attached.
class SessionError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class SessionManager {
 public:
  /// Live accounting snapshot of one hosted session.
  struct SessionStats {
    std::string name;
    std::string strategy;
    std::size_t clients = 0;
    std::size_t active_ranks = 0;  ///< clients minus dropped stragglers
    std::size_t attached = 0;      ///< attach() minus detach() balance
    std::size_t rounds = 0;
    double total_time = 0.0;
    bool converged = false;
    std::optional<std::size_t> convergence_round;
    core::Point best;
  };

  /// Creates and hosts a new named session.  Throws SessionError when the
  /// name is already taken.
  std::shared_ptr<Server> create(const std::string& name,
                                 core::TuningStrategyPtr strategy,
                                 std::size_t clients,
                                 ServerOptions options = {});

  /// Joins an existing session (bumps its attach count).  Throws
  /// SessionError for unknown names.
  std::shared_ptr<Server> attach(const std::string& name);

  /// Releases one attach() of `name`.  Throws SessionError for unknown
  /// names or when the session has no attachment outstanding.
  void detach(const std::string& name);

  /// Lookup without attaching; nullptr for unknown names.
  std::shared_ptr<Server> find(const std::string& name) const;

  /// Unhosts a session.  Throws SessionError while attachments are
  /// outstanding; returns false when the name is unknown.  Components
  /// still holding the shared_ptr keep a working (but unlisted) session.
  bool remove(const std::string& name);

  std::vector<std::string> names() const;
  std::size_t size() const;

  SessionStats stats(const std::string& name) const;
  std::vector<SessionStats> stats_all() const;

  /// Every hosted session's instruments in one snapshot (each session's
  /// series stay distinguishable by their {"session", ...} label).  Feed to
  /// obs::render_prometheus for a combined exposition page.
  obs::RegistrySnapshot metrics_snapshot() const;

 private:
  struct Hosted {
    std::shared_ptr<Server> server;
    std::size_t attached = 0;
  };

  SessionStats stats_locked(const std::string& name,
                            const Hosted& hosted) const;

  mutable std::mutex mutex_;
  std::map<std::string, Hosted> sessions_;
};

}  // namespace protuner::harmony
