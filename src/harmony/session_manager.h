// Multi-session hosting for the Harmony front end: one process-wide manager
// owns many named concurrent tuning sessions, each a harmony::Server over
// its own core::RoundEngine.  This is the serving shape of the ROADMAP's
// north star — many applications (or many independent tuning problems of
// one application) registering with a single tuning service, each with its
// own strategy, width, deadline policy and telemetry.
//
//   harmony::SessionManager manager;
//   auto gs2 = manager.create("gs2", std::move(pro_strategy), 8, options);
//   ...                        // ranks drive gs2->fetch()/report()
//   auto same = manager.attach("gs2");   // another component joins
//   manager.stats("gs2");                // live accounting snapshot
//   manager.detach("gs2");
//   manager.remove("gs2");               // only once fully detached
//
// Thread-safe and contention-shy (DESIGN.md §12): the registry is sharded
// by name hash, each shard behind a shared_mutex.  Lookups (attach, find,
// stats, names) take one shard's reader lock; only create and remove take
// a writer lock, and only on the one shard that owns the name — so
// registry churn on one session never blocks another session's attach or
// a dashboard's stats sweep.  Attach counts are atomics on a shared_ptr'd
// record: attach/detach under the reader lock mutate the count without
// ever excluding each other or unrelated lookups (remove's writer lock is
// what makes its attached==0 check race-free).  Aggregation (stats_all,
// metrics_snapshot) copies the handles out under the brief reader locks
// and does every server call after release, so a slow exporter or a stats
// sweep over a big session never holds the registry against create/remove
// (Server's own accessors are wait-free against its traffic in turn).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "harmony/server.h"

namespace protuner::harmony {

/// Misuse of the session registry: duplicate create, attach/stats/remove of
/// an unknown name, remove while still attached.
class SessionError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class SessionManager {
 public:
  /// Live accounting snapshot of one hosted session.
  struct SessionStats {
    std::string name;
    std::string strategy;
    std::size_t clients = 0;
    std::size_t active_ranks = 0;  ///< clients minus dropped stragglers
    std::size_t attached = 0;      ///< attach() minus detach() balance
    std::size_t rounds = 0;
    double total_time = 0.0;
    bool converged = false;
    std::optional<std::size_t> convergence_round;
    core::Point best;
  };

  /// Creates and hosts a new named session.  Throws SessionError when the
  /// name is already taken.
  std::shared_ptr<Server> create(const std::string& name,
                                 core::TuningStrategyPtr strategy,
                                 std::size_t clients,
                                 ServerOptions options = {});

  /// Joins an existing session (bumps its attach count).  Throws
  /// SessionError for unknown names.
  std::shared_ptr<Server> attach(const std::string& name);

  /// Releases one attach() of `name`.  Throws SessionError for unknown
  /// names or when the session has no attachment outstanding.
  void detach(const std::string& name);

  /// Lookup without attaching; nullptr for unknown names.
  std::shared_ptr<Server> find(const std::string& name) const;

  /// Unhosts a session.  Throws SessionError while attachments are
  /// outstanding; returns false when the name is unknown.  Components
  /// still holding the shared_ptr keep a working (but unlisted) session.
  bool remove(const std::string& name);

  std::vector<std::string> names() const;
  std::size_t size() const;

  SessionStats stats(const std::string& name) const;
  std::vector<SessionStats> stats_all() const;

  /// Every hosted session's instruments in one snapshot (each session's
  /// series stay distinguishable by their {"session", ...} label).  Feed to
  /// obs::render_prometheus for a combined exposition page.
  obs::RegistrySnapshot metrics_snapshot() const;

 private:
  // One hosted session.  shared_ptr'd so aggregators can pin a record
  // outside the shard lock; `attached` is atomic so attach/detach work
  // under the reader lock.
  struct Hosted {
    std::shared_ptr<Server> server;
    std::atomic<std::size_t> attached{0};
  };

  static constexpr std::size_t kShardCount = 16;

  struct Shard {
    mutable std::shared_mutex mutex;
    std::map<std::string, std::shared_ptr<Hosted>> sessions;
  };

  Shard& shard_for(const std::string& name);
  const Shard& shard_for(const std::string& name) const;
  /// Looks the name up under the shard's reader lock; nullptr if unknown.
  std::shared_ptr<Hosted> find_hosted(const std::string& name) const;
  /// Pins every hosted record, name-sorted, touching each shard only
  /// briefly under its reader lock.
  std::vector<std::pair<std::string, std::shared_ptr<Hosted>>> pin_all()
      const;
  static SessionStats stats_of(const std::string& name, const Hosted& hosted);

  std::array<Shard, kShardCount> shards_;
};

}  // namespace protuner::harmony
