#include "harmony/message_protocol.h"

#include <cassert>

#include "core/round_engine.h"

namespace protuner::harmony {

namespace {

/// Maps a client's global rank to its dense client index (the server rank
/// is excluded from the client numbering).
std::size_t client_index(std::size_t rank, std::size_t server_rank) {
  return rank < server_rank ? rank : rank - 1;
}

}  // namespace

MessageServerResult run_message_server(comm::Communicator& comm,
                                       core::TuningStrategyPtr strategy,
                                       std::size_t clients) {
  assert(strategy != nullptr);
  assert(clients >= 1);
  assert(clients + 1 <= comm.size());

  // The round lifecycle — assignment publication (padded with the best
  // point for ranks beyond the proposal), T_k accounting, strategy advance
  // — lives in the shared engine; this loop is pure transport.
  core::RoundEngineOptions engine_options;
  engine_options.width = clients;
  engine_options.pad_assignment = true;
  engine_options.record_series = false;
  core::RoundEngine engine(*strategy, engine_options);
  engine.open_round();

  std::vector<bool> waiting(clients, false);
  std::size_t byes = 0;

  const auto reply_config = [&](std::size_t client) {
    const core::Point& config = engine.assignment_for(client);
    std::vector<double> msg;
    msg.reserve(1 + config.size());
    msg.push_back(static_cast<double>(kConfig));
    for (double v : config) msg.push_back(v);
    // The client's global rank reverses the dense index mapping.
    const std::size_t rank =
        client < comm.rank() ? client : client + 1;
    comm.send(rank, std::move(msg));
  };

  while (byes < clients) {
    const std::vector<double> msg = comm.recv();
    assert(msg.size() >= 2);
    const auto tag = static_cast<MessageTag>(static_cast<int>(msg[0]));
    const std::size_t client =
        client_index(static_cast<std::size_t>(msg[1]), comm.rank());
    assert(client < clients);

    switch (tag) {
      case kFetch:
        if (!engine.submitted(client)) {
          // The client is fetching for the round currently open.
          reply_config(client);
        } else {
          // The client already reported and is ahead of the slowest rank;
          // its fetch is answered when the round closes.
          waiting[client] = true;
        }
        break;
      case kReport: {
        assert(msg.size() == 3);
        engine.submit(client, msg[2]);
        if (engine.complete()) {
          engine.close_round();
          engine.open_round();
          for (std::size_t c = 0; c < clients; ++c) {
            if (waiting[c]) {
              waiting[c] = false;
              reply_config(c);
            }
          }
        }
        break;
      }
      case kBye:
        ++byes;
        break;
      case kConfig:
        assert(false && "server received a kConfig message");
        break;
    }
  }

  MessageServerResult result;
  result.total_time = engine.total_time();
  result.rounds = engine.rounds_completed();
  result.best = strategy->best_point();
  result.converged = strategy->converged();
  return result;
}

core::Point MessageClient::fetch() {
  comm_.send(server_rank_, {static_cast<double>(kFetch),
                            static_cast<double>(comm_.rank())});
  const std::vector<double> msg = comm_.recv();
  assert(!msg.empty());
  assert(static_cast<int>(msg[0]) == kConfig);
  return core::Point(msg.begin() + 1, msg.end());
}

void MessageClient::report(double time) {
  comm_.send(server_rank_, {static_cast<double>(kReport),
                            static_cast<double>(comm_.rank()), time});
}

void MessageClient::goodbye() {
  comm_.send(server_rank_, {static_cast<double>(kBye),
                            static_cast<double>(comm_.rank())});
}

}  // namespace protuner::harmony
