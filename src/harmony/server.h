// Active-Harmony-style tuning server (paper §1: applications register their
// tunable parameters; the server iteratively monitors performance and tunes).
//
// The server is a transport front end over core::RoundEngine: it owns a
// TuningStrategy, keeps exactly one round open at all times, and maps the
// bulk-synchronous client protocol onto engine transitions:
//   * each rank calls fetch() to receive its configuration for the current
//     application time step (an engine assignment slot);
//   * after running one iteration it calls report(time) (engine submit);
//   * when the last expected rank reports, the server closes the round
//     (T_k = max over ranks, strategy advance, observer fan-out) and opens
//     the next one.
//
// Concurrency (DESIGN.md §12): the Collecting phase is contention-free.
// Each open round's assignment and per-slot completion state live in a
// double-buffered RoundBuffer published with release/acquire ordering on the
// round counter; a fetch for the open round and a report that is not the
// round's last touch only per-slot atomics and a reader-count gate (two
// uncontended RMWs), so distinct ranks never serialize on a mutex.  The
// exclusive lock is taken only at the round-advance barrier (the last
// report or a deadline sweep), by blocked fetch waiters, and by rank
// re-entry — exactly the points where the protocol itself is a barrier.
// Latency telemetry stamps with obs::LatencyClock (rdtsc) instead of
// steady_clock — at serving rates the four vDSO clock reads per
// fetch/report pair outweigh the protocol itself.  Accounting accessors
// read an atomics-backed stats cache refreshed at each advance, so
// monitoring (stats snapshots, exporters) never blocks fetch/report
// traffic.
//
// Deadline-aware round closing: with ServerOptions::report_timeout set, a
// round that stays open past the deadline is force-closed — every missing
// rank's time is imputed as max-of-observed × impute_penalty (the paper's
// worst-case metric makes this the natural pessimistic estimate) and the
// straggler is handled per StragglerPolicy: kShrink drops it from future
// rounds (it may re-enter by calling fetch again), kFail poisons the
// session so every subsequent call throws.  The deadline is enforced by
// ranks blocked in fetch() waiting for the next round, or externally via
// tick() for drivers that never block; tick() never blocks in-flight
// fetch/report fast paths.
//
// Protocol violations — out-of-range rank, double fetch, report without a
// fetch — are hard errors (ProtocolError), never silent misbehavior or
// deadlock.
//
// Thread-safe: designed to be driven by comm::spmd_run ranks concurrently
// (the in-process stand-in for Active Harmony's socket protocol), and works
// equally from a sequential loop.  One rank's fetch/report calls must be
// issued in program order (they may hop threads between calls as long as
// the caller orders them, e.g. by joining or by its own synchronization).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/parameter_space.h"
#include "core/round_engine.h"
#include "core/strategy.h"
#include "obs/fast_clock.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace protuner::harmony {

/// A client broke the fetch/report protocol, or the session was poisoned
/// by a straggler deadline under StragglerPolicy::kFail.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class StragglerPolicy {
  /// Impute the missing times, drop the straggler from future rounds and
  /// keep tuning with the remaining ranks.  Dropped ranks re-enter by
  /// calling fetch() again.
  kShrink,
  /// Poison the session: the deadline violation is fatal and every
  /// subsequent fetch/report throws ProtocolError.
  kFail,
};

struct ServerOptions {
  /// Wall-clock budget for one round, measured from the moment its
  /// assignment is published.  Zero (the default) disables the deadline:
  /// rounds wait for every rank, however long it takes.
  std::chrono::duration<double> report_timeout{0.0};
  /// A straggler's imputed time is max-of-observed × this factor (>= 1).
  double impute_penalty = 1.5;
  StragglerPolicy straggler_policy = StragglerPolicy::kShrink;
  /// Per-step telemetry hook, invoked under the server lock when a round
  /// closes — the same fan-out run_session-driven sessions get.
  core::SessionObserver* observer = nullptr;
  /// Keep the per-step T_k series (step_costs()); off to save memory on
  /// very long sessions.
  bool record_series = true;
  /// Registry the server's (and its engine's) telemetry is registered in;
  /// null means obs::Registry::global().
  obs::Registry* metrics = nullptr;
  /// Session name, applied as the {"session", ...} label on every
  /// instrument so one registry can host many concurrent sessions
  /// (SessionManager::create fills it in from the session name).  Empty
  /// registers the instruments unlabelled.
  std::string session;
  /// Flight recorder the server's control-plane events (round transitions,
  /// imputations, deadline expiries, protocol errors) are appended to; null
  /// means obs::FlightRecorder::global().
  obs::FlightRecorder* flight = nullptr;
};

class Server {
 public:
  /// `clients` ranks will call fetch/report each round.  The strategy is
  /// started with that width.
  Server(core::TuningStrategyPtr strategy, std::size_t clients,
         ServerOptions options = {});

  /// Blocks until the current round's assignment is available, returns the
  /// configuration rank `rank` must run.  Each rank must alternate
  /// fetch/report strictly; a dropped rank re-enters the session here.
  core::Point fetch(std::size_t rank);

  /// Non-allocating fetch: fills `out` (reusing its capacity) with the
  /// configuration rank `rank` must run.  Identical semantics to fetch();
  /// once the round shape is warm this is heap-silent, so an open-loop
  /// load generator can drive millions of ops without touching malloc.
  void fetch_into(std::size_t rank, core::Point& out);

  /// Non-blocking fetch for event-loop transports (net::NetServer): returns
  /// true and fills `out` when the rank's round is open, false when the
  /// fetch would have to wait for the next round to be published (the
  /// caller parks the request and retries after the round advances — the
  /// server's round counter, visible through rounds_completed(), bumps at
  /// every advance).  A dropped rank re-enters the session here exactly as
  /// it would in fetch(): the first call reactivates it and returns false,
  /// a retry after the next publish succeeds.  Protocol violations throw
  /// ProtocolError just like fetch(); unlike fetch() this never sleeps, so
  /// a deadline must be enforced externally via tick().
  bool try_fetch_into(std::size_t rank, core::Point& out);

  /// try_fetch_into that additionally reports the served round's trace
  /// context (DESIGN.md §15), so a wire transport can hand the client the
  /// ids its own spans must join.  `trace` is filled only on success.
  bool try_fetch_into(std::size_t rank, core::Point& out,
                      obs::TraceContext& trace);

  /// The correlation id every span of round `round` carries, on this
  /// process and (propagated over the wire) on every client that served
  /// it.  Deterministic per (server instance, round): derived from a
  /// per-server random seed, never zero.
  std::uint64_t round_trace_id(std::uint64_t round) const;

  /// Reports the observed iteration time for the configuration most
  /// recently fetched by `rank`.  The final report of a round closes it:
  /// the engine accounts T_k, advances the strategy and publishes the next
  /// assignment.  A report for a round that was already deadline-closed is
  /// discarded (the rank's measurement arrived too late to count).
  void report(std::size_t rank, double time);

  /// Deadline poll for drivers with no rank blocked in fetch(): closes the
  /// open round by imputation if its deadline has expired.  Returns true
  /// when it closed a round.  No-op when the deadline is disabled.  Never
  /// blocks concurrent fetch/report fast paths, however often it is called.
  bool tick();

  /// Accounting (safe to read while traffic is in flight: these read the
  /// atomics-backed stats cache refreshed at each round advance and never
  /// contend with the fetch/report fast path).
  double total_time() const;
  std::size_t rounds_completed() const;
  core::Point best_point() const;
  bool converged() const;
  std::vector<double> step_costs() const;
  std::optional<std::size_t> convergence_round() const;

  std::size_t clients() const { return clients_; }
  /// Ranks currently participating in rounds (clients() minus dropped).
  std::size_t active_ranks() const;
  /// The configured round deadline (zero = disabled).  The serving tier's
  /// stall watchdog scales its threshold from this.
  std::chrono::duration<double> report_timeout() const {
    return options_.report_timeout;
  }
  /// Name of the strategy behind the session (for stats snapshots).
  std::string strategy_name() const;
  /// The session's telemetry label (ServerOptions::session).
  const std::string& session_name() const { return options_.session; }

  /// Point-in-time copy of this session's instruments: the snapshot is
  /// filtered to the session label when one is set, the whole registry
  /// otherwise.  Feed it to obs::render_prometheus for exposition.
  obs::RegistrySnapshot metrics_snapshot() const;

 private:
  // Per-slot completion state of one open round.
  enum SlotState : std::uint8_t {
    kSlotIdle = 0,  ///< not part of this round (inactive rank placeholder)
    kSlotPending,   ///< expected, not yet reported
    kSlotReported,  ///< time recorded by the rank (claims the slot)
    kSlotImputed,   ///< claimed by the deadline sweep; a late report loses
  };

  struct alignas(64) Slot {
    std::atomic<std::uint8_t> state{kSlotIdle};
    double time = 0.0;  ///< written by the owning rank before its claim CAS
  };

  // One open round's published state.  Double-buffered: round k lives in
  // buffers_[k & 1]; the buffer is recycled for round k+2 with the gate
  // held exclusively, so a straggling reader of round k (which revalidates
  // round_ while holding a read share) can never observe a half-written
  // successor.
  //
  // The gate is a reader-count word, not a shared_mutex: entry and exit
  // are one uncontended RMW each (~5ns vs ~25ns per pthread rwlock op),
  // and because every entry is an RMW on the same word, the recycler's
  // CAS 0 → kGateLocked atomically drains current readers and bounces
  // future ones (a reader that observes a negative count backs out to the
  // slow path without touching the buffer).  The recycler runs once per
  // round under mutex_ and spin-yields for the nanosecond-scale read
  // holds, so writer-side waiting is not on any hot path.
  struct RoundBuffer {
    std::atomic<std::int32_t> gate{0};
    std::vector<core::Point> assignment;  ///< one configuration per rank
    std::unique_ptr<Slot[]> slots;        ///< clients_ entries
    std::atomic<std::size_t> pending{0};  ///< expected slots not yet claimed
  };

  static constexpr std::int32_t kGateLocked =
      std::numeric_limits<std::int32_t>::min() / 2;

  /// Acquires a read share of the buffer; false when the recycler holds it
  /// (caller must fall back to the mutex_ path).
  static bool gate_enter(RoundBuffer& buf) {
    if (buf.gate.fetch_add(1, std::memory_order_acquire) < 0) {
      buf.gate.fetch_sub(1, std::memory_order_relaxed);
      return false;
    }
    return true;
  }
  static void gate_exit(RoundBuffer& buf) {
    buf.gate.fetch_sub(1, std::memory_order_release);
  }
  static void gate_lock(RoundBuffer& buf);
  static void gate_unlock(RoundBuffer& buf) {
    buf.gate.fetch_sub(kGateLocked, std::memory_order_release);
  }

  // Per-rank protocol state.  Owned by the rank: the caller orders one
  // rank's fetch/report calls, so no atomics are needed; padding keeps
  // neighbouring ranks off each other's cache line.
  struct alignas(64) RankState {
    std::uint64_t round = 0;  ///< round this rank works on next
    bool fetched = false;     ///< rank holds an unreported assignment
  };

  void throw_if_failed_locked() const;
  [[noreturn]] void fail_locked(const std::string& why);
  /// Closes round `round` once every expected slot is claimed: feeds the
  /// engine, handles imputed slots, advances and publishes the successor.
  void finish_round_locked(std::uint64_t round);
  /// Engine close + open, stats-cache refresh, successor publication.
  void advance_locked();
  /// Copies the engine's open assignment into the target round's buffer and
  /// publishes it by storing round_.
  void publish_round_locked(std::uint64_t round);
  bool deadline_enabled() const;
  std::chrono::steady_clock::time_point deadline_locked() const;
  /// Force-closes the open round by imputation if its deadline has
  /// expired.  Returns true when the round was closed.
  bool close_by_deadline_locked();
  /// Lock-free Collecting-phase fetch: serves the open round through the
  /// gate; false when the caller must take the slow (mutex) path.
  /// `entered` is the obs::LatencyClock stamp taken at fetch entry.
  bool fetch_fast(std::size_t rank, core::Point& out, std::uint64_t entered);
  /// Slow fetch path: blocked waiters, rank re-entry, failure reporting.
  void fetch_slow(std::size_t rank, core::Point& out, std::uint64_t entered);
  void check_fetch_rank(std::size_t rank) const;
  void refresh_stats_cache_locked(double last_cost);
  /// Counts the violation and appends it to the flight recorder.
  void note_protocol_error(const char* kind, std::size_t rank) const;

  core::TuningStrategyPtr strategy_;
  const std::size_t clients_;
  const ServerOptions options_;

  // Telemetry, resolved once here; recording is allocation-free.
  obs::Histogram& obs_fetch_ns_;
  obs::Histogram& obs_report_ns_;
  obs::Histogram& obs_round_wall_ns_;
  obs::Counter& obs_protocol_errors_;
  obs::Counter& obs_deadline_expiries_;
  obs::Counter& obs_discarded_reports_;
  obs::FlightRecorder& flight_;
  const std::uint64_t trace_seed_;  ///< per-server entropy for round ids

  // ------------------------------------------------ contention-free state
  RoundBuffer buffers_[2];
  std::atomic<std::uint64_t> round_{0};  ///< index of the open round
  std::atomic<bool> failed_{false};
  std::vector<RankState> ranks_;

  // -------------------------------------------- round-advance barrier lock
  // Guards the engine, the deadline clock and the failure string.  Taken by
  // the closing report, the deadline sweep, blocked fetch waiters and rank
  // re-entry — never by the Collecting-phase fast path.
  mutable std::mutex mutex_;
  std::condition_variable round_ready_;
  core::RoundEngine engine_;
  std::chrono::steady_clock::time_point round_opened_;
  std::string failure_;  ///< non-empty once the session is poisoned

  // ------------------------------------------------------------ stats cache
  // Refreshed under mutex_ at every advance; read by the accessors without
  // touching mutex_, so exporters and dashboards never stall traffic.
  std::atomic<std::size_t> stat_rounds_{0};
  std::atomic<double> stat_total_time_{0.0};
  std::atomic<bool> stat_converged_{false};
  std::atomic<std::size_t> stat_convergence_round_{0};  ///< 0 = none yet
  std::atomic<std::size_t> stat_active_{0};
  mutable std::mutex stats_mutex_;  ///< guards the two non-atomic fields
  core::Point stat_best_;
  std::vector<double> stat_costs_;
  const std::string strategy_name_;
};

/// Per-rank convenience handle.
class Client {
 public:
  Client(Server& server, std::size_t rank) : server_(server), rank_(rank) {}

  core::Point fetch() { return server_.fetch(rank_); }
  void fetch(core::Point& out) { server_.fetch_into(rank_, out); }
  void report(double time) { server_.report(rank_, time); }
  std::size_t rank() const { return rank_; }

 private:
  Server& server_;
  std::size_t rank_;
};

}  // namespace protuner::harmony
