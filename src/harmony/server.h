// Active-Harmony-style tuning server (paper §1: applications register their
// tunable parameters; the server iteratively monitors performance and tunes).
//
// The server is a transport front end over core::RoundEngine: it owns a
// TuningStrategy, keeps exactly one round open at all times, and maps the
// bulk-synchronous client protocol onto engine transitions:
//   * each rank calls fetch() to receive its configuration for the current
//     application time step (an engine assignment slot);
//   * after running one iteration it calls report(time) (engine submit);
//   * when the last expected rank reports, the server closes the round
//     (T_k = max over ranks, strategy advance, observer fan-out) and opens
//     the next one.
//
// Deadline-aware round closing: with ServerOptions::report_timeout set, a
// round that stays open past the deadline is force-closed — every missing
// rank's time is imputed as max-of-observed × impute_penalty (the paper's
// worst-case metric makes this the natural pessimistic estimate) and the
// straggler is handled per StragglerPolicy: kShrink drops it from future
// rounds (it may re-enter by calling fetch again), kFail poisons the
// session so every subsequent call throws.  The deadline is enforced by
// ranks blocked in fetch() waiting for the next round, or externally via
// tick() for drivers that never block.
//
// Protocol violations — out-of-range rank, double fetch, report without a
// fetch — are hard errors (ProtocolError), never silent misbehavior or
// deadlock.
//
// Thread-safe: designed to be driven by comm::spmd_run ranks concurrently
// (the in-process stand-in for Active Harmony's socket protocol), and works
// equally from a sequential loop.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/parameter_space.h"
#include "core/round_engine.h"
#include "core/strategy.h"
#include "obs/metrics.h"

namespace protuner::harmony {

/// A client broke the fetch/report protocol, or the session was poisoned
/// by a straggler deadline under StragglerPolicy::kFail.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class StragglerPolicy {
  /// Impute the missing times, drop the straggler from future rounds and
  /// keep tuning with the remaining ranks.  Dropped ranks re-enter by
  /// calling fetch() again.
  kShrink,
  /// Poison the session: the deadline violation is fatal and every
  /// subsequent fetch/report throws ProtocolError.
  kFail,
};

struct ServerOptions {
  /// Wall-clock budget for one round, measured from the moment its
  /// assignment is published.  Zero (the default) disables the deadline:
  /// rounds wait for every rank, however long it takes.
  std::chrono::duration<double> report_timeout{0.0};
  /// A straggler's imputed time is max-of-observed × this factor (>= 1).
  double impute_penalty = 1.5;
  StragglerPolicy straggler_policy = StragglerPolicy::kShrink;
  /// Per-step telemetry hook, invoked under the server lock when a round
  /// closes — the same fan-out run_session-driven sessions get.
  core::SessionObserver* observer = nullptr;
  /// Keep the per-step T_k series (step_costs()); off to save memory on
  /// very long sessions.
  bool record_series = true;
  /// Registry the server's (and its engine's) telemetry is registered in;
  /// null means obs::Registry::global().
  obs::Registry* metrics = nullptr;
  /// Session name, applied as the {"session", ...} label on every
  /// instrument so one registry can host many concurrent sessions
  /// (SessionManager::create fills it in from the session name).  Empty
  /// registers the instruments unlabelled.
  std::string session;
};

class Server {
 public:
  /// `clients` ranks will call fetch/report each round.  The strategy is
  /// started with that width.
  Server(core::TuningStrategyPtr strategy, std::size_t clients,
         ServerOptions options = {});

  /// Blocks until the current round's assignment is available, returns the
  /// configuration rank `rank` must run.  Each rank must alternate
  /// fetch/report strictly; a dropped rank re-enters the session here.
  core::Point fetch(std::size_t rank);

  /// Reports the observed iteration time for the configuration most
  /// recently fetched by `rank`.  The final report of a round closes it:
  /// the engine accounts T_k, advances the strategy and publishes the next
  /// assignment.  A report for a round that was already deadline-closed is
  /// discarded (the rank's measurement arrived too late to count).
  void report(std::size_t rank, double time);

  /// Deadline poll for drivers with no rank blocked in fetch(): closes the
  /// open round by imputation if its deadline has expired.  Returns true
  /// when it closed a round.  No-op when the deadline is disabled.
  bool tick();

  /// Accounting (safe to read between rounds; exact after all clients have
  /// finished their loops).
  double total_time() const;
  std::size_t rounds_completed() const;
  core::Point best_point() const;
  bool converged() const;
  std::vector<double> step_costs() const;
  std::optional<std::size_t> convergence_round() const;

  std::size_t clients() const { return clients_; }
  /// Ranks currently participating in rounds (clients() minus dropped).
  std::size_t active_ranks() const;
  /// Name of the strategy behind the session (for stats snapshots).
  std::string strategy_name() const;
  /// The session's telemetry label (ServerOptions::session).
  const std::string& session_name() const { return options_.session; }

  /// Point-in-time copy of this session's instruments: the snapshot is
  /// filtered to the session label when one is set, the whole registry
  /// otherwise.  Feed it to obs::render_prometheus for exposition.
  obs::RegistrySnapshot metrics_snapshot() const;

 private:
  void throw_if_failed_locked() const;
  [[noreturn]] void fail_locked(const std::string& why);
  /// Closes the open round (engine close + next open) and wakes waiters.
  void advance_locked();
  bool deadline_enabled() const;
  std::chrono::steady_clock::time_point deadline_locked() const;
  /// Force-closes the open round by imputation if its deadline has
  /// expired.  Returns true when the round was closed.
  bool close_by_deadline_locked();

  core::TuningStrategyPtr strategy_;
  const std::size_t clients_;
  const ServerOptions options_;

  // Telemetry, resolved once here; recording is allocation-free.
  obs::Histogram& obs_fetch_ns_;
  obs::Histogram& obs_report_ns_;
  obs::Histogram& obs_round_wall_ns_;
  obs::Counter& obs_protocol_errors_;
  obs::Counter& obs_deadline_expiries_;
  obs::Counter& obs_discarded_reports_;

  mutable std::mutex mutex_;
  std::condition_variable round_ready_;
  core::RoundEngine engine_;

  std::size_t round_ = 0;  ///< index of the open round (== rounds closed)
  std::vector<std::size_t> rank_round_;  ///< round each rank works on next
  std::vector<bool> fetched_;  ///< rank holds an unreported assignment
  std::chrono::steady_clock::time_point round_opened_;
  std::string failure_;  ///< non-empty once the session is poisoned
};

/// Per-rank convenience handle.
class Client {
 public:
  Client(Server& server, std::size_t rank) : server_(server), rank_(rank) {}

  core::Point fetch() { return server_.fetch(rank_); }
  void report(double time) { server_.report(rank_, time); }
  std::size_t rank() const { return rank_; }

 private:
  Server& server_;
  std::size_t rank_;
};

}  // namespace protuner::harmony
