// Active-Harmony-style tuning server (paper §1: applications register their
// tunable parameters; the server iteratively monitors performance and tunes).
//
// The server owns a TuningStrategy and exposes the bulk-synchronous client
// protocol:
//   * each rank calls fetch() to receive its configuration for the current
//     application time step;
//   * after running one iteration it calls report(time);
//   * when the last rank reports, the server accounts T_k = max over ranks,
//     feeds the strategy, and opens the next round.
//
// Thread-safe: designed to be driven by comm::spmd_run ranks concurrently
// (the in-process stand-in for Active Harmony's socket protocol), and works
// equally from a sequential loop.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <vector>

#include "core/parameter_space.h"
#include "core/strategy.h"

namespace protuner::harmony {

class Server {
 public:
  /// `clients` ranks will call fetch/report each round.  The strategy is
  /// started with that width.
  Server(core::TuningStrategyPtr strategy, std::size_t clients);

  /// Blocks until the current round's assignment is available, returns the
  /// configuration rank `rank` must run.  Each rank must alternate
  /// fetch/report strictly.
  core::Point fetch(std::size_t rank);

  /// Reports the observed iteration time for the configuration most
  /// recently fetched by `rank`.  The final report of a round advances the
  /// tuning strategy and publishes the next round.
  void report(std::size_t rank, double time);

  /// Accounting (safe to read between rounds; exact after all clients have
  /// finished their loops).
  double total_time() const;
  std::size_t rounds_completed() const;
  core::Point best_point() const;
  bool converged() const;
  std::vector<double> step_costs() const;

 private:
  void publish_round_locked();

  core::TuningStrategyPtr strategy_;
  const std::size_t clients_;

  mutable std::mutex mutex_;
  std::condition_variable round_ready_;

  std::size_t round_ = 0;                  ///< current round index
  std::vector<core::Point> assignment_;    ///< per-rank configs (padded)
  std::size_t proposal_size_ = 0;          ///< configs the strategy proposed
  std::vector<double> times_;              ///< per-rank reported times
  std::vector<bool> reported_;
  std::size_t reports_ = 0;
  std::vector<std::size_t> client_round_;  ///< round each rank is in

  double total_time_ = 0.0;
  std::vector<double> step_costs_;
};

/// Per-rank convenience handle.
class Client {
 public:
  Client(Server& server, std::size_t rank) : server_(server), rank_(rank) {}

  core::Point fetch() { return server_.fetch(rank_); }
  void report(double time) { server_.report(rank_, time); }
  std::size_t rank() const { return rank_; }

 private:
  Server& server_;
  std::size_t rank_;
};

}  // namespace protuner::harmony
