// Light-tailed comparison distributions: exponential, normal, lognormal,
// Weibull, uniform.  The paper contrasts heavy-tailed (hyperbolic) decay
// against these exponential-decay families (Section 4.2); the estimator
// ablations sweep over them.
#pragma once

#include "stats/distribution.h"

namespace protuner::stats {

/// Exponential(rate):  F(x) = 1 - exp(-rate x), x >= 0.
class Exponential final : public Distribution {
 public:
  explicit Exponential(double rate);

  double sample(util::Rng& rng) const override;
  double pdf(double x) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override { return 1.0 / rate_; }
  double variance() const override { return 1.0 / (rate_ * rate_); }
  bool heavy_tailed() const override { return false; }
  std::string name() const override;

  double rate() const { return rate_; }

 private:
  double rate_;
};

/// Normal(mu, sigma).
class Normal final : public Distribution {
 public:
  Normal(double mu, double sigma);

  double sample(util::Rng& rng) const override;
  double pdf(double x) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override { return mu_; }
  double variance() const override { return sigma_ * sigma_; }
  bool heavy_tailed() const override { return false; }
  std::string name() const override;

 private:
  double mu_;
  double sigma_;
};

/// LogNormal(mu, sigma) — log X ~ Normal(mu, sigma).  All moments finite
/// but sub-exponential: a useful "almost heavy" stress case.
class LogNormal final : public Distribution {
 public:
  LogNormal(double mu, double sigma);

  double sample(util::Rng& rng) const override;
  double pdf(double x) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override;
  double variance() const override;
  bool heavy_tailed() const override { return false; }
  std::string name() const override;

 private:
  double mu_;
  double sigma_;
};

/// Weibull(shape k, scale lambda):  F(x) = 1 - exp(-(x/lambda)^k).
/// Sub-exponential for k < 1 yet all moments finite.
class Weibull final : public Distribution {
 public:
  Weibull(double shape, double scale);

  double sample(util::Rng& rng) const override;
  double pdf(double x) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override;
  double variance() const override;
  bool heavy_tailed() const override { return false; }
  std::string name() const override;

 private:
  double shape_;
  double scale_;
};

/// Uniform(lo, hi).
class Uniform final : public Distribution {
 public:
  Uniform(double lo, double hi);

  double sample(util::Rng& rng) const override;
  double pdf(double x) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override { return 0.5 * (lo_ + hi_); }
  double variance() const override {
    return (hi_ - lo_) * (hi_ - lo_) / 12.0;
  }
  bool heavy_tailed() const override { return false; }
  std::string name() const override;

 private:
  double lo_;
  double hi_;
};

/// Standard-normal cdf (shared helper).
double std_normal_cdf(double z);

/// Standard-normal quantile via Acklam's rational approximation
/// (|error| < 1.15e-9 everywhere).
double std_normal_quantile(double p);

}  // namespace protuner::stats
