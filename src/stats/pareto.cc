#include "stats/pareto.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>

namespace protuner::stats {

Pareto::Pareto(double alpha, double beta) : alpha_(alpha), beta_(beta) {
  assert(alpha > 0.0);
  assert(beta > 0.0);
}

double Pareto::sample(util::Rng& rng) const {
  // Inverse-cdf sampling: x = beta * (1-U)^(-1/alpha), U ~ Uniform[0,1).
  const double u = rng.uniform();
  return beta_ * std::pow(1.0 - u, -1.0 / alpha_);
}

double Pareto::pdf(double x) const {
  if (x < beta_) return 0.0;
  return alpha_ * std::pow(beta_, alpha_) / std::pow(x, alpha_ + 1.0);
}

double Pareto::cdf(double x) const {
  if (x < beta_) return 0.0;
  return 1.0 - std::pow(beta_ / x, alpha_);
}

double Pareto::quantile(double p) const {
  assert(p >= 0.0 && p < 1.0);
  return beta_ * std::pow(1.0 - p, -1.0 / alpha_);
}

double Pareto::mean() const {
  if (alpha_ <= 1.0) return std::numeric_limits<double>::infinity();
  return alpha_ * beta_ / (alpha_ - 1.0);  // paper Eq. (16)
}

double Pareto::variance() const {
  if (alpha_ <= 2.0) return std::numeric_limits<double>::infinity();
  return beta_ * beta_ * alpha_ /
         ((alpha_ - 1.0) * (alpha_ - 1.0) * (alpha_ - 2.0));
}

std::string Pareto::name() const {
  std::ostringstream ss;
  ss << "Pareto(alpha=" << alpha_ << ", beta=" << beta_ << ")";
  return ss.str();
}

Pareto Pareto::min_of(int k) const {
  assert(k >= 1);
  return Pareto(alpha_ * k, beta_);
}

}  // namespace protuner::stats
