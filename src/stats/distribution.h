// Probability distributions used to model performance variability.
//
// One abstract interface so noise models, estimator studies, and the
// two-priority-queue simulator can be parameterized over tail behaviour
// (heavy-tailed Pareto vs light-tailed exponential / normal / ...).
#pragma once

#include <memory>
#include <string>

#include "util/rng.h"

namespace protuner::stats {

/// A univariate continuous distribution: sampling plus analytic
/// pdf / cdf / quantile / moments where they exist.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Draws one sample using the supplied generator.
  virtual double sample(util::Rng& rng) const = 0;

  /// Probability density at x.
  virtual double pdf(double x) const = 0;

  /// Cumulative distribution function P[X <= x].
  virtual double cdf(double x) const = 0;

  /// Inverse cdf: smallest x with cdf(x) >= p, p in (0,1).
  virtual double quantile(double p) const = 0;

  /// E[X].  Returns +inf when the mean does not exist.
  virtual double mean() const = 0;

  /// Var[X].  Returns +inf when the variance does not exist.
  virtual double variance() const = 0;

  /// True if P[X > x] decays hyperbolically with tail index < 2 (infinite
  /// variance) — the paper's definition, Eq. (8).
  virtual bool heavy_tailed() const = 0;

  /// Human-readable name for bench output ("Pareto(alpha=1.7, beta=0.3)").
  virtual std::string name() const = 0;
};

using DistributionPtr = std::unique_ptr<Distribution>;

}  // namespace protuner::stats
