// Bootstrap confidence intervals for the bench harnesses: under
// heavy-tailed data a normal-approximation CI on the mean is unreliable,
// so the experiment tables report percentile-bootstrap intervals instead.
#pragma once

#include <span>

#include "util/rng.h"

namespace protuner::stats {

struct BootstrapCi {
  double point = 0.0;  ///< statistic on the full sample
  double lo = 0.0;     ///< lower percentile bound
  double hi = 0.0;     ///< upper percentile bound
};

/// Percentile bootstrap CI for the mean.  `confidence` in (0,1),
/// e.g. 0.95.  Deterministic given the rng state.
BootstrapCi bootstrap_mean_ci(std::span<const double> xs, double confidence,
                              int resamples, util::Rng& rng);

/// Percentile bootstrap CI for the median.
BootstrapCi bootstrap_median_ci(std::span<const double> xs, double confidence,
                                int resamples, util::Rng& rng);

}  // namespace protuner::stats
