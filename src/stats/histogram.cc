#include "stats/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace protuner::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0.0) {
  assert(hi > lo);
  assert(bins > 0);
}

Histogram Histogram::fit(std::span<const double> xs, std::size_t bins) {
  assert(!xs.empty());
  const auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
  double lo = *mn;
  double hi = *mx;
  if (hi <= lo) hi = lo + 1.0;  // degenerate data: single-value span
  // Nudge the top edge so the maximum lands inside the last bin.
  hi = std::nextafter(hi, hi + 1.0);
  Histogram h(lo, hi, bins);
  h.add_all(xs);
  return h;
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  idx = std::min(idx, counts_.size() - 1);  // guard fp round-up at the edge
  counts_[idx] += 1.0;
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

std::vector<double> Histogram::edges() const {
  std::vector<double> e(counts_.size() + 1);
  for (std::size_t i = 0; i < e.size(); ++i) {
    e[i] = lo_ + static_cast<double>(i) * width_;
  }
  return e;
}

std::vector<double> Histogram::centers() const {
  std::vector<double> c(counts_.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    c[i] = lo_ + (static_cast<double>(i) + 0.5) * width_;
  }
  return c;
}

std::vector<double> Histogram::density() const {
  std::vector<double> d(counts_.size(), 0.0);
  if (total_ == 0) return d;
  const double norm = 1.0 / (static_cast<double>(total_) * width_);
  for (std::size_t i = 0; i < d.size(); ++i) d[i] = counts_[i] * norm;
  return d;
}

std::vector<double> Histogram::frequency() const {
  std::vector<double> f(counts_.size(), 0.0);
  if (total_ == 0) return f;
  const double norm = 1.0 / static_cast<double>(total_);
  for (std::size_t i = 0; i < f.size(); ++i) f[i] = counts_[i] * norm;
  return f;
}

}  // namespace protuner::stats
