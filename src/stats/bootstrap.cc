#include "stats/bootstrap.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "util/summary.h"

namespace protuner::stats {

namespace {

template <typename Statistic>
BootstrapCi bootstrap_ci(std::span<const double> xs, double confidence,
                         int resamples, util::Rng& rng,
                         const Statistic& stat) {
  assert(!xs.empty());
  assert(confidence > 0.0 && confidence < 1.0);
  assert(resamples >= 10);

  BootstrapCi ci;
  ci.point = stat(xs);

  std::vector<double> stats(static_cast<std::size_t>(resamples));
  std::vector<double> resample(xs.size());
  for (auto& s : stats) {
    for (auto& v : resample) {
      v = xs[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<long>(xs.size()) - 1))];
    }
    s = stat(std::span<const double>(resample));
  }
  std::sort(stats.begin(), stats.end());
  const double alpha = (1.0 - confidence) / 2.0;
  const auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(stats.size() - 1));
    return stats[idx];
  };
  ci.lo = at(alpha);
  ci.hi = at(1.0 - alpha);
  return ci;
}

}  // namespace

BootstrapCi bootstrap_mean_ci(std::span<const double> xs, double confidence,
                              int resamples, util::Rng& rng) {
  return bootstrap_ci(xs, confidence, resamples, rng,
                      [](std::span<const double> v) { return util::mean(v); });
}

BootstrapCi bootstrap_median_ci(std::span<const double> xs, double confidence,
                                int resamples, util::Rng& rng) {
  return bootstrap_ci(xs, confidence, resamples, rng, [](std::span<const double> v) {
    return util::median(v);
  });
}

}  // namespace protuner::stats
