#include "stats/order_stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace protuner::stats {

double min_survival(const Distribution& d, int k, double x) {
  assert(k >= 1);
  const double q = 1.0 - d.cdf(x);
  return std::pow(q, k);
}

double min_excess_probability(const Distribution& d, int k, double x_min,
                              double eps) {
  assert(eps > 0.0);
  return min_survival(d, k, x_min + eps);
}

double sample_min(const Distribution& d, int k, util::Rng& rng) {
  assert(k >= 1);
  double m = d.sample(rng);
  for (int i = 1; i < k; ++i) m = std::min(m, d.sample(rng));
  return m;
}

double sample_mean(const Distribution& d, int k, util::Rng& rng) {
  assert(k >= 1);
  double s = 0.0;
  for (int i = 0; i < k; ++i) s += d.sample(rng);
  return s / k;
}

double sample_median(const Distribution& d, int k, util::Rng& rng) {
  assert(k >= 1);
  std::vector<double> v(static_cast<std::size_t>(k));
  for (auto& x : v) x = d.sample(rng);
  const auto mid = v.begin() + k / 2;
  std::nth_element(v.begin(), mid, v.end());
  if (k % 2 == 1) return *mid;
  const double hi = *mid;
  const double lo = *std::max_element(v.begin(), mid);
  return 0.5 * (lo + hi);
}

}  // namespace protuner::stats
