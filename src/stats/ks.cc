#include "stats/ks.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace protuner::stats {

double kolmogorov_q(double lambda) {
  if (lambda <= 0.0) return 1.0;
  double q = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term =
        sign * std::exp(-2.0 * k * k * lambda * lambda);
    q += term;
    sign = -sign;
    if (std::fabs(term) < 1e-12) break;
  }
  return std::clamp(2.0 * q, 0.0, 1.0);
}

KsResult ks_test(std::span<const double> xs, const Distribution& dist) {
  assert(!xs.empty());
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const auto n = static_cast<double>(v.size());
  double d = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double cdf = dist.cdf(v[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::fabs(cdf - lo), std::fabs(hi - cdf)});
  }
  KsResult r;
  r.statistic = d;
  // Asymptotic with the standard finite-sample correction.
  const double lambda = (std::sqrt(n) + 0.12 + 0.11 / std::sqrt(n)) * d;
  r.p_value = kolmogorov_q(lambda);
  return r;
}

double ks_two_sample(std::span<const double> a, std::span<const double> b) {
  assert(!a.empty());
  assert(!b.empty());
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  std::size_t ia = 0, ib = 0;
  double d = 0.0;
  while (ia < sa.size() && ib < sb.size()) {
    const double x = std::min(sa[ia], sb[ib]);
    while (ia < sa.size() && sa[ia] <= x) ++ia;
    while (ib < sb.size() && sb[ib] <= x) ++ib;
    d = std::max(d, std::fabs(static_cast<double>(ia) / na -
                              static_cast<double>(ib) / nb));
  }
  return d;
}

}  // namespace protuner::stats
