#include "stats/linreg.h"

#include <cassert>
#include <cstddef>

namespace protuner::stats {

LineFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  LineFit fit;
  fit.n = xs.size();
  if (fit.n < 2) return fit;

  const auto n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n;
  const double my = sy / n;

  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) return fit;

  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

}  // namespace protuner::stats
