#include "stats/ecdf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace protuner::stats {

Ecdf::Ecdf(std::span<const double> xs) : sorted_(xs.begin(), xs.end()) {
  assert(!sorted_.empty());
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::cdf(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const {
  assert(q >= 0.0 && q <= 1.0);
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

Ecdf::TailPoints Ecdf::tail_points() const {
  TailPoints tp;
  const auto n = static_cast<double>(sorted_.size());
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    // Skip duplicates: keep the last occurrence so Q is right-continuous.
    if (i + 1 < sorted_.size() && sorted_[i + 1] == sorted_[i]) continue;
    const double q = (n - static_cast<double>(i + 1)) / n;
    if (q <= 0.0) continue;  // the max has Q = 0: unplottable on log axes
    tp.x.push_back(sorted_[i]);
    tp.q.push_back(q);
  }
  return tp;
}

Ecdf::TailPoints Ecdf::log_log_tail() const {
  TailPoints raw = tail_points();
  TailPoints out;
  for (std::size_t i = 0; i < raw.x.size(); ++i) {
    if (raw.x[i] <= 0.0) continue;
    out.x.push_back(std::log10(raw.x[i]));
    out.q.push_back(std::log10(raw.q[i]));
  }
  return out;
}

std::vector<double> truncate_above(std::span<const double> xs, double cut) {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) {
    if (x <= cut) out.push_back(x);
  }
  return out;
}

}  // namespace protuner::stats
