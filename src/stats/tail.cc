#include "stats/tail.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "stats/ecdf.h"

namespace protuner::stats {

double hill_estimator(std::span<const double> xs, std::size_t k) {
  assert(k >= 1);
  assert(k < xs.size());
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end(), std::greater<>());
  const double x_k1 = v[k];  // (k+1)-th largest: the threshold
  assert(x_k1 > 0.0);
  double s = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    assert(v[i] > 0.0);
    s += std::log(v[i] / x_k1);
  }
  return static_cast<double>(k) / s;
}

HillSweep hill_sweep(std::span<const double> xs, std::size_t k_min,
                     std::size_t k_max, std::size_t step) {
  assert(k_min >= 1);
  assert(k_max < xs.size());
  assert(step >= 1);
  HillSweep sweep;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end(), std::greater<>());
  for (std::size_t k = k_min; k <= k_max; k += step) {
    double s = 0.0;
    for (std::size_t i = 0; i < k; ++i) s += std::log(v[i] / v[k]);
    sweep.k.push_back(k);
    sweep.alpha.push_back(static_cast<double>(k) / s);
  }
  return sweep;
}

LineFit tail_slope(std::span<const double> xs, double tail_fraction) {
  assert(tail_fraction > 0.0 && tail_fraction <= 1.0);
  const Ecdf ecdf(xs);
  const auto tail = ecdf.log_log_tail();
  const std::size_t n = tail.x.size();
  if (n < 3) return LineFit{};
  auto keep = static_cast<std::size_t>(
      std::ceil(static_cast<double>(n) * tail_fraction));
  keep = std::clamp<std::size_t>(keep, 2, n);
  const std::size_t start = n - keep;
  return fit_line(std::span(tail.x).subspan(start),
                  std::span(tail.q).subspan(start));
}

TailReport diagnose_tail(std::span<const double> xs) {
  TailReport report;
  if (xs.size() < 50) return report;  // too little data for a tail verdict
  const auto k = std::max<std::size_t>(5, xs.size() / 20);
  report.hill_alpha = hill_estimator(xs, k);
  const LineFit fit = tail_slope(xs, 0.10);
  report.slope_alpha = -fit.slope;
  report.tail_r2 = fit.r2;
  // Heavy verdict: both estimators agree alpha is below 2 and the log-log
  // tail is close to linear.  The thresholds are diagnostic, not exact.
  report.heavy = report.hill_alpha > 0.0 && report.hill_alpha < 2.0 &&
                 report.slope_alpha < 2.5 && report.tail_r2 > 0.8;
  return report;
}

}  // namespace protuner::stats
