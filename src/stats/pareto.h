// Pareto distribution — the paper's model for heavy-tailed performance
// variability (Section 4.2, Eq. 9).
#pragma once

#include "stats/distribution.h"

namespace protuner::stats {

/// Pareto(alpha, beta):  F(x) = 1 - (beta/x)^alpha for x >= beta.
/// beta is the smallest value the variable can take; alpha is the tail
/// index.  For 1 < alpha < 2 the mean is finite and the variance infinite;
/// for 0 < alpha <= 1 both are infinite (paper, Section 4.2).
class Pareto final : public Distribution {
 public:
  Pareto(double alpha, double beta);

  double sample(util::Rng& rng) const override;
  double pdf(double x) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override;
  double variance() const override;
  bool heavy_tailed() const override { return alpha_ < 2.0; }
  std::string name() const override;

  double alpha() const { return alpha_; }
  double beta() const { return beta_; }

  /// Distribution of min(X_1..X_k) for iid Pareto(alpha, beta) samples:
  /// Pareto(k * alpha, beta) — the paper's Eq. (19).  This is the key
  /// property that makes the min operator converge even when samples have
  /// infinite mean and variance.
  Pareto min_of(int k) const;

 private:
  double alpha_;
  double beta_;
};

}  // namespace protuner::stats
