// Empirical CDF and complementary-CDF (1-cdf) views.  The paper's heavy-tail
// diagnostic plots P[X > x] on log-log axes (Figures 5 and 7): a heavy tail
// shows up as an approximately linear trailing segment with slope -alpha.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace protuner::stats {

/// Empirical distribution of a sample, sorted at construction.
class Ecdf {
 public:
  explicit Ecdf(std::span<const double> xs);

  std::size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted() const { return sorted_; }

  /// F_n(x) = (#samples <= x) / n.
  double cdf(double x) const;

  /// Complementary cdf Q_n(x) = P[X > x] = 1 - F_n(x).
  double ccdf(double x) const { return 1.0 - cdf(x); }

  /// Empirical quantile, q in [0,1].
  double quantile(double q) const;

  /// Point set {(x_i, P[X > x_i])} suitable for a log-log tail plot.
  /// Uses Q(x_(i)) = (n - i) / n over the sorted unique values and drops the
  /// final point where Q = 0 (it has no log).
  struct TailPoints {
    std::vector<double> x;
    std::vector<double> q;  ///< survival probability at x
  };
  TailPoints tail_points() const;

  /// Same points in log10 space: {(log10 x_i, log10 Q_i)} with non-positive
  /// x dropped — exactly what Figures 5/7 plot.
  TailPoints log_log_tail() const;

 private:
  std::vector<double> sorted_;
};

/// Removes all samples greater than `cut` — the paper's truncation step used
/// to show the *small* spikes are also heavy-tailed (Figures 6/7).
std::vector<double> truncate_above(std::span<const double> xs, double cut);

}  // namespace protuner::stats
