// Ordinary least-squares line fit.  Used to measure the slope of the
// log-log survival plot's tail — the paper's "approximately linear tail"
// heavy-tail diagnostic (Figures 5/7).
#pragma once

#include <span>

namespace protuner::stats {

struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;        ///< coefficient of determination
  std::size_t n = 0;      ///< points used
};

/// Fits y = slope * x + intercept by least squares.  Requires >= 2 points
/// with non-zero x variance; otherwise returns a zero-slope fit with n set.
LineFit fit_line(std::span<const double> xs, std::span<const double> ys);

}  // namespace protuner::stats
