// Kolmogorov-Smirnov goodness-of-fit: distance between an empirical sample
// and an analytic distribution, with the asymptotic p-value.  Used by the
// test suite to validate every sampler against its own cdf, and available
// to users for checking which noise model fits their measured traces.
#pragma once

#include <span>

#include "stats/distribution.h"

namespace protuner::stats {

struct KsResult {
  double statistic = 0.0;  ///< sup_x |F_n(x) - F(x)|
  double p_value = 0.0;    ///< asymptotic Kolmogorov p-value
};

/// Two-sided one-sample KS test of `xs` against `dist`.
KsResult ks_test(std::span<const double> xs, const Distribution& dist);

/// Two-sample KS statistic between two empirical samples.
double ks_two_sample(std::span<const double> a, std::span<const double> b);

/// Asymptotic Kolmogorov survival function Q(lambda) = P[K > lambda]
/// (the series 2 sum (-1)^{k-1} exp(-2 k^2 lambda^2)).
double kolmogorov_q(double lambda);

}  // namespace protuner::stats
