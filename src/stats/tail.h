// Heavy-tail diagnostics: the Hill estimator for the tail index alpha, the
// log-log survival-slope estimator, and a composite heavy-tail verdict.
//
// A distribution is heavy-tailed (paper Eq. 8) when P[X > x] ~ x^-alpha with
// 0 < alpha < 2.  On a log-log survival plot this is a straight tail with
// slope -alpha; on data it is also measurable by the Hill estimator over the
// top-k order statistics.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "stats/linreg.h"

namespace protuner::stats {

/// Hill estimator of the tail index alpha from the largest k order
/// statistics: 1 / mean(log(x_(n-i+1) / x_(n-k))).  Requires all of the
/// top-(k+1) samples to be positive.  k must satisfy 1 <= k < n.
double hill_estimator(std::span<const double> xs, std::size_t k);

/// Sweeps the Hill estimator over a range of k and returns the estimate at
/// each.  A stable plateau across k is evidence of a genuine power-law tail.
struct HillSweep {
  std::vector<std::size_t> k;
  std::vector<double> alpha;
};
HillSweep hill_sweep(std::span<const double> xs, std::size_t k_min,
                     std::size_t k_max, std::size_t step);

/// Fits a line to the top `tail_fraction` of the log-log survival plot and
/// returns the fit; -slope estimates alpha.
LineFit tail_slope(std::span<const double> xs, double tail_fraction);

/// Composite verdict used by the bench harness: both estimators computed on
/// the data plus a boolean heavy-tail call (alpha < 2 with an acceptably
/// linear tail).
struct TailReport {
  double hill_alpha = 0.0;       ///< Hill estimate at k = 5% of n
  double slope_alpha = 0.0;      ///< -slope of the fitted tail line
  double tail_r2 = 0.0;          ///< linearity of the log-log tail
  bool heavy = false;            ///< verdict: hyperbolic tail with alpha < 2
};
TailReport diagnose_tail(std::span<const double> xs);

}  // namespace protuner::stats
