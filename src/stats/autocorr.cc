#include "stats/autocorr.h"

#include <cassert>
#include <cstddef>

namespace protuner::stats {

double autocorrelation(std::span<const double> xs, std::size_t lag) {
  assert(lag < xs.size());
  const auto n = xs.size();
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(n);

  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  if (var == 0.0) return lag == 0 ? 1.0 : 0.0;

  double cov = 0.0;
  for (std::size_t i = 0; i + lag < n; ++i) {
    cov += (xs[i] - mean) * (xs[i + lag] - mean);
  }
  return cov / var;
}

std::vector<double> acf(std::span<const double> xs, std::size_t max_lag) {
  assert(max_lag < xs.size());
  std::vector<double> out(max_lag + 1);
  for (std::size_t l = 0; l <= max_lag; ++l) {
    out[l] = autocorrelation(xs, l);
  }
  return out;
}

}  // namespace protuner::stats
