// Autocorrelation of a time series — used to characterise measured runtime
// traces: i.i.d. noise (the paper's Fig. 10 assumption, footnote 3) shows
// near-zero lag correlation, bursty disruptions show positive lag-1.
#pragma once

#include <span>
#include <vector>

namespace protuner::stats {

/// Sample autocorrelation at one lag (0 <= lag < xs.size()).
double autocorrelation(std::span<const double> xs, std::size_t lag);

/// Autocorrelation function for lags 0..max_lag (inclusive).
std::vector<double> acf(std::span<const double> xs, std::size_t max_lag);

}  // namespace protuner::stats
