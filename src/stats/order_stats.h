// Order-statistics utilities around the paper's minimum operator
// (Section 5): survival function of min(x_1..x_k), convergence bound
// Eq. (14)/(20), and empirical helpers.
#pragma once

#include <span>

#include "stats/distribution.h"

namespace protuner::stats {

/// P[min(X_1..X_k) > x] = Q(x)^k for iid samples — paper Eq. (11).
double min_survival(const Distribution& d, int k, double x);

/// P[min over K samples exceeds (x_min + eps)] for the given distribution —
/// the convergence bound of paper Eq. (14)/(20).  x_min is the distribution's
/// essential minimum (quantile(0) limit); for Pareto it is beta.
double min_excess_probability(const Distribution& d, int k, double x_min,
                              double eps);

/// Draws the minimum of k iid samples.
double sample_min(const Distribution& d, int k, util::Rng& rng);

/// Draws the mean of k iid samples (the conventional estimator the paper
/// argues against under heavy tails).
double sample_mean(const Distribution& d, int k, util::Rng& rng);

/// Draws the median of k iid samples.
double sample_median(const Distribution& d, int k, util::Rng& rng);

}  // namespace protuner::stats
