#include "stats/common_distributions.h"

#include <cassert>
#include <cmath>
#include <numbers>
#include <sstream>

namespace protuner::stats {

namespace {
constexpr double kInvSqrt2Pi = 0.3989422804014327;
}

double std_normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::numbers::sqrt2);
}

double std_normal_quantile(double p) {
  assert(p > 0.0 && p < 1.0);
  // Acklam's inverse-normal approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - plow) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

// ---------------------------------------------------------------- Exponential

Exponential::Exponential(double rate) : rate_(rate) { assert(rate > 0.0); }

double Exponential::sample(util::Rng& rng) const {
  return rng.exponential() / rate_;
}

double Exponential::pdf(double x) const {
  return x < 0.0 ? 0.0 : rate_ * std::exp(-rate_ * x);
}

double Exponential::cdf(double x) const {
  return x < 0.0 ? 0.0 : 1.0 - std::exp(-rate_ * x);
}

double Exponential::quantile(double p) const {
  assert(p >= 0.0 && p < 1.0);
  return -std::log1p(-p) / rate_;
}

std::string Exponential::name() const {
  std::ostringstream ss;
  ss << "Exponential(rate=" << rate_ << ")";
  return ss.str();
}

// --------------------------------------------------------------------- Normal

Normal::Normal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  assert(sigma > 0.0);
}

double Normal::sample(util::Rng& rng) const { return rng.normal(mu_, sigma_); }

double Normal::pdf(double x) const {
  const double z = (x - mu_) / sigma_;
  return kInvSqrt2Pi / sigma_ * std::exp(-0.5 * z * z);
}

double Normal::cdf(double x) const {
  return std_normal_cdf((x - mu_) / sigma_);
}

double Normal::quantile(double p) const {
  return mu_ + sigma_ * std_normal_quantile(p);
}

std::string Normal::name() const {
  std::ostringstream ss;
  ss << "Normal(mu=" << mu_ << ", sigma=" << sigma_ << ")";
  return ss.str();
}

// ------------------------------------------------------------------ LogNormal

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  assert(sigma > 0.0);
}

double LogNormal::sample(util::Rng& rng) const {
  return std::exp(rng.normal(mu_, sigma_));
}

double LogNormal::pdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double z = (std::log(x) - mu_) / sigma_;
  return kInvSqrt2Pi / (sigma_ * x) * std::exp(-0.5 * z * z);
}

double LogNormal::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return std_normal_cdf((std::log(x) - mu_) / sigma_);
}

double LogNormal::quantile(double p) const {
  return std::exp(mu_ + sigma_ * std_normal_quantile(p));
}

double LogNormal::mean() const {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

double LogNormal::variance() const {
  const double s2 = sigma_ * sigma_;
  return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_ + s2);
}

std::string LogNormal::name() const {
  std::ostringstream ss;
  ss << "LogNormal(mu=" << mu_ << ", sigma=" << sigma_ << ")";
  return ss.str();
}

// -------------------------------------------------------------------- Weibull

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
  assert(shape > 0.0);
  assert(scale > 0.0);
}

double Weibull::sample(util::Rng& rng) const {
  return scale_ * std::pow(rng.exponential(), 1.0 / shape_);
}

double Weibull::pdf(double x) const {
  if (x < 0.0) return 0.0;
  const double z = x / scale_;
  return shape_ / scale_ * std::pow(z, shape_ - 1.0) *
         std::exp(-std::pow(z, shape_));
}

double Weibull::cdf(double x) const {
  if (x < 0.0) return 0.0;
  return 1.0 - std::exp(-std::pow(x / scale_, shape_));
}

double Weibull::quantile(double p) const {
  assert(p >= 0.0 && p < 1.0);
  return scale_ * std::pow(-std::log1p(-p), 1.0 / shape_);
}

double Weibull::mean() const {
  return scale_ * std::tgamma(1.0 + 1.0 / shape_);
}

double Weibull::variance() const {
  const double g1 = std::tgamma(1.0 + 1.0 / shape_);
  const double g2 = std::tgamma(1.0 + 2.0 / shape_);
  return scale_ * scale_ * (g2 - g1 * g1);
}

std::string Weibull::name() const {
  std::ostringstream ss;
  ss << "Weibull(shape=" << shape_ << ", scale=" << scale_ << ")";
  return ss.str();
}

// -------------------------------------------------------------------- Uniform

Uniform::Uniform(double lo, double hi) : lo_(lo), hi_(hi) { assert(hi > lo); }

double Uniform::sample(util::Rng& rng) const { return rng.uniform(lo_, hi_); }

double Uniform::pdf(double x) const {
  return (x < lo_ || x > hi_) ? 0.0 : 1.0 / (hi_ - lo_);
}

double Uniform::cdf(double x) const {
  if (x < lo_) return 0.0;
  if (x > hi_) return 1.0;
  return (x - lo_) / (hi_ - lo_);
}

double Uniform::quantile(double p) const {
  assert(p >= 0.0 && p <= 1.0);
  return lo_ + p * (hi_ - lo_);
}

std::string Uniform::name() const {
  std::ostringstream ss;
  ss << "Uniform(" << lo_ << ", " << hi_ << ")";
  return ss.str();
}

}  // namespace protuner::stats
