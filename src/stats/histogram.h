// Fixed-width histogram used to reproduce the paper's pdf plots
// (Figures 4 and 6) and their truncated variants.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace protuner::stats {

/// A fixed-bin-width histogram over [lo, hi] with out-of-range counters.
class Histogram {
 public:
  /// Creates `bins` equal-width bins covering [lo, hi).
  Histogram(double lo, double hi, std::size_t bins);

  /// Builds a histogram sized to the data: range [min, max], `bins` bins,
  /// then inserts every sample.
  static Histogram fit(std::span<const double> xs, std::size_t bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  std::size_t bin_count() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// Raw count in bin i.
  double count(std::size_t i) const { return counts_[i]; }

  /// All counts.
  const std::vector<double>& counts() const { return counts_; }

  /// Bin edges (bin_count() + 1 values).
  std::vector<double> edges() const;

  /// Bin centres.
  std::vector<double> centers() const;

  /// Empirical pdf estimate: count / (total * bin_width).  Integrates to 1
  /// over the covered range when nothing fell outside.
  std::vector<double> density() const;

  /// Counts normalised to relative frequency (sum = 1 including overflow).
  std::vector<double> frequency() const;

  std::size_t total() const { return total_; }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  double bin_width() const { return width_; }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<double> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace protuner::stats
