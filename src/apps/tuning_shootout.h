// Cross-product strategy shootout: every registered tuning strategy against
// every landscape and noise model, built *entirely from spec strings*
// (DESIGN.md §13) — the end-to-end exercise of the declarative layer.
//
//   strategies × landscapes × noises × min-of-K settings × seeds
//
// Each cell runs one synchronous tuning session (core::run_session) on a
// spec-built evaluator and reports the paper's metrics: Total_Time, NTT,
// the true clean time of the final best point, and the convergence step.
// The driver emits CSV (machine-readable), per-(landscape, noise) ASCII
// convergence plots, and optionally a BENCH_shootout.json summary.
//
// Min-of-K is applied by rewriting each strategy spec with `k=<K>`;
// strategies that do not take a `k` key (SPSA, annealing, ...) reject the
// rewritten spec at parse time and the combination is recorded as skipped —
// the unknown-key diagnostics doing real routing work.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/session.h"

namespace protuner::apps {

struct ShootoutOptions {
  std::vector<std::string> strategies;  ///< strategy specs (core registry)
  std::vector<std::string> landscapes;  ///< landscape specs (gs2 registry)
  std::vector<std::string> noises;      ///< noise specs (varmodel registry)
  /// Min-of-K settings; 0 = leave the strategy spec untouched, K > 0
  /// rewrites it with `k=K` (combinations whose strategy rejects `k` are
  /// skipped and reported).
  std::vector<int> min_of_k = {0};
  std::size_t seeds = 3;      ///< repetitions per cell
  std::size_t steps = 120;    ///< application time steps per session
  std::size_t ranks = 8;      ///< parallel width
  std::uint64_t base_seed = 20050712;
  bool plots = true;          ///< ASCII convergence plots per (land, noise)
  /// Evaluator spec; `ranks=`/`seed=` are appended per cell.
  std::string evaluator = "simulated";
};

/// One completed cell of the cross product.
struct ShootoutRow {
  std::string strategy_spec;  ///< spec after the min-of-K rewrite
  std::string strategy_name;  ///< TuningStrategy::name() of the instance
  std::string landscape;
  std::string noise;
  int k = 0;
  std::uint64_t seed = 0;
  core::SessionResult result;
};

struct ShootoutReport {
  std::vector<ShootoutRow> rows;
  /// "spec: reason" for combinations rejected at spec-parse time.
  std::vector<std::string> skipped;
};

/// Runs the full cross product, streaming CSV (and plots, when enabled) to
/// `out`.  Throws spec::SpecError if a base spec (no k rewrite) is invalid.
ShootoutReport run_shootout(const ShootoutOptions& options, std::ostream& out);

/// Writes the report as a benchmark-style JSON document (one entry per
/// row, aggregate context up front).
void write_shootout_json(const ShootoutReport& report,
                         const ShootoutOptions& options, std::ostream& out);

}  // namespace protuner::apps
