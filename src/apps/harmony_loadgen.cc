#include "apps/harmony_loadgen.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <latch>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "core/fixed.h"
#include "harmony/session_manager.h"
#include "net/client.h"
#include "net/net_server.h"
#include "util/rng.h"
#include "varmodel/noise_model.h"
#include "varmodel/pareto_noise.h"

namespace protuner::apps {

namespace {

varmodel::NoiseModelPtr make_think_model(const LoadgenOptions& options) {
  if (options.heavy_tail) {
    return std::make_unique<varmodel::ParetoNoise>(options.rho,
                                                   options.alpha);
  }
  return std::make_unique<varmodel::NoNoise>();
}

// One blocking HTTP/1.0 GET /metrics against the in-process loop, the way
// a Prometheus scraper would: fresh connection, read to EOF (the server
// closes after one response).  Returns true on a complete 200.
bool scrape_metrics(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  static constexpr char kRequest[] =
      "GET /metrics HTTP/1.0\r\nHost: localhost\r\n\r\n";
  bool ok = false;
  if (::send(fd, kRequest, sizeof(kRequest) - 1, 0) ==
      static_cast<ssize_t>(sizeof(kRequest) - 1)) {
    char buf[4096];
    bool first = true;
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      if (first && n >= 12) ok = std::memcmp(buf + 9, "200", 3) == 0;
      first = false;
    }
  }
  ::close(fd);
  return ok;
}

void spin_for(std::chrono::duration<double> d) {
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(d);
  while (std::chrono::steady_clock::now() < until) {
  }
}

}  // namespace

obs::HistogramSnapshot aggregate_histogram(
    const obs::RegistrySnapshot& snapshot, std::string_view name) {
  obs::HistogramSnapshot out;
  for (const obs::InstrumentSnapshot& inst : snapshot.instruments) {
    if (inst.name != name || inst.kind != obs::InstrumentKind::kHistogram) {
      continue;
    }
    if (out.counts.empty()) {
      out.counts.assign(inst.hist.counts.size(), 0);
    }
    for (std::size_t b = 0;
         b < out.counts.size() && b < inst.hist.counts.size(); ++b) {
      out.counts[b] += inst.hist.counts[b];
    }
    out.count += inst.hist.count;
    out.max = std::max(out.max, inst.hist.max);
  }
  return out;
}

std::uint64_t aggregate_counter(const obs::RegistrySnapshot& snapshot,
                                std::string_view name) {
  std::uint64_t total = 0;
  for (const obs::InstrumentSnapshot& inst : snapshot.instruments) {
    if (inst.name == name && inst.kind == obs::InstrumentKind::kCounter) {
      total += static_cast<std::uint64_t>(inst.value);
    }
  }
  return total;
}

LoadgenReport run_loadgen(const LoadgenOptions& options) {
  const std::size_t sessions = std::max<std::size_t>(1, options.sessions);
  const std::size_t ranks = std::max<std::size_t>(1, options.ranks);
  const std::size_t workers =
      std::clamp<std::size_t>(options.workers, 1, ranks);
  const std::size_t dims = std::max<std::size_t>(1, options.dims);
  const LoadgenMode mode = options.mode;
  const bool hosts_sessions = mode != LoadgenMode::kRemote;
  const bool spawns_workers = mode != LoadgenMode::kServe;
  const bool uses_sockets = mode != LoadgenMode::kInProcess;

  obs::Registry registry;
  // The clients' own registry, as in production where every client process
  // has one.  It must NOT be the server's: the detach telemetry push ships
  // a snapshot of this registry, and pushing a registry the server merges
  // into would echo every previously merged series back with every push.
  obs::Registry client_registry;
  harmony::SessionManager manager;
  const varmodel::NoiseModelPtr think_model = make_think_model(options);

  std::vector<std::shared_ptr<harmony::Server>> servers;
  if (hosts_sessions) {
    servers.reserve(sessions);
    for (std::size_t s = 0; s < sessions; ++s) {
      harmony::ServerOptions so;
      so.metrics = &registry;
      so.record_series = false;
      so.report_timeout = options.report_timeout;
      servers.push_back(manager.create(
          "soak-" + std::to_string(s),
          std::make_unique<core::FixedStrategy>(core::Point(dims, 1.0)),
          ranks, so));
    }
  }

  // Socket modes put a NetServer in front of the sessions.  kLoopback runs
  // its loop on a dedicated thread of this process; kServe runs it on the
  // calling thread (below) and remote loadgens provide the traffic.
  std::optional<net::NetServer> net;
  std::thread net_thread;
  if (mode == LoadgenMode::kLoopback || mode == LoadgenMode::kServe) {
    net::NetServerOptions no;
    no.port = options.port;
    no.metrics = &registry;
    net.emplace(manager, no);
    if (mode == LoadgenMode::kLoopback) {
      net_thread = std::thread([&net] { net->run(); });
    }
  }
  const std::string host =
      mode == LoadgenMode::kRemote ? options.remote_host : "127.0.0.1";
  const std::uint16_t port =
      mode == LoadgenMode::kRemote ? options.port : (net ? net->port() : 0);

  std::latch start(1);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> fetch_ops{0};
  std::atomic<std::uint64_t> report_ops{0};
  std::atomic<std::uint64_t> monitor_sweeps{0};
  std::atomic<std::uint64_t> ticks{0};
  std::atomic<std::uint64_t> scrapes{0};
  // Per-worker completed-phase counts; each slot is owned by one worker
  // and read only after its join.  A session's completed rounds is the min
  // over its workers (the only view a kRemote driver has).
  std::vector<std::uint64_t> phases(sessions * workers, 0);

  // One phase-locked multiplexing worker per (session, slice): fetch every
  // owned rank, think, report every owned rank.  Each session's ranks are
  // partitioned across its workers, so no worker ever waits on a rank
  // another thread must report first — deadlock-free regardless of how
  // rounds interleave across sessions.  Socket-mode workers run the exact
  // same phases through one net::HarmonyClient connection each.
  std::vector<std::jthread> threads;
  threads.reserve(sessions * workers + 3);
  for (std::size_t s = 0; spawns_workers && s < sessions; ++s) {
    for (std::size_t w = 0; w < workers; ++w) {
      threads.emplace_back([&, s, w] {
        const std::size_t lo = w * ranks / workers;
        const std::size_t hi = (w + 1) * ranks / workers;
        util::Rng rng(options.seed +
                      0x9e3779b97f4a7c15ULL * (s * workers + w + 1));
        core::Point scratch;
        std::vector<double> thinks(hi - lo);
        std::uint64_t fetched = 0;
        std::uint64_t reported = 0;
        std::uint64_t& done_phases = phases[s * workers + w];
        start.wait();
        try {
          harmony::Server* server =
              uses_sockets ? nullptr : servers[s].get();
          std::optional<net::HarmonyClient> client;
          if (uses_sockets) {
            net::ClientOptions co;
            co.host = host;
            co.port = port;
            co.metrics = &client_registry;
            client.emplace(co);
            client->attach("soak-" + std::to_string(s),
                           static_cast<std::uint32_t>(lo));
          }
          for (std::size_t round = 0; round < options.rounds; ++round) {
            for (std::size_t r = lo; r < hi; ++r) {
              if (client) {
                client->fetch_into(static_cast<std::uint32_t>(r), scratch);
              } else {
                server->fetch_into(r, scratch);
              }
              ++fetched;
              thinks[r - lo] = think_model->observe(options.think_mean, rng);
            }
            if (options.think_pacing) {
              // The owned ranks think concurrently in the modelled system;
              // the multiplexing worker waits out the slowest of them.
              spin_for(std::chrono::duration<double>(
                  *std::max_element(thinks.begin(), thinks.end())));
            }
            for (std::size_t r = lo; r < hi; ++r) {
              if (client) {
                client->report(static_cast<std::uint32_t>(r),
                               thinks[r - lo]);
              } else {
                server->report(r, thinks[r - lo]);
              }
              ++reported;
            }
            ++done_phases;
          }
          if (client) client->detach(static_cast<std::uint32_t>(lo));
        } catch (const harmony::ProtocolError&) {
          // Session poisoned (kFail deadline) — stop driving it.
        } catch (const net::NetError&) {
          // Server went away — stop driving this connection.
        }
        fetch_ops.fetch_add(fetched, std::memory_order_relaxed);
        report_ops.fetch_add(reported, std::memory_order_relaxed);
      });
    }
  }

  if (hosts_sessions && options.tick_hz > 0.0) {
    threads.emplace_back([&] {
      const auto period = std::chrono::duration_cast<
          std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(1.0 / options.tick_hz));
      start.wait();
      while (!stop.load(std::memory_order_relaxed)) {
        for (const auto& server : servers) {
          try {
            server->tick();
          } catch (const harmony::ProtocolError&) {
          }
          ticks.fetch_add(1, std::memory_order_relaxed);
        }
        std::this_thread::sleep_for(period);
      }
    });
  }

  if (hosts_sessions && options.monitor) {
    threads.emplace_back([&] {
      start.wait();
      auto last_line = std::chrono::steady_clock::now();
      std::uint64_t last_ops = 0;
      std::uint64_t last_in = 0;
      std::uint64_t last_out = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // The production exporter loop: a full stats sweep plus a merged
        // metrics snapshot, as fast as it can go.
        (void)manager.stats_all();
        (void)manager.metrics_snapshot();
        monitor_sweeps.fetch_add(1, std::memory_order_relaxed);
        const auto now = std::chrono::steady_clock::now();
        if (now - last_line < std::chrono::seconds(1)) continue;
        // Live operator line (~1 Hz): traffic rate plus the wire-health
        // signals a dashboard would alert on.
        const double dt = std::chrono::duration<double>(now - last_line)
                              .count();
        const std::uint64_t ops =
            fetch_ops.load(std::memory_order_relaxed) +
            report_ops.load(std::memory_order_relaxed);
        const obs::RegistrySnapshot snap = registry.snapshot();
        const std::uint64_t in =
            aggregate_counter(snap, "protuner_net_bytes_in_total");
        const std::uint64_t out =
            aggregate_counter(snap, "protuner_net_bytes_out_total");
        std::fprintf(
            stderr,
            "monitor: %10.0f ops/s · %8.2f MB/s in · %8.2f MB/s out · "
            "%llu decode errors · %llu stall dumps\n",
            static_cast<double>(ops - last_ops) / dt,
            static_cast<double>(in - last_in) / dt / 1e6,
            static_cast<double>(out - last_out) / dt / 1e6,
            static_cast<unsigned long long>(net ? net->decode_errors() : 0),
            static_cast<unsigned long long>(net ? net->stall_dumps() : 0));
        last_line = now;
        last_ops = ops;
        last_in = in;
        last_out = out;
      }
    });
  }

  if (net && options.scrape_hz > 0.0) {
    // The /metrics antagonist: a scraper hitting the HTTP side of the same
    // epoll loop at the configured rate while frame traffic flows.
    threads.emplace_back([&] {
      const auto period = std::chrono::duration_cast<
          std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(1.0 / options.scrape_hz));
      start.wait();
      while (!stop.load(std::memory_order_relaxed)) {
        if (scrape_metrics(net->port())) {
          scrapes.fetch_add(1, std::memory_order_relaxed);
        }
        std::this_thread::sleep_for(period);
      }
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  start.count_down();
  if (mode == LoadgenMode::kServe) {
    // The calling thread IS the event loop: serve until every session has
    // completed its rounds, then drain client goodbyes (bounded grace).
    std::chrono::steady_clock::time_point grace_until{};
    net->run_until([&] {
      for (const auto& server : servers) {
        if (server->rounds_completed() < options.rounds) return false;
      }
      const auto now = std::chrono::steady_clock::now();
      if (grace_until == std::chrono::steady_clock::time_point{}) {
        grace_until = now + std::chrono::seconds(5);
      }
      return net->connections_closed() >= net->connections_accepted() ||
             now >= grace_until;
    });
  }
  // Workers self-terminate after `rounds`; join them first, then release
  // the antagonists.
  const std::size_t worker_count = spawns_workers ? sessions * workers : 0;
  for (std::size_t i = 0; i < worker_count; ++i) threads[i].join();
  const auto t1 = std::chrono::steady_clock::now();
  stop.store(true, std::memory_order_relaxed);
  threads.clear();  // joins ticker/monitor
  if (net && mode == LoadgenMode::kLoopback) {
    net->stop();
    net_thread.join();
  }

  LoadgenReport rep;
  rep.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  rep.fetch_ops = fetch_ops.load(std::memory_order_relaxed);
  rep.report_ops = report_ops.load(std::memory_order_relaxed);
  rep.ops_per_sec = rep.wall_seconds > 0.0
                        ? static_cast<double>(rep.fetch_ops + rep.report_ops) /
                              rep.wall_seconds
                        : 0.0;
  rep.monitor_sweeps = monitor_sweeps.load(std::memory_order_relaxed);
  rep.ticks = ticks.load(std::memory_order_relaxed);
  rep.scrapes = scrapes.load(std::memory_order_relaxed);
  for (const auto& server : servers) {
    rep.rounds_completed += server->rounds_completed();
  }
  if (mode == LoadgenMode::kRemote) {
    // No server handle here: a session's completed rounds is the min over
    // its workers' completed phases.
    for (std::size_t s = 0; s < sessions; ++s) {
      std::uint64_t done = phases[s * workers];
      for (std::size_t w = 1; w < workers; ++w) {
        done = std::min(done, phases[s * workers + w]);
      }
      rep.rounds_completed += done;
    }
  }

  const obs::RegistrySnapshot snap = registry.snapshot();
  const obs::HistogramSnapshot fetch =
      aggregate_histogram(snap, "protuner_harmony_fetch_ns");
  rep.fetch_p50_ns = fetch.p50();
  rep.fetch_p99_ns = fetch.p99();
  rep.fetch_p999_ns = fetch.p999();
  rep.fetch_max_ns = fetch.max;
  if (uses_sockets) {
    // Server-side decode-to-reply wire latency where this process hosts
    // the loop; client-observed call latency when driving a remote server
    // (those histograms live in the clients' own registry).
    const obs::HistogramSnapshot wire =
        mode == LoadgenMode::kRemote
            ? aggregate_histogram(client_registry.snapshot(),
                                  "protuner_net_client_fetch_ns")
            : aggregate_histogram(snap, "protuner_net_fetch_wire_ns");
    rep.wire_fetch_p50_ns = wire.p50();
    rep.wire_fetch_p99_ns = wire.p99();
    rep.wire_fetch_p999_ns = wire.p999();
    rep.wire_fetch_max_ns = wire.max;
    rep.net_bytes_in = aggregate_counter(snap, "protuner_net_bytes_in_total");
    rep.net_bytes_out =
        aggregate_counter(snap, "protuner_net_bytes_out_total");
    if (net) {
      rep.net_connections = net->connections_accepted();
      rep.net_decode_errors = net->decode_errors();
      rep.stall_dumps = net->stall_dumps();
    } else {
      rep.net_connections = sessions * workers;
    }
  }
  const obs::HistogramSnapshot round_wall =
      aggregate_histogram(snap, "protuner_harmony_round_wall_ns");
  rep.round_wall_p50_ns = round_wall.p50();
  rep.round_wall_p99_ns = round_wall.p99();
  rep.round_wall_p999_ns = round_wall.p999();
  rep.deadline_expiries =
      aggregate_counter(snap, "protuner_harmony_deadline_expiries_total");
  rep.discarded_reports =
      aggregate_counter(snap, "protuner_harmony_discarded_reports_total");
  rep.protocol_errors =
      aggregate_counter(snap, "protuner_harmony_protocol_errors_total");
  return rep;
}

std::string LoadgenReport::summary() const {
  std::ostringstream out;
  out << "wall            " << wall_seconds << " s\n"
      << "ops             " << (fetch_ops + report_ops) << " (" << fetch_ops
      << " fetch + " << report_ops << " report)\n"
      << "throughput      " << ops_per_sec << " ops/s\n"
      << "rounds          " << rounds_completed << "\n"
      << "fetch latency   p50 " << fetch_p50_ns << " ns · p99 "
      << fetch_p99_ns << " ns · p99.9 " << fetch_p999_ns << " ns · max "
      << fetch_max_ns << " ns\n"
      << "round wall      p50 " << round_wall_p50_ns << " ns · p99 "
      << round_wall_p99_ns << " ns · p99.9 " << round_wall_p999_ns
      << " ns\n"
      << "deadline        " << deadline_expiries << " expiries, "
      << discarded_reports << " discarded reports\n"
      << "protocol errors " << protocol_errors << "\n"
      << "antagonists     " << monitor_sweeps << " monitor sweeps, "
      << ticks << " ticks, " << scrapes << " scrapes\n";
  if (net_connections > 0 || wire_fetch_max_ns > 0.0) {
    out << "net             " << net_connections << " connections, "
        << net_bytes_in << " B in, " << net_bytes_out << " B out, "
        << net_decode_errors << " decode errors, " << stall_dumps
        << " stall dumps\n"
        << "fetch wire      p50 " << wire_fetch_p50_ns << " ns · p99 "
        << wire_fetch_p99_ns << " ns · p99.9 " << wire_fetch_p999_ns
        << " ns · max " << wire_fetch_max_ns << " ns\n";
  }
  return out.str();
}

}  // namespace protuner::apps
