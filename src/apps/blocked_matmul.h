// A real tunable kernel: cache-blocked matrix multiplication with block
// sizes (bi, bj, bk) as the tunable parameters, timed with the wall clock.
//
// This is the library's genuinely *live* workload — unlike the simulated
// landscapes, its objective function is an actual measurement on the host
// machine, with the host's actual performance variability.  It is what the
// paper's intro motivates ("libraries that are hard to tune to specific
// application requirements") and powers examples/live_kernel_tuning.
#pragma once

#include <cstddef>
#include <vector>

#include "core/evaluator.h"
#include "core/landscape.h"
#include "core/parameter_space.h"

namespace protuner::apps {

class BlockedMatmul {
 public:
  /// Prepares n x n operand matrices with deterministic pseudo-random
  /// contents.
  explicit BlockedMatmul(std::size_t n);

  std::size_t size() const { return n_; }

  /// Runs C = A * B with loop blocking (bi, bj, bk) and returns the wall
  /// time in seconds.  Block sizes are clamped to [1, n].
  double run(std::size_t bi, std::size_t bj, std::size_t bk);

  /// Runs the naive unblocked reference into a separate buffer.
  void run_reference();

  /// Max absolute difference between the last blocked run and the
  /// reference result (requires both to have run).
  double max_error() const;

  /// Sum of the last result matrix — cheap integrity probe.
  double checksum() const;

  /// Tunable space for the kernel: power-of-two-ish block sizes.
  static core::ParameterSpace tuning_space(std::size_t n);

 private:
  std::size_t n_;
  std::vector<double> a_;
  std::vector<double> b_;
  std::vector<double> c_;
  std::vector<double> c_ref_;
  bool have_ref_ = false;
};

/// Adapts the kernel to the StepEvaluator interface: each rank slot runs
/// the kernel once at its assigned block sizes and reports the measured
/// wall time.  Ranks are executed sequentially (one core machine: running
/// them concurrently would just measure interference).
class MatmulEvaluator final : public core::StepEvaluator {
 public:
  MatmulEvaluator(std::size_t n, std::size_t ranks);

  void run_step_into(std::span<const core::Point> configs,
                     std::span<double> out) override;
  std::size_t ranks() const override { return ranks_; }

  BlockedMatmul& kernel() { return kernel_; }

 private:
  BlockedMatmul kernel_;
  std::size_t ranks_;
};

}  // namespace protuner::apps
