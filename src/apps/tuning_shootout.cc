#include "apps/tuning_shootout.h"

#include <algorithm>
#include <iomanip>
#include <map>
#include <ostream>
#include <set>
#include <utility>

#include "cluster/evaluator_spec.h"
#include "core/strategy_spec.h"
#include "gs2/landscape_spec.h"
#include "spec/spec.h"
#include "util/ascii_plot.h"
#include "util/csv.h"
#include "varmodel/noise_spec.h"

namespace protuner::apps {

namespace {

/// Applies a min-of-K setting by rewriting the spec with `k=K`.
std::string with_k(const std::string& spec, int k) {
  if (k <= 0) return spec;
  const char join = spec.find(':') == std::string::npos ? ':' : ',';
  return spec + join + "k=" + std::to_string(k);
}

/// Per-cell deterministic seeds: distinct streams for the strategy and the
/// evaluator, decorrelated across repetitions.
std::uint64_t strategy_seed(std::uint64_t base, std::size_t rep) {
  return base + 7919 * (rep + 1);
}
std::uint64_t evaluator_seed(std::uint64_t base, std::size_t rep) {
  return (base ^ 0x5bf03635u) + 104729 * (rep + 1);
}

std::string evaluator_spec_for(const ShootoutOptions& opt, std::size_t rep) {
  const char join =
      opt.evaluator.find(':') == std::string::npos ? ':' : ',';
  return opt.evaluator + join + "ranks=" + std::to_string(opt.ranks) +
         ",seed=" + std::to_string(evaluator_seed(opt.base_seed, rep));
}

}  // namespace

ShootoutReport run_shootout(const ShootoutOptions& opt, std::ostream& out) {
  ShootoutReport report;
  std::set<std::string> skipped_specs;  // dedupe across landscapes/noises

  out << "tuning_shootout: " << opt.strategies.size() << " strategies x "
      << opt.landscapes.size() << " landscapes x " << opt.noises.size()
      << " noises x " << opt.min_of_k.size() << " K settings x " << opt.seeds
      << " seeds  (" << opt.steps << " steps, " << opt.ranks << " ranks, "
      << "evaluator \"" << opt.evaluator << "\")\n\n";

  util::CsvWriter csv(out);
  csv.header({"strategy", "landscape", "noise", "k", "seed", "steps", "ranks",
              "total_time", "ntt", "best_estimate", "best_clean",
              "convergence_step"});

  // label -> per-seed cumulative Total_Time series, reset per (land, noise).
  using SeriesMap = std::map<std::string, std::vector<std::vector<double>>>;

  for (const std::string& lspec : opt.landscapes) {
    const gs2::LandscapeBundle bundle = gs2::make_landscape(lspec);
    for (const std::string& nspec : opt.noises) {
      SeriesMap curves;
      for (const std::string& sspec_base : opt.strategies) {
        for (const int k : opt.min_of_k) {
          const std::string sspec = with_k(sspec_base, k);
          bool cell_ok = true;
          for (std::size_t rep = 0; rep < opt.seeds && cell_ok; ++rep) {
            core::TuningStrategyPtr strategy;
            try {
              strategy = core::make_strategy(
                  sspec, bundle.space, strategy_seed(opt.base_seed, rep));
            } catch (const spec::SpecError& e) {
              // Only the k-rewrite may fail (base specs are validated by
              // the first cell); record once and drop the combination.
              if (k <= 0) throw;
              if (skipped_specs.insert(sspec).second) {
                report.skipped.push_back(sspec + ": " + e.what());
              }
              cell_ok = false;
              break;
            }
            auto noise = varmodel::make_noise(
                nspec, evaluator_seed(opt.base_seed, rep));
            auto machine = cluster::make_evaluator(
                evaluator_spec_for(opt, rep), bundle.landscape,
                std::move(noise), evaluator_seed(opt.base_seed, rep));

            core::SessionOptions session;
            session.steps = opt.steps;
            session.record_series = true;
            core::SessionResult result =
                core::run_session(*strategy, *machine, session);

            ShootoutRow row;
            row.strategy_spec = sspec;
            row.strategy_name = strategy->name();
            row.landscape = lspec;
            row.noise = nspec;
            row.k = k;
            row.seed = strategy_seed(opt.base_seed, rep);
            row.result = result;
            csv.row(sspec, lspec, nspec, k, row.seed, result.steps,
                    opt.ranks, result.total_time, result.ntt,
                    result.best_estimate, result.best_clean,
                    result.convergence_step
                        ? static_cast<long>(*result.convergence_step)
                        : 0L);
            curves[sspec].push_back(result.cumulative);
            report.rows.push_back(std::move(row));
          }
        }
      }

      if (opt.plots && !curves.empty()) {
        std::vector<util::Series> series;
        for (const auto& [label, runs] : curves) {
          util::Series s;
          s.name = label;
          const std::size_t n = runs.front().size();
          s.xs.resize(n);
          s.ys.assign(n, 0.0);
          for (std::size_t i = 0; i < n; ++i) s.xs[i] = double(i + 1);
          for (const auto& run : runs) {
            for (std::size_t i = 0; i < n && i < run.size(); ++i) {
              s.ys[i] += run[i] / double(runs.size());
            }
          }
          series.push_back(std::move(s));
        }
        util::PlotOptions plot;
        plot.title = "cumulative Total_Time — " + lspec + " | " + nspec;
        out << "\n" << util::line_plot(series, plot) << "\n";
      }
    }
  }

  if (!report.skipped.empty()) {
    out << "\nskipped combinations (strategy rejects min-of-K rewrite):\n";
    for (const std::string& s : report.skipped) out << "  " << s << "\n";
  }
  return report;
}

void write_shootout_json(const ShootoutReport& report,
                         const ShootoutOptions& opt, std::ostream& out) {
  out << "{\n  \"context\": {\n"
      << "    \"harness\": \"tuning_shootout\",\n"
      << "    \"steps\": " << opt.steps << ",\n"
      << "    \"ranks\": " << opt.ranks << ",\n"
      << "    \"seeds\": " << opt.seeds << ",\n"
      << "    \"evaluator\": \"" << opt.evaluator << "\",\n"
      << "    \"skipped\": " << report.skipped.size() << "\n  },\n"
      << "  \"benchmarks\": [\n";
  out << std::setprecision(17);
  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    const ShootoutRow& r = report.rows[i];
    out << "    {\"name\": \"" << r.strategy_spec << "/" << r.landscape
        << "/" << r.noise << "/seed=" << r.seed << "\", "
        << "\"run_type\": \"shootout\", "
        << "\"strategy\": \"" << r.strategy_name << "\", "
        << "\"total_time\": " << r.result.total_time << ", "
        << "\"ntt\": " << r.result.ntt << ", "
        << "\"best_clean\": " << r.result.best_clean << ", "
        << "\"convergence_step\": "
        << (r.result.convergence_step ? long(*r.result.convergence_step) : -1)
        << "}" << (i + 1 < report.rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace protuner::apps
