#include "apps/blocked_matmul.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>

#include "util/rng.h"

namespace protuner::apps {

BlockedMatmul::BlockedMatmul(std::size_t n)
    : n_(n), a_(n * n), b_(n * n), c_(n * n, 0.0), c_ref_(n * n, 0.0) {
  assert(n >= 4);
  util::Rng rng(0xbadc0ffeULL);
  for (auto& v : a_) v = rng.uniform(-1.0, 1.0);
  for (auto& v : b_) v = rng.uniform(-1.0, 1.0);
}

double BlockedMatmul::run(std::size_t bi, std::size_t bj, std::size_t bk) {
  bi = std::clamp<std::size_t>(bi, 1, n_);
  bj = std::clamp<std::size_t>(bj, 1, n_);
  bk = std::clamp<std::size_t>(bk, 1, n_);
  std::fill(c_.begin(), c_.end(), 0.0);

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t ii = 0; ii < n_; ii += bi) {
    const std::size_t i_end = std::min(n_, ii + bi);
    for (std::size_t kk = 0; kk < n_; kk += bk) {
      const std::size_t k_end = std::min(n_, kk + bk);
      for (std::size_t jj = 0; jj < n_; jj += bj) {
        const std::size_t j_end = std::min(n_, jj + bj);
        for (std::size_t i = ii; i < i_end; ++i) {
          for (std::size_t k = kk; k < k_end; ++k) {
            const double aik = a_[i * n_ + k];
            for (std::size_t j = jj; j < j_end; ++j) {
              c_[i * n_ + j] += aik * b_[k * n_ + j];
            }
          }
        }
      }
    }
  }
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

void BlockedMatmul::run_reference() {
  std::fill(c_ref_.begin(), c_ref_.end(), 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t k = 0; k < n_; ++k) {
      const double aik = a_[i * n_ + k];
      for (std::size_t j = 0; j < n_; ++j) {
        c_ref_[i * n_ + j] += aik * b_[k * n_ + j];
      }
    }
  }
  have_ref_ = true;
}

double BlockedMatmul::max_error() const {
  assert(have_ref_);
  double e = 0.0;
  for (std::size_t i = 0; i < c_.size(); ++i) {
    e = std::max(e, std::fabs(c_[i] - c_ref_[i]));
  }
  return e;
}

double BlockedMatmul::checksum() const {
  double s = 0.0;
  for (double v : c_) s += v;
  return s;
}

core::ParameterSpace BlockedMatmul::tuning_space(std::size_t n) {
  std::vector<double> sizes;
  for (std::size_t s = 4; s <= n; s *= 2) {
    sizes.push_back(static_cast<double>(s));
  }
  if (sizes.back() != static_cast<double>(n)) {
    sizes.push_back(static_cast<double>(n));
  }
  return core::ParameterSpace({
      core::Parameter::discrete("bi", sizes),
      core::Parameter::discrete("bj", sizes),
      core::Parameter::discrete("bk", sizes),
  });
}

MatmulEvaluator::MatmulEvaluator(std::size_t n, std::size_t ranks)
    : kernel_(n), ranks_(ranks) {
  assert(ranks >= 1);
}

void MatmulEvaluator::run_step_into(std::span<const core::Point> configs,
                                    std::span<double> out) {
  assert(!configs.empty());
  assert(configs.size() <= ranks_);
  assert(out.size() == configs.size());
  for (std::size_t p = 0; p < configs.size(); ++p) {
    out[p] = kernel_.run(static_cast<std::size_t>(configs[p][0]),
                         static_cast<std::size_t>(configs[p][1]),
                         static_cast<std::size_t>(configs[p][2]));
  }
}

}  // namespace protuner::apps
