// Many-session serving soak for the Harmony front end (ROADMAP item 2):
// N sessions × P ranks of fetch/report traffic with heavy-tailed think
// times drawn from the paper's own varmodel:: noise processes — the
// premise of the paper is tuning *under load*, so its noise model is the
// right traffic model for the serving tier too.
//
// Workload shape: each session is driven by W worker threads, each owning
// a contiguous slice of the session's ranks and multiplexing them
// phase-locked — fetch every owned rank's assignment, think, then report
// every owned rank (deadlock-free by construction: a worker never blocks
// on a rank another worker must report first).  The reported measurement
// is the drawn think time y = f + n(f), n ~ Pareto(alpha) by default
// (Eq. 5/17), so round-close accounting sees the paper's heavy tail.  The
// think draw is reported as virtual seconds; wall-clock pacing
// (`think_pacing`) is optional and off by default, which makes the soak a
// saturation (closed-loop) benchmark — see EXPERIMENTS.md for when each
// mode is meaningful.
//
// Optional antagonist threads reproduce the serving environment the
// contention work in DESIGN.md §12 targets:
//   * a ticker calling Server::tick() at `tick_hz` (deadline enforcement
//     must not perturb the fast path), and
//   * a monitor sweeping SessionManager::stats_all() +
//     metrics_snapshot() in a tight loop (exporters must not stall
//     traffic).
//
// Results come from the PR-5 obs:: instruments, aggregated across the
// per-session labels by summing histogram buckets — not from a second
// measurement path, so the loadgen exercises exactly the telemetry a
// production deployment would read.
//
// The same workload can flow over the net:: serving tier (DESIGN.md §14)
// instead of direct calls: LoadgenMode::kLoopback runs the binary wire
// protocol against an in-process localhost NetServer, and kServe/kRemote
// split the soak across real processes/machines — identical traffic shape,
// think-time model and quantile reporting in every mode.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace protuner::apps {

/// Where the fetch/report traffic flows.
enum class LoadgenMode {
  /// Workers call harmony::Server directly (the PR-7 soak).
  kInProcess,
  /// Workers speak the wire protocol to a net::NetServer hosted on a
  /// loopback socket inside this same process — the full serialize/epoll/
  /// parse path with zero network distance.
  kLoopback,
  /// Host the sessions behind a net::NetServer on `port` and run the event
  /// loop; a remote kRemote loadgen (same sessions/ranks/rounds) drives
  /// the traffic.  No local workers.
  kServe,
  /// Drive traffic against a kServe loadgen at remote_host:port.  Latency
  /// quantiles come from the client-side wire histograms; the serve
  /// process prints the server-side view.
  kRemote,
};

struct LoadgenOptions {
  LoadgenMode mode = LoadgenMode::kInProcess;
  /// kServe: port to bind (required nonzero).  kRemote: the server's port.
  std::uint16_t port = 0;
  /// kRemote: the serving host.
  std::string remote_host = "127.0.0.1";

  std::size_t sessions = 4;   ///< concurrent tuning sessions
  std::size_t ranks = 16;     ///< ranks (clients) per session
  std::size_t workers = 2;    ///< worker threads per session (>= 1, <= ranks)
  std::size_t rounds = 200;   ///< rounds each session must complete
  std::size_t dims = 4;       ///< configuration dimensionality

  double think_mean = 50e-6;  ///< clean think time f (virtual seconds)
  double rho = 0.3;           ///< idle-system throughput of the noise model
  double alpha = 1.7;         ///< Pareto tail (alpha < 2: infinite variance)
  bool heavy_tail = true;     ///< false = NoNoise (deterministic think)
  /// Busy-wait for the drawn think time (open-loop-ish pacing).  Off by
  /// default: the soak then measures serving capacity, not think time.
  bool think_pacing = false;

  std::uint64_t seed = 42;

  /// Round deadline forwarded to ServerOptions (0 disables).
  std::chrono::duration<double> report_timeout{0.0};
  /// Ticker thread frequency for Server::tick() (0 = no ticker).
  double tick_hz = 0.0;
  /// Run a monitor thread sweeping stats_all()/metrics_snapshot().  It
  /// also prints a ~1 Hz live line to stderr: ops rate, wire bytes in/out
  /// rates, decode errors and flight-recorder stall dumps.
  bool monitor = false;
  /// HTTP scraper antagonist: GET /metrics against the in-process loop's
  /// exporter at this frequency (modes with a local NetServer only;
  /// 0 = off).  Each scrape is a fresh HTTP/1.0 connection demuxed by the
  /// same epoll loop that serves frames, so a nonzero rate measures the
  /// exporter's cost to frame throughput.
  double scrape_hz = 0.0;
};

/// One soak's results.  Latencies are nanoseconds from the obs::
/// histograms (log2 buckets: quantile error bounded by 2x, max exact).
struct LoadgenReport {
  double wall_seconds = 0.0;
  std::uint64_t fetch_ops = 0;
  std::uint64_t report_ops = 0;
  double ops_per_sec = 0.0;  ///< (fetch + report) / wall

  double fetch_p50_ns = 0.0;
  double fetch_p99_ns = 0.0;
  double fetch_p999_ns = 0.0;
  double fetch_max_ns = 0.0;

  double round_wall_p50_ns = 0.0;
  double round_wall_p99_ns = 0.0;
  double round_wall_p999_ns = 0.0;

  std::uint64_t rounds_completed = 0;  ///< summed over sessions
  std::uint64_t deadline_expiries = 0;
  std::uint64_t discarded_reports = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t monitor_sweeps = 0;  ///< stats+snapshot loops completed
  std::uint64_t ticks = 0;           ///< Server::tick() calls issued
  std::uint64_t scrapes = 0;         ///< successful HTTP /metrics GETs

  // Net tier (socket modes only; all zero for the in-process soak).
  // In kRemote runs the fetch/report wire quantiles are the client-side
  // call latencies; otherwise they are the server-side decode-to-reply
  // histograms.
  std::uint64_t net_connections = 0;
  std::uint64_t net_decode_errors = 0;
  std::uint64_t net_bytes_in = 0;
  std::uint64_t net_bytes_out = 0;
  std::uint64_t stall_dumps = 0;  ///< flight-recorder dumps by the loop
  double wire_fetch_p50_ns = 0.0;
  double wire_fetch_p99_ns = 0.0;
  double wire_fetch_p999_ns = 0.0;
  double wire_fetch_max_ns = 0.0;

  std::string summary() const;  ///< human-readable one-screen rendering
};

/// Runs the soak to completion and aggregates the report.  The run uses a
/// private obs::Registry, so repeated runs in one process do not pollute
/// each other (or the global registry).
LoadgenReport run_loadgen(const LoadgenOptions& options);

/// Sums one named histogram across every {"session", ...} label in the
/// snapshot (bucket-wise; max of maxes).  Exposed for the bench harness
/// and tests.
obs::HistogramSnapshot aggregate_histogram(
    const obs::RegistrySnapshot& snapshot, std::string_view name);

/// Sums one named counter across every session label.
std::uint64_t aggregate_counter(const obs::RegistrySnapshot& snapshot,
                                std::string_view name);

}  // namespace protuner::apps
