// Bursty (Markov-modulated) noise: disruptions arrive in episodes rather
// than i.i.d. per step.  A two-state Markov chain (quiet / disturbed)
// gates a heavy-tailed Pareto shock.  The paper assumes i.i.d. noise for
// its Fig. 10 analysis (footnote 3) — this model is the stress test for
// that assumption, used by the robustness tests and available as an
// ablation axis.
//
// Unlike the memoryless models, a single BurstNoise instance carries state
// across sample() calls (the episode process), so one instance models one
// processor's environment.
#pragma once

#include "stats/pareto.h"
#include "varmodel/noise_model.h"

namespace protuner::varmodel {

struct BurstConfig {
  double rho = 0.2;          ///< long-run idle throughput target
  double alpha = 1.7;        ///< Pareto tail index of in-burst shocks
  double p_enter = 0.05;     ///< P[quiet -> disturbed] per observation
  double p_exit = 0.25;      ///< P[disturbed -> quiet] per observation
  std::uint64_t seed = 1;    ///< episode-process stream
};

class BurstNoise final : public NoiseModel {
 public:
  explicit BurstNoise(BurstConfig config);

  double sample(double clean_time, util::Rng& rng) const override;
  double n_min(double) const override { return 0.0; }  // quiet state: no noise
  double expected(double clean_time) const override;
  double rho() const override { return config_.rho; }
  bool heavy_tailed() const override { return config_.alpha < 2.0; }
  std::string name() const override;

  /// Long-run fraction of observations taken in the disturbed state.
  double duty_cycle() const;

  bool disturbed() const { return disturbed_; }

 private:
  BurstConfig config_;
  mutable util::Rng episode_rng_;
  mutable bool disturbed_ = false;
};

}  // namespace protuner::varmodel
