#include "varmodel/ar1_noise.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace protuner::varmodel {

Ar1Noise::Ar1Noise(Ar1Config config) : config_(config), level_rng_(config.seed) {
  assert(config.rho >= 0.0 && config.rho < 1.0);
  assert(config.phi >= 0.0 && config.phi < 1.0);
  assert(config.level_share >= 0.0 && config.level_share <= 1.0);
  assert(config.alpha > 1.0);
}

double Ar1Noise::sample(double clean_time, util::Rng& rng) const {
  assert(clean_time > 0.0);
  if (config_.rho == 0.0) return 0.0;

  // Hidden load level: AR(1) with stationary mean 1, clipped at 0.
  // x_{t} = phi x_{t-1} + (1 - phi) (1 + e), e ~ N(0, 1).
  if (!initialized_) {
    level_ = 1.0;
    initialized_ = true;
  }
  level_ = config_.phi * level_ +
           (1.0 - config_.phi) * (1.0 + level_rng_.normal());
  const double level = std::max(0.0, level_);

  const double mean = expected(clean_time);
  const double level_part = config_.level_share * mean * level;

  // Innovation spikes carry the residual share of the mean; they fire
  // sparsely, so each event is large (event mean = share / fire prob).
  constexpr double kFireProb = 0.2;
  const double spike_mean = (1.0 - config_.level_share) * mean;
  double spike = 0.0;
  if (spike_mean > 0.0 && rng.bernoulli(kFireProb)) {
    const double event_mean = spike_mean / kFireProb;
    const stats::Pareto p(config_.alpha,
                          event_mean * (config_.alpha - 1.0) / config_.alpha);
    spike = p.sample(rng);
  }
  return level_part + spike;
}

std::string Ar1Noise::name() const {
  std::ostringstream ss;
  ss << "Ar1Noise(rho=" << config_.rho << ", phi=" << config_.phi
     << ", alpha=" << config_.alpha << ")";
  return ss.str();
}

}  // namespace protuner::varmodel
