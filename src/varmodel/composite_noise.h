// Composite noise: the sum of two independent noise components.  The
// natural model for the paper's Fig. 3 structure — frequent mild jitter
// plus rare heavy-tailed spikes — expressed as a NoiseModel so the whole
// optimizer/estimator stack can run against it.
#pragma once

#include <memory>

#include "varmodel/noise_model.h"

namespace protuner::varmodel {

class CompositeNoise final : public NoiseModel {
 public:
  CompositeNoise(std::shared_ptr<const NoiseModel> a,
                 std::shared_ptr<const NoiseModel> b);

  double sample(double clean_time, util::Rng& rng) const override;
  /// Composable batching: component a's batch for all ranks, then b's.
  /// Each rank owns its rng, so per-stream draw order (a's variates, then
  /// b's) is exactly the scalar `a.sample(...) + b.sample(...)` order, and
  /// stream equivalence composes recursively through nested composites.
  void sample_batch(std::span<const double> clean, std::span<util::Rng> rngs,
                    std::span<double> out) const override;
  double n_min(double clean_time) const override;
  double expected(double clean_time) const override;
  /// Effective rho consistent with Eq. 7 applied to the combined mean:
  /// E[n] = rho/(1-rho) f  =>  rho = E[n] / (f + E[n]).
  double rho() const override;
  bool heavy_tailed() const override;
  std::string name() const override;

 private:
  std::shared_ptr<const NoiseModel> a_;
  std::shared_ptr<const NoiseModel> b_;
};

}  // namespace protuner::varmodel
