// Temporally-correlated noise: the machine's background load follows an
// AR(1) process, so consecutive observations share a slowly-moving level
// plus heavy-tailed innovations.  Complements BurstNoise (on/off episodes)
// and the cross-rank ShockTraceGenerator: this is the *within-rank,
// across-time* correlation axis, the third way real machines violate the
// i.i.d. assumption of the paper's Fig. 10 analysis.
#pragma once

#include "stats/pareto.h"
#include "varmodel/noise_model.h"

namespace protuner::varmodel {

struct Ar1Config {
  double rho = 0.2;         ///< long-run Eq. 7 mean target
  double phi = 0.9;         ///< AR(1) persistence of the load level, [0,1)
  double level_share = 0.6; ///< fraction of the mean carried by the level
  double alpha = 1.7;       ///< tail of the innovation spikes
  std::uint64_t seed = 1;   ///< level-process stream
};

class Ar1Noise final : public NoiseModel {
 public:
  explicit Ar1Noise(Ar1Config config);

  double sample(double clean_time, util::Rng& rng) const override;
  double n_min(double) const override { return 0.0; }
  double expected(double clean_time) const override {
    return config_.rho / (1.0 - config_.rho) * clean_time;
  }
  double rho() const override { return config_.rho; }
  bool heavy_tailed() const override { return config_.alpha < 2.0; }
  std::string name() const override;

  /// Current level of the hidden load process (diagnostic).
  double level() const { return level_; }

 private:
  Ar1Config config_;
  mutable util::Rng level_rng_;
  mutable double level_ = 0.0;  ///< stationary-mean-1 AR(1) level
  mutable bool initialized_ = false;
};

}  // namespace protuner::varmodel
