// Heavy-tailed Pareto noise — the model used in the paper's Fig. 10
// experiments: n(v) ~ Pareto(alpha, beta(f)) with
//   beta(f) = (alpha - 1) rho / ((1 - rho) alpha) * f        (Eq. 17)
// which makes E[n] = rho/(1-rho) f (Eq. 7) and n_min = beta linear in f.
#pragma once

#include "stats/pareto.h"
#include "varmodel/noise_model.h"

namespace protuner::varmodel {

class ParetoNoise final : public NoiseModel {
 public:
  /// rho in [0, 1): idle-system throughput.  alpha > 1 so that the mean
  /// exists and Eq. 17 is well defined (the paper uses alpha = 1.7: finite
  /// mean, infinite variance).
  ParetoNoise(double rho, double alpha);

  double sample(double clean_time, util::Rng& rng) const override;
  void sample_batch(std::span<const double> clean, std::span<util::Rng> rngs,
                    std::span<double> out) const override;
  double n_min(double clean_time) const override { return beta(clean_time); }
  double expected(double clean_time) const override;
  double rho() const override { return rho_; }
  bool heavy_tailed() const override { return alpha_ < 2.0; }
  std::string name() const override;

  double alpha() const { return alpha_; }

  /// beta(f) from Eq. 17.
  double beta(double clean_time) const;

 private:
  double rho_;
  double alpha_;
};

}  // namespace protuner::varmodel
