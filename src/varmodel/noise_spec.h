// Spec-driven construction of noise models (DESIGN.md §13).
//
//   auto n = varmodel::make_noise("pareto:rho=0.1,alpha=1.7");
//   auto q = varmodel::make_noise("none");
//
// Composites are the top-level '+' of component specs — the Fig. 3
// frequent-mild-jitter + rare-heavy-spike structure in one line:
//
//   auto c = varmodel::make_noise("exp:rho=0.05+pareto:rho=0.1,alpha=1.5");
//
// `seed` feeds the stateful models (ar1, burst) unless the spec pins
// `seed=` explicitly.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "spec/registry.h"
#include "varmodel/noise_model.h"

namespace protuner::varmodel {

using NoiseRegistry =
    spec::Registry<std::shared_ptr<const NoiseModel>, std::uint64_t>;

/// The noise-model family registry (component names; '+' composition is
/// handled by make_noise on top).
NoiseRegistry& noise_registry();

/// Parses `text` ('+'-separated component specs) and constructs the model;
/// two or more components fold into CompositeNoise left to right.  Throws
/// spec::SpecError on unknown names/keys or out-of-range values.
std::shared_ptr<const NoiseModel> make_noise(std::string_view text,
                                             std::uint64_t seed = 1);

}  // namespace protuner::varmodel
