// Event-driven simulation of the paper's two-job machine model
// (Section 4.1): a single server with strict preemptive-resume priority.
// First-priority jobs (OS housekeeping, daemons, transient disruptions)
// arrive as a Poisson stream; the tunable application is the second-priority
// job and is served only when no first-priority work is present.
//
// With arrival rate lambda and first-priority service distribution S, the
// idle-system throughput is rho = lambda * E[S], and the application's
// completion time y satisfies E[y] = f / (1 - rho) when it starts at an idle
// instant (Eq. 6) — the server grants the application exactly the leftover
// capacity 1 - rho on average.
//
// Making S heavy-tailed (Pareto) makes the observed noise n = y - f heavy
// tailed, which is how we regenerate Fig. 3-style traces without the
// original cluster.
#pragma once

#include <memory>

#include "stats/distribution.h"
#include "util/rng.h"
#include "varmodel/noise_model.h"

namespace protuner::varmodel {

struct TwoJobConfig {
  double arrival_rate = 0.1;  ///< lambda: first-priority arrivals per time unit
  /// First-priority service-time distribution; E[S] * lambda must be < 1.
  std::shared_ptr<const stats::Distribution> service;
  /// Warm-up horizon simulated before the application is admitted, so that
  /// the first-priority backlog approaches stationarity.  Set to 0 to admit
  /// the application into an idle system (the Eq. 6 regime).
  double warmup_time = 0.0;
};

/// Runs one application job of size `clean_time` through the priority queue
/// and returns its completion (wall) time y >= clean_time.
class TwoJobSimulator {
 public:
  explicit TwoJobSimulator(TwoJobConfig config);

  /// Simulates one run; deterministic given rng state.
  double run_application(double clean_time, util::Rng& rng) const;

  /// Idle-system throughput rho = lambda * E[S].
  double rho() const;

  const TwoJobConfig& config() const { return config_; }

 private:
  TwoJobConfig config_;
};

/// Adapts the queue simulator to the NoiseModel interface so optimizers can
/// run against the mechanistic model instead of a closed-form distribution.
class QueueNoise final : public NoiseModel {
 public:
  explicit QueueNoise(TwoJobConfig config);

  double sample(double clean_time, util::Rng& rng) const override;
  /// The queue can leave the application completely undisturbed, so the
  /// essential minimum of the noise is 0.
  double n_min(double) const override { return 0.0; }
  double expected(double clean_time) const override;
  double rho() const override { return sim_.rho(); }
  bool heavy_tailed() const override {
    return sim_.config().service->heavy_tailed();
  }
  std::string name() const override;

 private:
  TwoJobSimulator sim_;
};

}  // namespace protuner::varmodel
