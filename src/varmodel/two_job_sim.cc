#include "varmodel/two_job_sim.h"

#include <cassert>
#include <cmath>
#include <sstream>

namespace protuner::varmodel {

TwoJobSimulator::TwoJobSimulator(TwoJobConfig config)
    : config_(std::move(config)) {
  assert(config_.arrival_rate >= 0.0);
  assert(config_.service != nullptr);
  assert(rho() < 1.0);  // otherwise the application never finishes
}

double TwoJobSimulator::rho() const {
  return config_.arrival_rate * config_.service->mean();
}

double TwoJobSimulator::run_application(double clean_time,
                                        util::Rng& rng) const {
  assert(clean_time > 0.0);
  if (config_.arrival_rate == 0.0) return clean_time;

  const double lambda = config_.arrival_rate;
  const auto draw_interarrival = [&] { return rng.exponential() / lambda; };

  double clock = 0.0;
  double backlog = 0.0;  // outstanding first-priority work
  double next_arrival = draw_interarrival();

  // Warm-up: evolve the first-priority queue alone so the application is
  // admitted into (approximately) the stationary backlog state.
  while (clock < config_.warmup_time) {
    if (next_arrival <= config_.warmup_time) {
      const double served = std::min(backlog, next_arrival - clock);
      backlog -= served;
      clock = next_arrival;
      backlog += config_.service->sample(rng);
      next_arrival = clock + draw_interarrival();
    } else {
      backlog = std::max(0.0, backlog - (config_.warmup_time - clock));
      clock = config_.warmup_time;
    }
  }

  // Application phase: strict preemptive-resume priority.  The server works
  // on first-priority backlog whenever it is non-zero; the application only
  // progresses in the gaps.
  const double start = clock;
  double remaining = clean_time;
  while (remaining > 0.0) {
    if (backlog > 0.0) {
      // Serve first-priority work until it drains or a new job arrives.
      const double horizon = std::min(backlog, next_arrival - clock);
      backlog -= horizon;
      clock += horizon;
    } else {
      // Serve the application until it finishes or the next arrival.
      const double horizon = std::min(remaining, next_arrival - clock);
      remaining -= horizon;
      clock += horizon;
    }
    if (clock >= next_arrival && remaining > 0.0) {
      backlog += config_.service->sample(rng);
      next_arrival = clock + draw_interarrival();
    }
  }
  return clock - start;
}

QueueNoise::QueueNoise(TwoJobConfig config) : sim_(std::move(config)) {}

double QueueNoise::sample(double clean_time, util::Rng& rng) const {
  return sim_.run_application(clean_time, rng) - clean_time;
}

double QueueNoise::expected(double clean_time) const {
  // Eq. 7 for the idle-admission regime.  With warm-up the stationary
  // backlog adds a constant offset; Eq. 7 remains the dominant term.
  const double r = sim_.rho();
  return r / (1.0 - r) * clean_time;
}

std::string QueueNoise::name() const {
  std::ostringstream ss;
  ss << "QueueNoise(rho=" << sim_.rho()
     << ", service=" << sim_.config().service->name() << ")";
  return ss.str();
}

}  // namespace protuner::varmodel
