#include "varmodel/simple_noise.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>
#include <vector>

#include "util/simd.h"

namespace protuner::varmodel {

// ----------------------------------------------------------- ExponentialNoise

ExponentialNoise::ExponentialNoise(double rho) : rho_(rho) {
  assert(rho >= 0.0 && rho < 1.0);
}

double ExponentialNoise::sample(double clean_time, util::Rng& rng) const {
  assert(clean_time > 0.0);
  if (rho_ == 0.0) return 0.0;
  return expected(clean_time) * rng.exponential();
}

void ExponentialNoise::sample_batch(std::span<const double> clean,
                                    std::span<util::Rng> rngs,
                                    std::span<double> out) const {
  assert(clean.size() == out.size());
  assert(rngs.size() >= out.size());
  if (rho_ == 0.0) {
    // The scalar path returns 0 without touching the rng; so must we.
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }
  // One variate per rank in rank order — stream-identical to the scalar
  // loop — with the transform fused into the draw pass (log1p serialises
  // the loop anyway).  The expression associates exactly like
  // expected(clean) * rng.exponential().
  const double scale = rho_ / (1.0 - rho_);
  if (util::simd::fast_math_enabled()) {
    // Fast-math: scalar per-rank draws (rng end states stay bit-identical),
    // vectorized -log(1 - u) transform.  Note the documented deviation: the
    // deterministic path computes log1p(-u), the simd kernel log(1 - u) —
    // same value up to the rounding of 1 - u, ULP-bounded in
    // test_simd_math.  Opt-in only, like every simd:: fast kernel.
    thread_local std::vector<double> u;
    u.resize(out.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      assert(clean[i] > 0.0);
      u[i] = rngs[i].uniform();
    }
    util::simd::neglog1m_scale_batch(u.data(), scale, clean.data(),
                                     out.data(), out.size());
    return;
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    assert(clean[i] > 0.0);
    const double u = rngs[i].uniform();
    out[i] = scale * clean[i] * -std::log1p(-u);
  }
}

std::string ExponentialNoise::name() const {
  std::ostringstream ss;
  ss << "ExponentialNoise(rho=" << rho_ << ")";
  return ss.str();
}

// -------------------------------------------------------------- GaussianNoise

GaussianNoise::GaussianNoise(double rho, double cv) : rho_(rho), cv_(cv) {
  assert(rho >= 0.0 && rho < 1.0);
  assert(cv >= 0.0);
}

double GaussianNoise::sample(double clean_time, util::Rng& rng) const {
  assert(clean_time > 0.0);
  if (rho_ == 0.0) return 0.0;
  const double mu = rho_ / (1.0 - rho_) * clean_time;
  return std::max(0.0, rng.normal(mu, cv_ * mu));
}

double GaussianNoise::expected(double clean_time) const {
  // The truncation at 0 biases the mean slightly above mu for large cv; we
  // report the untruncated mean, which is what the model targets.
  return rho_ / (1.0 - rho_) * clean_time;
}

std::string GaussianNoise::name() const {
  std::ostringstream ss;
  ss << "GaussianNoise(rho=" << rho_ << ", cv=" << cv_ << ")";
  return ss.str();
}

// ----------------------------------------------------------------- TraceNoise

TraceNoise::TraceNoise(std::vector<double> relative_trace)
    : trace_(std::move(relative_trace)) {
  assert(!trace_.empty());
  min_rel_ = *std::min_element(trace_.begin(), trace_.end());
  mean_rel_ = std::accumulate(trace_.begin(), trace_.end(), 0.0) /
              static_cast<double>(trace_.size());
}

double TraceNoise::sample(double clean_time, util::Rng&) const {
  const double rel = trace_[cursor_];
  cursor_ = (cursor_ + 1) % trace_.size();
  return rel * clean_time;
}

double TraceNoise::n_min(double clean_time) const {
  return min_rel_ * clean_time;
}

double TraceNoise::expected(double clean_time) const {
  return mean_rel_ * clean_time;
}

}  // namespace protuner::varmodel
