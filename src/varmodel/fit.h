// Calibration: fit the paper's noise model to measured runtimes.
//
// Given repeated observations y_1..y_n of one fixed configuration, recover
// the model parameters of Section 4:
//   f_hat   — the clean time, estimated by the observed floor (the min
//             converges to f + n_min; for queue-style noise n_min = 0, for
//             Eq. 17 Pareto noise the floor is f (1 + beta_rel)),
//   rho     — from Eq. 6/7:  E[y] = f / (1 - rho)  =>  rho = 1 - f / E[y],
//   alpha   — Hill estimate on the positive excesses y - f_hat.
// The result can be fed straight into ParetoNoise to simulate "more of the
// same machine" — the measure -> fit -> simulate workflow.
#pragma once

#include <span>

#include "varmodel/pareto_noise.h"

namespace protuner::varmodel {

struct NoiseFit {
  double clean_time = 0.0;  ///< observed floor (f_hat; see note below)
  double rho = 0.0;         ///< Eq. 6 estimate assuming floor == f (queue-style noise, n_min = 0)
  double rho_eq17 = 0.0;    ///< corrected estimate assuming Eq. 17 noise, whose floor is f (1 + beta_rel): E[y]/floor = 1/(1 - rho/alpha)  =>  rho = alpha (1 - floor/mean)
  double alpha = 0.0;       ///< tail index of the excess distribution
  bool heavy = false;       ///< alpha < 2 with enough tail evidence
  std::size_t excesses = 0; ///< samples that exceeded the floor materially
};

/// Fits the two-job/Pareto noise model to repeated observations of one
/// configuration.  Requires n >= 20 strictly positive samples.
NoiseFit fit_noise(std::span<const double> observations);

/// Builds the Eq. 17 ParetoNoise implied by a fit (alpha clamped to > 1 so
/// the model's mean exists; rho clamped to [0, 0.95]).
ParetoNoise to_pareto_noise(const NoiseFit& fit);

}  // namespace protuner::varmodel
