#include "varmodel/composite_noise.h"

#include <cassert>
#include <sstream>
#include <vector>

namespace protuner::varmodel {

CompositeNoise::CompositeNoise(std::shared_ptr<const NoiseModel> a,
                               std::shared_ptr<const NoiseModel> b)
    : a_(std::move(a)), b_(std::move(b)) {
  assert(a_ != nullptr);
  assert(b_ != nullptr);
}

double CompositeNoise::sample(double clean_time, util::Rng& rng) const {
  return a_->sample(clean_time, rng) + b_->sample(clean_time, rng);
}

void CompositeNoise::sample_batch(std::span<const double> clean,
                                  std::span<util::Rng> rngs,
                                  std::span<double> out) const {
  assert(clean.size() == out.size());
  a_->sample_batch(clean, rngs, out);
  // Scratch for the second component.  Per-thread, because sample_batch is
  // const and composites are shared across concurrently-stepping clusters,
  // so the buffer must not live in the (shared) instance.  Depth-indexed,
  // because a nested composite re-enters this function while the outer
  // frame's scratch is its `out` — one flat thread_local buffer would alias
  // it.  Capacity persists per thread and depth, so the steady-state step
  // does not allocate.
  thread_local std::vector<std::vector<double>> scratch_pool;
  thread_local std::size_t scratch_depth = 0;
  const std::size_t slot = scratch_depth;
  if (slot == scratch_pool.size()) scratch_pool.emplace_back();
  scratch_pool[slot].resize(out.size());
  // The nested call can grow the pool and relocate its slots (the slots'
  // heap buffers stay put), so re-index scratch_pool after it instead of
  // holding a reference across it.
  double* const b_data = scratch_pool[slot].data();
  ++scratch_depth;
  b_->sample_batch(clean, rngs, {b_data, out.size()});
  --scratch_depth;
  for (std::size_t i = 0; i < out.size(); ++i) out[i] += b_data[i];
}

double CompositeNoise::n_min(double clean_time) const {
  return a_->n_min(clean_time) + b_->n_min(clean_time);
}

double CompositeNoise::expected(double clean_time) const {
  return a_->expected(clean_time) + b_->expected(clean_time);
}

double CompositeNoise::rho() const {
  // Derived from Eq. 7 at unit clean time: rho = E[n] / (1 + E[n]).
  const double mean = expected(1.0);
  return mean / (1.0 + mean);
}

bool CompositeNoise::heavy_tailed() const {
  // The heavier component dominates the tail of a sum.
  return a_->heavy_tailed() || b_->heavy_tailed();
}

std::string CompositeNoise::name() const {
  std::ostringstream ss;
  ss << "Composite(" << a_->name() << " + " << b_->name() << ")";
  return ss.str();
}

}  // namespace protuner::varmodel
