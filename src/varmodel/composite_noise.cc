#include "varmodel/composite_noise.h"

#include <cassert>
#include <sstream>

namespace protuner::varmodel {

CompositeNoise::CompositeNoise(std::shared_ptr<const NoiseModel> a,
                               std::shared_ptr<const NoiseModel> b)
    : a_(std::move(a)), b_(std::move(b)) {
  assert(a_ != nullptr);
  assert(b_ != nullptr);
}

double CompositeNoise::sample(double clean_time, util::Rng& rng) const {
  return a_->sample(clean_time, rng) + b_->sample(clean_time, rng);
}

double CompositeNoise::n_min(double clean_time) const {
  return a_->n_min(clean_time) + b_->n_min(clean_time);
}

double CompositeNoise::expected(double clean_time) const {
  return a_->expected(clean_time) + b_->expected(clean_time);
}

double CompositeNoise::rho() const {
  // Derived from Eq. 7 at unit clean time: rho = E[n] / (1 + E[n]).
  const double mean = expected(1.0);
  return mean / (1.0 + mean);
}

bool CompositeNoise::heavy_tailed() const {
  // The heavier component dominates the tail of a sum.
  return a_->heavy_tailed() || b_->heavy_tailed();
}

std::string CompositeNoise::name() const {
  std::ostringstream ss;
  ss << "Composite(" << a_->name() << " + " << b_->name() << ")";
  return ss.str();
}

}  // namespace protuner::varmodel
