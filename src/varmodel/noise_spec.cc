#include "varmodel/noise_spec.h"

#include <string>

#include "varmodel/ar1_noise.h"
#include "varmodel/burst_noise.h"
#include "varmodel/composite_noise.h"
#include "varmodel/pareto_noise.h"
#include "varmodel/simple_noise.h"

namespace protuner::varmodel {

namespace {

using Reg = spec::Registrar<NoiseRegistry>;

NoiseRegistry& mutable_registry() {
  static NoiseRegistry registry("noise");
  return registry;
}

const Reg reg_none{
    mutable_registry(),
    "none",
    {"nonoise", "clean"},
    "noiseless baseline (rho = 0): y = f(v) exactly",
    "none",
    [](spec::Options&, std::uint64_t) -> std::shared_ptr<const NoiseModel> {
      return std::make_shared<NoNoise>();
    }};

const Reg reg_pareto{
    mutable_registry(),
    "pareto",
    {},
    "heavy-tailed Pareto noise (paper Eq. 17; alpha<2: infinite variance)",
    "pareto:rho=0.1,alpha=1.7",
    [](spec::Options& o, std::uint64_t) -> std::shared_ptr<const NoiseModel> {
      o.alias("scale", "rho");
      const double rho = o.get_double("rho", 0.1, 0.0, 0.999);
      const double alpha = o.get_double("alpha", 1.7, 1.0 + 1e-9, 100.0);
      return std::make_shared<ParetoNoise>(rho, alpha);
    }};

const Reg reg_exp{
    mutable_registry(),
    "exp",
    {"exponential"},
    "light-tailed exponential noise with the Eq. 7 mean scaling",
    "exp:rho=0.1",
    [](spec::Options& o, std::uint64_t) -> std::shared_ptr<const NoiseModel> {
      return std::make_shared<ExponentialNoise>(
          o.get_double("rho", 0.1, 0.0, 0.999));
    }};

const Reg reg_gauss{
    mutable_registry(),
    "gauss",
    {"gaussian", "normal"},
    "truncated-Gaussian noise (cv = coefficient of variation)",
    "gauss:rho=0.1,cv=0.5",
    [](spec::Options& o, std::uint64_t) -> std::shared_ptr<const NoiseModel> {
      const double rho = o.get_double("rho", 0.1, 0.0, 0.999);
      const double cv = o.get_double("cv", 0.5, 0.0, 100.0);
      return std::make_shared<GaussianNoise>(rho, cv);
    }};

const Reg reg_ar1{
    mutable_registry(),
    "ar1",
    {},
    "AR(1)-correlated load level with heavy-tailed innovations",
    "ar1:rho=0.2,phi=0.9,share=0.6,alpha=1.7,seed=7",
    [](spec::Options& o,
       std::uint64_t seed) -> std::shared_ptr<const NoiseModel> {
      Ar1Config cfg;
      cfg.rho = o.get_double("rho", cfg.rho, 0.0, 0.999);
      cfg.phi = o.get_double("phi", cfg.phi, 0.0, 1.0 - 1e-9);
      cfg.level_share = o.get_double("share", cfg.level_share, 0.0, 1.0);
      cfg.alpha = o.get_double("alpha", cfg.alpha, 1.0 + 1e-9, 100.0);
      cfg.seed = o.get_u64("seed", seed);
      return std::make_shared<Ar1Noise>(cfg);
    }};

const Reg reg_burst{
    mutable_registry(),
    "burst",
    {},
    "Markov-modulated burst noise (quiet/disturbed episodes)",
    "burst:rho=0.2,alpha=1.7,enter=0.05,exit=0.25,seed=7",
    [](spec::Options& o,
       std::uint64_t seed) -> std::shared_ptr<const NoiseModel> {
      BurstConfig cfg;
      cfg.rho = o.get_double("rho", cfg.rho, 0.0, 0.999);
      cfg.alpha = o.get_double("alpha", cfg.alpha, 1.0 + 1e-9, 100.0);
      cfg.p_enter = o.get_double("enter", cfg.p_enter, 0.0, 1.0);
      cfg.p_exit = o.get_double("exit", cfg.p_exit, 1e-9, 1.0);
      cfg.seed = o.get_u64("seed", seed);
      return std::make_shared<BurstNoise>(cfg);
    }};

}  // namespace

NoiseRegistry& noise_registry() { return mutable_registry(); }

std::shared_ptr<const NoiseModel> make_noise(std::string_view text,
                                             std::uint64_t seed) {
  std::shared_ptr<const NoiseModel> combined;
  std::string_view rest = text;
  while (true) {
    const std::size_t plus = rest.find('+');
    const std::string_view part =
        plus == std::string_view::npos ? rest : rest.substr(0, plus);
    std::shared_ptr<const NoiseModel> component =
        noise_registry().make(spec::parse(part), seed);
    combined = combined == nullptr
                   ? std::move(component)
                   : std::make_shared<CompositeNoise>(std::move(combined),
                                                      std::move(component));
    if (plus == std::string_view::npos) break;
    rest = rest.substr(plus + 1);
    // Distinct default streams per '+' component, so "burst+burst" does not
    // alias two copies of the same episode process.
    seed = seed * 0x9e3779b97f4a7c15ULL + 1;
  }
  return combined;
}

}  // namespace protuner::varmodel
