// Performance-variability noise models (paper Section 4).
//
// Observed runtime for a configuration with clean (idle-system) time f(v) is
//   y = f(v) + n(v)                                   (Eq. 5)
// where n(v) is the time the machine spent on higher-priority work while the
// application was resident.  Under the paper's two-job model the *expected*
// noise scales linearly with f(v):
//   E[n(v)] = rho / (1 - rho) * f(v)                  (Eq. 7)
// with rho the idle-system throughput (fraction of capacity consumed by the
// first-priority stream).
#pragma once

#include <algorithm>
#include <cassert>
#include <memory>
#include <span>
#include <string>

#include "util/rng.h"

namespace protuner::varmodel {

/// Generates the additive noise term n(v) given the clean runtime f(v).
class NoiseModel {
 public:
  virtual ~NoiseModel() = default;

  /// Draws one noise sample n >= n_min(clean_time).
  virtual double sample(double clean_time, util::Rng& rng) const = 0;

  /// Batched sampling, one draw per rank: out[i] = sample(clean[i], rngs[i])
  /// evaluated in rank order.  The contract is *stream equivalence*: for any
  /// model, the outputs and every rng's end state must be bit-identical to
  /// the scalar loop — batching is an implementation detail, never a
  /// statistical change.  Memoryless models override this with a block draw
  /// plus an autovectorizable inverse-CDF transform (one variate per rank,
  /// rank order); stateful models (AR(1), bursts, traces) inherit this
  /// scalar fallback.  Overrides must not share mutable scratch between
  /// instances or threads.
  virtual void sample_batch(std::span<const double> clean,
                            std::span<util::Rng> rngs,
                            std::span<double> out) const {
    assert(clean.size() == out.size());
    assert(rngs.size() >= out.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = sample(clean[i], rngs[i]);
    }
  }

  /// The essential minimum of the noise for this clean time — the value the
  /// min-of-K estimator converges to (paper Eq. 14/15: L_y -> f + n_min).
  /// Must be a non-decreasing function of clean_time for rank-ordering by
  /// min-of-K to be valid (paper Section 5.1).
  virtual double n_min(double clean_time) const = 0;

  /// Expected noise E[n(v)]; +inf if the mean does not exist.
  virtual double expected(double clean_time) const = 0;

  /// Idle-system throughput rho behind this model (0 when not applicable).
  virtual double rho() const = 0;

  virtual bool heavy_tailed() const = 0;
  virtual std::string name() const = 0;

  /// Convenience: observed runtime y = f + n.
  double observe(double clean_time, util::Rng& rng) const {
    return clean_time + sample(clean_time, rng);
  }
};

using NoiseModelPtr = std::unique_ptr<NoiseModel>;

/// The noiseless baseline (rho = 0): y = f(v) exactly.
class NoNoise final : public NoiseModel {
 public:
  double sample(double, util::Rng&) const override { return 0.0; }
  void sample_batch(std::span<const double>, std::span<util::Rng>,
                    std::span<double> out) const override {
    std::fill(out.begin(), out.end(), 0.0);
  }
  double n_min(double) const override { return 0.0; }
  double expected(double) const override { return 0.0; }
  double rho() const override { return 0.0; }
  bool heavy_tailed() const override { return false; }
  std::string name() const override { return "NoNoise"; }
};

}  // namespace protuner::varmodel
