// Cross-rank correlated shock process for regenerating Fig. 3-style traces.
//
// The paper's measured GS2 traces show two distinct spike populations (big
// and small) and strong similarity *across processors* within the same
// iteration — consistent with system-wide disruptions (parallel filesystem,
// network, batch-system housekeeping) rather than independent per-node
// noise.  We model per-iteration, per-rank runtime as
//
//   t_{p,k} = f * (1 + small_p,k) + Shared_k + Idio_{p,k}
//
// where Shared_k is a system-wide shock felt by every rank in iteration k
// (heavy-tailed, rare, "big spikes"), small_p,k is frequent mild relative
// jitter, and Idio is rare per-rank heavy-tailed noise ("small spikes" that
// differ between ranks).
#pragma once

#include <cstddef>
#include <vector>

#include "stats/pareto.h"
#include "util/rng.h"

namespace protuner::varmodel {

struct ShockConfig {
  double jitter_cv = 0.01;        ///< per-rank mild Gaussian jitter (relative)
  double big_prob = 0.01;         ///< P[system-wide shock in an iteration]
  double big_alpha = 1.3;         ///< tail index of the shared shock
  double big_scale = 5.0;         ///< beta of the shared shock (absolute time)
  double small_prob = 0.05;       ///< P[per-rank shock in an iteration]
  double small_alpha = 1.7;       ///< tail index of the per-rank shock
  double small_scale = 0.3;       ///< beta of the per-rank shock
  double correlation = 1.0;       ///< fraction of ranks hit by a shared shock
};

/// Generates correlated per-rank iteration-time traces.
class ShockTraceGenerator {
 public:
  ShockTraceGenerator(ShockConfig config, std::size_t ranks,
                      std::uint64_t seed);

  /// Advances one iteration and returns the runtime of every rank, given the
  /// clean per-iteration time f.
  std::vector<double> step(double clean_time);

  /// Allocation-free variant: writes the per-rank runtimes into `out`
  /// (resized to ranks()).  Identical draws and results to step().
  void step_into(double clean_time, std::vector<double>& out);

  /// Generates a full trace: result[p][k] is rank p's k-th iteration time.
  std::vector<std::vector<double>> generate(double clean_time,
                                            std::size_t iterations);

  const ShockConfig& config() const { return config_; }
  std::size_t ranks() const { return ranks_; }

 private:
  ShockConfig config_;
  std::size_t ranks_;
  util::Rng shared_rng_;             ///< drives system-wide events
  std::vector<util::Rng> rank_rng_;  ///< one independent stream per rank
  stats::Pareto big_;
  stats::Pareto small_;
};

}  // namespace protuner::varmodel
