#include "varmodel/pareto_noise.h"

#include <cassert>
#include <cmath>
#include <sstream>

namespace protuner::varmodel {

ParetoNoise::ParetoNoise(double rho, double alpha) : rho_(rho), alpha_(alpha) {
  assert(rho >= 0.0 && rho < 1.0);
  assert(alpha > 1.0);  // Eq. 17 needs a finite mean
}

double ParetoNoise::beta(double clean_time) const {
  return (alpha_ - 1.0) * rho_ / ((1.0 - rho_) * alpha_) * clean_time;
}

double ParetoNoise::sample(double clean_time, util::Rng& rng) const {
  assert(clean_time > 0.0);
  if (rho_ == 0.0) return 0.0;
  const stats::Pareto p(alpha_, beta(clean_time));
  return p.sample(rng);
}

double ParetoNoise::expected(double clean_time) const {
  return rho_ / (1.0 - rho_) * clean_time;  // Eq. 7
}

std::string ParetoNoise::name() const {
  std::ostringstream ss;
  ss << "ParetoNoise(rho=" << rho_ << ", alpha=" << alpha_ << ")";
  return ss.str();
}

}  // namespace protuner::varmodel
