#include "varmodel/pareto_noise.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>
#include <vector>

#include "util/simd.h"

namespace protuner::varmodel {

ParetoNoise::ParetoNoise(double rho, double alpha) : rho_(rho), alpha_(alpha) {
  assert(rho >= 0.0 && rho < 1.0);
  assert(alpha > 1.0);  // Eq. 17 needs a finite mean
}

double ParetoNoise::beta(double clean_time) const {
  return (alpha_ - 1.0) * rho_ / ((1.0 - rho_) * alpha_) * clean_time;
}

double ParetoNoise::sample(double clean_time, util::Rng& rng) const {
  assert(clean_time > 0.0);
  if (rho_ == 0.0) return 0.0;
  const stats::Pareto p(alpha_, beta(clean_time));
  return p.sample(rng);
}

void ParetoNoise::sample_batch(std::span<const double> clean,
                               std::span<util::Rng> rngs,
                               std::span<double> out) const {
  assert(clean.size() == out.size());
  assert(rngs.size() >= out.size());
  if (rho_ == 0.0) {
    // The scalar path returns 0 without touching the rng; so must we.
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }
  // One variate per rank in rank order — stream-identical to the scalar
  // loop — with the inverse-CDF transform fused into the draw pass (pow
  // serialises the loop anyway, so a second pass only adds memory
  // traffic).  The per-sample constants are hoisted: `k * clean`
  // associates exactly like beta(clean) and `inv_alpha` is the same
  // quotient Pareto::sample computes, so each result is bit-identical to
  // stats::Pareto(alpha_, beta(clean)).sample(rng).
  const double k = (alpha_ - 1.0) * rho_ / ((1.0 - rho_) * alpha_);
  const double inv_alpha = -1.0 / alpha_;
  if (util::simd::fast_math_enabled()) {
    // Fast-math lane layout: the per-rank draws stay a scalar pass (each
    // rank owns its own rng, one variate each, in rank order — so every
    // rng's end state is exactly the scalar path's), and the serialising
    // pow is replaced by the simd:: polynomial kernel over the whole rank
    // vector.  ULP-bounded vs the std::pow path, never bit-pinned — which
    // is why this branch only runs behind the explicit opt-in.  Per-thread
    // scratch keeps the steady-state step zero-allocation.
    thread_local std::vector<double> u;
    u.resize(out.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      assert(clean[i] > 0.0);
      u[i] = rngs[i].uniform();
    }
    util::simd::pow1m_scale_batch(u.data(), inv_alpha, k, clean.data(),
                                  out.data(), out.size());
    return;
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    assert(clean[i] > 0.0);
    const double u = rngs[i].uniform();
    out[i] = k * clean[i] * std::pow(1.0 - u, inv_alpha);
  }
}

double ParetoNoise::expected(double clean_time) const {
  return rho_ / (1.0 - rho_) * clean_time;  // Eq. 7
}

std::string ParetoNoise::name() const {
  std::ostringstream ss;
  ss << "ParetoNoise(rho=" << rho_ << ", alpha=" << alpha_ << ")";
  return ss.str();
}

}  // namespace protuner::varmodel
