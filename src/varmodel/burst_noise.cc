#include "varmodel/burst_noise.h"

#include <cassert>
#include <sstream>

namespace protuner::varmodel {

BurstNoise::BurstNoise(BurstConfig config)
    : config_(config), episode_rng_(config.seed) {
  assert(config.rho >= 0.0 && config.rho < 1.0);
  assert(config.alpha > 1.0);
  assert(config.p_enter > 0.0 && config.p_enter <= 1.0);
  assert(config.p_exit > 0.0 && config.p_exit <= 1.0);
}

double BurstNoise::duty_cycle() const {
  return config_.p_enter / (config_.p_enter + config_.p_exit);
}

double BurstNoise::expected(double clean_time) const {
  return config_.rho / (1.0 - config_.rho) * clean_time;  // Eq. 7 target
}

double BurstNoise::sample(double clean_time, util::Rng& rng) const {
  assert(clean_time > 0.0);
  if (config_.rho == 0.0) return 0.0;
  // Advance the episode chain.
  if (disturbed_) {
    if (episode_rng_.bernoulli(config_.p_exit)) disturbed_ = false;
  } else {
    if (episode_rng_.bernoulli(config_.p_enter)) disturbed_ = true;
  }
  if (!disturbed_) return 0.0;

  // In-burst shock sized so the *long-run* mean matches Eq. 7:
  // duty_cycle * E[shock] = rho/(1-rho) f  =>  mean_shock = expected / duty.
  const double mean_shock = expected(clean_time) / duty_cycle();
  const double beta = mean_shock * (config_.alpha - 1.0) / config_.alpha;
  const stats::Pareto p(config_.alpha, beta);
  return p.sample(rng);
}

std::string BurstNoise::name() const {
  std::ostringstream ss;
  ss << "BurstNoise(rho=" << config_.rho << ", alpha=" << config_.alpha
     << ", duty=" << duty_cycle() << ")";
  return ss.str();
}

}  // namespace protuner::varmodel
