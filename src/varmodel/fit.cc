#include "varmodel/fit.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "stats/tail.h"
#include "util/summary.h"

namespace protuner::varmodel {

NoiseFit fit_noise(std::span<const double> observations) {
  assert(observations.size() >= 20);
  NoiseFit fit;

  // Floor estimate: the smallest observation.  Under any of our noise
  // models min(y) -> f + n_min >= f, so this is a (slightly biased up)
  // clean-time estimate; the bias shrinks with the sample count exactly as
  // the paper's min-operator analysis says (Eq. 14).
  fit.clean_time = util::min(observations);
  assert(fit.clean_time > 0.0);

  // Eq. 6: E[y] = f / (1 - rho), with the floor standing in for f.  Exact
  // when the noise can be zero (queue-style, n_min = 0); biased low under
  // Eq. 17 noise whose floor already contains beta — rho_eq17 corrects
  // that once alpha is known.
  const double mean = util::mean(observations);
  fit.rho = std::clamp(1.0 - fit.clean_time / mean, 0.0, 0.95);

  // Tail index of the excesses above the floor.
  std::vector<double> excess;
  excess.reserve(observations.size());
  for (double y : observations) {
    const double e = y - fit.clean_time;
    if (e > 1e-9 * fit.clean_time) excess.push_back(e);
  }
  fit.excesses = excess.size();
  if (excess.size() >= 50) {
    const auto report = stats::diagnose_tail(excess);
    fit.alpha = report.hill_alpha;
    fit.heavy = report.heavy;
  }
  // Eq. 17 correction: the observable floor is f (1 + beta_rel) and
  // (1 - rho)(1 + beta_rel) = 1 - rho/alpha, so E[y]/floor = 1/(1 - rho/alpha).
  const double alpha_eff = fit.alpha > 1.05 ? fit.alpha : 1.7;
  fit.rho_eq17 =
      std::clamp(alpha_eff * (1.0 - fit.clean_time / mean), 0.0, 0.95);
  return fit;
}

ParetoNoise to_pareto_noise(const NoiseFit& fit) {
  const double alpha =
      fit.alpha > 1.05 ? fit.alpha : 1.7;  // paper default when unresolved
  // The Eq. 17 model owns a non-zero floor, so its corrected rho applies.
  return ParetoNoise(std::clamp(fit.rho_eq17, 0.0, 0.95), alpha);
}

}  // namespace protuner::varmodel
