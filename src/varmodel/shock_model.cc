#include "varmodel/shock_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace protuner::varmodel {

ShockTraceGenerator::ShockTraceGenerator(ShockConfig config, std::size_t ranks,
                                         std::uint64_t seed)
    : config_(config),
      ranks_(ranks),
      shared_rng_(seed),
      big_(config.big_alpha, config.big_scale),
      small_(config.small_alpha, config.small_scale) {
  assert(ranks > 0);
  assert(config.big_prob >= 0.0 && config.big_prob <= 1.0);
  assert(config.small_prob >= 0.0 && config.small_prob <= 1.0);
  assert(config.correlation >= 0.0 && config.correlation <= 1.0);
  rank_rng_ = util::Rng(seed ^ 0x9e3779b97f4a7c15ULL).split_streams(ranks);
}

std::vector<double> ShockTraceGenerator::step(double clean_time) {
  std::vector<double> t;
  step_into(clean_time, t);
  return t;
}

void ShockTraceGenerator::step_into(double clean_time,
                                    std::vector<double>& t) {
  assert(clean_time > 0.0);
  t.assign(ranks_, clean_time);

  // System-wide shock: one draw per iteration, felt (with the configured
  // correlation) by all ranks — this makes the per-rank curves move together
  // exactly as the paper's Fig. 3 shows.
  double shared = 0.0;
  if (shared_rng_.bernoulli(config_.big_prob)) {
    shared = big_.sample(shared_rng_);
  }

  for (std::size_t p = 0; p < ranks_; ++p) {
    auto& rng = rank_rng_[p];
    // Mild always-on jitter.
    t[p] += clean_time * config_.jitter_cv * std::abs(rng.normal());
    // Shared (big) spike — applied to a `correlation` fraction of ranks.
    if (shared > 0.0 && rng.uniform() < config_.correlation) t[p] += shared;
    // Idiosyncratic (small) spike.
    if (rng.bernoulli(config_.small_prob)) t[p] += small_.sample(rng);
  }
}

std::vector<std::vector<double>> ShockTraceGenerator::generate(
    double clean_time, std::size_t iterations) {
  std::vector<std::vector<double>> trace(
      ranks_, std::vector<double>(iterations, 0.0));
  std::vector<double> t;
  for (std::size_t k = 0; k < iterations; ++k) {
    step_into(clean_time, t);
    for (std::size_t p = 0; p < ranks_; ++p) trace[p][k] = t[p];
  }
  return trace;
}

}  // namespace protuner::varmodel
