// Light-tailed noise models for the estimator ablations: Gaussian and
// exponential noise with the same Eq. 7 mean scaling as the Pareto model,
// plus replayed-trace noise.
#pragma once

#include <string>
#include <vector>

#include "varmodel/noise_model.h"

namespace protuner::varmodel {

/// Exponential noise with E[n] = rho/(1-rho) f — light-tailed counterpart of
/// ParetoNoise (same mean, exponential decay, n_min = 0).
class ExponentialNoise final : public NoiseModel {
 public:
  explicit ExponentialNoise(double rho);

  double sample(double clean_time, util::Rng& rng) const override;
  void sample_batch(std::span<const double> clean, std::span<util::Rng> rngs,
                    std::span<double> out) const override;
  double n_min(double) const override { return 0.0; }
  double expected(double clean_time) const override {
    return rho_ / (1.0 - rho_) * clean_time;
  }
  double rho() const override { return rho_; }
  bool heavy_tailed() const override { return false; }
  std::string name() const override;

 private:
  double rho_;
};

/// Truncated-Gaussian noise: n = max(0, N(mu(f), cv*mu(f))) with
/// mu(f) = rho/(1-rho) f.  `cv` is the coefficient of variation.
class GaussianNoise final : public NoiseModel {
 public:
  GaussianNoise(double rho, double cv);

  double sample(double clean_time, util::Rng& rng) const override;
  double n_min(double) const override { return 0.0; }
  double expected(double clean_time) const override;
  double rho() const override { return rho_; }
  bool heavy_tailed() const override { return false; }
  std::string name() const override;

 private:
  double rho_;
  double cv_;
};

/// Replays a recorded noise trace (e.g. residuals extracted from measured
/// runs), cycling when exhausted.  The trace is interpreted as *relative*
/// noise: n = trace[i] * f.  Sampling advances an internal cursor, so a
/// single instance shared across evaluations reproduces trace order.
class TraceNoise final : public NoiseModel {
 public:
  explicit TraceNoise(std::vector<double> relative_trace);

  double sample(double clean_time, util::Rng& rng) const override;
  double n_min(double clean_time) const override;
  double expected(double clean_time) const override;
  double rho() const override { return 0.0; }
  bool heavy_tailed() const override { return false; }
  std::string name() const override { return "TraceNoise"; }

 private:
  std::vector<double> trace_;
  mutable std::size_t cursor_ = 0;
  double min_rel_ = 0.0;
  double mean_rel_ = 0.0;
};

}  // namespace protuner::varmodel
