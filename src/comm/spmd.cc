#include "comm/spmd.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <thread>

namespace protuner::comm {

World::World(std::size_t ranks)
    : ranks_(ranks),
      barrier_(static_cast<std::ptrdiff_t>(ranks)),
      slots_(ranks, 0.0),
      mailboxes_(ranks) {
  assert(ranks >= 1);
}

Communicator::Communicator(World& world, std::size_t rank)
    : world_(world), rank_(rank) {
  assert(rank < world.size());
}

std::size_t Communicator::size() const { return world_.size(); }

void Communicator::barrier() { world_.sync(); }

// All collectives share the pattern: write own slot, barrier (everyone
// wrote), read/combine, barrier (safe to reuse the slots).

double Communicator::allreduce_max(double v) {
  world_.slots_[rank_] = v;
  world_.sync();
  const double r =
      *std::max_element(world_.slots_.begin(), world_.slots_.end());
  world_.sync();
  return r;
}

double Communicator::allreduce_min(double v) {
  world_.slots_[rank_] = v;
  world_.sync();
  const double r =
      *std::min_element(world_.slots_.begin(), world_.slots_.end());
  world_.sync();
  return r;
}

double Communicator::allreduce_sum(double v) {
  world_.slots_[rank_] = v;
  world_.sync();
  const double r =
      std::accumulate(world_.slots_.begin(), world_.slots_.end(), 0.0);
  world_.sync();
  return r;
}

std::vector<double> Communicator::allgather(double v) {
  world_.slots_[rank_] = v;
  world_.sync();
  std::vector<double> out = world_.slots_;
  world_.sync();
  return out;
}

double Communicator::broadcast(double v, std::size_t root) {
  if (rank_ == root) world_.slots_[root] = v;
  world_.sync();
  const double r = world_.slots_[root];
  world_.sync();
  return r;
}

void Communicator::send(std::size_t dest, std::vector<double> payload) {
  assert(dest < world_.size());
  World::Mailbox& box = world_.mailboxes_[dest];
  {
    const std::scoped_lock lock(box.mutex);
    box.messages.push_back(std::move(payload));
  }
  box.ready.notify_one();
}

std::vector<double> Communicator::recv() {
  World::Mailbox& box = world_.mailboxes_[rank_];
  std::unique_lock lock(box.mutex);
  box.ready.wait(lock, [&] { return !box.messages.empty(); });
  std::vector<double> msg = std::move(box.messages.front());
  box.messages.pop_front();
  return msg;
}

bool Communicator::has_message() const {
  World::Mailbox& box = world_.mailboxes_[rank_];
  const std::scoped_lock lock(box.mutex);
  return !box.messages.empty();
}

void spmd_run(std::size_t ranks,
              const std::function<void(Communicator&)>& fn) {
  World world(ranks);
  std::vector<std::jthread> threads;
  threads.reserve(ranks);
  for (std::size_t r = 0; r < ranks; ++r) {
    threads.emplace_back([&world, &fn, r] {
      Communicator comm(world, r);
      fn(comm);
    });
  }
  // jthread joins on destruction.
}

}  // namespace protuner::comm
