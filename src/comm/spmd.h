// In-process SPMD substrate: a miniature MPI-like layer over std::jthread +
// std::barrier so the tuning harness can be driven by *real* concurrent
// ranks (the live examples and the harmony integration tests), not only by
// the discrete-event cluster simulator.
//
// Model: spmd_run(P, fn) launches P ranks; each receives a Communicator
// with rank/size, barrier, allreduce(min/max/sum), allgather and broadcast.
// Collectives must be called by every rank in the same order (as in MPI).
#pragma once

#include <barrier>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

namespace protuner::comm {

class World;

/// Per-rank handle to the collectives.  Valid only inside spmd_run.
class Communicator {
 public:
  Communicator(World& world, std::size_t rank);

  std::size_t rank() const { return rank_; }
  std::size_t size() const;

  /// Blocks until every rank arrives.
  void barrier();

  /// Collective reductions over one double per rank.
  double allreduce_max(double v);
  double allreduce_min(double v);
  double allreduce_sum(double v);

  /// Every rank receives the vector of all ranks' contributions, ordered by
  /// rank.
  std::vector<double> allgather(double v);

  /// Every rank returns root's value.
  double broadcast(double v, std::size_t root);

  /// Point-to-point: appends `payload` to `dest`'s mailbox.  Non-blocking;
  /// messages from one sender to one receiver arrive in send order.
  void send(std::size_t dest, std::vector<double> payload);

  /// Blocks until a message is available in this rank's mailbox and
  /// returns it (any sender; FIFO).
  std::vector<double> recv();

  /// Non-blocking probe: true if recv() would not block.
  bool has_message() const;

 private:
  World& world_;
  std::size_t rank_;
};

/// Shared state for one SPMD execution.  Construct with the rank count and
/// run ranks against it, or use the spmd_run convenience wrapper.
class World {
 public:
  explicit World(std::size_t ranks);

  std::size_t size() const { return ranks_; }

 private:
  friend class Communicator;

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable ready;
    std::deque<std::vector<double>> messages;
  };

  std::size_t ranks_;
  std::barrier<> barrier_;
  std::vector<double> slots_;
  std::vector<Mailbox> mailboxes_;

  void sync() { barrier_.arrive_and_wait(); }
};

/// Runs fn on P concurrent ranks (std::jthread each) and joins them all.
/// Exceptions thrown by a rank terminate the process (by design: a failed
/// rank in SPMD has no meaningful recovery here).
void spmd_run(std::size_t ranks,
              const std::function<void(Communicator&)>& fn);

}  // namespace protuner::comm
