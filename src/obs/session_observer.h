// obs::ObservingSessionObserver — telemetry adapter for the single
// core::SessionObserver seam.
//
// RoundEngine (and therefore run_session and harmony::Server) accepts one
// observer pointer.  This adapter records step/convergence telemetry into an
// obs::Registry and forwards every callback to an optional chained observer,
// so CSV logging (core::CsvSessionLogger) and metrics can share the seam.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "core/session.h"
#include "core/types.h"
#include "obs/metrics.h"

namespace protuner::obs {

class ObservingSessionObserver final : public core::SessionObserver {
 public:
  /// Instruments are resolved once here (the registry lock + allocation);
  /// the callbacks only touch pre-resolved references.  `session` becomes
  /// the {"session", ...} label; empty means unlabelled (single-session
  /// tools).  `registry` defaults to the process-wide one.
  explicit ObservingSessionObserver(std::string session = {},
                                    Registry* registry = nullptr,
                                    core::SessionObserver* next = nullptr);

  void on_step(std::size_t step, std::span<const core::Point> configs,
               std::span<const double> times, double cost) override;
  void on_converged(std::size_t step, const core::Point& best) override;

  /// Chained observer invoked after telemetry on every callback.
  core::SessionObserver* next() const { return next_; }
  void set_next(core::SessionObserver* next) { next_ = next; }

 private:
  Counter& steps_;
  Counter& converged_;
  Histogram& step_cost_;   ///< T_k per step (simulated seconds)
  Histogram& rank_time_;   ///< individual per-rank observed times
  core::SessionObserver* next_;
};

}  // namespace protuner::obs
