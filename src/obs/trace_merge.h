// Merging per-process Chrome trace exports into one fleet-wide timeline
// (DESIGN.md §15).
//
// A distributed run produces one trace JSON per process (server + N
// clients), each with its own pid and its own epoch-relative timestamps.
// What makes them mergeable is the trace context the wire carries: every
// span recorded under a round's TraceContext holds the same trace id on
// every process, so a merged file groups the server's round span with the
// client fetch/report spans it satisfied — the cross-process causal
// correlation the straggler post-mortems need.
//
// The parser reads back exactly the exporter's dialect (a JSON object with
// a "traceEvents" array of "X" events) but is defensively general: unknown
// keys are skipped, and any structural error fails the parse rather than
// crashing.  merge_traces() re-pids each input (file order, 1-based) so
// processes stay distinct in the viewer and sorts the union by timestamp —
// Perfetto and chrome://tracing both accept the result.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace protuner::obs {

/// One "X" (complete) event read back from a trace file.
struct MergedEvent {
  std::string name;
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::uint32_t pid = 1;
  std::uint32_t tid = 0;
  std::string trace_id;  ///< hex token from args.trace; empty when absent
  std::string span_id;   ///< hex token from args.span
};

/// Parses one Chrome trace JSON document into `out` (appending).  Returns
/// false on malformed JSON or a missing "traceEvents" array.
bool parse_chrome_trace(std::string_view json, std::vector<MergedEvent>& out);

/// Concatenates per-process event lists, overriding each input's pid with
/// its 1-based index, and sorts the union by start timestamp.
std::vector<MergedEvent> merge_traces(
    const std::vector<std::vector<MergedEvent>>& inputs);

/// Writes events back out as Chrome trace JSON (the exporter's dialect).
void write_merged(std::ostream& out, const std::vector<MergedEvent>& events);

}  // namespace protuner::obs
