#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace protuner::obs {

namespace {

std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Thread-local cache mapping tracer ids to that thread's ring, so the
/// recording path never takes the tracer mutex after a thread's first span.
/// A handful of slots is plenty: real processes use the global tracer plus
/// at most a test-local one or two.
struct RingCache {
  static constexpr std::size_t kSlots = 4;
  std::uint64_t ids[kSlots] = {};
  Tracer::Ring* rings[kSlots] = {};
  std::size_t next = 0;
};

thread_local RingCache tls_ring_cache;

thread_local TraceContext tls_trace_context;

}  // namespace

TraceContext current_trace_context() { return tls_trace_context; }

void set_current_trace_context(const TraceContext& ctx) {
  tls_trace_context = ctx;
}

// ---------------------------------------------------------------------- Ring

Tracer::Ring::Ring(std::size_t capacity, std::uint32_t tid_in)
    : spans(capacity > 0 ? capacity : 1), tid(tid_in) {}

// -------------------------------------------------------------------- Tracer

Tracer::Tracer()
    : id_(next_tracer_id()), epoch_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() {
  // Invalidate any thread-local cache entries pointing at our rings.  Only
  // protects the destructing thread's cache; other threads must not record
  // into a tracer being destroyed (the global tracer is never destroyed).
  for (std::size_t i = 0; i < RingCache::kSlots; ++i) {
    if (tls_ring_cache.ids[i] == id_) {
      tls_ring_cache.ids[i] = 0;
      tls_ring_cache.rings[i] = nullptr;
    }
  }
}

Tracer& Tracer::global() {
  // Leaked: worker threads (thread pool, server ticker) may record during
  // static destruction.  OBS_TRACE is parsed exactly once, here.
  static Tracer* g = [] {
    auto* t = new Tracer();
    if (const char* env = std::getenv("OBS_TRACE")) {
      char* end = nullptr;
      const long long n = std::strtoll(env, &end, 10);
      if (end != env && n > 0) {
        t->configure(true, static_cast<std::uint64_t>(n));
      }
    }
    return t;
  }();
  return *g;
}

void Tracer::configure(bool enabled, std::uint64_t sample_every,
                       std::size_t ring_capacity) {
  sample_every_.store(sample_every > 0 ? sample_every : 1,
                      std::memory_order_relaxed);
  {
    const std::scoped_lock lock(mutex_);
    ring_capacity_ = ring_capacity > 0 ? ring_capacity : 1;
  }
  enabled_.store(enabled, std::memory_order_relaxed);
}

std::uint64_t Tracer::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

Tracer::Ring& Tracer::thread_ring() {
  RingCache& cache = tls_ring_cache;
  for (std::size_t i = 0; i < RingCache::kSlots; ++i) {
    if (cache.ids[i] == id_) return *cache.rings[i];
  }
  Ring* ring = nullptr;
  {
    const std::scoped_lock lock(mutex_);
    rings_.push_back(std::make_unique<Ring>(ring_capacity_, next_tid_++));
    ring = rings_.back().get();
  }
  const std::size_t slot = cache.next;
  cache.next = (cache.next + 1) % RingCache::kSlots;
  cache.ids[slot] = id_;
  cache.rings[slot] = ring;
  return *ring;
}

void Tracer::push(Ring& ring, const char* name, std::uint64_t start_ns,
                  std::uint64_t dur_ns, const TraceContext& ctx) {
  const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
  TraceSpan& slot = ring.spans[head % ring.spans.size()];
  slot.name = name;
  slot.start_ns = start_ns;
  slot.dur_ns = dur_ns;
  slot.trace_id = ctx.trace_id;
  slot.span_id = ctx.span_id;
  slot.tid = ring.tid;
  slot.depth = ring.depth;
  // Release-publish so a concurrent snapshot that acquires `head` sees the
  // fully written span in every slot below it.
  ring.head.store(head + 1, std::memory_order_release);
}

std::vector<TraceSpan> Tracer::snapshot() const {
  const std::scoped_lock lock(mutex_);
  std::vector<TraceSpan> out;
  for (const auto& ring : rings_) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::size_t cap = ring->spans.size();
    const std::uint64_t held = head < cap ? head : cap;
    // Oldest surviving span first.  A racing writer may overwrite the
    // oldest slots as we copy; for telemetry that torn tail is acceptable
    // (and harmless — spans are plain trivially-copyable data).
    const std::uint64_t begin = head - held;
    for (std::uint64_t i = begin; i < head; ++i) {
      out.push_back(ring->spans[i % cap]);
    }
  }
  return out;
}

std::size_t Tracer::dropped() const {
  const std::scoped_lock lock(mutex_);
  std::size_t dropped = 0;
  for (const auto& ring : rings_) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::size_t cap = ring->spans.size();
    if (head > cap) dropped += static_cast<std::size_t>(head - cap);
  }
  return dropped;
}

void Tracer::clear() {
  const std::scoped_lock lock(mutex_);
  for (const auto& ring : rings_) {
    ring->head.store(0, std::memory_order_relaxed);
  }
}

namespace {

/// Span names are string literals by convention, but the exporter must not
/// trust that: escape anything that would break the JSON string.
void write_escaped(std::ostream& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\') {
      out << '\\' << *s;
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out << buf;
    } else {
      out << *s;
    }
  }
}

/// Correlation ids render as fixed-width hex strings: u64 exceeds the
/// integer range JSON doubles preserve, and every consumer (trace_merge,
/// Perfetto queries) treats them as opaque tokens anyway.
void write_hex64(std::ostream& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  out << buf;
}

}  // namespace

void Tracer::write_chrome_trace(std::ostream& out, std::uint32_t pid) const {
  std::vector<TraceSpan> spans = snapshot();
  // Ring wrap interleaves old and new spans; viewers want monotone ts.
  std::stable_sort(spans.begin(), spans.end(),
                   [](const TraceSpan& a, const TraceSpan& b) {
                     return a.start_ns < b.start_ns;
                   });
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const TraceSpan& s : spans) {
    if (!first) out << ',';
    first = false;
    // Chrome's trace_event timestamps are microseconds (doubles), so
    // nanosecond precision survives as fractional microseconds.
    out << "{\"name\":\"";
    write_escaped(out, s.name != nullptr ? s.name : "?");
    out << "\",\"cat\":\"protuner\",\"ph\":\"X\",\"ts\":"
        << static_cast<double>(s.start_ns) / 1e3
        << ",\"dur\":" << static_cast<double>(s.dur_ns) / 1e3
        << ",\"pid\":" << pid << ",\"tid\":" << s.tid
        << ",\"args\":{\"depth\":" << s.depth;
    if (s.trace_id != 0) {
      out << ",\"trace\":\"";
      write_hex64(out, s.trace_id);
      out << "\",\"span\":\"";
      write_hex64(out, s.span_id);
      out << '"';
    }
    out << "}}";
  }
  out << "]}\n";
}

// ---------------------------------------------------------------- ScopedSpan

void ScopedSpan::begin(Tracer& tracer, const char* name) {
  Tracer::Ring& ring = tracer.thread_ring();
  const std::uint64_t every =
      tracer.sample_every_.load(std::memory_order_relaxed);
  if (every > 1 && (ring.sample_counter++ % every) != 0) return;
  tracer_ = &tracer;
  ring_ = &ring;
  name_ = name;
  ctx_ = tls_trace_context;
  ring.depth++;
  start_ = tracer.now_ns();
}

void ScopedSpan::finish() {
  const std::uint64_t end = tracer_->now_ns();
  ring_->depth--;
  tracer_->push(*ring_, name_, start_, end - start_, ctx_);
}

}  // namespace protuner::obs
