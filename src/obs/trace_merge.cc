#include "obs/trace_merge.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <ostream>

namespace protuner::obs {

namespace {

// ------------------------------------------------------- minimal JSON reader
// Event-free recursive descent over the RFC 8259 grammar.  The caller walks
// the document with enter_object()/next_key()/... primitives; anything it
// does not care about is skip()ped.  No DOM, no allocation beyond the
// strings actually extracted.

class JsonCursor {
 public:
  explicit JsonCursor(std::string_view text) : text_(text) {}

  bool failed() const { return failed_; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool parse_string(std::string& out) {
    out.clear();
    skip_ws();
    if (!consume('"')) return fail();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail();
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail();
            // Exporter names are ASCII; non-ASCII escapes degrade to '?'.
            const unsigned long cp =
                std::strtoul(std::string(text_.substr(pos_, 4)).c_str(),
                             nullptr, 16);
            pos_ += 4;
            out.push_back(cp < 0x80 ? static_cast<char>(cp) : '?');
            break;
          }
          default: return fail();
        }
      } else {
        out.push_back(c);
      }
    }
    return fail();
  }

  bool parse_number(double& out) {
    skip_ws();
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    out = std::strtod(begin, &end);
    if (end == begin) return fail();
    pos_ += static_cast<std::size_t>(end - begin);
    return true;
  }

  /// Skips one complete value of any type.
  bool skip_value() {
    skip_ws();
    const char c = peek();
    if (c == '"') {
      std::string scratch;
      return parse_string(scratch);
    }
    if (c == '{' || c == '[') {
      const char open = c;
      const char close = open == '{' ? '}' : ']';
      consume(open);
      if (consume(close)) return true;
      for (;;) {
        if (open == '{') {
          std::string key;
          if (!parse_string(key) || !consume(':')) return fail();
        }
        if (!skip_value()) return false;
        if (consume(',')) continue;
        if (consume(close)) return true;
        return fail();
      }
    }
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    double scratch = 0.0;
    return parse_number(scratch);
  }

  bool literal(std::string_view word) {
    skip_ws();
    if (text_.substr(pos_, word.size()) != word) return fail();
    pos_ += word.size();
    return true;
  }

  bool fail() {
    failed_ = true;
    return false;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

bool parse_args(JsonCursor& c, MergedEvent& e) {
  if (!c.consume('{')) return c.fail();
  if (c.consume('}')) return true;
  for (;;) {
    std::string key;
    if (!c.parse_string(key) || !c.consume(':')) return c.fail();
    if (key == "trace") {
      if (!c.parse_string(e.trace_id)) return false;
    } else if (key == "span") {
      if (!c.parse_string(e.span_id)) return false;
    } else if (!c.skip_value()) {
      return false;
    }
    if (c.consume(',')) continue;
    if (c.consume('}')) return true;
    return c.fail();
  }
}

bool parse_event(JsonCursor& c, MergedEvent& e, bool& is_complete) {
  is_complete = false;
  std::string ph;
  if (!c.consume('{')) return c.fail();
  if (c.consume('}')) return true;
  for (;;) {
    std::string key;
    if (!c.parse_string(key) || !c.consume(':')) return c.fail();
    double num = 0.0;
    if (key == "name") {
      if (!c.parse_string(e.name)) return false;
    } else if (key == "ph") {
      if (!c.parse_string(ph)) return false;
    } else if (key == "ts") {
      if (!c.parse_number(e.ts_us)) return false;
    } else if (key == "dur") {
      if (!c.parse_number(e.dur_us)) return false;
    } else if (key == "pid") {
      if (!c.parse_number(num)) return false;
      e.pid = static_cast<std::uint32_t>(num);
    } else if (key == "tid") {
      if (!c.parse_number(num)) return false;
      e.tid = static_cast<std::uint32_t>(num);
    } else if (key == "args") {
      if (!parse_args(c, e)) return false;
    } else if (!c.skip_value()) {
      return false;
    }
    if (c.consume(',')) continue;
    if (c.consume('}')) break;
    return c.fail();
  }
  is_complete = ph == "X";
  return true;
}

}  // namespace

bool parse_chrome_trace(std::string_view json,
                        std::vector<MergedEvent>& out) {
  JsonCursor c(json);
  if (!c.consume('{')) return false;
  bool saw_events = false;
  if (!c.consume('}')) {
    for (;;) {
      std::string key;
      if (!c.parse_string(key) || !c.consume(':')) return false;
      if (key == "traceEvents") {
        saw_events = true;
        if (!c.consume('[')) return false;
        if (!c.consume(']')) {
          for (;;) {
            MergedEvent e;
            bool is_complete = false;
            if (!parse_event(c, e, is_complete)) return false;
            if (is_complete) out.push_back(std::move(e));
            if (c.consume(',')) continue;
            if (c.consume(']')) break;
            return false;
          }
        }
      } else if (!c.skip_value()) {
        return false;
      }
      if (c.consume(',')) continue;
      if (c.consume('}')) break;
      return false;
    }
  }
  return saw_events && !c.failed();
}

std::vector<MergedEvent> merge_traces(
    const std::vector<std::vector<MergedEvent>>& inputs) {
  std::vector<MergedEvent> out;
  std::size_t total = 0;
  for (const auto& in : inputs) total += in.size();
  out.reserve(total);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    for (const MergedEvent& e : inputs[i]) {
      out.push_back(e);
      out.back().pid = static_cast<std::uint32_t>(i + 1);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const MergedEvent& a, const MergedEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return out;
}

namespace {

void write_json_escaped(std::ostream& out, const std::string& s) {
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    if (c == '"' || c == '\\') {
      out << '\\' << ch;
    } else if (c < 0x20) {
      out << "\\u00" << "0123456789abcdef"[c >> 4] << "0123456789abcdef"[c & 15];
    } else {
      out << ch;
    }
  }
}

}  // namespace

void write_merged(std::ostream& out, const std::vector<MergedEvent>& events) {
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const MergedEvent& e : events) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"";
    write_json_escaped(out, e.name);
    out << "\",\"cat\":\"protuner\",\"ph\":\"X\",\"ts\":" << e.ts_us
        << ",\"dur\":" << e.dur_us << ",\"pid\":" << e.pid
        << ",\"tid\":" << e.tid << ",\"args\":{";
    if (!e.trace_id.empty()) {
      out << "\"trace\":\"";
      write_json_escaped(out, e.trace_id);
      out << "\",\"span\":\"";
      write_json_escaped(out, e.span_id);
      out << '"';
    }
    out << "}}";
  }
  out << "]}\n";
}

}  // namespace protuner::obs
