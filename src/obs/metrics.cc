#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace protuner::obs {

namespace {

/// Escapes a label value for the Prometheus text format.
std::string escape_label(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Escapes HELP text: the text format continues to end-of-line, so embedded
/// newlines (and the backslashes that would fake escapes) must be encoded
/// or the exposition stops parsing at the first multi-line help string.
std::string escape_help(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void write_labels(std::ostream& out, const Labels& labels,
                  std::string_view extra_key = {},
                  std::string_view extra_value = {}) {
  if (labels.empty() && extra_key.empty()) return;
  out << '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out << ',';
    out << k << "=\"" << escape_label(v) << '"';
    first = false;
  }
  if (!extra_key.empty()) {
    if (!first) out << ',';
    out << extra_key << "=\"" << extra_value << '"';
  }
  out << '}';
}

}  // namespace

// ----------------------------------------------------------------- Histogram

std::size_t Histogram::bucket_index(double v) {
  // Everything that is not a positive value reaching the first finite
  // bucket — zero, negatives, denormal dust, NaN — lands in the underflow
  // bucket.  Telemetry must never throw or branch into UB on a weird input.
  if (!(v >= std::ldexp(1.0, kMinExp))) return 0;
  // ilogb is exact for normal doubles: floor(log2(v)).  +inf clamps below.
  int e = std::ilogb(v);
  if (e > kMaxExp) e = kMaxExp;
  return static_cast<std::size_t>(e - kMinExp + 1);
}

double Histogram::bucket_lower(std::size_t i) {
  if (i == 0) return 0.0;
  return std::ldexp(1.0, kMinExp + static_cast<int>(i) - 1);
}

double Histogram::bucket_upper(std::size_t i) {
  if (i + 1 >= kBucketCount) {
    return std::numeric_limits<double>::infinity();
  }
  return std::ldexp(1.0, kMinExp + static_cast<int>(i));
}

void Histogram::merge(const HistogramSnapshot& s) {
  const std::size_t n = std::min(s.counts.size(), kBucketCount);
  for (std::size_t i = 0; i < n; ++i) {
    if (s.counts[i] != 0) {
      buckets_[i].fetch_add(s.counts[i], std::memory_order_relaxed);
    }
  }
  if (s.max > 0.0) {
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(s.max);
    std::uint64_t cur = max_bits_.load(std::memory_order_relaxed);
    while (bits > cur && !max_bits_.compare_exchange_weak(
                             cur, bits, std::memory_order_relaxed)) {
    }
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.counts.resize(kBucketCount);
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    s.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  const std::uint64_t bits = max_bits_.load(std::memory_order_relaxed);
  s.max = std::bit_cast<double>(bits);
  // The total is the bucket sum, so quantile targets are always consistent
  // with the counts they are computed from, even racing with record().
  std::uint64_t total = 0;
  for (const std::uint64_t c : s.counts) total += c;
  s.count = total;
  return s;
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0 || counts.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double before = static_cast<double>(cum);
    cum += counts[i];
    if (static_cast<double>(cum) >= target) {
      const double lo = Histogram::bucket_lower(i);
      // The open-ended buckets interpolate toward the observed max, which
      // is exact, instead of toward an infinite (or zero-width) edge.
      double hi = Histogram::bucket_upper(i);
      if (!std::isfinite(hi) || hi > max) hi = std::max(max, lo);
      const double frac =
          counts[i] == 0
              ? 0.0
              : (target - before) / static_cast<double>(counts[i]);
      const double v = lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
      return max > 0.0 ? std::min(v, max) : v;
    }
  }
  return max;
}

// ------------------------------------------------------------------ Registry

Registry& Registry::global() {
  // Leaked singleton: instrument references taken from the global registry
  // must stay valid through static destruction (thread pools and servers
  // record from worker threads that may outlive main's locals).
  static Registry* g = new Registry();
  return *g;
}

Registry::Entry* Registry::find_or_create(InstrumentKind kind,
                                          std::string_view name,
                                          std::string_view help,
                                          Labels labels, bool allow_create,
                                          bool* created) {
  if (created != nullptr) *created = false;
  const std::scoped_lock lock(mutex_);
  for (const auto& e : entries_) {
    if (e->name == name && e->labels == labels) {
      if (e->kind != kind) {
        throw std::logic_error("obs::Registry: instrument '" +
                               std::string(name) +
                               "' already registered with a different kind");
      }
      return e.get();
    }
  }
  if (!allow_create) return nullptr;
  if (created != nullptr) *created = true;
  auto e = std::make_unique<Entry>();
  e->kind = kind;
  e->name = std::string(name);
  e->help = std::string(help);
  e->labels = std::move(labels);
  switch (kind) {
    case InstrumentKind::kCounter:
      e->counter = std::make_unique<Counter>();
      break;
    case InstrumentKind::kGauge:
      e->gauge = std::make_unique<Gauge>();
      break;
    case InstrumentKind::kHistogram:
      e->histogram = std::make_unique<Histogram>();
      break;
  }
  entries_.push_back(std::move(e));
  return entries_.back().get();
}

Counter& Registry::counter(std::string_view name, std::string_view help,
                           Labels labels) {
  return *find_or_create(InstrumentKind::kCounter, name, help,
                         std::move(labels))
              ->counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help,
                       Labels labels) {
  return *find_or_create(InstrumentKind::kGauge, name, help,
                         std::move(labels))
              ->gauge;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               Labels labels) {
  return *find_or_create(InstrumentKind::kHistogram, name, help,
                         std::move(labels))
              ->histogram;
}

std::size_t Registry::size() const {
  const std::scoped_lock lock(mutex_);
  return entries_.size();
}

InstrumentSnapshot Registry::snapshot_entry(const Entry& e) const {
  InstrumentSnapshot s;
  s.kind = e.kind;
  s.name = e.name;
  s.help = e.help;
  s.labels = e.labels;
  switch (e.kind) {
    case InstrumentKind::kCounter:
      s.value = static_cast<double>(e.counter->value());
      break;
    case InstrumentKind::kGauge:
      s.value = static_cast<double>(e.gauge->value());
      break;
    case InstrumentKind::kHistogram:
      s.hist = e.histogram->snapshot();
      s.value = static_cast<double>(s.hist.count);
      break;
  }
  return s;
}

// Both snapshot flavours collect bare Entry pointers under the registry
// mutex and do all the per-instrument work (histogram bucket reads, string
// copies, allocation) after releasing it.  Entries are registered once and
// never erased, and the vector holds them by unique_ptr, so a collected
// pointer stays valid without the lock — a slow exporter therefore never
// holds the registry against threads registering new instruments.  Per-
// value reads are atomic on the instruments themselves, so the aggregate
// is merely per-instrument (not cross-instrument) consistent — which was
// already true under the lock, since recording never took it.

std::vector<const Registry::Entry*> Registry::collect_entries() const {
  const std::scoped_lock lock(mutex_);
  std::vector<const Entry*> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.get());
  return out;
}

RegistrySnapshot Registry::snapshot() const {
  const std::vector<const Entry*> entries = collect_entries();
  RegistrySnapshot out;
  out.instruments.reserve(entries.size());
  for (const Entry* e : entries) out.instruments.push_back(snapshot_entry(*e));
  return out;
}

RegistrySnapshot Registry::snapshot(std::string_view key,
                                    std::string_view value) const {
  const std::vector<const Entry*> entries = collect_entries();
  RegistrySnapshot out;
  for (const Entry* e : entries) {
    for (const auto& [k, v] : e->labels) {
      if (k == key && v == value) {
        out.instruments.push_back(snapshot_entry(*e));
        break;
      }
    }
  }
  return out;
}

Registry::MergeResult Registry::merge_from(const RegistrySnapshot& snap,
                                           const Labels& extra_labels,
                                           std::size_t max_new_series) {
  // Exact double thresholds for the integer casts below: 2^64 and 2^63.
  constexpr double kCounterLimit = 18446744073709551616.0;
  constexpr double kGaugeLimit = 9223372036854775808.0;
  MergeResult res;
  for (const InstrumentSnapshot& s : snap.instruments) {
    // Snapshots arrive off the wire: a name or label key outside the
    // Prometheus identifier charset would be rendered verbatim into the
    // /metrics exposition (injecting fake lines), and a hostile double
    // would hit an out-of-range integer cast (UB).  Validate before any
    // series is resolved so a rejected instrument cannot mint one.
    bool ident_ok = is_valid_metric_name(s.name);
    for (const auto& [k, v] : s.labels) {
      ident_ok = ident_ok && is_valid_label_key(k);
    }
    if (!ident_ok) {
      ++res.dropped;
      continue;
    }
    std::int64_t gauge_level = 0;
    if (s.kind == InstrumentKind::kCounter &&
        (!(s.value >= 0.0) || s.value >= kCounterLimit)) {
      ++res.dropped;  // NaN, negative, or beyond uint64: the cast is UB
      continue;
    }
    if (s.kind == InstrumentKind::kGauge) {
      if (std::isnan(s.value)) {
        ++res.dropped;
        continue;
      }
      gauge_level = s.value >= kGaugeLimit
                        ? std::numeric_limits<std::int64_t>::max()
                    : s.value < -kGaugeLimit
                        ? std::numeric_limits<std::int64_t>::min()
                        : static_cast<std::int64_t>(s.value);
    }
    Labels labels = s.labels;
    // Never stack a duplicate key: a series that already carries one of the
    // extra labels (it was itself merged from a push once) keeps its
    // original identity.  Appending would mint a new series per merge and
    // an echo loop (a pusher snapshotting a registry it is merged into)
    // would grow the registry without bound.
    for (const auto& [key, value] : extra_labels) {
      bool present = false;
      for (const auto& have : labels) present = present || have.first == key;
      if (!present) labels.emplace_back(key, value);
    }
    bool created = false;
    Entry* e = find_or_create(s.kind, s.name, s.help, std::move(labels),
                              res.created < max_new_series, &created);
    if (e == nullptr) {
      ++res.dropped;  // would mint a series past the caller's budget
      continue;
    }
    res.created += created ? 1 : 0;
    switch (s.kind) {
      case InstrumentKind::kCounter:
        e->counter->add(static_cast<std::uint64_t>(s.value));
        break;
      case InstrumentKind::kGauge:
        e->gauge->set(gauge_level);
        break;
      case InstrumentKind::kHistogram:
        if (std::isfinite(s.hist.max)) {
          e->histogram->merge(s.hist);
        } else {
          // A pushed +inf max would win every CAS-max forever; keep the
          // bucket counts and let the real observed maxima stand.
          HistogramSnapshot clean = s.hist;
          clean.max = 0.0;
          e->histogram->merge(clean);
        }
        break;
    }
    ++res.merged;
  }
  return res;
}

bool is_valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':') {
      continue;
    }
    if (i > 0 && c >= '0' && c <= '9') continue;
    return false;
  }
  return true;
}

bool is_valid_label_key(std::string_view key) {
  if (key.empty()) return false;
  for (std::size_t i = 0; i < key.size(); ++i) {
    const char c = key[i];
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_') {
      continue;
    }
    if (i > 0 && c >= '0' && c <= '9') continue;
    return false;
  }
  return true;
}

const InstrumentSnapshot* RegistrySnapshot::find(
    std::string_view name, std::string_view session) const {
  for (const InstrumentSnapshot& s : instruments) {
    if (s.name != name) continue;
    if (session.empty()) return &s;
    for (const auto& [k, v] : s.labels) {
      if (k == "session" && v == session) return &s;
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------- Prometheus

void render_prometheus(std::ostream& out, const RegistrySnapshot& snapshot) {
  // The text format wants all series of one metric family grouped under a
  // single TYPE line: order by name (stable, so label sets keep insertion
  // order within a family).
  std::vector<const InstrumentSnapshot*> ordered;
  ordered.reserve(snapshot.instruments.size());
  for (const InstrumentSnapshot& s : snapshot.instruments) {
    ordered.push_back(&s);
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const InstrumentSnapshot* a,
                      const InstrumentSnapshot* b) { return a->name < b->name; });

  const auto* last_named = static_cast<const InstrumentSnapshot*>(nullptr);
  for (const InstrumentSnapshot* s : ordered) {
    const bool new_family = last_named == nullptr || last_named->name != s->name;
    last_named = s;
    switch (s->kind) {
      case InstrumentKind::kCounter:
        if (new_family) {
          if (!s->help.empty()) {
            out << "# HELP " << s->name << ' ' << escape_help(s->help) << '\n';
          }
          out << "# TYPE " << s->name << " counter\n";
        }
        out << s->name;
        write_labels(out, s->labels);
        out << ' ' << static_cast<std::uint64_t>(s->value) << '\n';
        break;
      case InstrumentKind::kGauge:
        if (new_family) {
          if (!s->help.empty()) {
            out << "# HELP " << s->name << ' ' << escape_help(s->help) << '\n';
          }
          out << "# TYPE " << s->name << " gauge\n";
        }
        out << s->name;
        write_labels(out, s->labels);
        out << ' ' << static_cast<std::int64_t>(s->value) << '\n';
        break;
      case InstrumentKind::kHistogram: {
        if (new_family) {
          if (!s->help.empty()) {
            out << "# HELP " << s->name << ' ' << escape_help(s->help) << '\n';
          }
          out << "# TYPE " << s->name << " summary\n";
        }
        static constexpr std::pair<const char*, double> kQuantiles[] = {
            {"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}, {"0.999", 0.999}};
        for (const auto& [label, q] : kQuantiles) {
          out << s->name;
          write_labels(out, s->labels, "quantile", label);
          out << ' ' << s->hist.quantile(q) << '\n';
        }
        out << s->name << "_count";
        write_labels(out, s->labels);
        out << ' ' << s->hist.count << '\n';
        out << s->name << "_max";
        write_labels(out, s->labels);
        out << ' ' << s->hist.max << '\n';
        break;
      }
    }
  }
}

}  // namespace protuner::obs
