// Stall flight recorder: a fixed-size ring of recent engine/server events
// for post-mortem debugging of exactly the pathologies the serving tier
// imputes around — dead clients, stragglers, protocol abuse (DESIGN.md §15).
//
// The recorder is the black box, not the dashboard: it stores the last N
// discrete events (round open/close, fetch park/serve, report, impute,
// deadline expiry, protocol error, ...) in a preallocated ring and is only
// ever read when something goes wrong — a SIGUSR1 from an operator, or the
// serving loop's watchdog noticing a round that stopped advancing.  The
// dump is a plain-text timeline on stderr (or any stream), newest state
// reconstructed from the surviving events, sorted by timestamp.
//
// Cost contract: record() never allocates — the ring is sized at
// construction and event slots are overwritten in place (newest wins).  It
// takes a plain mutex: flight events are per-round control-plane edges
// (park, impute, round transitions), orders of magnitude rarer than the
// per-fetch data plane, and the serving loop records from one thread
// anyway.  dump()/snapshot() take the same mutex and may allocate.
//
// Signal protocol: request_dump() only sets an atomic flag and is
// async-signal-safe; install_sigusr1_handler() arms SIGUSR1 to call it on
// the global recorder.  Whoever owns a serving loop polls
// consume_dump_request() and performs the actual (allocating, stream-
// writing) dump from normal context.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string_view>
#include <vector>

namespace protuner::obs {

struct FlightEvent {
  std::uint64_t ts_ns = 0;    ///< since the recorder's construction
  const char* kind = nullptr; ///< static string: "round/open", "fetch/park"...
  std::uint32_t rank = 0;
  std::uint64_t round = 0;
  double value = 0.0;         ///< kind-specific (reported time, T_k, ...)
  char tag[24] = {};          ///< session name, truncated, NUL-terminated
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder every built-in site records into when its
  /// owner was not given a specific one.  Never destroyed.
  static FlightRecorder& global();

  /// Appends one event (ring-overwrites the oldest when full).  No
  /// allocation; `kind` must have static storage duration, `session` is
  /// copied (truncated to the fixed tag width).
  void record(const char* kind, std::string_view session,
              std::uint32_t rank = 0, std::uint64_t round = 0,
              double value = 0.0);

  /// Events currently held, oldest first (already time-sorted: the ring is
  /// append-ordered under the mutex).
  std::vector<FlightEvent> snapshot() const;

  /// Events ever recorded (>= held: the excess was overwritten).
  std::uint64_t recorded() const;

  /// Writes the whole ring as a human-readable timeline.
  void dump(std::ostream& out) const;

  /// Empties the ring (tests).
  void clear();

  // ------------------------------------------------------- signal protocol
  /// Async-signal-safe: flags that a dump was requested.
  void request_dump() { dump_requested_.store(true, std::memory_order_relaxed); }
  /// True exactly once per request; the caller performs the dump.
  bool consume_dump_request() {
    return dump_requested_.exchange(false, std::memory_order_relaxed);
  }

  /// Arms SIGUSR1 to request_dump() on the global recorder.  Idempotent.
  static void install_sigusr1_handler();

 private:
  std::uint64_t now_ns() const;

  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<FlightEvent> ring_;  ///< fixed capacity, written in place
  std::uint64_t head_ = 0;         ///< events ever recorded (mod = slot)
  std::atomic<bool> dump_requested_{false};
};

}  // namespace protuner::obs
