// Heavy-tail-aware metrics registry.
//
// The paper's core statistical argument (§4–5) is that heavy-tailed
// performance variability breaks mean-based reasoning: a Pareto tail with
// α <= 2 has infinite variance, so "average latency" is a number that never
// converges.  The telemetry layer takes that seriously:
//
//   * Histograms are *log-bucketed*: one bucket per power of two from 2^-16
//     up to 2^40 (sized for nanosecond timings up to ~18 minutes, and equally
//     happy with simulated seconds), so a Pareto tail is resolved across
//     ~17 orders of magnitude instead of clipped into an overflow bin.
//   * Snapshots expose p50/p90/p99/p99.9/max — deliberately *no mean*.
//
// Hot-path contract: recording on a pre-registered instrument is a relaxed
// atomic add (histograms add one bucket increment and a CAS-max) with zero
// heap allocation, so the PR 4 zero-allocation steady-state step survives
// instrumentation.  Registry lookup/creation takes a mutex and allocates;
// it happens once, at component construction, never per step.
//
// Thread model: any number of threads may record concurrently with any
// number of snapshot readers.  All counters are relaxed atomics; a snapshot
// taken mid-record may be a few events behind, which is fine for telemetry
// (and race-free under TSan).
#pragma once

#include <array>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace protuner::obs {

/// Label key/value pairs qualifying an instrument (Prometheus-style), e.g.
/// {{"session", "gs2"}} or {{"tier", "exact"}}.  Order-sensitive: the same
/// pairs in a different order name a different instrument.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic event count.  add() is the hot path: one relaxed fetch_add.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, active sessions).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void sub(std::int64_t n = 1) {
    value_.fetch_sub(n, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Point-in-time copy of a histogram, with quantile estimation.  Quantiles
/// are interpolated linearly inside the containing power-of-two bucket, so
/// the relative error is bounded by the bucket ratio (2x) and is typically
/// far smaller; max is exact.
struct HistogramSnapshot {
  std::vector<std::uint64_t> counts;  ///< one per bucket, underflow first
  std::uint64_t count = 0;            ///< total recorded observations
  double max = 0.0;                   ///< exact largest recorded value

  /// Value below which a fraction q of the observations fall; 0 when empty.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p90() const { return quantile(0.90); }
  double p99() const { return quantile(0.99); }
  double p999() const { return quantile(0.999); }
};

/// Log-bucketed histogram: bucket i >= 1 covers [2^(kMinExp+i-1),
/// 2^(kMinExp+i)); bucket 0 collects everything below 2^kMinExp (including
/// zero, negatives and NaN — telemetry never throws); the last bucket is
/// open-ended.  There is intentionally no sum and therefore no mean: under
/// the paper's infinite-variance noise a mean is a lie, quantiles are not.
class Histogram {
 public:
  static constexpr int kMinExp = -16;
  static constexpr int kMaxExp = 40;
  /// Underflow bucket + one per exponent in [kMinExp, kMaxExp].
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>(kMaxExp - kMinExp + 2);

  /// Hot path: one relaxed add plus a relaxed CAS-max (the total count is
  /// derived from the bucket sum at snapshot time).  No allocation.
  void record(double v) {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    // Non-negative doubles order like their bit patterns, so the running
    // max is a CAS loop over raw bits.
    const double clamped = v > 0.0 ? v : 0.0;
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(clamped));
    __builtin_memcpy(&bits, &clamped, sizeof(bits));
    std::uint64_t cur = max_bits_.load(std::memory_order_relaxed);
    while (bits > cur && !max_bits_.compare_exchange_weak(
                             cur, bits, std::memory_order_relaxed)) {
    }
  }

  /// Folds a snapshot (typically shipped from another process) into this
  /// histogram: bucket-wise relaxed adds plus a CAS max-of-max, so merging
  /// is associative, commutative and safe concurrently with record().
  void merge(const HistogramSnapshot& s);

  /// Bucket that record(v) lands in.  Exposed for tests and exporters.
  static std::size_t bucket_index(double v);
  /// Inclusive lower edge of bucket i (0 for the underflow bucket).
  static double bucket_lower(std::size_t i);
  /// Exclusive upper edge of bucket i (+inf for the last bucket).
  static double bucket_upper(std::size_t i);

  HistogramSnapshot snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> max_bits_{0};
};

enum class InstrumentKind { kCounter, kGauge, kHistogram };

/// One instrument's identity plus a point-in-time value.
struct InstrumentSnapshot {
  InstrumentKind kind = InstrumentKind::kCounter;
  std::string name;
  std::string help;
  Labels labels;
  double value = 0.0;       ///< counter / gauge reading
  HistogramSnapshot hist;   ///< populated for kHistogram
};

struct RegistrySnapshot {
  std::vector<InstrumentSnapshot> instruments;

  /// First instrument with this exact name (and, when given, label value for
  /// key "session"); nullptr when absent.  Convenience for dashboards/tests.
  const InstrumentSnapshot* find(std::string_view name,
                                 std::string_view session = {}) const;
};

/// Process-wide (or component-owned) instrument registry.  counter() /
/// gauge() / histogram() return a reference that stays valid for the
/// registry's lifetime; calling them again with the same (name, labels)
/// returns the same instrument, and a kind mismatch throws std::logic_error.
/// These lookups lock and allocate — do them once at construction time and
/// keep the reference; record through the reference on the hot path.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The default process-wide registry every built-in subsystem records
  /// into (database tiers, clean-time cache, thread pool, round engine,
  /// harmony servers).  Never destroyed, so instrument references taken
  /// from it are valid for the process lifetime.
  static Registry& global();

  Counter& counter(std::string_view name, std::string_view help = {},
                   Labels labels = {});
  Gauge& gauge(std::string_view name, std::string_view help = {},
               Labels labels = {});
  Histogram& histogram(std::string_view name, std::string_view help = {},
                       Labels labels = {});

  std::size_t size() const;

  /// Point-in-time copy of every instrument.  Not stop-the-world: the
  /// registry mutex is held only to collect the (pointer-stable) entry
  /// list; bucket reads, string copies and allocation happen after
  /// release, so a slow consumer never blocks instrument registration.
  RegistrySnapshot snapshot() const;
  /// Only the instruments carrying label `key` == `value` (the per-session
  /// filter harmony::Server::metrics_snapshot uses).
  RegistrySnapshot snapshot(std::string_view key,
                            std::string_view value) const;

  /// Outcome of one merge_from call: how many instruments folded in, how
  /// many new series the call minted, and how many it refused.
  struct MergeResult {
    std::size_t merged = 0;   ///< instruments folded into the registry
    std::size_t created = 0;  ///< series newly created by this call
    std::size_t dropped = 0;  ///< rejected: bad identifier/value, or budget
  };

  /// Folds another registry's snapshot into this one — the server-side half
  /// of the client telemetry push (DESIGN.md §15).  Each incoming instrument
  /// is resolved (created on first sight) under its own labels plus
  /// `extra_labels` — e.g. {{"client", "3"}} — then merged: counters add
  /// their value (senders ship deltas, so repeated pushes accumulate),
  /// gauges take the incoming level, histograms merge bucket-wise with
  /// max-of-max.  An extra-label key the incoming series already carries is
  /// not appended again, so re-merging an already-merged series can never
  /// mint new identities (guards against echo loops when a pusher snapshots
  /// a registry it is merged into).  Merging is associative and commutative
  /// across senders and safe concurrently with local recording.  A kind
  /// mismatch with an already-registered instrument throws std::logic_error.
  ///
  /// Snapshots may arrive off the wire, so nothing in one is trusted:
  /// an instrument whose name or label keys fall outside the Prometheus
  /// identifier charset is dropped (it would be emitted verbatim by
  /// render_prometheus), a counter delta that is NaN, negative, or beyond
  /// uint64 range is dropped (the cast would be UB), a gauge level is
  /// clamped into int64 range (NaN dropped), and a non-finite histogram max
  /// is ignored.  `max_new_series` bounds how many series this one call may
  /// create — merging into existing series is never limited; an instrument
  /// that would mint a series past the budget counts as dropped.
  MergeResult merge_from(const RegistrySnapshot& snap,
                         const Labels& extra_labels = {},
                         std::size_t max_new_series = SIZE_MAX);

 private:
  struct Entry {
    InstrumentKind kind;
    std::string name;
    std::string help;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  /// Resolves (name, labels) to its entry.  With `allow_create` false a
  /// missing entry returns nullptr instead of being minted; `created`
  /// (optional) reports whether this call registered the entry.
  Entry* find_or_create(InstrumentKind kind, std::string_view name,
                        std::string_view help, Labels labels,
                        bool allow_create = true, bool* created = nullptr);
  InstrumentSnapshot snapshot_entry(const Entry& e) const;
  std::vector<const Entry*> collect_entries() const;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;  ///< pointer-stable storage
};

/// True when `name` matches the Prometheus metric-name charset
/// [a-zA-Z_:][a-zA-Z0-9_:]*.  Anything else written verbatim into the text
/// exposition (spaces, quotes, newlines) corrupts it or injects fake series.
bool is_valid_metric_name(std::string_view name);

/// True when `key` matches the Prometheus label-key charset
/// [a-zA-Z_][a-zA-Z0-9_]* (no colons, those are reserved for metric names).
bool is_valid_label_key(std::string_view key);

/// Renders a snapshot in the Prometheus v0 text exposition format
/// (text/plain; version=0.0.4).  Counters and gauges map directly;
/// histograms are exposed as summaries — quantile series for
/// 0.5/0.9/0.99/0.999 plus `<name>_count` and `<name>_max` — because the
/// registry refuses to carry a mean (`_sum`) for heavy-tailed data.
void render_prometheus(std::ostream& out, const RegistrySnapshot& snapshot);

}  // namespace protuner::obs
