// Cheap monotonic tick source for latency telemetry.
//
// The serving hot path stamps every fetch/report twice (entry + exit) to
// feed the latency histograms; at production op rates the stamping itself
// becomes a first-order cost — clock_gettime via the vDSO is ~25ns, four
// of them per fetch/report pair is more than the entire protocol work.
// On x86 the TSC is invariant (constant rate, monotonic per-core and
// synchronized across cores on anything modern), so a raw rdtsc (~7ns)
// plus one lazily-calibrated ticks→ns factor gives the same histograms at
// a third of the cost.  Telemetry only: deadlines and round accounting
// stay on std::chrono::steady_clock — a latency histogram tolerates the
// TSC's ppm-level calibration error, a deadline contract should not.
//
// Non-x86 (and any build where rdtsc is unavailable) falls back to
// steady_clock ticks with the factor derived from its period, so callers
// never branch: LatencyClock::now() for stamps, to_ns() for durations.
#pragma once

#include <chrono>
#include <cstdint>

namespace protuner::obs {

class LatencyClock {
 public:
  /// Raw tick stamp.  Only differences are meaningful, and only after
  /// conversion through to_ns().
  static std::uint64_t now() {
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_ia32_rdtsc();
#else
    return static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
#endif
  }

  /// Converts a tick *difference* to nanoseconds.
  static double to_ns(std::uint64_t ticks) {
    return static_cast<double>(ticks) * ns_per_tick();
  }

  /// Lazily calibrated ticks→ns factor (~200µs one-time spin against
  /// steady_clock on first use; call once at construction time to keep it
  /// off the first request's latency).  Thread-safe.
  static double ns_per_tick();

 private:
  static double calibrate();
};

}  // namespace protuner::obs
