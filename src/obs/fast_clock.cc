#include "obs/fast_clock.h"

namespace protuner::obs {

double LatencyClock::ns_per_tick() {
  static const double factor = calibrate();
  return factor;
}

double LatencyClock::calibrate() {
#if defined(__x86_64__) || defined(__i386__)
  using clock = std::chrono::steady_clock;
  const auto s0 = clock::now();
  const std::uint64_t t0 = now();
  // Long enough that vDSO clock resolution and preemption jitter are ppm-
  // level; short enough to be invisible at process start.
  while (clock::now() - s0 < std::chrono::microseconds(200)) {
  }
  const auto s1 = clock::now();
  const std::uint64_t t1 = now();
  const double ns = std::chrono::duration<double, std::nano>(s1 - s0).count();
  const double dticks = static_cast<double>(t1 - t0);
  const double factor = ns / dticks;
  // A TSC slower than 1MHz or faster than 100GHz means the counter is not
  // behaving (emulator, stopped TSC): treat ticks as nanoseconds rather
  // than publish garbage latencies.
  if (!(factor > 1e-2) || !(factor < 1e3)) return 1.0;
  return factor;
#else
  using period = std::chrono::steady_clock::period;
  return 1e9 * static_cast<double>(period::num) /
         static_cast<double>(period::den);
#endif
}

}  // namespace protuner::obs
