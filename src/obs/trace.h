// Scoped-span tracing with per-thread ring buffers and a Chrome trace_event
// exporter.
//
// Spans mark timed regions of the tuning stack — the round lifecycle
// (Assigning -> Collecting -> Advancing), per-rank fetch/report in the
// Harmony front end, database interpolation misses, PRO's expansion check
// and shrink — and export as Chrome trace JSON loadable in chrome://tracing
// or Perfetto (ui.perfetto.dev).
//
// Cost contract: tracing is off by default and *free when disabled* — a
// ScopedSpan on a disabled tracer is one relaxed atomic load and nothing
// else.  When enabled, each span is two steady_clock reads plus a write
// into a preallocated per-thread ring (no heap allocation after the ring
// exists; the ring is created on a thread's first recorded span).  Rings
// wrap: the newest spans win, old ones are silently dropped — telemetry
// never blocks or grows without bound.
//
// Cross-process correlation (DESIGN.md §15): a TraceContext pairs a trace
// id (one tuning round, fleet-wide) with a span id (one timed region).
// The context is thread-local; whoever knows which round the current work
// belongs to (the round engine when it opens a round, the network client
// when a fetch reply names its round) installs it, and every span recorded
// underneath inherits the ids.  Merging the per-process JSON exports by
// trace id then reconstructs the fleet-wide round timeline (trace_merge).
//
// Sampling: the OBS_TRACE environment variable configures the global
// tracer.  Unset or 0 disables tracing; N >= 1 enables it and records one
// span in N per thread (OBS_TRACE=1 records everything).
//
// Thread model: recording is wait-free per thread (each thread owns its
// ring).  snapshot()/write_chrome_trace() may run concurrently with
// recording and see a consistent prefix; clear()/configure() must not race
// with recording (quiesce first — stop drivers or disable the tracer).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <vector>

namespace protuner::obs {

/// Cross-process correlation ids.  trace_id 0 means "no context".
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  explicit operator bool() const { return trace_id != 0; }
};

/// The calling thread's current context (zero when none installed).
TraceContext current_trace_context();
/// Installs `ctx` as the calling thread's context (zero ctx clears it).
void set_current_trace_context(const TraceContext& ctx);

/// RAII context installer: saves the previous context and restores it on
/// scope exit, so nested rounds / nested client calls stack correctly.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx)
      : prev_(current_trace_context()) {
    set_current_trace_context(ctx);
  }
  ~ScopedTraceContext() { set_current_trace_context(prev_); }
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext prev_;
};

struct TraceSpan {
  /// Static-storage name (string literal by convention): the tracer stores
  /// the pointer, so it must outlive the tracer.
  const char* name = nullptr;
  std::uint64_t start_ns = 0;  ///< since the tracer's epoch
  std::uint64_t dur_ns = 0;
  std::uint64_t trace_id = 0;  ///< cross-process correlation (0 = none)
  std::uint64_t span_id = 0;
  std::uint32_t tid = 0;   ///< tracer-local thread id (1-based)
  std::uint16_t depth = 0; ///< nesting depth among *recorded* spans, 0 = top
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 16384;

  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer every built-in span site records into.
  /// Configured once, on first use, from OBS_TRACE (see file comment).
  static Tracer& global();

  /// Enables/disables recording and sets the sampling rate (record one
  /// span in `sample_every`) and the per-thread ring capacity (applies to
  /// rings created after the call).  Not safe concurrently with recording.
  void configure(bool enabled, std::uint64_t sample_every = 1,
                 std::size_t ring_capacity = kDefaultCapacity);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Nanoseconds since the tracer's construction (steady clock).
  std::uint64_t now_ns() const;

  /// Copies out every span currently held, all threads interleaved in ring
  /// order (chronological per thread).
  std::vector<TraceSpan> snapshot() const;

  /// Spans recorded minus spans still held: how much the rings wrapped.
  std::size_t dropped() const;

  /// Empties every ring.  Not safe concurrently with recording.
  void clear();

  /// Chrome trace_event JSON ("X" complete events, microsecond timestamps):
  /// loadable in chrome://tracing and Perfetto.  Events are sorted by start
  /// timestamp — ring wrap makes raw ring order non-monotonic, which
  /// confuses trace viewers.  `pid` labels every event (one process per
  /// exported file; trace_merge keeps them distinct when stitching).
  void write_chrome_trace(std::ostream& out, std::uint32_t pid = 1) const;

  /// One thread's span storage.  Public only so the implementation's
  /// thread-local cache can name it; not part of the user-facing API.
  struct Ring {
    Ring(std::size_t capacity, std::uint32_t tid);
    std::vector<TraceSpan> spans;     ///< fixed capacity, reused in place
    std::atomic<std::uint64_t> head{0};  ///< spans ever pushed (mod = slot)
    std::uint64_t sample_counter = 0;    ///< owner-thread only
    std::uint16_t depth = 0;             ///< owner-thread only
    std::uint32_t tid = 0;
  };

 private:
  friend class ScopedSpan;

  /// The calling thread's ring, created (with a lock + allocation) on
  /// first use and cached thread-locally afterwards.
  Ring& thread_ring();
  void push(Ring& ring, const char* name, std::uint64_t start_ns,
            std::uint64_t dur_ns, const TraceContext& ctx);

  const std::uint64_t id_;  ///< distinguishes tracer instances in TLS cache
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> sample_every_{1};
  std::size_t ring_capacity_ = kDefaultCapacity;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mutex_;              ///< guards rings_ growth + export
  std::vector<std::unique_ptr<Ring>> rings_;
  std::uint32_t next_tid_ = 1;
};

/// RAII span: times its own lifetime and records it into `tracer` on
/// destruction.  Inert (one relaxed load) when the tracer is disabled or
/// the sampler skips this span.  The span inherits the thread's current
/// TraceContext at construction; set_context() overrides it for callers
/// that only learn the ids mid-span (a client parsing a traced reply).
class ScopedSpan {
 public:
  ScopedSpan(Tracer& tracer, const char* name) {
    if (!tracer.enabled()) return;
    begin(tracer, name);
  }
  ~ScopedSpan() {
    if (ring_ != nullptr) finish();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// True when this span is actually being recorded (enabled + sampled).
  bool active() const { return ring_ != nullptr; }

  /// Overrides the context this span will be recorded with.
  void set_context(const TraceContext& ctx) { ctx_ = ctx; }

 private:
  void begin(Tracer& tracer, const char* name);
  void finish();

  Tracer* tracer_ = nullptr;
  Tracer::Ring* ring_ = nullptr;
  const char* name_ = nullptr;
  std::uint64_t start_ = 0;
  TraceContext ctx_;
};

}  // namespace protuner::obs
