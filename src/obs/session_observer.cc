#include "obs/session_observer.h"

#include <utility>

namespace protuner::obs {

namespace {

Labels session_labels(const std::string& session) {
  if (session.empty()) return {};
  return {{"session", session}};
}

}  // namespace

ObservingSessionObserver::ObservingSessionObserver(std::string session,
                                                   Registry* registry,
                                                   core::SessionObserver* next)
    : steps_((registry != nullptr ? *registry : Registry::global())
                 .counter("protuner_session_steps_total",
                          "Tuning steps observed on the session seam",
                          session_labels(session))),
      converged_((registry != nullptr ? *registry : Registry::global())
                     .counter("protuner_session_converged_total",
                              "Sessions that reported convergence",
                              session_labels(session))),
      step_cost_((registry != nullptr ? *registry : Registry::global())
                     .histogram("protuner_step_cost",
                                "Per-step cost T_k (simulated seconds)",
                                session_labels(session))),
      rank_time_((registry != nullptr ? *registry : Registry::global())
                     .histogram("protuner_rank_time",
                                "Individual per-rank observed times "
                                "(simulated seconds)",
                                session_labels(session))),
      next_(next) {}

void ObservingSessionObserver::on_step(std::size_t step,
                                       std::span<const core::Point> configs,
                                       std::span<const double> times,
                                       double cost) {
  steps_.add();
  step_cost_.record(cost);
  for (const double t : times) rank_time_.record(t);
  if (next_ != nullptr) next_->on_step(step, configs, times, cost);
}

void ObservingSessionObserver::on_converged(std::size_t step,
                                            const core::Point& best) {
  converged_.add();
  if (next_ != nullptr) next_->on_converged(step, best);
}

}  // namespace protuner::obs
