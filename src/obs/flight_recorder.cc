#include "obs/flight_recorder.h"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <ostream>

namespace protuner::obs {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : epoch_(std::chrono::steady_clock::now()),
      ring_(capacity > 0 ? capacity : 1) {}

FlightRecorder& FlightRecorder::global() {
  // Leaked: serving loops and signal handlers may touch it during static
  // destruction.
  static FlightRecorder* g = new FlightRecorder();
  return *g;
}

std::uint64_t FlightRecorder::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void FlightRecorder::record(const char* kind, std::string_view session,
                            std::uint32_t rank, std::uint64_t round,
                            double value) {
  const std::uint64_t ts = now_ns();
  const std::scoped_lock lock(mutex_);
  FlightEvent& e = ring_[head_ % ring_.size()];
  ++head_;
  e.ts_ns = ts;
  e.kind = kind;
  e.rank = rank;
  e.round = round;
  e.value = value;
  const std::size_t n = session.size() < sizeof(e.tag) - 1
                            ? session.size()
                            : sizeof(e.tag) - 1;
  std::memcpy(e.tag, session.data(), n);
  e.tag[n] = '\0';
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  const std::scoped_lock lock(mutex_);
  std::vector<FlightEvent> out;
  const std::size_t cap = ring_.size();
  const std::uint64_t held = head_ < cap ? head_ : cap;
  out.reserve(static_cast<std::size_t>(held));
  for (std::uint64_t i = head_ - held; i < head_; ++i) {
    out.push_back(ring_[i % cap]);
  }
  return out;
}

std::uint64_t FlightRecorder::recorded() const {
  const std::scoped_lock lock(mutex_);
  return head_;
}

void FlightRecorder::dump(std::ostream& out) const {
  const std::vector<FlightEvent> events = snapshot();
  const std::uint64_t total = recorded();
  out << "--- protuner flight recorder: " << events.size() << " event(s) held, "
      << total << " recorded ---\n";
  for (const FlightEvent& e : events) {
    char line[160];
    std::snprintf(line, sizeof line,
                  "[%12.6fms] %-18s session=%-16s rank=%-6u round=%-8llu "
                  "value=%g",
                  static_cast<double>(e.ts_ns) / 1e6,
                  e.kind != nullptr ? e.kind : "?", e.tag, e.rank,
                  static_cast<unsigned long long>(e.round), e.value);
    out << line << '\n';
  }
  out << "--- end of flight recorder dump ---\n";
  out.flush();
}

void FlightRecorder::clear() {
  const std::scoped_lock lock(mutex_);
  head_ = 0;
}

namespace {

extern "C" void protuner_sigusr1_handler(int) {
  // Only an atomic store: the owning loop performs the dump from normal
  // context on its next iteration.
  FlightRecorder::global().request_dump();
}

}  // namespace

void FlightRecorder::install_sigusr1_handler() {
  static std::once_flag once;
  std::call_once(once, [] {
    // Construct the global recorder now: a signal must never be the first
    // caller of a function-local static's initialization.
    FlightRecorder::global();
    struct sigaction sa{};
    sa.sa_handler = &protuner_sigusr1_handler;
    ::sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    ::sigaction(SIGUSR1, &sa, nullptr);
  });
}

}  // namespace protuner::obs
