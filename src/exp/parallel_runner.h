// Parallel experiment execution: run the repetitions of a figure/ablation
// harness across a thread pool with results that are bit-identical to the
// serial run.
//
// The repetitions of every harness in bench/ are independent simulations
// distinguished only by their RNG seed — exactly the "replications are
// embarrassingly parallel" structure that parallel ranking-and-selection
// systems exploit.  run_repetitions() gives each repetition
//   * its index `rep`,
//   * an independent RNG stream split from one base seed via
//     util::Rng::jump (disjoint subsequences of the xoshiro orbit), and
//   * a 64-bit `seed` (the first draw of that stream) for components that
//     take an integer seed,
// executes them across a util::ThreadPool sized by the REPRO_THREADS
// environment knob (default: hardware_concurrency), and returns the per-rep
// results **in repetition order**.  Because the per-rep inputs are
// precomputed serially and the merge is ordered, any aggregate the caller
// folds over the returned vector is bit-identical for every thread count —
// including the serial REPRO_THREADS=1 run.
//
// Requirements on `fn`: it must not touch mutable state shared across
// repetitions except through thread-safe components (gs2::Database's
// interpolation cache is; the stateless noise models are).
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace protuner::exp {

/// Worker count used when the caller passes `threads == 0`: the
/// REPRO_THREADS environment variable when set to a positive integer, else
/// std::thread::hardware_concurrency (never less than 1).
unsigned default_threads();

/// Everything one repetition may depend on.  Deterministic function of
/// (base_seed, rep) only — never of thread scheduling.
struct RepContext {
  long rep = 0;            ///< repetition index, 0-based
  std::uint64_t seed = 0;  ///< per-rep integer seed (first draw of `rng`)
  util::Rng rng;           ///< independent stream, split from the base seed
};

namespace detail {
/// Executes body(rep) for rep in [0, n) across `threads` workers (resolved
/// via default_threads() when 0; serial in-place when the resolved count is
/// 1 or n < 2).  Blocks until all complete; rethrows the lowest-rep
/// exception, if any.
void run_indexed(long n, unsigned threads,
                 const std::function<void(long)>& body);

/// The per-rep contexts for `n` repetitions of `base_seed`, in rep order.
std::vector<RepContext> make_contexts(long n, std::uint64_t base_seed);
}  // namespace detail

/// Runs `fn(ctx)` for each of `n` repetitions and returns the results in
/// repetition order.  `threads == 0` resolves via default_threads().  If
/// any repetition throws, the exception of the lowest-numbered failing
/// repetition is rethrown after all repetitions finish.
template <typename Fn>
auto run_repetitions(long n, std::uint64_t base_seed, Fn&& fn,
                     unsigned threads = 0)
    -> std::vector<std::invoke_result_t<Fn&, const RepContext&>> {
  using R = std::invoke_result_t<Fn&, const RepContext&>;
  static_assert(!std::is_void_v<R>,
                "run_repetitions requires fn to return the per-rep result");
  std::vector<RepContext> ctx = detail::make_contexts(n, base_seed);
  std::vector<R> out(static_cast<std::size_t>(n < 0 ? 0 : n));
  detail::run_indexed(n, threads, [&](long rep) {
    const auto i = static_cast<std::size_t>(rep);
    out[i] = fn(static_cast<const RepContext&>(ctx[i]));
  });
  return out;
}

/// Convenience fold: sums fn(ctx).value contributions in repetition order.
/// Equivalent to running serially and accumulating — kept for harnesses
/// that only need a scalar mean.
template <typename Fn>
double mean_over_repetitions(long n, std::uint64_t base_seed, Fn&& fn,
                             unsigned threads = 0) {
  const auto vals =
      run_repetitions(n, base_seed, std::forward<Fn>(fn), threads);
  double acc = 0.0;
  for (const double v : vals) acc += v;
  return n > 0 ? acc / static_cast<double>(n) : 0.0;
}

}  // namespace protuner::exp
