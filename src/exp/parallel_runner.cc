#include "exp/parallel_runner.h"

#include <algorithm>
#include <thread>

#include "util/env.h"
#include "util/thread_pool.h"

namespace protuner::exp {

unsigned default_threads() {
  const long env = util::env_long("REPRO_THREADS", 0);
  if (env > 0) return static_cast<unsigned>(env);
  return std::max(1u, std::thread::hardware_concurrency());
}

namespace detail {

std::vector<RepContext> make_contexts(long n, std::uint64_t base_seed) {
  std::vector<RepContext> ctx;
  if (n <= 0) return ctx;
  ctx.resize(static_cast<std::size_t>(n));
  // One walker jumps down the xoshiro orbit; each repetition receives the
  // stream at its jump point (split(k) == k+1 jumps, computed iteratively
  // so building n contexts is O(n) rather than O(n^2) jumps).
  util::Rng walker(base_seed);
  for (long rep = 0; rep < n; ++rep) {
    walker.jump();
    auto& c = ctx[static_cast<std::size_t>(rep)];
    c.rep = rep;
    c.rng = walker;
    c.seed = c.rng();  // first draw; c.rng continues past it
  }
  return ctx;
}

void run_indexed(long n, unsigned threads,
                 const std::function<void(long)>& body) {
  if (n <= 0) return;
  if (threads == 0) threads = default_threads();
  threads = static_cast<unsigned>(
      std::min<long>(n, static_cast<long>(threads)));

  if (threads <= 1) {
    for (long rep = 0; rep < n; ++rep) body(rep);
    return;
  }

  // One exception slot per repetition: after all tasks complete, rethrow
  // the lowest-rep failure so the error the caller sees does not depend on
  // scheduling.
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));
  {
    util::ThreadPool pool(threads);
    for (long rep = 0; rep < n; ++rep) {
      pool.submit([rep, &body, &errors] {
        try {
          body(rep);
        } catch (...) {
          errors[static_cast<std::size_t>(rep)] = std::current_exception();
        }
      });
    }
    // ThreadPool's destructor drains the queue and joins.
  }
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace detail
}  // namespace protuner::exp
