// Multi-sample estimators (paper Section 5).
//
// Under performance variability a single observation of f(v) is unreliable.
// The conventional remedy — averaging K samples — fails when the noise is
// heavy-tailed (infinite variance).  The paper's remedy is the minimum
// operator: min(y_1..y_K) converges to f(v) + n_min(v), and for Pareto noise
// the min of K samples is Pareto(K alpha) — light-tailed once K > 1/alpha.
#pragma once

#include <span>
#include <string>

namespace protuner::core {

enum class EstimatorKind {
  kMin,     ///< the paper's choice: resilient to heavy tails
  kMean,    ///< conventional; diverges under infinite variance
  kMedian,  ///< robust middle ground (not studied in the paper; ablation)
  kFirst,   ///< single-sample: K forced to 1 behaviourally
};

/// Reduces K observations of the same configuration to one estimate.
double reduce_samples(EstimatorKind kind, std::span<const double> samples);

std::string estimator_name(EstimatorKind kind);

}  // namespace protuner::core
