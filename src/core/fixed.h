// A non-tuning strategy that pins every rank to one configuration.  Used by
// the variability studies (Fig. 3 traces) and as the "no tuning" baseline.
#pragma once

#include "core/strategy.h"

namespace protuner::core {

class FixedStrategy final : public TuningStrategy {
 public:
  explicit FixedStrategy(Point config) : config_(std::move(config)) {}

  void start(std::size_t ranks) override { ranks_ = ranks; }

  StepProposal propose() override {
    StepProposal p;
    p.configs.assign(ranks_, config_);
    return p;
  }

  void propose_into(std::vector<Point>& out) override {
    // Copy-assign into recycled capacity: after the first round the fixed
    // assignment is republished with zero allocations.
    out.resize(ranks_);
    for (Point& slot : out) slot = config_;
  }

  void observe(std::span<const double>) override {}
  const Point& best_point() const override { return config_; }
  double best_estimate() const override { return 0.0; }
  bool converged() const override { return true; }
  std::string name() const override { return "Fixed"; }

 private:
  Point config_;
  std::size_t ranks_ = 1;
};

}  // namespace protuner::core
