// Parallel compass (coordinate) search — another member of the Generating
// Set Search family (Kolda, Lewis, Torczon 2003) the paper situates PRO in.
// Each iteration polls the 2N axial neighbours of the incumbent at the
// current step size, all in one parallel round; success moves the
// incumbent, failure halves the step.  A useful second GSS reference point
// for the algorithm-comparison benches.
#pragma once

#include "core/parameter_space.h"
#include "core/strategy.h"

namespace protuner::core {

struct CompassOptions {
  /// Initial step as a fraction of each parameter range.
  double initial_step_fraction = 0.25;
  /// Step-size floor (relative) below which the search declares convergence.
  double min_step_fraction = 1e-3;
  int samples = 1;
};

class CompassStrategy final : public TuningStrategy {
 public:
  CompassStrategy(ParameterSpace space, CompassOptions opts);

  void start(std::size_t ranks) override;
  StepProposal propose() override;
  void propose_into(std::vector<Point>& out) override;
  void observe(std::span<const double> times) override;
  const Point& best_point() const override { return incumbent_; }
  double best_estimate() const override { return incumbent_value_; }
  bool converged() const override { return converged_; }
  std::string name() const override { return "CompassSearch"; }

 private:
  std::vector<Point> poll_points() const;
  void shrink_step();

  ParameterSpace space_;
  CompassOptions opts_;
  std::size_t ranks_ = 1;
  std::size_t active_slots_ = 0;

  Point incumbent_;
  double incumbent_value_ = 0.0;
  bool incumbent_known_ = false;
  std::vector<double> step_;  ///< per-axis absolute step
  std::vector<Point> pending_;
  std::vector<std::vector<double>> pending_samples_;
  int samples_done_ = 0;
  bool measuring_incumbent_ = true;
  bool converged_ = false;
};

}  // namespace protuner::core
