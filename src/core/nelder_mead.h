// Nelder-Mead simplex — the baseline the paper replaces (§3.1), as used in
// the original Active Harmony system.
//
// Standard moves on the line v_N + alpha (c - v_N) through the centroid c of
// the N best vertices (the paper's alpha in {0.5, 2, 3} corresponds to
// inside contraction, reflection and expansion).  Inherently sequential:
// one evaluation per application time step.  It is allowed to deform the
// simplex arbitrarily, which is precisely the degeneracy weakness the paper
// criticises — degenerate() on the simplex exposes it for the tests.
#pragma once

#include "core/batch_state.h"
#include "core/parameter_space.h"
#include "core/simplex.h"
#include "core/strategy.h"

namespace protuner::core {

struct NelderMeadOptions {
  double initial_size = 0.2;
  int samples = 1;
  EstimatorKind estimator = EstimatorKind::kMin;
  /// Iteration cap after which the strategy freezes on its best vertex; 0
  /// disables.  NM has no reliable convergence certificate (§3.1), so the
  /// session otherwise keeps paying shrink steps forever.
  std::size_t max_iterations = 0;
};

class NelderMeadStrategy final : public TuningStrategy {
 public:
  NelderMeadStrategy(ParameterSpace space, NelderMeadOptions opts);

  void start(std::size_t ranks) override;
  StepProposal propose() override;
  void observe(std::span<const double> times) override;
  const Point& best_point() const override { return simplex_.best(); }
  double best_estimate() const override { return simplex_.best_value(); }
  bool converged() const override { return frozen_; }
  std::string name() const override;

  std::size_t iterations() const { return iterations_; }
  const Simplex& simplex() const { return simplex_; }

 private:
  enum class Phase {
    kInitEval,
    kReflect,
    kExpand,
    kContract,
    kShrinkEval,
    kDone,
  };

  void begin_batch(std::vector<Point> pts);
  void on_batch_done();
  void start_iteration();
  Point centroid_excluding_worst() const;
  Point along(const Point& centroid, double alpha) const;
  void accept_worst_replacement(const Point& p, double v);

  ParameterSpace space_;
  NelderMeadOptions opts_;

  Simplex simplex_;
  Phase phase_ = Phase::kInitEval;
  BatchState batch_;
  std::size_t ranks_ = 1;
  std::size_t active_slots_ = 0;

  Point centroid_;
  Point reflect_point_;
  double reflect_value_ = 0.0;

  bool frozen_ = false;
  std::size_t iterations_ = 0;
};

}  // namespace protuner::core
