// The clean (noise-free) performance function f(v) seen by the simulated
// cluster.  Real deployments measure f implicitly by running the program;
// the controlled studies in the paper (and here) drive the optimizers
// against a measured database or a synthetic surface plus a noise model.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>

#include "core/types.h"

namespace protuner::core {

/// Deterministic mapping from configuration to idle-system runtime per
/// application iteration.  Implementations: gs2::Database, the synthetic
/// test surfaces below, or any user lambda via FunctionLandscape.
class Landscape {
 public:
  virtual ~Landscape() = default;

  /// Idle-system time of one application iteration at configuration x.
  /// Must be strictly positive.
  virtual double clean_time(const Point& x) const = 0;

  /// Batch evaluation: out[i] = clean_time(xs[i]).  Candidates arrive
  /// n-at-a-time in an SPMD step (one per rank), so substrates that can
  /// amortize work across a batch (gs2::Database: one cache probe, deduped
  /// misses, shared scratch) override this; the default is the scalar loop
  /// and is always equivalent.  `out.size()` must equal `xs.size()`.
  virtual void clean_times(std::span<const Point> xs,
                           std::span<double> out) const;

  /// Mutation counter: changes whenever clean_time() results may change.
  /// Immutable landscapes (everything here except gs2::Database, which can
  /// absorb new measurements) keep the default constant 0.  Evaluators use
  /// it to reuse clean times across steps when the assignment repeats —
  /// the dominant shape of a converged tuning loop.
  virtual std::uint64_t version() const { return 0; }

  virtual std::string name() const = 0;
};

using LandscapePtr = std::shared_ptr<const Landscape>;

/// Wraps an arbitrary callable as a Landscape.
class FunctionLandscape final : public Landscape {
 public:
  FunctionLandscape(std::string name, std::function<double(const Point&)> fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  double clean_time(const Point& x) const override { return fn_(x); }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::function<double(const Point&)> fn_;
};

/// Convex quadratic bowl centred at `minimum` with floor value `floor_time`:
/// the simplest convergence test case.
class QuadraticLandscape final : public Landscape {
 public:
  QuadraticLandscape(Point minimum, double floor_time, double curvature);

  double clean_time(const Point& x) const override;
  std::string name() const override { return "Quadratic"; }

  const Point& minimum() const { return minimum_; }
  double floor_time() const { return floor_time_; }

 private:
  Point minimum_;
  double floor_time_;
  double curvature_;
};

/// Rastrigin-style multimodal surface shifted to be strictly positive:
/// many regularly spaced local minima around a global minimum — a stress
/// test for the "unstructured optimization space" requirement (§1).
class MultimodalLandscape final : public Landscape {
 public:
  MultimodalLandscape(Point minimum, double floor_time, double amplitude,
                      double frequency);

  double clean_time(const Point& x) const override;
  std::string name() const override { return "Multimodal"; }

  const Point& minimum() const { return minimum_; }
  double floor_time() const { return floor_time_; }

 private:
  Point minimum_;
  double floor_time_;
  double amplitude_;
  double frequency_;
};

}  // namespace protuner::core
