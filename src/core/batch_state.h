// Shared machinery for evaluating a batch of candidate configurations under
// the bulk-synchronous step model, with K-sample repetition (§5.2).
//
// A batch of M points is measured on R ranks in waves of min(M, R) points.
// Each wave is re-proposed for enough consecutive time steps to gather K
// samples per point.  When spare ranks are available and parallel replicas
// are enabled (§5.2: "if there are 64 parallel processors ... we can set
// K=10 with no additional cost"), each point is replicated across
// floor(R / wave) ranks so several samples arrive per step.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/estimator.h"
#include "core/types.h"

namespace protuner::core {

class BatchState {
 public:
  struct Options {
    int samples = 1;                       ///< K
    EstimatorKind estimator = EstimatorKind::kMin;
    bool parallel_replicas = false;        ///< use spare ranks for samples
    /// Racing elimination: after each sampling round, candidates whose
    /// current minimum already exceeds (1 + racing_margin) times the best
    /// candidate's minimum stop being re-measured — their estimate is the
    /// min of the samples they have.  Because the step cost is the max
    /// over the batch, not re-running clear losers directly lowers T_k.
    /// Only meaningful with the kMin estimator and K > 1.
    bool racing = false;
    double racing_margin = 0.10;
  };

  BatchState() = default;

  /// Begins measuring `points`; `ranks` is the machine's parallel width.
  void reset(std::vector<Point> points, std::size_t ranks,
             const Options& opts);

  bool active() const { return !points_.empty() && !done_; }
  bool done() const { return done_; }

  /// The configurations to run this step (size <= ranks).  Call once per
  /// step, then feed() the observed times in the same order.
  std::vector<Point> next_assignment();

  /// Observed runtimes for the last next_assignment(), same order/length.
  void feed(std::span<const double> times);

  /// Per-point estimates, valid once done().
  const std::vector<double>& estimates() const { return estimates_; }
  const std::vector<Point>& points() const { return points_; }

 private:
  void finish_wave();
  void rebuild_slot_map();

  std::vector<Point> points_;
  std::vector<std::vector<double>> samples_;
  std::vector<double> estimates_;
  std::vector<bool> racing_active_;  ///< still being re-measured (racing)
  Options opts_;
  std::size_t ranks_ = 1;

  std::size_t wave_begin_ = 0;
  std::size_t wave_end_ = 0;
  std::size_t reps_per_point_ = 1;
  int steps_needed_ = 0;
  int steps_done_ = 0;
  std::vector<std::size_t> slot_map_;  ///< assignment slot -> point index
  bool done_ = true;
};

}  // namespace protuner::core
