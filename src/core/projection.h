// The projection operator Pi (paper §3.2.1).
//
// Every simplex transformation (reflection, expansion, shrink) can produce
// points outside the admissible region; Pi maps them back:
//   * boundary constraints: clamp to [lower, upper];
//   * discreteness: round to the lower or higher admissible value,
//     whichever lies toward the transformation centre v_k^0.
//
// Rounding *toward the centre* (rather than to nearest) is what guarantees
// that a finite number of consecutive shrinks drives every discrete
// coordinate onto the centre exactly — the property the stopping criterion
// (§3.2.2) relies on.
#pragma once

#include "core/parameter_space.h"
#include "core/types.h"

namespace protuner::core {

/// Projects `x` into the admissible region of `space`, using `center` (the
/// transformation centre v_k^0) to break discrete-rounding ties.
Point project(const ParameterSpace& space, const Point& center,
              const Point& x);

}  // namespace protuner::core
