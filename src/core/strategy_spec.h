// Spec-driven construction of tuning strategies (DESIGN.md §13).
//
// Every TuningStrategy in the library registers itself in one factory
// registry keyed by a short name, with its options parsed from the
// declarative spec grammar (spec/spec.h):
//
//   auto s = core::make_strategy("pro:k=4,racing", space, seed);
//   auto t = core::make_strategy("spsa:a=0.2,c=0.1", space, seed);
//
// `seed` feeds the stochastic strategies (annealing, genetic, random,
// spsa, rs) unless the spec pins `seed=` explicitly, so harnesses sweep
// repetitions by changing one argument instead of one options struct per
// algorithm.  Unknown names and unknown/out-of-range keys fail with
// did-you-mean diagnostics (see spec::SpecError).
#pragma once

#include <cstdint>
#include <string_view>

#include "core/parameter_space.h"
#include "core/strategy.h"
#include "spec/registry.h"

namespace protuner::core {

using StrategyRegistry =
    spec::Registry<TuningStrategyPtr, const ParameterSpace&, std::uint64_t>;

/// The strategy family registry.  Built-ins register at static-init time;
/// callers may add their own entries before first use.
StrategyRegistry& strategy_registry();

/// Parses `text` and constructs the strategy.  Throws spec::SpecError on
/// unknown names, unknown keys or out-of-range values.
TuningStrategyPtr make_strategy(std::string_view text,
                                const ParameterSpace& space,
                                std::uint64_t seed = 1);
TuningStrategyPtr make_strategy(const spec::Spec& s,
                                const ParameterSpace& space,
                                std::uint64_t seed = 1);

}  // namespace protuner::core
