#include "core/session.h"

#include <algorithm>
#include <cassert>

namespace protuner::core {

SessionResult run_session(TuningStrategy& strategy, StepEvaluator& machine,
                          const SessionOptions& options) {
  assert(options.steps > 0);
  SessionResult result;
  result.steps = options.steps;
  strategy.start(machine.ranks());
  if (options.record_series) {
    result.step_costs.reserve(options.steps);
    result.cumulative.reserve(options.steps);
  }

  for (std::size_t k = 0; k < options.steps; ++k) {
    const StepProposal proposal = strategy.propose();
    assert(!proposal.configs.empty());
    const std::vector<double> times = machine.run_step(proposal.configs);
    assert(times.size() == proposal.configs.size());

    const double cost = *std::max_element(times.begin(), times.end());
    result.total_time += cost;
    if (options.record_series) {
      result.step_costs.push_back(cost);
      result.cumulative.push_back(result.total_time);
    }

    if (options.observer != nullptr) {
      options.observer->on_step(k, proposal.configs, times, cost);
    }

    strategy.observe(times);
    if (result.convergence_step == 0 && strategy.converged()) {
      result.convergence_step = k + 1;
      if (options.observer != nullptr) {
        options.observer->on_converged(k + 1, strategy.best_point());
      }
    }
  }

  result.ntt = (1.0 - machine.rho()) * result.total_time;
  result.best = strategy.best_point();
  result.best_estimate = strategy.best_estimate();
  result.best_clean = machine.clean_time(result.best);
  return result;
}

}  // namespace protuner::core
