#include "core/session.h"

#include <cassert>

#include "core/round_engine.h"

namespace protuner::core {

SessionResult run_session(TuningStrategy& strategy, StepEvaluator& machine,
                          const SessionOptions& options) {
  assert(options.steps > 0);
  RoundEngineOptions engine_options;
  engine_options.width = machine.ranks();
  engine_options.pad_assignment = false;
  engine_options.record_series = options.record_series;
  engine_options.observer = options.observer;
  RoundEngine engine(strategy, engine_options);

  for (std::size_t k = 0; k < options.steps; ++k) {
    engine.step(machine);
  }

  SessionResult result = engine.result();
  result.ntt = (1.0 - machine.rho()) * result.total_time;
  result.best_clean = machine.clean_time(result.best);
  return result;
}

}  // namespace protuner::core
