#include "core/pro.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

#include "obs/trace.h"

namespace protuner::core {

ProStrategy::ProStrategy(ParameterSpace space, ProOptions opts)
    : space_(std::move(space)), opts_(opts) {
  assert(opts.initial_size > 0.0);
  assert(opts.samples >= 1);
  assert(opts.max_samples >= opts.samples);
  assert(!opts.adaptive_samples || opts.refresh_best);
  assert(opts.adaptive_lambda > 0.0);
  assert(opts.adaptive_epsilon > 0.0 && opts.adaptive_epsilon < 1.0);
}

void ProStrategy::start(std::size_t ranks) {
  assert(ranks >= 1);
  ranks_ = ranks;
  simplex_ = initial_override_.has_value()
                 ? *initial_override_
                 : (opts_.use_2n_simplex
                        ? axial_2n_simplex(space_, opts_.initial_size)
                        : minimal_simplex(space_, opts_.initial_size));
  phase_ = Phase::kInitEval;
  converged_ = false;
  begin_batch(simplex_.vertices());
}

void ProStrategy::begin_batch(std::vector<Point> pts, bool with_refresh) {
  batch_has_refresh_ = with_refresh && opts_.refresh_best;
  if (batch_has_refresh_) {
    // The incumbent rides along with the candidates: in a live SPMD system
    // its processor keeps running it anyway, so the measurement is free.
    pts.push_back(simplex_.best());
  }
  BatchState::Options bo;
  bo.samples = opts_.samples;
  bo.estimator = opts_.estimator;
  bo.parallel_replicas = opts_.parallel_replicas;
  bo.racing = opts_.racing;
  bo.racing_margin = opts_.racing_margin;
  batch_.reset(std::move(pts), ranks_, bo);
}

std::vector<double> ProStrategy::split_refresh(std::vector<double> estimates) {
  if (batch_has_refresh_) {
    simplex_.set_value(0, estimates.back());
    if (opts_.adaptive_samples) update_adaptive_k(estimates.back());
    estimates.pop_back();
  }
  return estimates;
}

namespace {

/// Fraction of a window lying within (1 + lambda) of its own minimum — the
/// empirical per-sample floor-hit probability q.
double floor_hit_fraction(const std::vector<double>& window, double lambda) {
  const double floor = *std::min_element(window.begin(), window.end());
  std::size_t hits = 0;
  for (double y : window) {
    if (y <= floor * (1.0 + lambda)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(window.size());
}

}  // namespace

void ProStrategy::update_adaptive_k(double fresh_observation) {
  // Evidence lives in two layers: raw observations of the *current*
  // incumbent (comparable against one true floor), and an EWMA of the
  // per-sample floor-hit probability q folded in whenever the anchor
  // changes — so the machine-level variability estimate survives anchor
  // churn without stale-floor bias.
  if (incumbent_tracked_ != simplex_.best()) {
    if (incumbent_window_.size() >= 4) {
      const double q_local =
          floor_hit_fraction(incumbent_window_, opts_.adaptive_lambda);
      q_ewma_ = q_ewma_ < 0.0 ? q_local : 0.7 * q_ewma_ + 0.3 * q_local;
    }
    incumbent_tracked_ = simplex_.best();
    incumbent_window_.clear();
  }
  incumbent_window_.push_back(fresh_observation);
  constexpr std::size_t kWindow = 32;
  if (incumbent_window_.size() > kWindow) {
    incumbent_window_.erase(incumbent_window_.begin());
  }

  double q_est = q_ewma_;
  if (incumbent_window_.size() >= 6) {
    const double q_local =
        floor_hit_fraction(incumbent_window_, opts_.adaptive_lambda);
    q_est = q_est < 0.0 ? q_local : 0.5 * (q_est + q_local);
  }
  if (q_est < 0.0) return;  // no usable evidence yet

  // Eq. 11: P[min-of-K misses the floor] = (1 - q)^K, solved at epsilon.
  const double q = std::clamp(q_est, 0.05, 0.999);
  const int k = static_cast<int>(
      std::ceil(std::log(opts_.adaptive_epsilon) / std::log(1.0 - q)));
  opts_.samples = std::clamp(k, 1, opts_.max_samples);
}

StepProposal ProStrategy::propose() {
  // Every processor runs one iteration each time step (paper §2): slots not
  // occupied by candidates run the incumbent, and the step cost is the max
  // over *all* of them.  Padding therefore matters for honest accounting.
  StepProposal p;
  if (phase_ == Phase::kDone) {
    p.configs.assign(ranks_, best_point());
    active_slots_ = 0;
    return p;
  }
  p.configs = batch_.next_assignment();
  active_slots_ = p.configs.size();
  while (p.configs.size() < ranks_) p.configs.push_back(simplex_.vertex(0));
  return p;
}

void ProStrategy::observe(std::span<const double> times) {
  if (phase_ == Phase::kDone || active_slots_ == 0) return;
  assert(times.size() >= active_slots_);
  batch_.feed(times.first(active_slots_));
  if (batch_.done()) on_batch_done();
}

void ProStrategy::adopt_new_vertices(const std::vector<Point>& pts,
                                     const std::vector<double>& vals) {
  // New simplex = old best vertex (with its existing estimate) plus the
  // accepted transformed points (Algorithm 2: v^0 survives, j=1..n replaced).
  assert(pts.size() == simplex_.size() - 1);
  for (std::size_t j = 0; j < pts.size(); ++j) {
    simplex_.replace(j + 1, pts[j], vals[j]);
  }
  simplex_.order();
}

void ProStrategy::on_batch_done() {
  switch (phase_) {
    case Phase::kInitEval: {
      simplex_.set_values(batch_.estimates());
      simplex_.order();
      phase_ = Phase::kReflect;
      begin_batch(simplex_.reflections(space_), /*with_refresh=*/true);
      break;
    }
    case Phase::kReflect: {
      ++iterations_;
      reflect_values_ = split_refresh(batch_.estimates());
      reflect_points_ = batch_.points();
      reflect_points_.resize(reflect_values_.size());
      best_reflect_ = static_cast<std::size_t>(
          std::min_element(reflect_values_.begin(), reflect_values_.end()) -
          reflect_values_.begin());
      if (reflect_values_[best_reflect_] < simplex_.best_value()) {
        if (opts_.expansion_check) {
          // Most promising expansion: of the vertex whose reflection won.
          const Point& source = simplex_.vertex(best_reflect_ + 1);
          phase_ = Phase::kExpandCheck;
          begin_batch({simplex_.expansion_of(space_, source)});
        } else {
          phase_ = Phase::kExpandAllDirect;
          begin_batch(simplex_.expansions(space_), /*with_refresh=*/true);
        }
      } else {
        phase_ = Phase::kShrink;
        begin_batch(simplex_.shrinks(space_), /*with_refresh=*/true);
      }
      break;
    }
    case Phase::kExpandCheck: {
      const obs::ScopedSpan span(obs::Tracer::global(), "pro/expansion_check");
      const double e_val = batch_.estimates().front();
      if (e_val < reflect_values_[best_reflect_]) {
        phase_ = Phase::kExpandAll;
        begin_batch(simplex_.expansions(space_), /*with_refresh=*/true);
      } else {
        ++reflections_accepted_;
        adopt_new_vertices(reflect_points_, reflect_values_);
        after_accept();
      }
      break;
    }
    case Phase::kExpandAll: {
      ++expansions_accepted_;
      const std::vector<double> vals = split_refresh(batch_.estimates());
      std::vector<Point> pts = batch_.points();
      pts.resize(vals.size());
      adopt_new_vertices(pts, vals);
      after_accept();
      break;
    }
    case Phase::kExpandAllDirect: {
      // Ablation path: all n expansions were evaluated without the check.
      const std::vector<double> e_vals = split_refresh(batch_.estimates());
      std::vector<Point> pts = batch_.points();
      pts.resize(e_vals.size());
      const double e_best = *std::min_element(e_vals.begin(), e_vals.end());
      if (e_best < reflect_values_[best_reflect_]) {
        ++expansions_accepted_;
        adopt_new_vertices(pts, e_vals);
      } else {
        ++reflections_accepted_;
        adopt_new_vertices(reflect_points_, reflect_values_);
      }
      after_accept();
      break;
    }
    case Phase::kShrink: {
      const obs::ScopedSpan span(obs::Tracer::global(), "pro/shrink");
      ++shrinks_accepted_;
      const std::vector<double> vals = split_refresh(batch_.estimates());
      std::vector<Point> pts = batch_.points();
      pts.resize(vals.size());
      adopt_new_vertices(pts, vals);
      after_accept();
      break;
    }
    case Phase::kProbe: {
      const std::vector<double> vals = split_refresh(batch_.estimates());
      const std::size_t l = static_cast<std::size_t>(
          std::min_element(vals.begin(), vals.end()) - vals.begin());
      if (vals[l] < simplex_.best_value()) {
        // Not a local minimum: continue PRO with the generated simplex
        // (§3.2.2).  In the faithful variant the incumbent is dropped; the
        // conservative variant appends it so its estimate is never lost.
        std::vector<Point> vs = pending_probe_;
        std::vector<double> mv = vals;
        if (opts_.keep_incumbent_after_probe) {
          vs.push_back(simplex_.best());
          mv.push_back(simplex_.best_value());
        }
        Simplex fresh(std::move(vs));
        fresh.set_values(mv);
        fresh.order();
        simplex_ = std::move(fresh);
        phase_ = Phase::kReflect;
        begin_batch(simplex_.reflections(space_), /*with_refresh=*/true);
      } else {
        converged_ = true;
        phase_ = Phase::kDone;
      }
      break;
    }
    case Phase::kDone:
      break;
  }
}

void ProStrategy::after_accept() {
  if (simplex_.collapsed(space_)) {
    if (opts_.stop_at_convergence) {
      pending_probe_ = probe_points();
      if (pending_probe_.empty()) {
        converged_ = true;  // best sits in a fully-boundary corner
        phase_ = Phase::kDone;
        return;
      }
      ++probes_run_;
      phase_ = Phase::kProbe;
      begin_batch(pending_probe_, /*with_refresh=*/true);
    } else {
      converged_ = true;
      phase_ = Phase::kDone;
    }
    return;
  }
  phase_ = Phase::kReflect;
  begin_batch(simplex_.reflections(space_), /*with_refresh=*/true);
}

std::vector<Point> ProStrategy::probe_points() const {
  // §3.2.2: the 2N axial neighbours {v^0 + u_i e_i, v^0 - l_i e_i}.  On a
  // boundary the corresponding offset is zero and the point is dropped.
  std::vector<Point> pts;
  const Point& v0 = simplex_.best();
  for (std::size_t i = 0; i < space_.size(); ++i) {
    const Parameter& par = space_.param(i);
    const double up = par.neighbor_above(v0[i]);
    if (up != v0[i]) {
      Point p = v0;
      p[i] = up;
      pts.push_back(std::move(p));
    }
    const double dn = par.neighbor_below(v0[i]);
    if (dn != v0[i]) {
      Point p = v0;
      p[i] = dn;
      pts.push_back(std::move(p));
    }
  }
  return pts;
}

const Point& ProStrategy::best_point() const { return simplex_.best(); }

double ProStrategy::best_estimate() const { return simplex_.best_value(); }

std::string ProStrategy::name() const {
  std::ostringstream ss;
  ss << "PRO(r=" << opts_.initial_size
     << ", simplex=" << (opts_.use_2n_simplex ? "2N" : "N+1")
     << ", K=" << opts_.samples << ", est=" << estimator_name(opts_.estimator)
     << (opts_.expansion_check ? "" : ", no-expcheck") << ")";
  return ss.str();
}

}  // namespace protuner::core
