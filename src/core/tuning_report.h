// Human-readable summary of a tuning session: improvement over the
// starting configuration, convergence, phase breakdown and (optionally)
// the sensitivity of the final configuration.  Used by the examples and
// handy for ad-hoc diagnosis.
#pragma once

#include <string>

#include "core/parameter_space.h"
#include "core/sensitivity.h"
#include "core/session.h"

namespace protuner::core {

struct TuningReportOptions {
  bool include_sensitivity = true;
  std::size_t trajectory_points = 6;  ///< cumulative-time samples to print
};

/// Formats a completed session as a multi-line text report.  `landscape`
/// supplies clean times for the improvement figures; pass the same one the
/// machine used (or the database behind it).
std::string format_tuning_report(const ParameterSpace& space,
                                 const Landscape& landscape,
                                 const SessionResult& result,
                                 const TuningReportOptions& options = {});

}  // namespace protuner::core
