// PRO — Parallel Rank Ordering (paper Algorithm 2), the primary
// contribution of the paper, plus the multi-sample modification of §5.2.
//
// Per optimizer iteration (at most 3 evaluation rounds when ranks >= n):
//   1. Reflection round: evaluate all n reflections r^j = Pi(2 v^0 - v^j)
//      concurrently; let l = argmin_j f(r^j).
//   2. If f(r^l) < f(v^0): expansion *check* — evaluate the single most
//      promising expansion e = Pi(3 v^0 - 2 v^l) first (committing all n
//      expansions blindly can drag in points with terrible performance and
//      each step costs the max over the batch).
//   3. If the check succeeds, evaluate all n expansions and accept them;
//      otherwise accept the reflections.  If no reflection beat v^0,
//      shrink: v^j <- Pi((v^0 + v^j)/2).
//
// When the simplex collapses onto one configuration, the §3.2.2 stopping
// probe evaluates the 2N axial neighbours of v^0: if none wins, v^0 is a
// certified local minimum and the strategy freezes on it; otherwise the
// probe points seed a fresh simplex and the search continues.
#pragma once

#include <optional>

#include "core/batch_state.h"
#include "core/parameter_space.h"
#include "core/simplex.h"
#include "core/strategy.h"

namespace protuner::core {

struct ProOptions {
  /// Initial simplex relative size r (§3.2.3); axial offset is r*range/2.
  double initial_size = 0.2;
  /// 2N-vertex axial simplex (paper's recommendation) vs minimal N+1.
  bool use_2n_simplex = true;
  /// K: observations per configuration per evaluation round (§5.2).
  int samples = 1;
  /// How K samples collapse to one estimate; the paper argues for kMin.
  EstimatorKind estimator = EstimatorKind::kMin;
  /// Check the most promising expansion point before committing all n
  /// (Algorithm 2 lines 8-9).  Disabling reproduces the naive variant the
  /// paper rejected (ablation).
  bool expansion_check = true;
  /// Spend spare ranks on replicated samples (§5.2's "no additional cost"
  /// observation).  Off by default: the paper's Fig. 10 experiments take
  /// samples in subsequent time steps as a worst case.
  bool parallel_replicas = false;
  /// Racing elimination during multi-sampling (extension): candidates whose
  /// running minimum is already (1 + racing_margin) above the round leader
  /// stop being re-measured, which lowers T_k (the step cost is the max
  /// over the batch, and clear losers are exactly the expensive entries).
  /// Requires the kMin estimator and K > 1 to have any effect.
  bool racing = false;
  double racing_margin = 0.10;
  /// Run the §3.2.2 convergence probe when the simplex collapses; once it
  /// certifies a local minimum the strategy proposes only the best point.
  bool stop_at_convergence = true;
  /// After a successful §3.2.2 probe, continue with the 2N generated points
  /// *only*, as the paper specifies ("continue PRO with the generated
  /// simplex") — the incumbent configuration is not carried over, so under
  /// noise a spuriously-escaping probe can lose the best point found.  Set
  /// to true to keep the incumbent in the new simplex (a conservative
  /// variant; ablation).
  bool keep_incumbent_after_probe = false;
  /// Adaptive K (the paper's stated future work, §5.2: "we are working on
  /// optimization algorithms that update K adaptively").  When enabled the
  /// strategy estimates, from the incumbent's repeated observations, the
  /// per-sample probability q of landing within `adaptive_lambda` of the
  /// observed noise floor, then sets K so that the min-of-K misses the
  /// floor with probability below `adaptive_epsilon` (Eq. 11/22:
  /// (1-q)^K <= eps).  Noise-free machines thus get K = 1 automatically;
  /// heavy variability grows K up to `max_samples`.  Requires
  /// refresh_best.
  bool adaptive_samples = false;
  int max_samples = 8;
  double adaptive_lambda = 0.05;
  double adaptive_epsilon = 0.10;
  /// Re-measure the incumbent v^0 alongside every candidate batch and use
  /// the fresh estimate in all comparisons.  This is what a real on-line
  /// SPMD deployment does — every processor runs *something* each time
  /// step, so the incumbent is continuously re-observed; with K = 1 and
  /// heavy-tailed noise the incumbent's estimate is then a single noisy
  /// draw, which is exactly the fragility the multi-sample modification
  /// repairs.  Disable for the stale-incumbent ablation.
  bool refresh_best = true;
};

class ProStrategy final : public TuningStrategy {
 public:
  ProStrategy(ParameterSpace space, ProOptions opts);

  /// Overrides the initial simplex (otherwise built from the options).
  void set_initial_simplex(Simplex s) { initial_override_ = std::move(s); }

  void start(std::size_t ranks) override;
  StepProposal propose() override;
  void observe(std::span<const double> times) override;
  const Point& best_point() const override;
  double best_estimate() const override;
  bool converged() const override { return converged_; }
  std::string name() const override;

  /// Optimizer iterations completed (reflection rounds resolved).
  std::size_t iterations() const { return iterations_; }
  /// Current K (fixed unless adaptive_samples is on).
  int current_samples() const { return opts_.samples; }
  /// Breakdown of accepted moves, for the ablation benches.
  std::size_t expansions_accepted() const { return expansions_accepted_; }
  std::size_t reflections_accepted() const { return reflections_accepted_; }
  std::size_t shrinks_accepted() const { return shrinks_accepted_; }
  std::size_t probes_run() const { return probes_run_; }
  const Simplex& simplex() const { return simplex_; }

 private:
  enum class Phase {
    kInitEval,
    kReflect,
    kExpandCheck,
    kExpandAll,
    kExpandAllDirect,  ///< ablation: no single-point check first
    kShrink,
    kProbe,
    kDone,
  };

  void begin_batch(std::vector<Point> pts, bool with_refresh = false);
  void on_batch_done();
  /// Splits off the trailing v^0 refresh estimate (when present), updates
  /// the stored incumbent value, and returns the candidate estimates.
  std::vector<double> split_refresh(std::vector<double> estimates);
  void adopt_new_vertices(const std::vector<Point>& pts,
                          const std::vector<double>& vals);
  void after_accept();
  std::vector<Point> probe_points() const;
  /// Feeds one fresh incumbent observation into the adaptive-K estimator
  /// and recomputes K (Eq. 11/22 heuristic).
  void update_adaptive_k(double fresh_observation);

  ParameterSpace space_;
  ProOptions opts_;
  std::size_t ranks_ = 1;

  Simplex simplex_;
  std::optional<Simplex> initial_override_;
  Phase phase_ = Phase::kInitEval;
  BatchState batch_;
  bool batch_has_refresh_ = false;
  std::size_t active_slots_ = 0;  ///< leading proposal slots fed to batch_

  // Pending-decision context.
  std::vector<Point> reflect_points_;
  std::vector<double> reflect_values_;
  std::size_t best_reflect_ = 0;       ///< l = argmin_j f(r^j)
  std::vector<Point> pending_probe_;

  // Adaptive-K state: raw observations of the current incumbent plus an
  // EWMA of the per-sample floor-hit probability across past incumbents.
  std::vector<double> incumbent_window_;
  Point incumbent_tracked_;
  double q_ewma_ = -1.0;

  bool converged_ = false;
  std::size_t iterations_ = 0;
  std::size_t expansions_accepted_ = 0;
  std::size_t reflections_accepted_ = 0;
  std::size_t shrinks_accepted_ = 0;
  std::size_t probes_run_ = 0;
};

}  // namespace protuner::core
