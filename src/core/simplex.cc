#include "core/simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace protuner::core {

Simplex::Simplex(std::vector<Point> vertices)
    : vertices_(std::move(vertices)),
      values_(vertices_.size(), std::numeric_limits<double>::quiet_NaN()) {
  assert(!vertices_.empty());
}

void Simplex::set_values(std::span<const double> vals) {
  assert(vals.size() == values_.size());
  std::copy(vals.begin(), vals.end(), values_.begin());
}

void Simplex::replace(std::size_t j, Point p, double value) {
  assert(j < vertices_.size());
  vertices_[j] = std::move(p);
  values_[j] = value;
}

void Simplex::order() {
  std::vector<std::size_t> idx(vertices_.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return values_[a] < values_[b];
  });
  std::vector<Point> vs;
  std::vector<double> fs;
  vs.reserve(idx.size());
  fs.reserve(idx.size());
  for (std::size_t i : idx) {
    vs.push_back(std::move(vertices_[i]));
    fs.push_back(values_[i]);
  }
  vertices_ = std::move(vs);
  values_ = std::move(fs);
}

std::vector<Point> Simplex::reflections(const ParameterSpace& space) const {
  std::vector<Point> out;
  out.reserve(size() - 1);
  for (std::size_t j = 1; j < size(); ++j) {
    out.push_back(project(space, best(), affine(2.0, best(), -1.0, vertex(j))));
  }
  return out;
}

std::vector<Point> Simplex::expansions(const ParameterSpace& space) const {
  std::vector<Point> out;
  out.reserve(size() - 1);
  for (std::size_t j = 1; j < size(); ++j) {
    out.push_back(project(space, best(), affine(3.0, best(), -2.0, vertex(j))));
  }
  return out;
}

std::vector<Point> Simplex::shrinks(const ParameterSpace& space) const {
  std::vector<Point> out;
  out.reserve(size() - 1);
  for (std::size_t j = 1; j < size(); ++j) {
    out.push_back(project(space, best(), affine(0.5, best(), 0.5, vertex(j))));
  }
  return out;
}

Point Simplex::expansion_of(const ParameterSpace& space,
                            const Point& target) const {
  return project(space, best(), affine(3.0, best(), -2.0, target));
}

bool Simplex::collapsed(const ParameterSpace& space) const {
  for (std::size_t j = 1; j < size(); ++j) {
    for (std::size_t i = 0; i < space.size(); ++i) {
      const double d = std::fabs(vertex(j)[i] - best()[i]);
      if (space.param(i).is_discrete_kind()) {
        if (d != 0.0) return false;
      } else if (d > space.continuous_tolerance(i)) {
        return false;
      }
    }
  }
  return true;
}

double Simplex::diameter() const {
  double d2 = 0.0;
  for (std::size_t j = 1; j < size(); ++j) {
    d2 = std::max(d2, distance2(vertex(0), vertex(j)));
  }
  return std::sqrt(d2);
}

bool Simplex::degenerate(double tol) const {
  const std::size_t n = dimension();
  const std::size_t m = size() - 1;  // edge vectors
  if (m < n) return true;            // cannot span
  // Row-reduce the m x n edge matrix and count pivots.
  std::vector<std::vector<double>> a(m, std::vector<double>(n));
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      a[j][i] = vertices_[j + 1][i] - vertices_[0][i];
    }
  }
  std::size_t rank = 0;
  for (std::size_t col = 0; col < n && rank < m; ++col) {
    // Partial pivot.
    std::size_t piv = rank;
    for (std::size_t rrow = rank + 1; rrow < m; ++rrow) {
      if (std::fabs(a[rrow][col]) > std::fabs(a[piv][col])) piv = rrow;
    }
    if (std::fabs(a[piv][col]) <= tol) continue;
    std::swap(a[piv], a[rank]);
    for (std::size_t rrow = rank + 1; rrow < m; ++rrow) {
      const double factor = a[rrow][col] / a[rank][col];
      for (std::size_t c = col; c < n; ++c) a[rrow][c] -= factor * a[rank][c];
    }
    ++rank;
  }
  return rank < n;
}

namespace {

/// Axial offsets b_i = r (u_i - l_i) / 2.
std::vector<double> axial_offsets(const ParameterSpace& space, double r) {
  std::vector<double> b(space.size());
  for (std::size_t i = 0; i < space.size(); ++i) {
    b[i] = 0.5 * r * space.param(i).range();
  }
  return b;
}

}  // namespace

namespace {

/// Projects an axial offset vertex, then enforces the §3.2.3 non-degeneracy
/// requirement: if centre-directed rounding collapsed axis i back onto the
/// centre (possible for small r on discrete axes), push it to the adjacent
/// admissible value instead so the initial simplex still spans axis i.
Point axial_vertex(const ParameterSpace& space, const Point& c, std::size_t i,
                   double offset) {
  Point v = c;
  v[i] += offset;
  Point out = project(space, c, v);
  if (out[i] == c[i]) {
    out[i] = offset > 0.0 ? space.param(i).neighbor_above(c[i])
                          : space.param(i).neighbor_below(c[i]);
  }
  return out;
}

}  // namespace

Simplex minimal_simplex(const ParameterSpace& space, double r) {
  assert(r > 0.0);
  const Point c = space.center();
  const std::vector<double> b = axial_offsets(space, r);
  std::vector<Point> vs;
  vs.reserve(space.size() + 1);
  vs.push_back(c);
  for (std::size_t i = 0; i < space.size(); ++i) {
    vs.push_back(axial_vertex(space, c, i, b[i]));
  }
  return Simplex(std::move(vs));
}

Simplex axial_2n_simplex(const ParameterSpace& space, double r) {
  assert(r > 0.0);
  const Point c = space.center();
  const std::vector<double> b = axial_offsets(space, r);
  std::vector<Point> vs;
  vs.reserve(2 * space.size());
  for (std::size_t i = 0; i < space.size(); ++i) {
    vs.push_back(axial_vertex(space, c, i, b[i]));
    vs.push_back(axial_vertex(space, c, i, -b[i]));
  }
  return Simplex(std::move(vs));
}

}  // namespace protuner::core
