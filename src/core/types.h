// Basic vector type and arithmetic helpers shared by the search algorithms.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace protuner::core {

/// A configuration: one value per tunable parameter.
using Point = std::vector<double>;

/// r = a * x + b * y, elementwise.  The simplex transformations (reflection
/// 2v0 - v, expansion 3v0 - 2v, shrink 0.5 v0 + 0.5 v) are all of this form.
inline Point affine(double a, const Point& x, double b, const Point& y) {
  assert(x.size() == y.size());
  Point r(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) r[i] = a * x[i] + b * y[i];
  return r;
}

/// Euclidean squared distance.
inline double distance2(const Point& x, const Point& y) {
  assert(x.size() == y.size());
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    s += d * d;
  }
  return s;
}

/// Exact equality (used for discrete-parameter convergence checks).
inline bool equal(const Point& x, const Point& y) {
  return x == y;
}

}  // namespace protuner::core
