// The on-line tuning session driver (paper §2).
//
// Runs an application for exactly `steps` time steps under a tuning
// strategy and accounts the paper's metric:
//   T_k            = max over busy ranks of the observed iteration time
//   Total_Time(K)  = sum_k T_k                                   (Eq. 2)
//   NTT            = (1 - rho) * Total_Time                      (Eq. 23)
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/evaluator.h"
#include "core/strategy.h"

namespace protuner::core {

struct SessionResult {
  double total_time = 0.0;              ///< Total_Time(steps)
  double ntt = 0.0;                     ///< (1 - rho) * total_time
  std::vector<double> step_costs;       ///< T_k series (Fig. 1a material)
  std::vector<double> cumulative;       ///< running Total_Time (Fig. 1b)
  Point best;                           ///< strategy's final best config
  double best_estimate = 0.0;           ///< strategy's estimate at best
  double best_clean = -1.0;             ///< true f(best) when known
  std::size_t steps = 0;
  /// First step (1-based) at which the strategy certified convergence;
  /// empty when the session never converged.
  std::optional<std::size_t> convergence_step;

  bool converged() const { return convergence_step.has_value(); }
};

/// Hook into the tuning loop: invoked synchronously by run_session.
/// Implement to stream per-step telemetry (see CsvSessionLogger) or to
/// watch for convergence.
class SessionObserver {
 public:
  virtual ~SessionObserver() = default;

  /// After each time step: the assignment that ran, the observed per-rank
  /// times, and the step cost T_k.
  virtual void on_step(std::size_t step, std::span<const Point> configs,
                       std::span<const double> times, double cost) {
    (void)step;
    (void)configs;
    (void)times;
    (void)cost;
  }

  /// Once, at the first step where the strategy reports convergence.
  virtual void on_converged(std::size_t step, const Point& best) {
    (void)step;
    (void)best;
  }
};

struct SessionOptions {
  std::size_t steps = 100;      ///< K: application time steps to run
  bool record_series = true;    ///< keep per-step series (off to save memory)
  SessionObserver* observer = nullptr;  ///< optional telemetry hook
};

/// Drives `strategy` against `machine` for the configured number of steps.
/// A thin synchronous loop over core::RoundEngine (round_engine.h), which
/// owns the round lifecycle and all accounting.
SessionResult run_session(TuningStrategy& strategy, StepEvaluator& machine,
                          const SessionOptions& options);

}  // namespace protuner::core
