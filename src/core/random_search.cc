#include "core/random_search.h"

#include <cassert>

namespace protuner::core {

RandomSearchStrategy::RandomSearchStrategy(ParameterSpace space,
                                           std::uint64_t seed)
    : space_(std::move(space)), rng_(seed) {}

void RandomSearchStrategy::start(std::size_t ranks) {
  assert(ranks >= 1);
  ranks_ = ranks;
  have_best_ = false;
  proposals_.clear();
  for (std::size_t r = 0; r < ranks_; ++r) {
    proposals_.push_back(space_.random_point(rng_));
  }
}

StepProposal RandomSearchStrategy::propose() {
  StepProposal p;
  p.configs = proposals_;
  return p;
}

void RandomSearchStrategy::observe(std::span<const double> times) {
  assert(times.size() == proposals_.size());
  for (std::size_t r = 0; r < times.size(); ++r) {
    if (!have_best_ || times[r] < best_value_) {
      best_value_ = times[r];
      best_point_ = proposals_[r];
      have_best_ = true;
    }
  }
  for (std::size_t r = 0; r < ranks_; ++r) {
    proposals_[r] = space_.random_point(rng_);
  }
}

}  // namespace protuner::core
