// Built-in strategy registrations.  Each entry names the keys it accepts
// and the option-struct fields they map to; the example spec exercises
// every key so the contract tests can round-trip and construct it.
#include "core/strategy_spec.h"

#include <algorithm>
#include <memory>
#include <string>

#include "core/annealing.h"
#include "core/compass.h"
#include "core/estimator.h"
#include "core/fixed.h"
#include "core/genetic.h"
#include "core/grid_search.h"
#include "core/nelder_mead.h"
#include "core/pro.h"
#include "core/random_search.h"
#include "core/ranking_selection.h"
#include "core/spsa.h"
#include "core/sro.h"

namespace protuner::core {

namespace {

EstimatorKind parse_estimator(spec::Options& o) {
  const std::string est =
      o.get_choice("est", "min", {"min", "mean", "median", "first"});
  if (est == "mean") return EstimatorKind::kMean;
  if (est == "median") return EstimatorKind::kMedian;
  if (est == "first") return EstimatorKind::kFirst;
  return EstimatorKind::kMin;
}

using Reg = spec::Registrar<StrategyRegistry>;

StrategyRegistry& mutable_registry() {
  static StrategyRegistry registry("strategy");
  return registry;
}

const Reg reg_pro{
    mutable_registry(),
    "pro",
    {},
    "Parallel Rank Ordering (paper Algorithm 2)",
    "pro:size=0.2,2n=1,k=3,est=min,check=1,replicas=0,racing=0,margin=0.1,"
    "stop=1,keep=0,adaptive=0,max_k=8,lambda=0.05,eps=0.1,refresh=1",
    [](spec::Options& o, const ParameterSpace& space,
       std::uint64_t) -> TuningStrategyPtr {
      ProOptions opts;
      opts.initial_size = o.get_double("size", opts.initial_size, 1e-6, 10.0);
      opts.use_2n_simplex = o.get_bool("2n", opts.use_2n_simplex);
      opts.samples = static_cast<int>(o.get_int("k", opts.samples, 1, 1024));
      opts.estimator = parse_estimator(o);
      opts.expansion_check = o.get_bool("check", opts.expansion_check);
      opts.parallel_replicas = o.get_bool("replicas", opts.parallel_replicas);
      opts.racing = o.get_bool("racing", opts.racing);
      opts.racing_margin =
          o.get_double("margin", opts.racing_margin, 0.0, 10.0);
      opts.stop_at_convergence = o.get_bool("stop", opts.stop_at_convergence);
      opts.keep_incumbent_after_probe =
          o.get_bool("keep", opts.keep_incumbent_after_probe);
      opts.adaptive_samples = o.get_bool("adaptive", opts.adaptive_samples);
      opts.max_samples = static_cast<int>(
          o.get_int("max_k", std::max(opts.max_samples, opts.samples), 1,
                    1024));
      opts.adaptive_lambda =
          o.get_double("lambda", opts.adaptive_lambda, 0.0, 10.0);
      opts.adaptive_epsilon =
          o.get_double("eps", opts.adaptive_epsilon, 1e-9, 1.0);
      opts.refresh_best = o.get_bool("refresh", opts.refresh_best);
      return std::make_unique<ProStrategy>(space, opts);
    }};

const Reg reg_sro{
    mutable_registry(),
    "sro",
    {},
    "Sequential Rank Ordering (paper Algorithm 1)",
    "sro:size=0.2,2n=1,k=2,est=min,stop=1",
    [](spec::Options& o, const ParameterSpace& space,
       std::uint64_t) -> TuningStrategyPtr {
      SroOptions opts;
      opts.initial_size = o.get_double("size", opts.initial_size, 1e-6, 10.0);
      opts.use_2n_simplex = o.get_bool("2n", opts.use_2n_simplex);
      opts.samples = static_cast<int>(o.get_int("k", opts.samples, 1, 1024));
      opts.estimator = parse_estimator(o);
      opts.stop_at_convergence = o.get_bool("stop", opts.stop_at_convergence);
      return std::make_unique<SroStrategy>(space, opts);
    }};

const Reg reg_nm{
    mutable_registry(),
    "nm",
    {"nelder-mead", "neldermead"},
    "Nelder-Mead simplex (the original Active Harmony optimizer)",
    "nm:size=0.2,k=1,est=min,iters=200",
    [](spec::Options& o, const ParameterSpace& space,
       std::uint64_t) -> TuningStrategyPtr {
      NelderMeadOptions opts;
      opts.initial_size = o.get_double("size", opts.initial_size, 1e-6, 10.0);
      opts.samples = static_cast<int>(o.get_int("k", opts.samples, 1, 1024));
      opts.estimator = parse_estimator(o);
      opts.max_iterations = static_cast<std::size_t>(
          o.get_int("iters", static_cast<long>(opts.max_iterations), 0,
                    1000000));
      return std::make_unique<NelderMeadStrategy>(space, opts);
    }};

const Reg reg_anneal{
    mutable_registry(),
    "anneal",
    {"annealing", "sa"},
    "parallel simulated annealing (one Metropolis chain per rank)",
    "anneal:t0=1.0,cool=0.98,step=0.1,decay=0.995,migrate=0,seed=7",
    [](spec::Options& o, const ParameterSpace& space,
       std::uint64_t seed) -> TuningStrategyPtr {
      AnnealingOptions opts;
      opts.initial_temperature =
          o.get_double("t0", opts.initial_temperature, 1e-9, 1e9);
      opts.cooling = o.get_double("cool", opts.cooling, 1e-9, 1.0);
      opts.step_fraction = o.get_double("step", opts.step_fraction, 1e-9, 1.0);
      opts.step_decay = o.get_double("decay", opts.step_decay, 1e-9, 1.0);
      opts.migrate_every = static_cast<std::size_t>(
          o.get_int("migrate", static_cast<long>(opts.migrate_every), 0,
                    1000000));
      opts.seed = o.get_u64("seed", seed);
      return std::make_unique<AnnealingStrategy>(space, opts);
    }};

const Reg reg_genetic{
    mutable_registry(),
    "genetic",
    {"ga"},
    "generational genetic algorithm (tournament + uniform crossover)",
    "genetic:mut=0.15,cross=0.9,tourney=2,elites=1,seed=7",
    [](spec::Options& o, const ParameterSpace& space,
       std::uint64_t seed) -> TuningStrategyPtr {
      GeneticOptions opts;
      opts.mutation_rate = o.get_double("mut", opts.mutation_rate, 0.0, 1.0);
      opts.crossover_rate =
          o.get_double("cross", opts.crossover_rate, 0.0, 1.0);
      opts.tournament = static_cast<std::size_t>(
          o.get_int("tourney", static_cast<long>(opts.tournament), 1, 1024));
      opts.elites = static_cast<std::size_t>(
          o.get_int("elites", static_cast<long>(opts.elites), 0, 1024));
      opts.seed = o.get_u64("seed", seed);
      return std::make_unique<GeneticStrategy>(space, opts);
    }};

const Reg reg_random{
    mutable_registry(),
    "random",
    {},
    "uniform random search, keeps the best ever seen",
    "random:seed=7",
    [](spec::Options& o, const ParameterSpace& space,
       std::uint64_t seed) -> TuningStrategyPtr {
      return std::make_unique<RandomSearchStrategy>(space,
                                                    o.get_u64("seed", seed));
    }};

const Reg reg_grid{
    mutable_registry(),
    "grid",
    {},
    "exhaustive sweep (continuous axes sampled at `levels`)",
    "grid:levels=5",
    [](spec::Options& o, const ParameterSpace& space,
       std::uint64_t) -> TuningStrategyPtr {
      GridSearchOptions opts;
      opts.continuous_levels = static_cast<std::size_t>(o.get_int(
          "levels", static_cast<long>(opts.continuous_levels), 2, 4096));
      return std::make_unique<GridSearchStrategy>(space, opts);
    }};

const Reg reg_compass{
    mutable_registry(),
    "compass",
    {},
    "parallel compass (coordinate) search, 2N axial polls per round",
    "compass:step=0.25,min_step=0.001,k=1",
    [](spec::Options& o, const ParameterSpace& space,
       std::uint64_t) -> TuningStrategyPtr {
      CompassOptions opts;
      opts.initial_step_fraction =
          o.get_double("step", opts.initial_step_fraction, 1e-9, 1.0);
      opts.min_step_fraction =
          o.get_double("min_step", opts.min_step_fraction, 1e-12, 1.0);
      opts.samples = static_cast<int>(o.get_int("k", opts.samples, 1, 1024));
      return std::make_unique<CompassStrategy>(space, opts);
    }};

const Reg reg_fixed{
    mutable_registry(),
    "fixed",
    {"none"},
    "no tuning: pin every rank to one configuration (default: centre)",
    "fixed:at=8/2/0.5",
    [](spec::Options& o, const ParameterSpace& space,
       std::uint64_t) -> TuningStrategyPtr {
      const std::vector<double> at = o.get_doubles("at");
      Point config = space.center();
      if (!at.empty()) {
        if (at.size() != space.size()) {
          throw spec::SpecError(
              "strategy 'fixed': option 'at' has " +
              std::to_string(at.size()) + " coordinates but the space has " +
              std::to_string(space.size()));
        }
        config = space.snap_nearest(at);
      }
      return std::make_unique<FixedStrategy>(std::move(config));
    }};

const Reg reg_spsa{
    mutable_registry(),
    "spsa",
    {},
    "Simultaneous Perturbation Stochastic Approximation (2 evals/step)",
    "spsa:a=0.2,c=0.1,A=10,alpha=0.602,gamma=0.101,iters=0,seed=7",
    [](spec::Options& o, const ParameterSpace& space,
       std::uint64_t seed) -> TuningStrategyPtr {
      SpsaOptions opts;
      opts.a = o.get_double("a", opts.a, 1e-9, 1e3);
      opts.c = o.get_double("c", opts.c, 1e-9, 1.0);
      opts.A = o.get_double("A", opts.A, 0.0, 1e9);
      opts.alpha = o.get_double("alpha", opts.alpha, 1e-9, 2.0);
      opts.gamma = o.get_double("gamma", opts.gamma, 1e-9, 1.0);
      opts.max_iterations = static_cast<std::size_t>(
          o.get_int("iters", static_cast<long>(opts.max_iterations), 0,
                    100000000));
      opts.seed = o.get_u64("seed", seed);
      return std::make_unique<SpsaStrategy>(space, opts);
    }};

const Reg reg_rs{
    mutable_registry(),
    "rs",
    {"ranking", "ranking-selection"},
    "ranking-and-selection subset screening (Ni & Henderson style)",
    "rs:m=16,n0=4,delta=0.05,conf=0.95,est=min,budget=0,seed=7",
    [](spec::Options& o, const ParameterSpace& space,
       std::uint64_t seed) -> TuningStrategyPtr {
      RankingSelectionOptions opts;
      opts.candidates = static_cast<std::size_t>(
          o.get_int("m", static_cast<long>(opts.candidates), 2, 100000));
      opts.n0 = static_cast<std::size_t>(
          o.get_int("n0", static_cast<long>(opts.n0), 2, 100000));
      opts.delta = o.get_double("delta", opts.delta, 0.0, 10.0);
      opts.confidence =
          o.get_double("conf", opts.confidence, 1e-6, 1.0 - 1e-6);
      const std::string est = o.get_choice("est", "min", {"min", "mean"});
      opts.estimator =
          est == "mean" ? EstimatorKind::kMean : EstimatorKind::kMin;
      opts.budget = static_cast<std::size_t>(
          o.get_int("budget", static_cast<long>(opts.budget), 0, 100000000));
      opts.seed = o.get_u64("seed", seed);
      return std::make_unique<RankingSelectionStrategy>(space, opts);
    }};

}  // namespace

StrategyRegistry& strategy_registry() { return mutable_registry(); }

TuningStrategyPtr make_strategy(std::string_view text,
                                const ParameterSpace& space,
                                std::uint64_t seed) {
  return strategy_registry().make(spec::parse(text), space, seed);
}

TuningStrategyPtr make_strategy(const spec::Spec& s,
                                const ParameterSpace& space,
                                std::uint64_t seed) {
  return strategy_registry().make(s, space, seed);
}

}  // namespace protuner::core
