// Machine-side interface of the on-line tuning loop: something that can run
// one application time step with a given per-rank assignment and report the
// observed per-rank iteration times.  Implemented by cluster::SimulatedCluster
// and cluster::TraceCluster (controlled studies) and apps::MatmulEvaluator
// (live kernel measurement).
#pragma once

#include <cassert>
#include <span>
#include <vector>

#include "core/types.h"

namespace protuner::core {

class StepEvaluator {
 public:
  virtual ~StepEvaluator() = default;

  /// Runs one application time step: configs[i] executes on rank i and its
  /// observed iteration time lands in out[i] (out.size() must equal
  /// configs.size()).  This is the primitive every evaluator implements —
  /// non-allocating so the steady-state tuning loop (reps × steps × ranks in
  /// every figure harness) can reuse one buffer per driver.  The step's
  /// cost under the paper's metric is max over the results
  /// (Eq. 1: T_k = max_p t_{p,k}).
  virtual void run_step_into(std::span<const Point> configs,
                             std::span<double> out) = 0;

  /// Allocating convenience wrapper around run_step_into().
  std::vector<double> run_step(std::span<const Point> configs) {
    std::vector<double> times(configs.size());
    run_step_into(configs, {times.data(), times.size()});
    return times;
  }

  /// Parallel width available for concurrent evaluation; strategies are
  /// started with this value by run_session.
  virtual std::size_t ranks() const { return 1; }

  /// Idle-system throughput rho of the underlying machine, for NTT
  /// normalisation (Eq. 23).  0 when unknown / noise-free.
  virtual double rho() const { return 0.0; }

  /// The clean (noise-free) time of a configuration if the machine knows it
  /// — lets the harness report true-regret curves.  Returns a negative
  /// value when unavailable.
  virtual double clean_time(const Point&) const { return -1.0; }
};

}  // namespace protuner::core
