#include "core/compass.h"

#include <algorithm>
#include <cassert>

#include "core/projection.h"

namespace protuner::core {

CompassStrategy::CompassStrategy(ParameterSpace space, CompassOptions opts)
    : space_(std::move(space)), opts_(opts) {
  assert(opts.initial_step_fraction > 0.0);
  assert(opts.samples >= 1);
}

void CompassStrategy::start(std::size_t ranks) {
  ranks_ = std::max<std::size_t>(1, ranks);
  incumbent_ = space_.center();
  incumbent_known_ = false;
  converged_ = false;
  measuring_incumbent_ = true;
  step_.resize(space_.size());
  for (std::size_t i = 0; i < space_.size(); ++i) {
    step_[i] = opts_.initial_step_fraction * space_.param(i).range();
  }
  pending_ = {incumbent_};
  pending_samples_.assign(1, {});
  samples_done_ = 0;
}

std::vector<Point> CompassStrategy::poll_points() const {
  std::vector<Point> pts;
  for (std::size_t i = 0; i < space_.size(); ++i) {
    for (const double sign : {+1.0, -1.0}) {
      Point p = incumbent_;
      p[i] += sign * step_[i];
      p = project(space_, incumbent_, p);
      if (p[i] == incumbent_[i]) {
        // Step too small for the grid or at a boundary: poll the immediate
        // admissible neighbour instead so the direction is still covered.
        p[i] = sign > 0.0 ? space_.param(i).neighbor_above(incumbent_[i])
                          : space_.param(i).neighbor_below(incumbent_[i]);
      }
      if (p != incumbent_) pts.push_back(std::move(p));
    }
  }
  return pts;
}

void CompassStrategy::shrink_step() {
  bool any_above_floor = false;
  for (std::size_t i = 0; i < space_.size(); ++i) {
    step_[i] *= 0.5;
    if (step_[i] > opts_.min_step_fraction * space_.param(i).range() &&
        (!space_.param(i).is_discrete_kind() || step_[i] >= 0.5)) {
      any_above_floor = true;
    }
  }
  if (!any_above_floor) converged_ = true;
}

StepProposal CompassStrategy::propose() {
  StepProposal p;
  if (converged_) {
    p.configs.assign(ranks_, incumbent_);
    active_slots_ = 0;
    return p;
  }
  p.configs = pending_;
  active_slots_ = p.configs.size();
  while (p.configs.size() < ranks_) p.configs.push_back(incumbent_);
  return p;
}

void CompassStrategy::propose_into(std::vector<Point>& out) {
  // Mirrors propose() (same assignment, same active_slots_ bookkeeping) but
  // copy-assigns into the caller's buffer so the converged tail — incumbent
  // on every rank, forever — runs without allocating.
  if (converged_) {
    out.assign(ranks_, incumbent_);
    active_slots_ = 0;
    return;
  }
  const std::size_t n = std::max(pending_.size(), ranks_);
  out.resize(n);
  for (std::size_t i = 0; i < pending_.size(); ++i) out[i] = pending_[i];
  for (std::size_t i = pending_.size(); i < n; ++i) out[i] = incumbent_;
  active_slots_ = pending_.size();
}

void CompassStrategy::observe(std::span<const double> raw_times) {
  if (converged_ || active_slots_ == 0) return;
  const std::span<const double> times = raw_times.first(active_slots_);
  assert(times.size() == pending_.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    pending_samples_[i].push_back(times[i]);
  }
  ++samples_done_;
  if (samples_done_ < opts_.samples) return;  // keep sampling the same poll

  std::vector<double> est(pending_.size());
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    est[i] = *std::min_element(pending_samples_[i].begin(),
                               pending_samples_[i].end());
  }

  if (measuring_incumbent_) {
    incumbent_value_ = est.front();
    incumbent_known_ = true;
    measuring_incumbent_ = false;
  } else {
    const auto l = static_cast<std::size_t>(
        std::min_element(est.begin(), est.end()) - est.begin());
    if (est[l] < incumbent_value_) {
      incumbent_ = pending_[l];
      incumbent_value_ = est[l];
    } else {
      shrink_step();
      if (converged_) return;
    }
  }

  pending_ = poll_points();
  if (pending_.empty()) {
    converged_ = true;
    return;
  }
  pending_samples_.assign(pending_.size(), {});
  samples_done_ = 0;
}

}  // namespace protuner::core
