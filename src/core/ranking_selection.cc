#include "core/ranking_selection.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "stats/common_distributions.h"

namespace protuner::core {

RankingSelectionStrategy::RankingSelectionStrategy(
    ParameterSpace space, RankingSelectionOptions opts)
    : space_(std::move(space)), opts_(opts) {
  assert(opts.candidates >= 2);
  assert(opts.n0 >= 2);
  assert(opts.delta >= 0.0);
  assert(opts.confidence > 0.0 && opts.confidence < 1.0);
}

void RankingSelectionStrategy::start(std::size_t ranks) {
  assert(ranks >= 1);
  ranks_ = ranks;
  winner_ = -1;
  observations_ = 0;
  stable_passes_ = 0;
  eliminated_this_pass_ = 0;
  candidates_.clear();
  candidates_.reserve(opts_.candidates);

  util::Rng rng(opts_.seed);
  const auto push_unique = [&](Point p) {
    for (const auto& c : candidates_) {
      if (c.config == p) return;
    }
    Candidate c;
    c.config = std::move(p);
    candidates_.push_back(std::move(c));
  };
  push_unique(space_.center());
  // Rejection-sample distinct admissible candidates; small discrete spaces
  // may saturate before reaching m, which is fine — the set is then the
  // whole reachable sample.
  for (std::size_t tries = 0;
       candidates_.size() < opts_.candidates && tries < opts_.candidates * 64;
       ++tries) {
    push_unique(space_.random_point(rng));
  }

  // Bonferroni-adjusted two-sided normal quantile across the m(m-1)/2
  // pairwise looks of one screening pass.
  const std::size_t m = candidates_.size();
  const double looks =
      std::max<std::size_t>(1, m * (m > 1 ? m - 1 : 1) / 2);
  const double tail = (1.0 - opts_.confidence) / static_cast<double>(looks);
  h_ = stats::std_normal_quantile(1.0 - tail / 2.0);
  pending_.clear();
}

double RankingSelectionStrategy::statistic(const Candidate& c) const {
  return opts_.estimator == EstimatorKind::kMean ? c.mean : c.min;
}

std::size_t RankingSelectionStrategy::best_alive() const {
  std::size_t best = candidates_.size();
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    const Candidate& c = candidates_[i];
    if (!c.alive || c.n == 0) continue;
    if (best == candidates_.size() ||
        statistic(c) < statistic(candidates_[best])) {
      best = i;
    }
  }
  return best;
}

StepProposal RankingSelectionStrategy::propose() {
  StepProposal p;
  propose_into(p.configs);
  return p;
}

void RankingSelectionStrategy::propose_into(std::vector<Point>& out) {
  if (winner_ >= 0) {
    out.resize(ranks_);
    for (Point& slot : out) {
      slot = candidates_[static_cast<std::size_t>(winner_)].config;
    }
    return;
  }
  // Breadth-first allocation: fill the step with the least-sampled
  // survivors (ties by index, so the schedule is deterministic).  `virtual
  // counts` include this step's slots so one round spreads evenly.
  pending_.clear();
  std::vector<std::size_t> virtual_n(candidates_.size(), 0);
  for (std::size_t slot = 0; slot < ranks_; ++slot) {
    std::size_t pick = candidates_.size();
    for (std::size_t i = 0; i < candidates_.size(); ++i) {
      if (!candidates_[i].alive) continue;
      if (pick == candidates_.size() ||
          candidates_[i].n + virtual_n[i] <
              candidates_[pick].n + virtual_n[pick]) {
        pick = i;
      }
    }
    assert(pick < candidates_.size());
    ++virtual_n[pick];
    pending_.push_back(pick);
  }
  out.resize(pending_.size());
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    out[i] = candidates_[pending_[i]].config;
  }
}

void RankingSelectionStrategy::observe(std::span<const double> times) {
  if (winner_ >= 0) return;
  assert(times.size() >= pending_.size());
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    Candidate& c = candidates_[pending_[i]];
    const double y = times[i];
    ++c.n;
    ++observations_;
    const double d = y - c.mean;
    c.mean += d / static_cast<double>(c.n);
    c.m2 += d * (y - c.mean);
    c.min = c.n == 1 ? y : std::min(c.min, y);
  }
  pending_.clear();
  screen();
  if (winner_ >= 0) return;
  if (opts_.budget != 0 && observations_ >= opts_.budget) {
    declare(best_alive());
  }
}

void RankingSelectionStrategy::screen() {
  // Screening needs every survivor at the first-stage count.
  std::size_t alive = 0;
  for (const Candidate& c : candidates_) {
    if (!c.alive) continue;
    ++alive;
    if (c.n < opts_.n0) return;
  }
  if (alive <= 1) {
    declare(best_alive());
    return;
  }

  const std::size_t best = best_alive();
  const Candidate& b = candidates_[best];
  const double margin = opts_.delta * std::abs(statistic(b));

  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    if (i == best || !candidates_[i].alive) continue;
    Candidate& c = candidates_[i];
    bool eliminate = false;
    if (opts_.estimator == EstimatorKind::kMean) {
      // Welch screening: disjoint intervals beyond the indifference zone.
      const double si = std::sqrt(c.m2 / static_cast<double>(c.n - 1));
      const double sb = std::sqrt(b.m2 / static_cast<double>(b.n - 1));
      const double lo_i = c.mean - h_ * si / std::sqrt(double(c.n));
      const double hi_b = b.mean + h_ * sb / std::sqrt(double(b.n));
      eliminate = lo_i > hi_b + margin;
    } else {
      // Running-minimum screening: the min converges to f + n_min from
      // above, so a minimum that stays `delta` above the leader's after n0
      // draws is a loser with min-of-K confidence (paper Eq. 11/22 logic).
      eliminate = c.min > b.min + margin;
    }
    if (eliminate) {
      c.alive = false;
      ++eliminated_this_pass_;
    }
  }

  if (survivors() <= 1) {
    declare(best_alive());
    return;
  }

  // Indifference-zone termination: when a screening pass eliminates nobody
  // for n0 consecutive passes AND every survivor's statistic sits within
  // the indifference margin of the leader's, the remaining candidates are
  // ties at the resolution we were asked for — select the leader instead of
  // paying forever to separate them.
  if (eliminated_this_pass_ == 0) {
    ++stable_passes_;
  } else {
    stable_passes_ = 0;
  }
  eliminated_this_pass_ = 0;
  if (stable_passes_ >= opts_.n0) {
    bool all_tied = true;
    for (const Candidate& c : candidates_) {
      if (c.alive && statistic(c) > statistic(b) + margin) {
        all_tied = false;
        break;
      }
    }
    if (all_tied) declare(best);
  }
}

void RankingSelectionStrategy::declare(std::size_t index) {
  assert(index < candidates_.size());
  winner_ = static_cast<long>(index);
}

std::size_t RankingSelectionStrategy::survivors() const {
  std::size_t n = 0;
  for (const Candidate& c : candidates_) n += c.alive ? 1 : 0;
  return n;
}

const Point& RankingSelectionStrategy::best_point() const {
  if (winner_ >= 0) {
    return candidates_[static_cast<std::size_t>(winner_)].config;
  }
  const std::size_t best = best_alive();
  return best < candidates_.size() ? candidates_[best].config
                                   : candidates_.front().config;
}

double RankingSelectionStrategy::best_estimate() const {
  if (winner_ >= 0) {
    return statistic(candidates_[static_cast<std::size_t>(winner_)]);
  }
  const std::size_t best = best_alive();
  return best < candidates_.size() ? statistic(candidates_[best]) : 0.0;
}

std::string RankingSelectionStrategy::name() const {
  return opts_.estimator == EstimatorKind::kMean ? "RankingSelection-mean"
                                                 : "RankingSelection-min";
}

}  // namespace protuner::core
