// Tunable-parameter declarations — the information an application hands to
// the tuning system (paper Section 1: "a list of the tunable parameters,
// and their type and range").
//
// Three parameter kinds cover the paper's constraint types (§3.2.1):
//   * Continuous: any value in [lo, hi]
//   * Integer:    whole numbers in [lo, hi]  (boundary + discrete constraint)
//   * Discrete:   an explicit sorted set of admissible values (internal
//                 discontinuity constraints, e.g. powers of two)
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/types.h"
#include "util/rng.h"

namespace protuner::core {

enum class ParamKind { kContinuous, kInteger, kDiscrete };

/// One tunable parameter.
class Parameter {
 public:
  /// Continuous parameter in [lo, hi].
  static Parameter continuous(std::string name, double lo, double hi);

  /// Integer parameter in [lo, hi] (inclusive).
  static Parameter integer(std::string name, long lo, long hi);

  /// Discrete parameter over an explicit admissible set (will be sorted,
  /// duplicates removed).  Must be non-empty.
  static Parameter discrete(std::string name, std::vector<double> values);

  const std::string& name() const { return name_; }
  ParamKind kind() const { return kind_; }
  double lower() const { return lo_; }
  double upper() const { return hi_; }
  double range() const { return hi_ - lo_; }
  bool is_discrete_kind() const { return kind_ != ParamKind::kContinuous; }

  /// The admissible set for discrete parameters (empty for others).
  const std::vector<double>& values() const { return values_; }

  /// True when x is an admissible value for this parameter.
  bool admissible(double x) const;

  /// Largest admissible value <= x (clamps to lower()).
  double floor_value(double x) const;

  /// Smallest admissible value >= x (clamps to upper()).
  double ceil_value(double x) const;

  /// The admissible neighbour immediately above x (x itself if at upper()).
  double neighbor_above(double x) const;

  /// The admissible neighbour immediately below x (x itself if at lower()).
  double neighbor_below(double x) const;

  /// Nearest admissible value to x.
  double nearest(double x) const;

 private:
  Parameter() = default;

  std::string name_;
  ParamKind kind_ = ParamKind::kContinuous;
  double lo_ = 0.0;
  double hi_ = 0.0;
  std::vector<double> values_;  // populated for kDiscrete only
};

/// The full N-dimensional admissible region.
class ParameterSpace {
 public:
  ParameterSpace() = default;
  explicit ParameterSpace(std::vector<Parameter> params);

  std::size_t size() const { return params_.size(); }
  const Parameter& param(std::size_t i) const { return params_[i]; }
  const std::vector<Parameter>& params() const { return params_; }

  /// Centre of the admissible region (snapped to admissibility per axis) —
  /// the anchor of the paper's initial simplex (§3.2.3).
  Point center() const;

  /// True when every coordinate of x is admissible.
  bool admissible(const Point& x) const;

  /// Snaps every coordinate to its nearest admissible value (bounds clamp +
  /// nearest discrete value).  This is *not* the paper's projection — see
  /// projection.h for the centre-directed Π operator.
  Point snap_nearest(const Point& x) const;

  /// Uniformly random admissible point.
  Point random_point(util::Rng& rng) const;

  /// Tolerance below which two continuous coordinates count as equal for the
  /// convergence check (§3.2.2).  Relative to each parameter's range.
  double continuous_tolerance(std::size_t i) const {
    return 1e-6 * params_[i].range();
  }

 private:
  std::vector<Parameter> params_;
};

}  // namespace protuner::core
