// The tuning round lifecycle, extracted into one engine (paper §2).
//
// Every driver in the system — the synchronous run_session loop, the
// Harmony client/server front end, the message-passing server rank and the
// bench harnesses — advances an application through the same
// bulk-synchronous round:
//
//       ┌────────────┐ open_round ┌────────────┐ close_round ┌───────────┐
//       │ Assigning  ├───────────►│ Collecting ├────────────►│ Advancing │
//       └────────────┘            └────────────┘             └─────┬─────┘
//             ▲      publish the     submit per-rank    account T_k = max,│
//             │      assignment      times; impute      observer fan-out, │
//             │                      stragglers         strategy.observe, │
//             └────────────────────────────────────────────────────────────┘
//
// The engine owns everything those drivers used to duplicate: assignment
// publication (with best-point padding for idle ranks), per-rank time
// collection, the paper's accounting (Eq. 1 `T_k = max_p t_{p,k}`,
// Eq. 2 `Total_Time = Σ T_k`), strategy advance, convergence detection and
// SessionObserver fan-out.  It also centralises the straggler policy the
// serving layer needs: a round may be force-completed by imputing every
// missing rank's time as max-of-observed × penalty (the paper's worst-case
// metric makes this the natural pessimistic estimate), and ranks can be
// deactivated (dropped from future rounds) and reactivated (re-entry).
//
// The engine is transport-free and NOT thread-safe: concurrent front ends
// (harmony::Server) serialise access with their own lock.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/session.h"
#include "core/strategy.h"
#include "obs/metrics.h"

namespace protuner::core {

/// Misuse of the round state machine (wrong phase, out-of-range slot,
/// double submit, ...).  These are caller bugs, reported loudly instead of
/// silently corrupting the accounting.
class EngineError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

enum class RoundPhase {
  kAssigning,   ///< between rounds; open_round() is the only legal advance
  kCollecting,  ///< a round is open; submit times until complete()
  kAdvancing,   ///< transient, observable from observer callbacks only
};

struct RoundEngineOptions {
  /// Parallel width: the rank count the strategy is started with.
  std::size_t width = 1;
  /// When true, the published assignment always has `width` entries: ranks
  /// beyond the strategy's proposal run the best known configuration (they
  /// must run *something* each step; their times count toward the step cost
  /// but are not fed back).  The synchronous driver runs unpadded: the
  /// machine evaluates exactly the proposal.
  bool pad_assignment = false;
  /// Keep the per-step T_k / cumulative series (off to save memory).
  bool record_series = true;
  /// Optional telemetry hook, invoked from close_round().
  SessionObserver* observer = nullptr;
  /// A straggler's imputed time is (max time observed this round) × this
  /// factor; must be >= 1 so imputation never under-states the step cost.
  double impute_penalty = 1.5;
  /// Registry the engine's telemetry (rounds/imputations counters, round
  /// cost histogram) is registered in; null means obs::Registry::global().
  obs::Registry* metrics = nullptr;
  /// Label value for the engine's instruments' {"session", ...} label;
  /// empty registers them unlabelled.
  std::string session;
};

class RoundEngine {
 public:
  RoundEngine(TuningStrategy& strategy, const RoundEngineOptions& options);

  RoundPhase phase() const { return phase_; }

  // ----------------------------------------------------------- Assigning
  /// Publishes the next round's assignment (Assigning -> Collecting) and
  /// returns it: one configuration per slot.  Padded engines map the
  /// proposal onto the active slots in rank order and pad the rest with
  /// the best known point; unpadded engines publish the proposal verbatim.
  std::span<const Point> open_round();

  // ---------------------------------------------------------- Collecting
  /// The open round's assignment (valid until close_round()).
  std::span<const Point> assignment() const;
  const Point& assignment_for(std::size_t slot) const;

  /// Records one slot's observed iteration time.
  void submit(std::size_t slot, double time);
  /// Records every slot's time at once (the synchronous-driver path).
  void submit_all(std::span<const double> times);

  /// True once every expected slot has reported.
  bool complete() const;
  /// Expected slots that have not reported yet.
  std::size_t pending() const { return expected_count_ - collected_; }
  bool submitted(std::size_t slot) const;
  /// True when `slot` participates in the open round (active at open time).
  bool expected(std::size_t slot) const;

  /// Deadline support: fills every missing slot's time with
  /// max-of-observed × impute_penalty (falling back to the previous round's
  /// T_k when nothing was observed this round) and returns the slots that
  /// were imputed.  The round then reads complete().  Throws EngineError
  /// when there is no observation at all to impute from.
  std::vector<std::size_t> impute_missing();

  // ------------------------------------------------- rank membership
  /// Removes a slot from future rounds (takes effect at the next
  /// open_round; the open round's expectation set is unchanged).
  void deactivate(std::size_t slot);
  /// Re-admits a dropped slot from the next open_round on (rank re-entry).
  void reactivate(std::size_t slot);
  bool active(std::size_t slot) const;
  std::size_t active_count() const;

  // ----------------------------------------------------------- Advancing
  /// Requires complete().  Accounts the step cost T_k = max over the
  /// round's times, streams the observer, feeds the strategy (imputing
  /// configurations that had no rank to run them, if any), detects first
  /// convergence and returns to Assigning.  Returns T_k.
  double close_round();

  /// One whole synchronous step: open, evaluate on `machine`, close.
  double step(StepEvaluator& machine);

  // ---------------------------------------------------------- accounting
  double total_time() const { return total_time_; }
  std::size_t rounds_completed() const { return rounds_completed_; }
  const std::vector<double>& step_costs() const { return step_costs_; }
  const std::vector<double>& cumulative() const { return cumulative_; }
  /// First round (1-based) at which the strategy reported convergence.
  std::optional<std::size_t> convergence_round() const {
    return convergence_round_;
  }
  std::size_t width() const { return width_; }
  const TuningStrategy& strategy() const { return strategy_; }

  /// Accounting snapshot as a SessionResult.  `ntt` and `best_clean` need
  /// machine knowledge (rho, clean times) and are left at their defaults
  /// for the caller to fill.
  SessionResult result() const;

 private:
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  double impute_base() const;

  TuningStrategy& strategy_;
  const RoundEngineOptions options_;
  const std::size_t width_;

  // Telemetry, resolved once at construction (registry lookups lock and
  // allocate); recording on these references is allocation-free.
  obs::Counter& obs_rounds_;
  obs::Counter& obs_imputed_;
  obs::Histogram& obs_round_cost_;

  RoundPhase phase_ = RoundPhase::kAssigning;
  std::vector<Point> proposal_;          ///< propose_into target (recycled)
  std::vector<Point> assignment_;        ///< per-slot configs (open round)
  std::vector<double> step_times_;       ///< step() scratch (recycled)
  std::size_t proposal_size_ = 0;        ///< configs the strategy proposed
  std::vector<std::size_t> config_slot_; ///< proposal config -> slot
  bool identity_mapping_ = true;         ///< config j ran on slot j
  std::vector<double> times_;            ///< per-slot reported times
  std::vector<bool> submitted_;
  std::vector<bool> expected_;           ///< slot participates this round
  std::size_t expected_count_ = 0;
  std::size_t collected_ = 0;
  std::vector<bool> active_;             ///< membership for future rounds
  std::vector<double> observe_scratch_;  ///< proposal-order times for observe

  double total_time_ = 0.0;
  double last_cost_ = 0.0;
  std::size_t rounds_completed_ = 0;
  std::vector<double> step_costs_;
  std::vector<double> cumulative_;
  std::optional<std::size_t> convergence_round_;
};

}  // namespace protuner::core
