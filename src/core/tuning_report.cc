#include "core/tuning_report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace protuner::core {

std::string format_tuning_report(const ParameterSpace& space,
                                 const Landscape& landscape,
                                 const SessionResult& result,
                                 const TuningReportOptions& options) {
  std::ostringstream out;
  char buf[160];

  out << "=== tuning report ===\n";
  out << "best configuration:";
  for (std::size_t i = 0; i < space.size(); ++i) {
    std::snprintf(buf, sizeof buf, "  %s=%g", space.param(i).name().c_str(),
                  result.best[i]);
    out << buf;
  }
  out << '\n';

  const double f_best = landscape.clean_time(result.best);
  const double f_default = landscape.clean_time(space.center());
  std::snprintf(buf, sizeof buf,
                "clean time: %.4f s/iter (default %.4f, %.1f%% better)\n",
                f_best, f_default, 100.0 * (1.0 - f_best / f_default));
  out << buf;

  std::snprintf(buf, sizeof buf,
                "Total_Time(%zu) = %.2f   NTT = %.2f\n", result.steps,
                result.total_time, result.ntt);
  out << buf;

  if (result.convergence_step) {
    std::snprintf(buf, sizeof buf, "converged (certified) at step %zu\n",
                  *result.convergence_step);
  } else {
    std::snprintf(buf, sizeof buf, "did not certify convergence in %zu steps\n",
                  result.steps);
  }
  out << buf;

  if (!result.cumulative.empty() && options.trajectory_points > 1) {
    out << "trajectory (step: cumulative time):";
    const std::size_t n = result.cumulative.size();
    const std::size_t pts = std::min(options.trajectory_points, n);
    for (std::size_t i = 1; i <= pts; ++i) {
      const std::size_t k = i * n / pts - 1;
      std::snprintf(buf, sizeof buf, "  %zu: %.1f", k + 1,
                    result.cumulative[k]);
      out << buf;
    }
    out << '\n';
  }

  if (options.include_sensitivity && space.admissible(result.best)) {
    const SensitivityReport sens =
        analyze_sensitivity(space, landscape, result.best);
    out << "sensitivity (most sensitive axis first):\n";
    for (const auto& axis : sens.axes) {
      std::snprintf(buf, sizeof buf, "  %-12s rel_range=%6.2f%%  %s\n",
                    axis.name.c_str(), 100.0 * axis.rel_range,
                    axis.anchor_is_axis_optimum
                        ? "locally optimal"
                        : "NOT locally optimal along this axis");
      out << buf;
    }
  }
  return out.str();
}

}  // namespace protuner::core
