#include "core/sensitivity.h"

#include <algorithm>
#include <cassert>

namespace protuner::core {

namespace {

/// Admissible sweep values around anchor coordinate a on axis i.
std::vector<double> axis_values(const Parameter& p, double a,
                                const SensitivityOptions& opt) {
  std::vector<double> vals;
  if (p.is_discrete_kind()) {
    // Walk neighbours outward on both sides.
    double lo = a;
    std::vector<double> below;
    for (std::size_t s = 0; s < opt.steps_per_side; ++s) {
      const double nxt = p.neighbor_below(lo);
      if (nxt == lo) break;
      below.push_back(nxt);
      lo = nxt;
    }
    std::reverse(below.begin(), below.end());
    vals = std::move(below);
    vals.push_back(a);
    double hi = a;
    for (std::size_t s = 0; s < opt.steps_per_side; ++s) {
      const double nxt = p.neighbor_above(hi);
      if (nxt == hi) break;
      vals.push_back(nxt);
      hi = nxt;
    }
  } else {
    const double radius = opt.radius_fraction * p.range();
    const auto per_side = static_cast<double>(opt.steps_per_side);
    for (double s = -per_side; s <= per_side; s += 1.0) {
      vals.push_back(
          std::clamp(a + radius * s / per_side, p.lower(), p.upper()));
    }
    vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  }
  return vals;
}

}  // namespace

SensitivityReport analyze_sensitivity(const ParameterSpace& space,
                                      const Landscape& landscape,
                                      const Point& anchor,
                                      const SensitivityOptions& options) {
  assert(space.admissible(anchor));
  SensitivityReport report;
  report.anchor = anchor;
  report.anchor_time = landscape.clean_time(anchor);

  for (std::size_t i = 0; i < space.size(); ++i) {
    const Parameter& p = space.param(i);
    AxisSensitivity axis;
    axis.name = p.name();
    axis.best_value = anchor[i];
    axis.values = axis_values(p, anchor[i], options);

    double lo = report.anchor_time, hi = report.anchor_time;
    double axis_min = report.anchor_time;
    for (double v : axis.values) {
      Point x = anchor;
      x[i] = v;
      const double t = landscape.clean_time(x);
      axis.times.push_back(t);
      lo = std::min(lo, t);
      hi = std::max(hi, t);
      axis_min = std::min(axis_min, t);
    }
    axis.rel_range = (hi - lo) / report.anchor_time;
    axis.anchor_is_axis_optimum = report.anchor_time <= axis_min + 1e-12;
    report.axes.push_back(std::move(axis));
  }

  std::sort(report.axes.begin(), report.axes.end(),
            [](const AxisSensitivity& a, const AxisSensitivity& b) {
              return a.rel_range > b.rel_range;
            });
  return report;
}

}  // namespace protuner::core
