#include "core/grid_search.h"

#include <cassert>

namespace protuner::core {

GridSearchStrategy::GridSearchStrategy(ParameterSpace space,
                                       GridSearchOptions opts)
    : space_(std::move(space)), opts_(opts) {
  assert(opts.continuous_levels >= 2);
  axes_.reserve(space_.size());
  for (std::size_t i = 0; i < space_.size(); ++i) {
    const Parameter& p = space_.param(i);
    std::vector<double> vals;
    switch (p.kind()) {
      case ParamKind::kDiscrete:
        vals = p.values();
        break;
      case ParamKind::kInteger:
        for (double v = p.lower(); v <= p.upper(); v += 1.0) {
          vals.push_back(v);
        }
        break;
      case ParamKind::kContinuous:
        for (std::size_t l = 0; l < opts_.continuous_levels; ++l) {
          vals.push_back(p.lower() +
                         p.range() * static_cast<double>(l) /
                             static_cast<double>(opts_.continuous_levels - 1));
        }
        break;
    }
    axes_.push_back(std::move(vals));
  }
}

std::size_t GridSearchStrategy::sweep_size() const {
  std::size_t n = 1;
  for (const auto& axis : axes_) n *= axis.size();
  return n;
}

Point GridSearchStrategy::point_at(std::size_t flat_index) const {
  Point p(space_.size());
  for (std::size_t i = 0; i < space_.size(); ++i) {
    p[i] = axes_[i][flat_index % axes_[i].size()];
    flat_index /= axes_[i].size();
  }
  return p;
}

void GridSearchStrategy::start(std::size_t ranks) {
  assert(ranks >= 1);
  ranks_ = ranks;
  cursor_ = 0;
  have_best_ = false;
  done_ = false;
  best_point_ = point_at(0);
}

StepProposal GridSearchStrategy::propose() {
  StepProposal p;
  if (done_) {
    p.configs.assign(ranks_, best_point_);
    pending_.clear();
    return p;
  }
  pending_.clear();
  const std::size_t total = sweep_size();
  for (std::size_t r = 0; r < ranks_ && cursor_ + r < total; ++r) {
    pending_.push_back(point_at(cursor_ + r));
  }
  p.configs = pending_;
  // Pad the final partial wave with the incumbent so all ranks stay busy.
  while (p.configs.size() < ranks_) {
    p.configs.push_back(have_best_ ? best_point_ : pending_.front());
  }
  return p;
}

void GridSearchStrategy::observe(std::span<const double> times) {
  if (done_ || pending_.empty()) return;
  assert(times.size() >= pending_.size());
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (!have_best_ || times[i] < best_value_) {
      best_value_ = times[i];
      best_point_ = pending_[i];
      have_best_ = true;
    }
  }
  cursor_ += pending_.size();
  if (cursor_ >= sweep_size()) done_ = true;
}

}  // namespace protuner::core
