// Post-tuning sensitivity analysis: after a session settles on a
// configuration, sweep each parameter one-at-a-time through its admissible
// neighbourhood and report how sharply the objective reacts.  Tells the
// user which knobs mattered and whether the optimum sits in a flat basin
// (robust) or on a knife's edge (re-tune when anything changes).
#pragma once

#include <string>
#include <vector>

#include "core/landscape.h"
#include "core/parameter_space.h"

namespace protuner::core {

struct AxisSensitivity {
  std::string name;              ///< parameter name
  std::vector<double> values;    ///< swept admissible values
  std::vector<double> times;     ///< objective at each value
  double best_value = 0.0;       ///< the anchor coordinate
  double rel_range = 0.0;        ///< (max - min) / anchor_time
  bool anchor_is_axis_optimum = false;
};

struct SensitivityReport {
  Point anchor;
  double anchor_time = 0.0;
  std::vector<AxisSensitivity> axes;  ///< sorted most sensitive first
};

struct SensitivityOptions {
  /// Neighbourhood radius in admissible steps per side (discrete axes) or
  /// sampled points per side within +-radius_fraction*range (continuous).
  std::size_t steps_per_side = 3;
  double radius_fraction = 0.15;
};

/// Sweeps each axis around `anchor` on the given landscape.
SensitivityReport analyze_sensitivity(const ParameterSpace& space,
                                      const Landscape& landscape,
                                      const Point& anchor,
                                      const SensitivityOptions& options = {});

}  // namespace protuner::core
