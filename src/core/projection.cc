#include "core/projection.h"

#include <algorithm>
#include <cassert>

namespace protuner::core {

Point project(const ParameterSpace& space, const Point& center,
              const Point& x) {
  assert(x.size() == space.size());
  assert(center.size() == space.size());
  Point out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const Parameter& p = space.param(i);
    double v = std::clamp(x[i], p.lower(), p.upper());
    if (!p.admissible(v)) {
      // v lies strictly between two consecutive admissible values l < v < u.
      // Round toward the transformation centre: if the centre is below v,
      // take l; if above, take u (paper §3.2.1).
      if (center[i] < v) {
        v = p.floor_value(v);
      } else if (center[i] > v) {
        v = p.ceil_value(v);
      } else {
        v = p.nearest(v);  // centre == v yet inadmissible: centre off-grid
      }
    }
    out[i] = v;
  }
  return out;
}

}  // namespace protuner::core
