#include "core/round_engine.h"

#include <algorithm>
#include <string>

#include "core/evaluator.h"
#include "obs/trace.h"

namespace protuner::core {

namespace {

[[noreturn]] void misuse(const std::string& what) { throw EngineError(what); }

obs::Labels engine_labels(const RoundEngineOptions& options) {
  if (options.session.empty()) return {};
  return {{"session", options.session}};
}

obs::Registry& engine_registry(const RoundEngineOptions& options) {
  return options.metrics != nullptr ? *options.metrics
                                    : obs::Registry::global();
}

}  // namespace

RoundEngine::RoundEngine(TuningStrategy& strategy,
                         const RoundEngineOptions& options)
    : strategy_(strategy),
      options_(options),
      width_(options.width),
      obs_rounds_(engine_registry(options_).counter(
          "protuner_rounds_total", "Tuning rounds completed",
          engine_labels(options_))),
      obs_imputed_(engine_registry(options_).counter(
          "protuner_imputed_slots_total",
          "Straggler slots force-completed by imputation",
          engine_labels(options_))),
      obs_round_cost_(engine_registry(options_).histogram(
          "protuner_round_cost",
          "Step cost T_k = max per-rank time (simulated seconds)",
          engine_labels(options_))) {
  if (width_ == 0) misuse("RoundEngine: width must be >= 1");
  if (options_.impute_penalty < 1.0) {
    misuse("RoundEngine: impute_penalty must be >= 1");
  }
  active_.assign(width_, true);
  strategy_.start(width_);
}

std::span<const Point> RoundEngine::open_round() {
  const obs::ScopedSpan span(obs::Tracer::global(), "round/assign");
  if (phase_ != RoundPhase::kAssigning) {
    misuse("open_round: a round is already open");
  }
  // The proposal lands in a member buffer and the assignment is built with
  // copy-assigns into recycled capacity: once the round shape stabilises
  // (it does immediately for a fixed width) opening a round allocates
  // nothing beyond what the strategy itself allocates.
  strategy_.propose_into(proposal_);
  if (proposal_.empty()) {
    misuse("open_round: strategy proposed an empty assignment");
  }
  if (proposal_.size() > width_) {
    misuse("open_round: strategy proposed more configs than the engine "
           "width");
  }
  proposal_size_ = proposal_.size();

  if (options_.pad_assignment) {
    if (active_count() == 0) misuse("open_round: no active slots");
    assignment_.resize(width_);
    expected_.assign(width_, false);
    config_slot_.assign(proposal_size_, kNoSlot);
    identity_mapping_ = true;
    std::size_t next_config = 0;
    for (std::size_t s = 0; s < width_; ++s) {
      if (!active_[s]) {
        // Placeholder only: an inactive slot is not running anything and is
        // excluded from the round's expectation set and step cost.
        assignment_[s] = strategy_.best_point();
        continue;
      }
      expected_[s] = true;
      if (next_config < proposal_size_) {
        identity_mapping_ = identity_mapping_ && (s == next_config);
        config_slot_[next_config] = s;
        assignment_[s] = proposal_[next_config];
        ++next_config;
      } else {
        // Ranks beyond the proposal keep running the strategy's best known
        // configuration (they must run *something* each step; this is the
        // useful choice).  Their times count toward the step cost but are
        // not fed back.
        assignment_[s] = strategy_.best_point();
      }
    }
    identity_mapping_ = identity_mapping_ && (next_config == proposal_size_);
  } else {
    // The proposal buffer becomes the assignment; the old assignment's
    // storage becomes the next round's proposal buffer.
    assignment_.swap(proposal_);
    expected_.assign(assignment_.size(), true);
    identity_mapping_ = true;
  }

  const std::size_t n = assignment_.size();
  times_.assign(n, 0.0);
  submitted_.assign(n, false);
  expected_count_ =
      static_cast<std::size_t>(std::count(expected_.begin(), expected_.end(),
                                          true));
  collected_ = 0;
  phase_ = RoundPhase::kCollecting;
  return assignment();
}

std::span<const Point> RoundEngine::assignment() const {
  if (phase_ != RoundPhase::kCollecting) {
    misuse("assignment: no round is open");
  }
  return {assignment_.data(), assignment_.size()};
}

const Point& RoundEngine::assignment_for(std::size_t slot) const {
  if (phase_ != RoundPhase::kCollecting) {
    misuse("assignment_for: no round is open");
  }
  if (slot >= assignment_.size()) misuse("assignment_for: slot out of range");
  return assignment_[slot];
}

void RoundEngine::submit(std::size_t slot, double time) {
  if (phase_ != RoundPhase::kCollecting) misuse("submit: no round is open");
  if (slot >= assignment_.size()) misuse("submit: slot out of range");
  if (!expected_[slot]) misuse("submit: slot is not part of this round");
  if (submitted_[slot]) misuse("submit: slot already reported this round");
  times_[slot] = time;
  submitted_[slot] = true;
  ++collected_;
}

void RoundEngine::submit_all(std::span<const double> times) {
  if (phase_ != RoundPhase::kCollecting) {
    misuse("submit_all: no round is open");
  }
  if (times.size() != assignment_.size()) {
    misuse("submit_all: one time per assigned slot required");
  }
  for (std::size_t s = 0; s < times.size(); ++s) submit(s, times[s]);
}

bool RoundEngine::complete() const {
  return phase_ == RoundPhase::kCollecting && collected_ == expected_count_;
}

bool RoundEngine::submitted(std::size_t slot) const {
  if (phase_ != RoundPhase::kCollecting) return false;
  if (slot >= submitted_.size()) misuse("submitted: slot out of range");
  return submitted_[slot];
}

bool RoundEngine::expected(std::size_t slot) const {
  if (phase_ != RoundPhase::kCollecting) return false;
  if (slot >= expected_.size()) misuse("expected: slot out of range");
  return expected_[slot];
}

double RoundEngine::impute_base() const {
  double worst = 0.0;
  bool any = false;
  for (std::size_t s = 0; s < times_.size(); ++s) {
    if (expected_[s] && submitted_[s]) {
      worst = any ? std::max(worst, times_[s]) : times_[s];
      any = true;
    }
  }
  if (any) return worst;
  if (rounds_completed_ > 0) return last_cost_;
  misuse("impute: no observation this round and no completed round to "
         "impute from");
}

std::vector<std::size_t> RoundEngine::impute_missing() {
  if (phase_ != RoundPhase::kCollecting) {
    misuse("impute_missing: no round is open");
  }
  std::vector<std::size_t> imputed;
  if (collected_ == expected_count_) return imputed;
  const double value = impute_base() * options_.impute_penalty;
  for (std::size_t s = 0; s < times_.size(); ++s) {
    if (expected_[s] && !submitted_[s]) {
      times_[s] = value;
      submitted_[s] = true;
      ++collected_;
      imputed.push_back(s);
    }
  }
  obs_imputed_.add(imputed.size());
  return imputed;
}

void RoundEngine::deactivate(std::size_t slot) {
  if (slot >= width_) misuse("deactivate: slot out of range");
  active_[slot] = false;
}

void RoundEngine::reactivate(std::size_t slot) {
  if (slot >= width_) misuse("reactivate: slot out of range");
  active_[slot] = true;
}

bool RoundEngine::active(std::size_t slot) const {
  if (slot >= width_) misuse("active: slot out of range");
  return active_[slot];
}

std::size_t RoundEngine::active_count() const {
  return static_cast<std::size_t>(
      std::count(active_.begin(), active_.end(), true));
}

double RoundEngine::close_round() {
  const obs::ScopedSpan span(obs::Tracer::global(), "round/advance");
  if (phase_ != RoundPhase::kCollecting) {
    misuse("close_round: no round is open");
  }
  if (collected_ != expected_count_) {
    misuse("close_round: " + std::to_string(pending()) +
           " slot(s) have not reported (impute_missing closes a round with "
           "stragglers)");
  }
  phase_ = RoundPhase::kAdvancing;

  // Eq. 1: the step costs what its slowest participating rank costs.
  double cost = 0.0;
  bool first = true;
  for (std::size_t s = 0; s < times_.size(); ++s) {
    if (!expected_[s]) continue;
    cost = first ? times_[s] : std::max(cost, times_[s]);
    first = false;
  }
  total_time_ += cost;  // Eq. 2
  last_cost_ = cost;
  obs_rounds_.add();
  obs_round_cost_.record(cost);
  if (options_.record_series) {
    step_costs_.push_back(cost);
    cumulative_.push_back(total_time_);
  }

  if (options_.observer != nullptr) {
    options_.observer->on_step(rounds_completed_,
                               {assignment_.data(), assignment_.size()},
                               {times_.data(), times_.size()}, cost);
  }

  // Feed the strategy in proposal order.  With the identity mapping (the
  // common case: no dropped slots) the collected times are already in
  // proposal order; otherwise remap, imputing configurations that had no
  // active slot to run them.
  if (identity_mapping_) {
    strategy_.observe({times_.data(), proposal_size_});
  } else {
    observe_scratch_.resize(proposal_size_);
    double unassigned = 0.0;
    bool have_unassigned = false;
    for (std::size_t j = 0; j < proposal_size_; ++j) {
      const std::size_t slot = config_slot_[j];
      if (slot != kNoSlot) {
        observe_scratch_[j] = times_[slot];
      } else {
        if (!have_unassigned) {
          unassigned = impute_base() * options_.impute_penalty;
          have_unassigned = true;
        }
        observe_scratch_[j] = unassigned;
      }
    }
    strategy_.observe(
        {observe_scratch_.data(), observe_scratch_.size()});
  }

  ++rounds_completed_;
  if (!convergence_round_.has_value() && strategy_.converged()) {
    convergence_round_ = rounds_completed_;
    if (options_.observer != nullptr) {
      options_.observer->on_converged(rounds_completed_,
                                      strategy_.best_point());
    }
  }
  phase_ = RoundPhase::kAssigning;
  return cost;
}

double RoundEngine::step(StepEvaluator& machine) {
  const obs::ScopedSpan span(obs::Tracer::global(), "round/step");
  open_round();
  // The member buffer makes the steady-state step allocation-free: the
  // machine writes its times straight into recycled storage.
  step_times_.resize(assignment_.size());
  {
    const obs::ScopedSpan collect(obs::Tracer::global(), "round/collect");
    machine.run_step_into({assignment_.data(), assignment_.size()},
                          {step_times_.data(), step_times_.size()});
  }
  submit_all({step_times_.data(), step_times_.size()});
  return close_round();
}

SessionResult RoundEngine::result() const {
  SessionResult r;
  r.steps = rounds_completed_;
  r.total_time = total_time_;
  r.step_costs = step_costs_;
  r.cumulative = cumulative_;
  r.best = strategy_.best_point();
  r.best_estimate = strategy_.best_estimate();
  r.convergence_step = convergence_round_;
  return r;
}

}  // namespace protuner::core
