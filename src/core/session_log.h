// Ready-made session observers: a CSV step logger and a best-config change
// tracker.  Header-only.
#pragma once

#include <algorithm>
#include <ostream>
#include <vector>

#include "core/session.h"
#include "util/csv.h"

namespace protuner::core {

/// Streams one CSV row per time step: step index, cost T_k, cumulative
/// total, and the number of distinct configurations run that step.
class CsvSessionLogger final : public SessionObserver {
 public:
  explicit CsvSessionLogger(std::ostream& out) : csv_(out) {
    csv_.header({"step", "cost", "cumulative", "distinct_configs"});
  }

  void on_step(std::size_t step, std::span<const Point> configs,
               std::span<const double> /*times*/, double cost) override {
    cumulative_ += cost;
    std::vector<Point> uniq(configs.begin(), configs.end());
    std::sort(uniq.begin(), uniq.end());
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    csv_.row(step, cost, cumulative_, uniq.size());
  }

  void on_converged(std::size_t step, const Point& /*best*/) override {
    converged_at_ = step;
  }

  double cumulative() const { return cumulative_; }
  std::size_t converged_at() const { return converged_at_; }

 private:
  util::CsvWriter csv_;
  double cumulative_ = 0.0;
  std::size_t converged_at_ = 0;
};

/// Records every change of the proposal's first configuration — a cheap
/// proxy for "what the tuner is currently exploring".
class ConfigChangeTracker final : public SessionObserver {
 public:
  void on_step(std::size_t step, std::span<const Point> configs,
               std::span<const double> /*times*/, double /*cost*/) override {
    if (history_.empty() || history_.back().second != configs.front()) {
      history_.emplace_back(step, configs.front());
    }
  }

  const std::vector<std::pair<std::size_t, Point>>& history() const {
    return history_;
  }

 private:
  std::vector<std::pair<std::size_t, Point>> history_;
};

}  // namespace protuner::core
