// Ready-made session observers: a CSV step logger and a best-config change
// tracker.  Implementations live in session_log.cc.
//
// Both observers forward every callback to an optional chained
// SessionObserver, so a single observer slot (SessionOptions::observer,
// harmony::ServerOptions::observer) can carry CSV logging and telemetry
// (obs::ObservingSessionObserver) at the same time instead of one silently
// displacing the other.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <utility>
#include <vector>

#include "core/session.h"
#include "util/csv.h"

namespace protuner::core {

/// Streams one CSV row per time step: step index, cost T_k, cumulative
/// total, and the number of distinct configurations run that step.
class CsvSessionLogger final : public SessionObserver {
 public:
  /// `next`, when given, receives every callback after the row is written.
  explicit CsvSessionLogger(std::ostream& out, SessionObserver* next = nullptr);

  void on_step(std::size_t step, std::span<const Point> configs,
               std::span<const double> times, double cost) override;
  void on_converged(std::size_t step, const Point& best) override;

  double cumulative() const { return cumulative_; }
  std::size_t converged_at() const { return converged_at_; }

  SessionObserver* next() const { return next_; }
  void set_next(SessionObserver* next) { next_ = next; }

 private:
  util::CsvWriter csv_;
  double cumulative_ = 0.0;
  std::size_t converged_at_ = 0;
  SessionObserver* next_ = nullptr;
};

/// Records every change of the proposal's first configuration — a cheap
/// proxy for "what the tuner is currently exploring".
class ConfigChangeTracker final : public SessionObserver {
 public:
  explicit ConfigChangeTracker(SessionObserver* next = nullptr);

  void on_step(std::size_t step, std::span<const Point> configs,
               std::span<const double> times, double cost) override;
  void on_converged(std::size_t step, const Point& best) override;

  const std::vector<std::pair<std::size_t, Point>>& history() const {
    return history_;
  }

  SessionObserver* next() const { return next_; }
  void set_next(SessionObserver* next) { next_ = next; }

 private:
  std::vector<std::pair<std::size_t, Point>> history_;
  SessionObserver* next_ = nullptr;
};

}  // namespace protuner::core
