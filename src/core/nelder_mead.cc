#include "core/nelder_mead.h"

#include <cassert>
#include <sstream>

namespace protuner::core {

NelderMeadStrategy::NelderMeadStrategy(ParameterSpace space,
                                       NelderMeadOptions opts)
    : space_(std::move(space)), opts_(opts) {
  assert(opts.initial_size > 0.0);
  assert(opts.samples >= 1);
}

void NelderMeadStrategy::start(std::size_t ranks) {
  ranks_ = std::max<std::size_t>(1, ranks);
  simplex_ = minimal_simplex(space_, opts_.initial_size);  // N+1 vertices
  phase_ = Phase::kInitEval;
  frozen_ = false;
  begin_batch(simplex_.vertices());
}

void NelderMeadStrategy::begin_batch(std::vector<Point> pts) {
  BatchState::Options bo;
  bo.samples = opts_.samples;
  bo.estimator = opts_.estimator;
  batch_.reset(std::move(pts), /*ranks=*/1, bo);
}

StepProposal NelderMeadStrategy::propose() {
  StepProposal p;
  if (phase_ == Phase::kDone) {
    p.configs.assign(ranks_, best_point());
    active_slots_ = 0;
    return p;
  }
  p.configs = batch_.next_assignment();
  active_slots_ = p.configs.size();
  while (p.configs.size() < ranks_) p.configs.push_back(simplex_.vertex(0));
  return p;
}

void NelderMeadStrategy::observe(std::span<const double> times) {
  if (phase_ == Phase::kDone || active_slots_ == 0) return;
  assert(times.size() >= active_slots_);
  batch_.feed(times.first(active_slots_));
  if (batch_.done()) on_batch_done();
}

Point NelderMeadStrategy::centroid_excluding_worst() const {
  const std::size_t n = simplex_.size() - 1;
  Point c(space_.size(), 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < c.size(); ++i) c[i] += simplex_.vertex(j)[i];
  }
  for (double& v : c) v /= static_cast<double>(n);
  return c;
}

Point NelderMeadStrategy::along(const Point& centroid, double alpha) const {
  // v_N + alpha (c - v_N), projected with the best vertex as the rounding
  // centre (the centroid itself is usually off-grid).
  const Point& worst = simplex_.vertex(simplex_.size() - 1);
  Point p(space_.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    p[i] = worst[i] + alpha * (centroid[i] - worst[i]);
  }
  return project(space_, simplex_.best(), p);
}

void NelderMeadStrategy::start_iteration() {
  if (opts_.max_iterations != 0 && iterations_ >= opts_.max_iterations) {
    phase_ = Phase::kDone;
    frozen_ = true;
    return;
  }
  ++iterations_;
  centroid_ = centroid_excluding_worst();
  phase_ = Phase::kReflect;
  begin_batch({along(centroid_, 2.0)});
}

void NelderMeadStrategy::accept_worst_replacement(const Point& p, double v) {
  simplex_.replace(simplex_.size() - 1, p, v);
  simplex_.order();
  start_iteration();
}

void NelderMeadStrategy::on_batch_done() {
  switch (phase_) {
    case Phase::kInitEval: {
      simplex_.set_values(batch_.estimates());
      simplex_.order();
      start_iteration();
      break;
    }
    case Phase::kReflect: {
      reflect_point_ = batch_.points().front();
      reflect_value_ = batch_.estimates().front();
      if (reflect_value_ < simplex_.best_value()) {
        phase_ = Phase::kExpand;
        begin_batch({along(centroid_, 3.0)});
      } else if (reflect_value_ <
                 simplex_.value(simplex_.size() - 2)) {
        // Better than the second worst: plain reflection accepted.
        accept_worst_replacement(reflect_point_, reflect_value_);
      } else {
        phase_ = Phase::kContract;
        begin_batch({along(centroid_, 0.5)});
      }
      break;
    }
    case Phase::kExpand: {
      const Point& e = batch_.points().front();
      const double ev = batch_.estimates().front();
      if (ev < reflect_value_) {
        accept_worst_replacement(e, ev);
      } else {
        accept_worst_replacement(reflect_point_, reflect_value_);
      }
      break;
    }
    case Phase::kContract: {
      const Point& c = batch_.points().front();
      const double cv = batch_.estimates().front();
      if (cv < simplex_.value(simplex_.size() - 1)) {
        accept_worst_replacement(c, cv);
      } else {
        // Contraction failed: shrink the whole simplex around the best.
        phase_ = Phase::kShrinkEval;
        begin_batch(simplex_.shrinks(space_));
      }
      break;
    }
    case Phase::kShrinkEval: {
      const auto& pts = batch_.points();
      const auto& vals = batch_.estimates();
      for (std::size_t j = 0; j < pts.size(); ++j) {
        simplex_.replace(j + 1, pts[j], vals[j]);
      }
      simplex_.order();
      start_iteration();
      break;
    }
    case Phase::kDone:
      break;
  }
}

std::string NelderMeadStrategy::name() const {
  std::ostringstream ss;
  ss << "NelderMead(r=" << opts_.initial_size << ", K=" << opts_.samples
     << ")";
  return ss.str();
}

}  // namespace protuner::core
