#include "core/parameter_space.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace protuner::core {

Parameter Parameter::continuous(std::string name, double lo, double hi) {
  assert(hi > lo);
  Parameter p;
  p.name_ = std::move(name);
  p.kind_ = ParamKind::kContinuous;
  p.lo_ = lo;
  p.hi_ = hi;
  return p;
}

Parameter Parameter::integer(std::string name, long lo, long hi) {
  assert(hi > lo);
  Parameter p;
  p.name_ = std::move(name);
  p.kind_ = ParamKind::kInteger;
  p.lo_ = static_cast<double>(lo);
  p.hi_ = static_cast<double>(hi);
  return p;
}

Parameter Parameter::discrete(std::string name, std::vector<double> values) {
  assert(!values.empty());
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  Parameter p;
  p.name_ = std::move(name);
  p.kind_ = ParamKind::kDiscrete;
  p.lo_ = values.front();
  p.hi_ = values.back();
  p.values_ = std::move(values);
  return p;
}

bool Parameter::admissible(double x) const {
  if (x < lo_ || x > hi_) return false;
  switch (kind_) {
    case ParamKind::kContinuous:
      return true;
    case ParamKind::kInteger:
      return x == std::floor(x);
    case ParamKind::kDiscrete:
      return std::binary_search(values_.begin(), values_.end(), x);
  }
  return false;
}

double Parameter::floor_value(double x) const {
  if (x <= lo_) return lo_;
  if (x >= hi_) return hi_;
  switch (kind_) {
    case ParamKind::kContinuous:
      return x;
    case ParamKind::kInteger:
      return std::floor(x);
    case ParamKind::kDiscrete: {
      // Largest value <= x.
      const auto it = std::upper_bound(values_.begin(), values_.end(), x);
      assert(it != values_.begin());
      return *(it - 1);
    }
  }
  return x;
}

double Parameter::ceil_value(double x) const {
  if (x <= lo_) return lo_;
  if (x >= hi_) return hi_;
  switch (kind_) {
    case ParamKind::kContinuous:
      return x;
    case ParamKind::kInteger:
      return std::ceil(x);
    case ParamKind::kDiscrete: {
      const auto it = std::lower_bound(values_.begin(), values_.end(), x);
      assert(it != values_.end());
      return *it;
    }
  }
  return x;
}

double Parameter::neighbor_above(double x) const {
  assert(admissible(x));
  switch (kind_) {
    case ParamKind::kContinuous:
      return std::min(hi_, x + 1e-6 * range());
    case ParamKind::kInteger:
      return std::min(hi_, x + 1.0);
    case ParamKind::kDiscrete: {
      const auto it = std::upper_bound(values_.begin(), values_.end(), x);
      return it == values_.end() ? x : *it;
    }
  }
  return x;
}

double Parameter::neighbor_below(double x) const {
  assert(admissible(x));
  switch (kind_) {
    case ParamKind::kContinuous:
      return std::max(lo_, x - 1e-6 * range());
    case ParamKind::kInteger:
      return std::max(lo_, x - 1.0);
    case ParamKind::kDiscrete: {
      const auto it = std::lower_bound(values_.begin(), values_.end(), x);
      return it == values_.begin() ? x : *(it - 1);
    }
  }
  return x;
}

double Parameter::nearest(double x) const {
  const double lo = floor_value(x);
  const double hi = ceil_value(x);
  return (x - lo <= hi - x) ? lo : hi;
}

ParameterSpace::ParameterSpace(std::vector<Parameter> params)
    : params_(std::move(params)) {
  assert(!params_.empty());
}

Point ParameterSpace::center() const {
  Point c(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    c[i] = params_[i].nearest(0.5 * (params_[i].lower() + params_[i].upper()));
  }
  return c;
}

bool ParameterSpace::admissible(const Point& x) const {
  if (x.size() != params_.size()) return false;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (!params_[i].admissible(x[i])) return false;
  }
  return true;
}

Point ParameterSpace::snap_nearest(const Point& x) const {
  assert(x.size() == params_.size());
  Point out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = params_[i].nearest(
        std::clamp(x[i], params_[i].lower(), params_[i].upper()));
  }
  return out;
}

Point ParameterSpace::random_point(util::Rng& rng) const {
  Point out(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const auto& p = params_[i];
    switch (p.kind()) {
      case ParamKind::kContinuous:
        out[i] = rng.uniform(p.lower(), p.upper());
        break;
      case ParamKind::kInteger:
        out[i] = static_cast<double>(rng.uniform_int(
            static_cast<long>(p.lower()), static_cast<long>(p.upper())));
        break;
      case ParamKind::kDiscrete: {
        const auto idx = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<long>(p.values().size()) - 1));
        out[i] = p.values()[idx];
        break;
      }
    }
  }
  return out;
}

}  // namespace protuner::core
