// Exhaustive grid search — evaluates every admissible configuration once
// (continuous axes are sampled at a fixed number of levels), then pins the
// best.  The brute-force upper bound for small spaces, and the honest way
// to find a space's true optimum in tests and benches.
#pragma once

#include "core/parameter_space.h"
#include "core/strategy.h"

namespace protuner::core {

struct GridSearchOptions {
  /// Levels sampled per continuous axis (discrete/integer axes enumerate
  /// their admissible values exactly).
  std::size_t continuous_levels = 9;
};

class GridSearchStrategy final : public TuningStrategy {
 public:
  GridSearchStrategy(ParameterSpace space, GridSearchOptions opts = {});

  void start(std::size_t ranks) override;
  StepProposal propose() override;
  void observe(std::span<const double> times) override;
  const Point& best_point() const override { return best_point_; }
  double best_estimate() const override { return best_value_; }
  bool converged() const override { return done_; }
  std::string name() const override { return "GridSearch"; }

  /// Total points the sweep will evaluate.
  std::size_t sweep_size() const;

 private:
  Point point_at(std::size_t flat_index) const;

  ParameterSpace space_;
  GridSearchOptions opts_;
  std::size_t ranks_ = 1;

  std::vector<std::vector<double>> axes_;
  std::size_t cursor_ = 0;       ///< next flat index to evaluate
  std::vector<Point> pending_;
  Point best_point_;
  double best_value_ = 0.0;
  bool have_best_ = false;
  bool done_ = false;
};

}  // namespace protuner::core
