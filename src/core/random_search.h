// Pure random search: every time step evaluates `ranks` uniformly random
// configurations and keeps the best ever seen.  The weakest sensible
// baseline — any structured search must beat it on Total_Time.
#pragma once

#include "core/parameter_space.h"
#include "core/strategy.h"

namespace protuner::core {

class RandomSearchStrategy final : public TuningStrategy {
 public:
  RandomSearchStrategy(ParameterSpace space, std::uint64_t seed);

  void start(std::size_t ranks) override;
  StepProposal propose() override;
  void observe(std::span<const double> times) override;
  const Point& best_point() const override { return best_point_; }
  double best_estimate() const override { return best_value_; }
  bool converged() const override { return false; }
  std::string name() const override { return "RandomSearch"; }

 private:
  ParameterSpace space_;
  util::Rng rng_;
  std::size_t ranks_ = 1;
  std::vector<Point> proposals_;
  Point best_point_;
  double best_value_ = 0.0;
  bool have_best_ = false;
};

}  // namespace protuner::core
