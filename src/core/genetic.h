// Generational genetic algorithm — the second randomized comparator the
// paper names as unsuitable for on-line tuning (§2).  Population of `ranks`
// individuals, evaluated one generation per application time step;
// tournament selection, uniform crossover, per-axis mutation.
#pragma once

#include "core/parameter_space.h"
#include "core/strategy.h"

namespace protuner::core {

struct GeneticOptions {
  double mutation_rate = 0.15;   ///< per-axis mutation probability
  double crossover_rate = 0.9;   ///< probability a child mixes two parents
  std::size_t tournament = 2;    ///< tournament size for parent selection
  std::size_t elites = 1;        ///< best individuals copied unchanged
  std::uint64_t seed = 1;
};

class GeneticStrategy final : public TuningStrategy {
 public:
  GeneticStrategy(ParameterSpace space, GeneticOptions opts);

  void start(std::size_t ranks) override;
  StepProposal propose() override;
  void propose_into(std::vector<Point>& out) override;
  void observe(std::span<const double> times) override;
  const Point& best_point() const override { return best_point_; }
  double best_estimate() const override { return best_value_; }
  bool converged() const override { return false; }
  std::string name() const override { return "GeneticAlgorithm"; }

  std::size_t generations() const { return generations_; }

 private:
  std::size_t select_parent(std::span<const double> fitness);
  Point mutate(Point x);

  ParameterSpace space_;
  GeneticOptions opts_;

  std::vector<Point> population_;
  util::Rng rng_{1};
  Point best_point_;
  double best_value_ = 0.0;
  bool have_best_ = false;
  std::size_t generations_ = 0;
};

}  // namespace protuner::core
