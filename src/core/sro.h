// SRO — Sequential Rank Ordering (paper Algorithm 1).
//
// The sequential ancestor of PRO: one evaluation per application time step.
// Each iteration reflects only the *worst* vertex through the best as the
// acceptance test (r = 2 v^0 - v^n); on success it optionally checks the
// expansion e = 3 v^0 - 2 v^n, then applies the accepted transformation to
// every non-best vertex, evaluating the transformed vertices one at a time.
#pragma once

#include "core/batch_state.h"
#include "core/parameter_space.h"
#include "core/simplex.h"
#include "core/strategy.h"

namespace protuner::core {

struct SroOptions {
  double initial_size = 0.2;
  bool use_2n_simplex = true;
  int samples = 1;
  EstimatorKind estimator = EstimatorKind::kMin;
  bool stop_at_convergence = true;
};

class SroStrategy final : public TuningStrategy {
 public:
  SroStrategy(ParameterSpace space, SroOptions opts);

  void start(std::size_t ranks) override;
  StepProposal propose() override;
  void observe(std::span<const double> times) override;
  const Point& best_point() const override { return simplex_.best(); }
  double best_estimate() const override { return simplex_.best_value(); }
  bool converged() const override { return converged_; }
  std::string name() const override;

  std::size_t iterations() const { return iterations_; }

 private:
  enum class Phase {
    kInitEval,
    kReflectCheck,
    kExpandCheck,
    kApplyExpand,
    kApplyReflect,
    kApplyShrink,
    kProbe,
    kDone,
  };

  void begin_batch(std::vector<Point> pts);
  void on_batch_done();
  void after_accept();
  std::vector<Point> probe_points() const;

  ParameterSpace space_;
  SroOptions opts_;

  Simplex simplex_;
  Phase phase_ = Phase::kInitEval;
  BatchState batch_;
  std::size_t ranks_ = 1;
  std::size_t active_slots_ = 0;

  Point reflect_point_;
  double reflect_value_ = 0.0;
  std::vector<Point> pending_probe_;

  bool converged_ = false;
  std::size_t iterations_ = 0;
};

}  // namespace protuner::core
