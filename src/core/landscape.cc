#include "core/landscape.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace protuner::core {

void Landscape::clean_times(std::span<const Point> xs,
                            std::span<double> out) const {
  assert(xs.size() == out.size());
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = clean_time(xs[i]);
}

QuadraticLandscape::QuadraticLandscape(Point minimum, double floor_time,
                                       double curvature)
    : minimum_(std::move(minimum)),
      floor_time_(floor_time),
      curvature_(curvature) {
  assert(floor_time > 0.0);
  assert(curvature > 0.0);
}

double QuadraticLandscape::clean_time(const Point& x) const {
  assert(x.size() == minimum_.size());
  return floor_time_ + curvature_ * distance2(x, minimum_);
}

MultimodalLandscape::MultimodalLandscape(Point minimum, double floor_time,
                                         double amplitude, double frequency)
    : minimum_(std::move(minimum)),
      floor_time_(floor_time),
      amplitude_(amplitude),
      frequency_(frequency) {
  assert(floor_time > 0.0);
  assert(amplitude >= 0.0);
  assert(frequency > 0.0);
}

double MultimodalLandscape::clean_time(const Point& x) const {
  assert(x.size() == minimum_.size());
  // Rastrigin form: quadratic trend + cosine ripples, offset so that the
  // global minimum value is exactly floor_time.
  double v = floor_time_;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - minimum_[i];
    v += 0.05 * d * d +
         amplitude_ *
             (1.0 - std::cos(2.0 * std::numbers::pi * frequency_ * d));
  }
  return v;
}

}  // namespace protuner::core
