// Simplex container and geometry for the rank-ordering algorithms.
//
// Vertices carry their (estimated) function values.  All transformations are
// taken *around the best vertex* v^0 (paper §3, Fig. 2):
//   reflection  r^j = 2 v^0 -   v^j
//   expansion   e^j = 3 v^0 - 2 v^j
//   shrink      s^j = (v^0 + v^j) / 2
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/parameter_space.h"
#include "core/projection.h"
#include "core/types.h"

namespace protuner::core {

/// A set of vertices with function values, kept sorted best-first on demand.
class Simplex {
 public:
  Simplex() = default;
  explicit Simplex(std::vector<Point> vertices);

  std::size_t size() const { return vertices_.size(); }
  std::size_t dimension() const {
    return vertices_.empty() ? 0 : vertices_.front().size();
  }

  const Point& vertex(std::size_t j) const { return vertices_[j]; }
  double value(std::size_t j) const { return values_[j]; }
  const std::vector<Point>& vertices() const { return vertices_; }
  const std::vector<double>& values() const { return values_; }

  void set_value(std::size_t j, double v) { values_[j] = v; }
  void set_values(std::span<const double> vals);
  void replace(std::size_t j, Point p, double value);

  /// Sorts vertices so value(0) <= value(1) <= ... (paper's reorder step).
  /// Stable, so ties keep their previous relative order.
  void order();

  /// Best vertex (requires order() since the last mutation).
  const Point& best() const { return vertices_.front(); }
  double best_value() const { return values_.front(); }

  /// Candidate transformations of every non-best vertex around the best,
  /// projected into the admissible region.
  std::vector<Point> reflections(const ParameterSpace& space) const;
  std::vector<Point> expansions(const ParameterSpace& space) const;
  std::vector<Point> shrinks(const ParameterSpace& space) const;

  /// Expansion of a single vertex j (used for the PRO expansion check).
  Point expansion_of(const ParameterSpace& space, const Point& target) const;

  /// True when all vertices coincide: exact equality on discrete axes,
  /// within the space tolerance on continuous axes (§3.2.2 trigger).
  bool collapsed(const ParameterSpace& space) const;

  /// Max vertex-to-best Euclidean distance (diagnostic).
  double diameter() const;

  /// True when the edge vectors v^j - v^0 do not span R^N — the degenerate
  /// state the paper criticises Nelder-Mead for (§3.1).  Uses rank via
  /// Gaussian elimination with partial pivoting on the edge matrix.
  bool degenerate(double tol = 1e-10) const;

 private:
  std::vector<Point> vertices_;
  std::vector<double> values_;
};

/// Initial-simplex builders (§3.2.3 / §6.1).  `r` is the *relative size*:
/// the axial offset is b_i = r * (upper_i - lower_i) / 2, so the paper's
/// b_i = 0.1 (u - l) default corresponds to r = 0.2.
///
/// Minimal simplex: the centre c plus N axial points {Pi(c + b_i e_i)} —
/// N + 1 vertices.
Simplex minimal_simplex(const ParameterSpace& space, double r);

/// 2N simplex: {Pi(c +- b_i e_i)} — the shape the paper found markedly
/// better for discrete parameters.
Simplex axial_2n_simplex(const ParameterSpace& space, double r);

}  // namespace protuner::core
