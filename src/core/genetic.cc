#include "core/genetic.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "core/projection.h"

namespace protuner::core {

GeneticStrategy::GeneticStrategy(ParameterSpace space, GeneticOptions opts)
    : space_(std::move(space)), opts_(opts) {
  assert(opts.mutation_rate >= 0.0 && opts.mutation_rate <= 1.0);
  assert(opts.tournament >= 1);
}

void GeneticStrategy::start(std::size_t ranks) {
  assert(ranks >= 1);
  rng_.reseed(opts_.seed);
  population_.clear();
  for (std::size_t r = 0; r < ranks; ++r) {
    population_.push_back(space_.random_point(rng_));
  }
  have_best_ = false;
  generations_ = 0;
}

StepProposal GeneticStrategy::propose() {
  StepProposal p;
  p.configs = population_;
  return p;
}

void GeneticStrategy::propose_into(std::vector<Point>& out) {
  // Element-wise copy so the per-individual Point buffers are reused: the
  // population is re-proposed every generation forever.
  out.resize(population_.size());
  for (std::size_t r = 0; r < population_.size(); ++r) {
    out[r] = population_[r];
  }
}

std::size_t GeneticStrategy::select_parent(std::span<const double> fitness) {
  // Tournament selection on runtime (lower is fitter).
  std::size_t winner = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<long>(fitness.size()) - 1));
  for (std::size_t t = 1; t < opts_.tournament; ++t) {
    const auto c = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<long>(fitness.size()) - 1));
    if (fitness[c] < fitness[winner]) winner = c;
  }
  return winner;
}

Point GeneticStrategy::mutate(Point x) {
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!rng_.bernoulli(opts_.mutation_rate)) continue;
    const Parameter& par = space_.param(i);
    if (par.is_discrete_kind()) {
      x[i] = rng_.bernoulli(0.5) ? par.neighbor_above(x[i])
                                 : par.neighbor_below(x[i]);
    } else {
      x[i] += rng_.normal(0.0, 0.1 * par.range());
    }
  }
  return project(space_, x, x);
}

void GeneticStrategy::observe(std::span<const double> times) {
  assert(times.size() == population_.size());
  ++generations_;

  for (std::size_t r = 0; r < times.size(); ++r) {
    if (!have_best_ || times[r] < best_value_) {
      best_value_ = times[r];
      best_point_ = population_[r];
      have_best_ = true;
    }
  }

  // Next generation: elites survive, the rest are crossover + mutation.
  std::vector<std::size_t> order(population_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return times[a] < times[b]; });

  std::vector<Point> next;
  next.reserve(population_.size());
  for (std::size_t e = 0; e < std::min(opts_.elites, population_.size());
       ++e) {
    next.push_back(population_[order[e]]);
  }
  while (next.size() < population_.size()) {
    const Point& a = population_[select_parent(times)];
    const Point& b = population_[select_parent(times)];
    Point child = a;
    if (rng_.bernoulli(opts_.crossover_rate)) {
      for (std::size_t i = 0; i < child.size(); ++i) {
        if (rng_.bernoulli(0.5)) child[i] = b[i];
      }
    }
    next.push_back(mutate(std::move(child)));
  }
  population_ = std::move(next);
}

}  // namespace protuner::core
