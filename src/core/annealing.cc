#include "core/annealing.h"

#include <cassert>
#include <cmath>

#include "core/projection.h"

namespace protuner::core {

AnnealingStrategy::AnnealingStrategy(ParameterSpace space,
                                     AnnealingOptions opts)
    : space_(std::move(space)), opts_(opts) {
  assert(opts.cooling > 0.0 && opts.cooling <= 1.0);
  assert(opts.step_fraction > 0.0);
}

void AnnealingStrategy::start(std::size_t ranks) {
  assert(ranks >= 1);
  rngs_ = util::Rng(opts_.seed).split_streams(ranks);
  current_.clear();
  for (std::size_t r = 0; r < ranks; ++r) {
    current_.push_back(space_.random_point(rngs_[r]));
  }
  current_value_.assign(ranks, 0.0);
  temperature_ = opts_.initial_temperature;
  step_scale_ = 1.0;
  steps_seen_ = 0;
  best_point_ = current_.front();
  best_value_ = 0.0;
  first_observation_ = true;
  proposals_ = current_;  // first step measures the starting points
}

StepProposal AnnealingStrategy::propose() {
  StepProposal p;
  p.configs = proposals_;
  return p;
}

void AnnealingStrategy::propose_into(std::vector<Point>& out) {
  // Element-wise copy so the per-rank Point buffers are reused: the chains
  // propose every step forever, making this the steady-state path.
  out.resize(proposals_.size());
  for (std::size_t r = 0; r < proposals_.size(); ++r) out[r] = proposals_[r];
}

Point AnnealingStrategy::neighbor(const Point& x, util::Rng& rng) const {
  Point p = x;
  // Move probability / step size shrink with step_scale_ so late proposals
  // hug the incumbent and the tail iteration cost settles.
  const double move_prob = 0.45 * step_scale_;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const Parameter& par = space_.param(i);
    if (par.is_discrete_kind()) {
      const double u = rng.uniform();
      if (u < move_prob) {
        p[i] = par.neighbor_above(p[i]);
      } else if (u < 2.0 * move_prob) {
        p[i] = par.neighbor_below(p[i]);
      }
    } else {
      p[i] +=
          rng.normal(0.0, opts_.step_fraction * step_scale_ * par.range());
    }
  }
  return project(space_, x, p);
}

void AnnealingStrategy::observe(std::span<const double> times) {
  assert(times.size() == proposals_.size());
  if (first_observation_) {
    for (std::size_t r = 0; r < times.size(); ++r) {
      current_value_[r] = times[r];
      if (r == 0 || times[r] < best_value_) {
        best_value_ = times[r];
        best_point_ = current_[r];
      }
    }
    first_observation_ = false;
  } else {
    for (std::size_t r = 0; r < times.size(); ++r) {
      const double delta = times[r] - current_value_[r];
      const bool accept =
          delta <= 0.0 ||
          rngs_[r].uniform() < std::exp(-delta / std::max(1e-12, temperature_ *
                                                                    best_value_));
      if (accept) {
        current_[r] = proposals_[r];
        current_value_[r] = times[r];
      }
      if (times[r] < best_value_) {
        best_value_ = times[r];
        best_point_ = proposals_[r];
      }
    }
    temperature_ *= opts_.cooling;
    step_scale_ *= opts_.step_decay;
  }
  ++steps_seen_;
  if (opts_.migrate_every != 0 && steps_seen_ % opts_.migrate_every == 0) {
    // Best-of-chains migration: restart every chain from the incumbent.
    for (std::size_t r = 0; r < current_.size(); ++r) {
      current_[r] = best_point_;
      current_value_[r] = best_value_;
    }
  }
  for (std::size_t r = 0; r < current_.size(); ++r) {
    proposals_[r] = neighbor(current_[r], rngs_[r]);
  }
}

}  // namespace protuner::core
