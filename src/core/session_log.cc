#include "core/session_log.h"

#include <algorithm>
#include <ostream>

namespace protuner::core {

CsvSessionLogger::CsvSessionLogger(std::ostream& out, SessionObserver* next)
    : csv_(out), next_(next) {
  csv_.header({"step", "cost", "cumulative", "distinct_configs"});
}

void CsvSessionLogger::on_step(std::size_t step, std::span<const Point> configs,
                               std::span<const double> times, double cost) {
  cumulative_ += cost;
  std::vector<Point> uniq(configs.begin(), configs.end());
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
  csv_.row(step, cost, cumulative_, uniq.size());
  if (next_ != nullptr) next_->on_step(step, configs, times, cost);
}

void CsvSessionLogger::on_converged(std::size_t step, const Point& best) {
  converged_at_ = step;
  if (next_ != nullptr) next_->on_converged(step, best);
}

ConfigChangeTracker::ConfigChangeTracker(SessionObserver* next) : next_(next) {}

void ConfigChangeTracker::on_step(std::size_t step,
                                  std::span<const Point> configs,
                                  std::span<const double> times, double cost) {
  if (history_.empty() || history_.back().second != configs.front()) {
    history_.emplace_back(step, configs.front());
  }
  if (next_ != nullptr) next_->on_step(step, configs, times, cost);
}

void ConfigChangeTracker::on_converged(std::size_t step, const Point& best) {
  if (next_ != nullptr) next_->on_converged(step, best);
}

}  // namespace protuner::core
