// The on-line tuning contract between an optimizer and the machine it tunes.
//
// Time advances in *application time steps* (§2): in each step every busy
// rank runs one iteration of the application at some configuration, a
// barrier closes the step, and the step costs T_k = max over busy ranks of
// the observed iteration time.  A strategy proposes the per-rank assignment
// for the next step and then receives the observed times.  This
// bulk-synchronous shape is exactly what lets PRO evaluate n candidates per
// step while Nelder-Mead can only use one rank.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/types.h"

namespace protuner::core {

/// One application time step's worth of work: configuration per busy rank.
struct StepProposal {
  /// Configurations to run this step, one per busy rank.  Must be non-empty
  /// and no longer than the rank count passed to start().
  std::vector<Point> configs;
};

/// Interface implemented by every tuning algorithm in this library (PRO,
/// SRO, Nelder-Mead, simulated annealing, ...).
class TuningStrategy {
 public:
  virtual ~TuningStrategy() = default;

  /// Called once before the first proposal with the number of ranks the
  /// machine offers for concurrent evaluation.
  virtual void start(std::size_t ranks) = 0;

  /// Assignment of configurations for the next application time step.
  virtual StepProposal propose() = 0;

  /// Non-allocating variant: fills `out` with the next step's assignment,
  /// reusing its capacity.  Semantically identical to
  /// `out = propose().configs`; strategies whose steady-state proposal is
  /// cheap to materialise (FixedStrategy, converged engines pinning
  /// best_point) override this so the tuning loop can run allocation-free.
  /// Exactly one of propose()/propose_into() is consumed per round.  `out`
  /// may arrive holding a previous round's buffer: implementations must
  /// overwrite it completely (resize + assign), never append.
  virtual void propose_into(std::vector<Point>& out) {
    out = propose().configs;
  }

  /// Observed runtime of each config in the last proposal (same order).
  virtual void observe(std::span<const double> times) = 0;

  /// Best configuration discovered so far (by estimated value).
  virtual const Point& best_point() const = 0;

  /// Estimated objective value at best_point().
  virtual double best_estimate() const = 0;

  /// True once the strategy has certified a local minimum (§3.2.2) and will
  /// keep proposing best_point() forever.
  virtual bool converged() const = 0;

  virtual std::string name() const = 0;
};

using TuningStrategyPtr = std::unique_ptr<TuningStrategy>;

}  // namespace protuner::core
