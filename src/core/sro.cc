#include "core/sro.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace protuner::core {

SroStrategy::SroStrategy(ParameterSpace space, SroOptions opts)
    : space_(std::move(space)), opts_(opts) {
  assert(opts.initial_size > 0.0);
  assert(opts.samples >= 1);
}

void SroStrategy::start(std::size_t ranks) {
  // SRO is inherently sequential (§3.1): it evaluates one new point per
  // time step no matter how many ranks the machine offers.  The remaining
  // processors still run the incumbent (they are part of the application),
  // so proposals are padded to full width for honest max-cost accounting.
  ranks_ = std::max<std::size_t>(1, ranks);
  simplex_ = opts_.use_2n_simplex
                 ? axial_2n_simplex(space_, opts_.initial_size)
                 : minimal_simplex(space_, opts_.initial_size);
  phase_ = Phase::kInitEval;
  converged_ = false;
  begin_batch(simplex_.vertices());
}

void SroStrategy::begin_batch(std::vector<Point> pts) {
  BatchState::Options bo;
  bo.samples = opts_.samples;
  bo.estimator = opts_.estimator;
  bo.parallel_replicas = false;
  batch_.reset(std::move(pts), /*ranks=*/1, bo);
}

StepProposal SroStrategy::propose() {
  StepProposal p;
  if (phase_ == Phase::kDone) {
    p.configs.assign(ranks_, best_point());
    active_slots_ = 0;
    return p;
  }
  p.configs = batch_.next_assignment();
  active_slots_ = p.configs.size();
  while (p.configs.size() < ranks_) p.configs.push_back(simplex_.vertex(0));
  return p;
}

void SroStrategy::observe(std::span<const double> times) {
  if (phase_ == Phase::kDone || active_slots_ == 0) return;
  assert(times.size() >= active_slots_);
  batch_.feed(times.first(active_slots_));
  if (batch_.done()) on_batch_done();
}

void SroStrategy::on_batch_done() {
  switch (phase_) {
    case Phase::kInitEval: {
      simplex_.set_values(batch_.estimates());
      simplex_.order();
      phase_ = Phase::kReflectCheck;
      // Reflect the worst vertex through the best (Algorithm 1 line 5).
      begin_batch({project(
          space_, simplex_.best(),
          affine(2.0, simplex_.best(), -1.0,
                 simplex_.vertex(simplex_.size() - 1)))});
      break;
    }
    case Phase::kReflectCheck: {
      ++iterations_;
      reflect_point_ = batch_.points().front();
      reflect_value_ = batch_.estimates().front();
      if (reflect_value_ < simplex_.best_value()) {
        phase_ = Phase::kExpandCheck;
        begin_batch({project(
            space_, simplex_.best(),
            affine(3.0, simplex_.best(), -2.0,
                   simplex_.vertex(simplex_.size() - 1)))});
      } else {
        phase_ = Phase::kApplyShrink;
        begin_batch(simplex_.shrinks(space_));
      }
      break;
    }
    case Phase::kExpandCheck: {
      const double e_val = batch_.estimates().front();
      if (e_val < reflect_value_) {
        phase_ = Phase::kApplyExpand;
        begin_batch(simplex_.expansions(space_));
      } else {
        phase_ = Phase::kApplyReflect;
        begin_batch(simplex_.reflections(space_));
      }
      break;
    }
    case Phase::kApplyExpand:
    case Phase::kApplyReflect:
    case Phase::kApplyShrink: {
      const auto& pts = batch_.points();
      const auto& vals = batch_.estimates();
      for (std::size_t j = 0; j < pts.size(); ++j) {
        simplex_.replace(j + 1, pts[j], vals[j]);
      }
      simplex_.order();
      after_accept();
      break;
    }
    case Phase::kProbe: {
      const auto& vals = batch_.estimates();
      const auto l = static_cast<std::size_t>(
          std::min_element(vals.begin(), vals.end()) - vals.begin());
      if (vals[l] < simplex_.best_value()) {
        std::vector<Point> vs = pending_probe_;
        vs.push_back(simplex_.best());
        std::vector<double> fv = vals;
        fv.push_back(simplex_.best_value());
        Simplex merged(std::move(vs));
        merged.set_values(fv);
        merged.order();
        simplex_ = std::move(merged);
        phase_ = Phase::kReflectCheck;
        begin_batch({project(
            space_, simplex_.best(),
            affine(2.0, simplex_.best(), -1.0,
                   simplex_.vertex(simplex_.size() - 1)))});
      } else {
        converged_ = true;
        phase_ = Phase::kDone;
      }
      break;
    }
    case Phase::kDone:
      break;
  }
}

void SroStrategy::after_accept() {
  if (simplex_.collapsed(space_)) {
    if (opts_.stop_at_convergence) {
      pending_probe_ = probe_points();
      if (pending_probe_.empty()) {
        converged_ = true;
        phase_ = Phase::kDone;
        return;
      }
      phase_ = Phase::kProbe;
      begin_batch(pending_probe_);
    } else {
      converged_ = true;
      phase_ = Phase::kDone;
    }
    return;
  }
  phase_ = Phase::kReflectCheck;
  begin_batch({project(space_, simplex_.best(),
                       affine(2.0, simplex_.best(), -1.0,
                              simplex_.vertex(simplex_.size() - 1)))});
}

std::vector<Point> SroStrategy::probe_points() const {
  std::vector<Point> pts;
  const Point& v0 = simplex_.best();
  for (std::size_t i = 0; i < space_.size(); ++i) {
    const Parameter& par = space_.param(i);
    const double up = par.neighbor_above(v0[i]);
    if (up != v0[i]) {
      Point p = v0;
      p[i] = up;
      pts.push_back(std::move(p));
    }
    const double dn = par.neighbor_below(v0[i]);
    if (dn != v0[i]) {
      Point p = v0;
      p[i] = dn;
      pts.push_back(std::move(p));
    }
  }
  return pts;
}

std::string SroStrategy::name() const {
  std::ostringstream ss;
  ss << "SRO(r=" << opts_.initial_size
     << ", simplex=" << (opts_.use_2n_simplex ? "2N" : "N+1")
     << ", K=" << opts_.samples << ")";
  return ss.str();
}

}  // namespace protuner::core
