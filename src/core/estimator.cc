#include "core/estimator.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace protuner::core {

double reduce_samples(EstimatorKind kind, std::span<const double> samples) {
  assert(!samples.empty());
  switch (kind) {
    case EstimatorKind::kMin:
      return *std::min_element(samples.begin(), samples.end());
    case EstimatorKind::kMean: {
      double s = 0.0;
      for (double x : samples) s += x;
      return s / static_cast<double>(samples.size());
    }
    case EstimatorKind::kMedian: {
      std::vector<double> v(samples.begin(), samples.end());
      const auto mid = v.begin() + static_cast<std::ptrdiff_t>(v.size() / 2);
      std::nth_element(v.begin(), mid, v.end());
      if (v.size() % 2 == 1) return *mid;
      const double hi = *mid;
      const double lo = *std::max_element(v.begin(), mid);
      return 0.5 * (lo + hi);
    }
    case EstimatorKind::kFirst:
      return samples.front();
  }
  return samples.front();
}

std::string estimator_name(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kMin:
      return "min";
    case EstimatorKind::kMean:
      return "mean";
    case EstimatorKind::kMedian:
      return "median";
    case EstimatorKind::kFirst:
      return "first";
  }
  return "?";
}

}  // namespace protuner::core
