// SPSA — Simultaneous Perturbation Stochastic Approximation (Spall 1992),
// the de-facto production tuner for chess engines and other systems with
// noisy objectives (cf. Obsidian's paramsToSpsaInput, SNIPPETS.md #2).
//
// Each optimizer iteration needs exactly TWO evaluations regardless of the
// dimension N: both probes perturb *every* axis at once by a Rademacher
// sign vector Δ, and (y+ - y-) / (2 c_k Δ_i) is an unbiased estimate of
// every partial derivative simultaneously.  That makes SPSA the natural
// antithesis of PRO in the shootout: PRO spends n parallel ranks per step
// to rank-order candidates; SPSA spends 2 ranks per step no matter how
// wide the machine is (plus one measurement of the iterate Π(θ) itself
// when a third rank is free, so the incumbent can settle on the anchor).
//
// The iterate θ lives in range-normalised coordinates z ∈ [0,1]^N; probes
// are projected onto the admissible region with the paper's Π operator, so
// every proposal is admissible even on integer/discrete axes (the classic
// discrete-SPSA treatment).  Gains follow the standard schedules
//   a_k = a / (A + k)^alpha,   c_k = c / k^gamma
// with Spall's recommended exponents as defaults.
#pragma once

#include "core/parameter_space.h"
#include "core/strategy.h"
#include "util/rng.h"

namespace protuner::core {

struct SpsaOptions {
  double a = 0.2;        ///< gain numerator (normalised-coordinate units)
  double c = 0.1;        ///< initial perturbation, fraction of each range
  double A = 10.0;       ///< stability offset in the a_k schedule
  double alpha = 0.602;  ///< gain decay exponent (Spall's recommendation)
  double gamma = 0.101;  ///< perturbation decay exponent
  /// Iteration cap after which the strategy freezes on its best observed
  /// point (SPSA has no convergence certificate); 0 anneals forever.
  std::size_t max_iterations = 0;
  std::uint64_t seed = 1;
};

class SpsaStrategy final : public TuningStrategy {
 public:
  SpsaStrategy(ParameterSpace space, SpsaOptions opts);

  void start(std::size_t ranks) override;
  StepProposal propose() override;
  void propose_into(std::vector<Point>& out) override;
  void observe(std::span<const double> times) override;
  const Point& best_point() const override { return best_point_; }
  double best_estimate() const override { return best_value_; }
  bool converged() const override { return frozen_; }
  std::string name() const override { return "SPSA"; }

  std::size_t iterations() const { return iterations_; }

 private:
  /// Builds the two probes for iteration k into plus_/minus_.
  void prepare_probes();
  /// Maps normalised z into an admissible point via Π anchored at the
  /// incumbent projection.
  Point project_z(const std::vector<double>& z) const;
  void track_best(const Point& p, double y);

  ParameterSpace space_;
  SpsaOptions opts_;
  util::Rng rng_;
  std::size_t ranks_ = 1;

  std::vector<double> z_;      ///< iterate, normalised to [0,1] per axis
  std::vector<double> delta_;  ///< current Rademacher direction
  Point plus_, minus_;         ///< admissible probe points
  Point anchor_;               ///< Π(θ): admissible image of the iterate
  double ck_ = 0.0;            ///< current perturbation size
  bool have_pair_ = false;     ///< both probes measured this iteration
  double y_plus_ = 0.0;
  /// Objective scale for gradient normalisation (first pair's magnitude),
  /// so the default gains work for seconds-scale and microsecond-scale
  /// objectives alike.
  double y_scale_ = 0.0;

  Point best_point_;
  double best_value_ = 0.0;
  bool have_best_ = false;
  bool frozen_ = false;
  std::size_t iterations_ = 0;
  /// With ranks == 1 the pair is split across two rounds; this marks which
  /// probe the last proposal carried.
  bool awaiting_minus_ = false;
};

}  // namespace protuner::core
