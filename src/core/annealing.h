// Parallel simulated annealing — a representative of the randomized global
// optimizers the paper argues are wrong for on-line tuning (§2): they may
// converge eventually but pay a terrible transient Total_Time.
//
// One independent Metropolis chain per rank; each application time step
// every chain proposes a neighbouring configuration and accepts it with the
// Metropolis rule at the current (geometrically cooled) temperature.
#pragma once

#include "core/parameter_space.h"
#include "core/strategy.h"

namespace protuner::core {

struct AnnealingOptions {
  double initial_temperature = 1.0;  ///< relative to the initial value scale
  double cooling = 0.98;             ///< T <- cooling * T per step
  /// Neighbour scale: step stddev as a fraction of each parameter range.
  double step_fraction = 0.1;
  /// Per-step decay of the neighbour scale (also scales the probability of
  /// moving on discrete axes), so late proposals stay near the incumbent
  /// and the tail iteration cost converges.  1.0 disables.
  double step_decay = 0.995;
  /// Every this many steps, teleport all chains to the best configuration
  /// found so far (best-of-chains migration).  0 disables.
  std::size_t migrate_every = 0;
  std::uint64_t seed = 1;
};

class AnnealingStrategy final : public TuningStrategy {
 public:
  AnnealingStrategy(ParameterSpace space, AnnealingOptions opts);

  void start(std::size_t ranks) override;
  StepProposal propose() override;
  void propose_into(std::vector<Point>& out) override;
  void observe(std::span<const double> times) override;
  const Point& best_point() const override { return best_point_; }
  double best_estimate() const override { return best_value_; }
  bool converged() const override { return false; }  // anneals forever
  std::string name() const override { return "SimulatedAnnealing"; }

 private:
  Point neighbor(const Point& x, util::Rng& rng) const;

  ParameterSpace space_;
  AnnealingOptions opts_;

  std::vector<Point> current_;
  std::vector<double> current_value_;
  std::vector<Point> proposals_;
  std::vector<util::Rng> rngs_;
  bool first_observation_ = true;

  double temperature_ = 1.0;
  double step_scale_ = 1.0;
  std::size_t steps_seen_ = 0;
  Point best_point_;
  double best_value_ = 0.0;
};

}  // namespace protuner::core
