// Ranking and selection over a sampled candidate set (Ni, Henderson &
// Ciocan, "Efficient Ranking and Selection in Parallel Computing
// Environments", PAPERS.md) — a direct competitor to the paper's min-of-K
// vertex selection for picking the best configuration under noise.
//
// Screen-to-the-best subset selection adapted to the bulk-synchronous
// tuning round: a fixed candidate set (the space centre plus m-1 random
// admissible configurations) is sampled breadth-first, `ranks` evaluations
// per application time step, least-sampled-survivor first.  Once every
// survivor holds n0 observations, a screening pass eliminates candidates
// that are statistically dominated:
//
//   * est=mean ("parallel R&S with Welch screening"): candidate i dies when
//     some j has  Ȳ_i - h·s_i/√n_i  >  Ȳ_j + h·s_j/√n_j  with h the
//     Bonferroni-adjusted normal quantile for the configured confidence —
//     disjoint confidence intervals at the indifference-zone resolution.
//   * est=min (heavy-tail mode, the drop-in replacement for min-of-K):
//     candidate i dies when its running minimum exceeds the best survivor's
//     running minimum by the relative indifference margin delta — the
//     min-of-K limit L_y -> f + n_min makes the running minimum the right
//     statistic exactly where means diverge (paper §5).
//
// When one survivor remains the strategy freezes on it (converged); until
// then idle ranks keep re-sampling survivors, so wider machines screen
// faster — the Ni & Henderson premise that parallelism should buy
// statistical efficiency, not just throughput.
#pragma once

#include <cstdint>

#include "core/estimator.h"
#include "core/parameter_space.h"
#include "core/strategy.h"
#include "util/rng.h"

namespace protuner::core {

struct RankingSelectionOptions {
  std::size_t candidates = 16;  ///< m: size of the sampled candidate set
  std::size_t n0 = 4;           ///< observations per candidate before screening
  /// Indifference zone, relative to the incumbent statistic: differences
  /// below this fraction are ties we do not pay to resolve.
  double delta = 0.05;
  double confidence = 0.95;     ///< screening confidence (est=mean)
  /// Screening statistic: kMin (heavy-tail default) or kMean (classic).
  EstimatorKind estimator = EstimatorKind::kMin;
  /// Evaluation budget after which the best-by-statistic survivor is
  /// declared even if screening has not singled it out; 0 = unlimited.
  std::size_t budget = 0;
  std::uint64_t seed = 1;
};

class RankingSelectionStrategy final : public TuningStrategy {
 public:
  RankingSelectionStrategy(ParameterSpace space, RankingSelectionOptions opts);

  void start(std::size_t ranks) override;
  StepProposal propose() override;
  void propose_into(std::vector<Point>& out) override;
  void observe(std::span<const double> times) override;
  const Point& best_point() const override;
  double best_estimate() const override;
  bool converged() const override { return winner_ >= 0; }
  std::string name() const override;

  std::size_t survivors() const;
  std::size_t observations() const { return observations_; }

 private:
  struct Candidate {
    Point config;
    std::size_t n = 0;      ///< observations taken
    double mean = 0.0;      ///< running mean (Welford)
    double m2 = 0.0;        ///< running sum of squared deviations
    double min = 0.0;       ///< running minimum
    bool alive = true;
  };

  double statistic(const Candidate& c) const;
  std::size_t best_alive() const;
  void screen();
  void declare(std::size_t index);

  ParameterSpace space_;
  RankingSelectionOptions opts_;
  std::size_t ranks_ = 1;

  std::vector<Candidate> candidates_;
  std::vector<std::size_t> pending_;  ///< candidate index per proposal slot
  double h_ = 0.0;                    ///< Welch screening quantile
  long winner_ = -1;                  ///< index once selected
  std::size_t observations_ = 0;
  std::size_t stable_passes_ = 0;        ///< screening passes with no kill
  std::size_t eliminated_this_pass_ = 0;
};

}  // namespace protuner::core
