#include "core/spsa.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/projection.h"

namespace protuner::core {

SpsaStrategy::SpsaStrategy(ParameterSpace space, SpsaOptions opts)
    : space_(std::move(space)), opts_(opts), rng_(opts.seed) {
  assert(opts.a > 0.0);
  assert(opts.c > 0.0);
  assert(opts.A >= 0.0);
  assert(opts.alpha > 0.0);
  assert(opts.gamma > 0.0);
}

void SpsaStrategy::start(std::size_t ranks) {
  assert(ranks >= 1);
  ranks_ = ranks;
  rng_.reseed(opts_.seed);
  const std::size_t n = space_.size();
  z_.assign(n, 0.0);
  const Point c = space_.center();
  for (std::size_t i = 0; i < n; ++i) {
    const Parameter& p = space_.param(i);
    z_[i] = p.range() > 0.0 ? (c[i] - p.lower()) / p.range() : 0.5;
  }
  delta_.assign(n, 1.0);
  anchor_ = c;
  best_point_ = c;
  best_value_ = 0.0;
  have_best_ = false;
  frozen_ = false;
  have_pair_ = false;
  awaiting_minus_ = false;
  y_scale_ = 0.0;
  iterations_ = 0;
  prepare_probes();
}

Point SpsaStrategy::project_z(const std::vector<double>& z) const {
  Point p(z.size());
  for (std::size_t i = 0; i < z.size(); ++i) {
    const Parameter& par = space_.param(i);
    p[i] = par.lower() + z[i] * par.range();
  }
  return project(space_, anchor_, p);
}

void SpsaStrategy::prepare_probes() {
  const std::size_t k = iterations_ + 1;  // 1-based schedule index
  ck_ = opts_.c / std::pow(static_cast<double>(k), opts_.gamma);
  anchor_ = project_z(z_);
  std::vector<double> zp = z_, zm = z_;
  for (std::size_t i = 0; i < z_.size(); ++i) {
    delta_[i] = rng_.bernoulli(0.5) ? 1.0 : -1.0;
    zp[i] = std::clamp(z_[i] + ck_ * delta_[i], 0.0, 1.0);
    zm[i] = std::clamp(z_[i] - ck_ * delta_[i], 0.0, 1.0);
  }
  plus_ = project_z(zp);
  minus_ = project_z(zm);
}

StepProposal SpsaStrategy::propose() {
  StepProposal p;
  propose_into(p.configs);
  return p;
}

void SpsaStrategy::propose_into(std::vector<Point>& out) {
  if (frozen_) {
    out.resize(ranks_);
    for (Point& slot : out) slot = best_point_;
    return;
  }
  if (ranks_ >= 3) {
    // A third rank is free: measure the iterate Π(θ) itself so the best
    // point can settle on the anchor, not just the perturbed probes.
    out.resize(3);
    out[0] = plus_;
    out[1] = minus_;
    out[2] = anchor_;
    return;
  }
  if (ranks_ == 2) {
    out.resize(2);
    out[0] = plus_;
    out[1] = minus_;
    return;
  }
  out.resize(1);
  out[0] = awaiting_minus_ ? minus_ : plus_;
}

void SpsaStrategy::track_best(const Point& p, double y) {
  if (!have_best_ || y < best_value_) {
    best_point_ = p;
    best_value_ = y;
    have_best_ = true;
  }
}

void SpsaStrategy::observe(std::span<const double> times) {
  if (frozen_) return;
  assert(!times.empty());

  double y_plus = 0.0, y_minus = 0.0;
  if (ranks_ >= 2) {
    assert(times.size() >= 2);
    y_plus = times[0];
    y_minus = times[1];
  } else {
    if (!awaiting_minus_) {
      // First half of the ranks==1 pair: stash y+ and wait for y-.
      y_plus_ = times[0];
      track_best(plus_, times[0]);
      awaiting_minus_ = true;
      return;
    }
    y_plus = y_plus_;
    y_minus = times[0];
    awaiting_minus_ = false;
  }
  track_best(plus_, y_plus);
  track_best(minus_, y_minus);
  if (ranks_ >= 3 && times.size() >= 3) track_best(anchor_, times[2]);

  if (y_scale_ == 0.0) {
    y_scale_ = std::max(1e-12, 0.5 * (std::abs(y_plus) + std::abs(y_minus)));
  }

  const std::size_t k = iterations_ + 1;
  const double ak =
      opts_.a / std::pow(opts_.A + static_cast<double>(k), opts_.alpha);
  const double diff = (y_plus - y_minus) / y_scale_;
  for (std::size_t i = 0; i < z_.size(); ++i) {
    const double g = diff / (2.0 * ck_ * delta_[i]);
    z_[i] = std::clamp(z_[i] - ak * g, 0.0, 1.0);
  }
  ++iterations_;

  if (opts_.max_iterations != 0 && iterations_ >= opts_.max_iterations) {
    frozen_ = true;
    return;
  }
  prepare_probes();
}

}  // namespace protuner::core
