#include "core/batch_state.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace protuner::core {

void BatchState::reset(std::vector<Point> points, std::size_t ranks,
                       const Options& opts) {
  assert(!points.empty());
  assert(ranks >= 1);
  assert(opts.samples >= 1);
  assert(!opts.racing || opts.estimator == EstimatorKind::kMin);
  assert(opts.racing_margin >= 0.0);
  points_ = std::move(points);
  samples_.assign(points_.size(), {});
  estimates_.assign(points_.size(), 0.0);
  racing_active_.assign(points_.size(), true);
  opts_ = opts;
  ranks_ = ranks;
  wave_begin_ = 0;
  wave_end_ = 0;
  done_ = false;
  finish_wave();  // sets up the first wave
}

void BatchState::finish_wave() {
  wave_begin_ = wave_end_;
  if (wave_begin_ >= points_.size()) {
    for (std::size_t i = 0; i < points_.size(); ++i) {
      // Trim to exactly K samples so replication does not change the
      // estimator's definition (extra replicated draws are discarded).
      auto& s = samples_[i];
      if (s.size() > static_cast<std::size_t>(opts_.samples)) {
        s.resize(static_cast<std::size_t>(opts_.samples));
      }
      estimates_[i] = reduce_samples(opts_.estimator, s);
    }
    done_ = true;
    return;
  }
  wave_end_ = std::min(points_.size(), wave_begin_ + ranks_);
  const std::size_t wave = wave_end_ - wave_begin_;
  reps_per_point_ = 1;
  if (opts_.parallel_replicas) {
    reps_per_point_ = std::max<std::size_t>(1, ranks_ / wave);
    reps_per_point_ = std::min<std::size_t>(
        reps_per_point_, static_cast<std::size_t>(opts_.samples));
  }
  steps_needed_ = static_cast<int>(
      (static_cast<std::size_t>(opts_.samples) + reps_per_point_ - 1) /
      reps_per_point_);
  steps_done_ = 0;
  rebuild_slot_map();
}

void BatchState::rebuild_slot_map() {
  // Rep-major over the wave's (racing-active) points.  Deterministic given
  // the samples fed so far, so feed() can be validated against it even
  // before next_assignment() is called.
  slot_map_.clear();
  for (std::size_t rep = 0; rep < reps_per_point_; ++rep) {
    for (std::size_t i = wave_begin_; i < wave_end_; ++i) {
      if (racing_active_[i]) slot_map_.push_back(i);
    }
  }
  // Racing can eliminate everything but the leader; the leader always
  // keeps sampling (slot_map_ is never empty while the wave is open).
  assert(!slot_map_.empty());
}

std::vector<Point> BatchState::next_assignment() {
  assert(!done_);
  std::vector<Point> out;
  out.reserve(slot_map_.size());
  for (std::size_t i : slot_map_) out.push_back(points_[i]);
  return out;
}

void BatchState::feed(std::span<const double> times) {
  assert(!done_);
  assert(times.size() == slot_map_.size());
  for (std::size_t s = 0; s < times.size(); ++s) {
    samples_[slot_map_[s]].push_back(times[s]);
  }
  ++steps_done_;
  if (steps_done_ >= steps_needed_) {
    finish_wave();
    return;
  }
  if (opts_.racing) {
    // Eliminate wave candidates whose running minimum is already beyond
    // the margin of the wave leader's minimum.
    double leader = std::numeric_limits<double>::infinity();
    for (std::size_t i = wave_begin_; i < wave_end_; ++i) {
      if (!samples_[i].empty()) {
        leader = std::min(
            leader, *std::min_element(samples_[i].begin(), samples_[i].end()));
      }
    }
    std::size_t best_idx = wave_begin_;
    double best_min = std::numeric_limits<double>::infinity();
    for (std::size_t i = wave_begin_; i < wave_end_; ++i) {
      if (samples_[i].empty()) continue;
      const double m =
          *std::min_element(samples_[i].begin(), samples_[i].end());
      if (m < best_min) {
        best_min = m;
        best_idx = i;
      }
      if (m > leader * (1.0 + opts_.racing_margin)) {
        racing_active_[i] = false;
      }
    }
    racing_active_[best_idx] = true;  // the leader always keeps sampling
    rebuild_slot_map();
  }
}

}  // namespace protuner::core
