// Figure 8: the GS2 performance surface over two tunable parameters with
// the third fixed — "the optimization surface is not smooth and contains
// multiple local minimums".  We print the database values over
// (ntheta, nodes) at fixed negrid and count strict interior local minima.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "gs2/database.h"
#include "gs2/slice.h"
#include "gs2/surface.h"
#include "util/csv.h"

using namespace protuner;

int main() {
  bench::header("Fig. 8 — GS2 performance vs two parameters, third fixed",
                "non-smooth surface with multiple local minima");

  const auto space = gs2::gs2_space();
  const gs2::Gs2Surface surface;
  const gs2::Database db = gs2::Database::measure(space, surface, {});

  core::Point anchor = space.center();
  anchor[gs2::kNegrid] = 16.0;  // the fixed third parameter
  const gs2::Slice slice =
      gs2::take_slice(space, db, anchor, gs2::kNtheta, gs2::kNodes);

  util::CsvWriter csv(std::cout);
  csv.header({"ntheta", "nodes", "time"});
  for (std::size_t i = 0; i < slice.x_values.size(); ++i) {
    for (std::size_t j = 0; j < slice.y_values.size(); ++j) {
      csv.row(slice.x_values[i], slice.y_values[j], slice.grid[i][j]);
    }
  }

  std::cout << "\ncharacter map (rows: ntheta, cols: nodes; '.' fast, '#' "
               "slow)\n"
            << slice.ascii();

  std::cout << "\ninterior local minima on the slice: "
            << slice.local_minima() << "\n";
  bench::check(slice.local_minima() >= 2,
               "surface contains multiple local minima (Fig. 8)");
  bench::check(slice.max_neighbor_jump() >
                   0.02 * (slice.max_value - slice.min_value),
               "surface is not smooth (visible jumps between neighbours)");
  return 0;
}
