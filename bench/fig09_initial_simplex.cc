// Figure 9: average Normalized Total Time vs initial-simplex relative size
// r, for the minimal (N+1) and axial (2N) simplex shapes (§6.1).
// Paper findings to reproduce: the 2N simplex clearly outperforms N+1, and
// neither very small nor very large r performs well (sweet spot near 0.2).
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "cluster/simulated_cluster.h"
#include "core/pro.h"
#include "core/session.h"
#include "gs2/database.h"
#include "gs2/surface.h"
#include "util/ascii_plot.h"
#include "util/csv.h"
#include "varmodel/pareto_noise.h"

using namespace protuner;

int main() {
  const long reps = bench::reps(60);
  bench::header("Fig. 9 — avg NTT vs initial simplex size r, N+1 vs 2N",
                "2N simplex beats N+1; interior optimum in r (around 0.2)");
  std::cout << "repetitions per configuration: " << reps
            << " (set REPRO_REPS to change)\n";

  const auto space = gs2::gs2_space();
  const gs2::Gs2Surface surface;
  auto db = std::make_shared<gs2::Database>(
      gs2::Database::measure(space, surface, {}));
  auto noise = std::make_shared<varmodel::ParetoNoise>(0.10, 1.7);

  const std::vector<double> r_values{0.05, 0.1, 0.15, 0.2, 0.3,
                                     0.4,  0.5, 0.7,  0.9};

  util::CsvWriter csv(std::cout);
  csv.header({"r", "shape", "avg_ntt"});

  std::vector<double> ntt_min_simplex, ntt_2n_simplex;
  for (const double r : r_values) {
    for (const bool use_2n : {false, true}) {
      const auto outs = bench::per_rep(reps, [&, r, use_2n](long rep) {
        cluster::SimulatedCluster machine(
            db, noise,
            {.ranks = 6,
             .seed = bench::seed() + static_cast<std::uint64_t>(rep)});
        core::ProOptions opts;
        opts.initial_size = r;
        opts.use_2n_simplex = use_2n;
        core::ProStrategy pro(space, opts);
        return core::run_session(pro, machine,
                                 {.steps = 100, .record_series = false})
            .ntt;
      });
      double acc = 0.0;
      for (const double v : outs) acc += v;
      const double avg = acc / static_cast<double>(reps);
      csv.row(r, use_2n ? "2N" : "N+1", avg);
      (use_2n ? ntt_2n_simplex : ntt_min_simplex).push_back(avg);
    }
  }

  std::vector<util::Series> series{
      {"N+1", r_values, ntt_min_simplex},
      {"2N", r_values, ntt_2n_simplex},
  };
  util::PlotOptions po;
  po.title = "avg NTT vs r";
  std::cout << util::line_plot(series, po);

  // Shape checks.
  double mean_min = 0.0, mean_2n = 0.0;
  for (std::size_t i = 0; i < r_values.size(); ++i) {
    mean_min += ntt_min_simplex[i];
    mean_2n += ntt_2n_simplex[i];
  }
  bench::check(mean_2n < mean_min,
               "2N-vertex simplex outperforms the minimal N+1 simplex");

  const auto argmin = [](const std::vector<double>& v) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < v.size(); ++i) {
      if (v[i] < v[best]) best = i;
    }
    return best;
  };
  const std::size_t best_idx = argmin(ntt_2n_simplex);
  std::cout << "best r for 2N simplex: " << r_values[best_idx] << "\n";
  bench::check(best_idx != 0 && best_idx + 1 != r_values.size(),
               "neither extreme r is optimal (interior sweet spot)");
  bench::check(r_values[best_idx] >= 0.1 && r_values[best_idx] <= 0.5,
               "sweet spot in the moderate range the paper recommends "
               "(r ~ 0.2)");
  return 0;
}
