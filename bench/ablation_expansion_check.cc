// Ablation (§3.2, discussion after Algorithm 2): check the single most
// promising expansion point before committing all n expansions, vs
// evaluating all n expansions blindly.  The paper: "there are some
// expansion points with very poor performance that can slow down the
// algorithm" — each step costs the max over the batch, so one terrible
// expansion point inflates T_k.
#include <algorithm>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "cluster/simulated_cluster.h"
#include "core/pro.h"
#include "core/session.h"
#include "gs2/database.h"
#include "gs2/surface.h"
#include "util/csv.h"
#include "varmodel/pareto_noise.h"

using namespace protuner;

int main() {
  const long reps = bench::reps(200);
  bench::header("Ablation — expansion check-first vs blind full expansion",
                "checking the most promising expansion first avoids paying "
                "for terrible expansion points");

  const auto space = gs2::gs2_space();
  const gs2::Gs2Surface surface;
  auto db = std::make_shared<gs2::Database>(
      gs2::Database::measure(space, surface, {}));

  util::CsvWriter csv(std::cout);
  csv.header({"rho", "variant", "avg_ntt", "avg_best_clean",
              "avg_expansions", "avg_worst_step"});

  double worst_checked_total = 0.0, worst_blind_total = 0.0;
  for (const double rho : {0.0, 0.1, 0.3}) {
    std::shared_ptr<const varmodel::NoiseModel> noise;
    if (rho == 0.0) {
      noise = std::make_shared<varmodel::NoNoise>();
    } else {
      noise = std::make_shared<varmodel::ParetoNoise>(rho, 1.7);
    }
    for (const bool check_first : {true, false}) {
      struct RepOut {
        double ntt, clean, exp, worst;
      };
      const auto outs = bench::per_rep(reps, [&, check_first](long rep) {
        cluster::SimulatedCluster machine(
            db, noise,
            {.ranks = 6,
             .seed = bench::seed() + 31ULL * static_cast<std::uint64_t>(rep)});
        core::ProOptions opts;
        opts.expansion_check = check_first;
        opts.refresh_best = false;
        core::ProStrategy pro(space, opts);
        const core::SessionResult r = core::run_session(
            pro, machine, {.steps = 200, .record_series = true});
        return RepOut{r.ntt, r.best_clean,
                      static_cast<double>(pro.expansions_accepted()),
                      *std::max_element(r.step_costs.begin(),
                                        r.step_costs.end())};
      });
      double acc_ntt = 0.0, acc_clean = 0.0, acc_exp = 0.0;
      double acc_worst = 0.0;
      for (const auto& o : outs) {
        acc_ntt += o.ntt;
        acc_clean += o.clean;
        acc_exp += o.exp;
        acc_worst += o.worst;
      }
      const double a_ntt = acc_ntt / static_cast<double>(reps);
      const double a_worst = acc_worst / static_cast<double>(reps);
      csv.row(rho, check_first ? "check-first" : "blind", a_ntt,
              acc_clean / static_cast<double>(reps),
              acc_exp / static_cast<double>(reps), a_worst);
      if (rho == 0.0) {
        // Noise-free rows isolate the mechanism: the worst step reflects
        // the configurations actually evaluated, not noise spikes.
        (check_first ? worst_checked_total : worst_blind_total) += a_worst;
      }
    }
  }

  bench::check(worst_checked_total <= worst_blind_total,
               "noise-free: check-first never pays a worse worst-step than "
               "blind expansion (it avoids the terrible expansion corners)");
  std::cout << "note: on this surrogate the blind variant's extra "
               "evaluations double as exploration and can win on average "
               "NTT; the paper's caution concerns its worst-case steps.\n";
  return 0;
}
