// Ablation (paper footnote 3): the Fig. 10 analysis assumes the
// variability is independent across processors within a time step, while
// the paper's own Fig. 3 measurements show strong cross-rank correlation.
// How much does the i.i.d. assumption matter for the tuner?
//
// We run PRO (K = 1..3) on the GS2 database under (a) i.i.d. per-rank
// Pareto noise and (b) the correlated shock process with a comparable
// disturbance level, and compare final-configuration quality and
// Total_Time.  Shared shocks hit *every* candidate in a step equally, so
// they cancel in within-step comparisons — correlation should make tuning
// decisions easier, not harder.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "cluster/evaluator_spec.h"
#include "core/session.h"
#include "core/strategy_spec.h"
#include "gs2/database.h"
#include "gs2/surface.h"
#include "stats/pareto.h"
#include "util/csv.h"
#include "util/rng.h"
#include "varmodel/noise_spec.h"

using namespace protuner;

int main() {
  const long reps = bench::reps(150);
  bench::header("Ablation — i.i.d. vs cross-rank correlated variability",
                "shared shocks cancel in within-step comparisons; the "
                "i.i.d. assumption is the harder case for the tuner");

  const auto space = gs2::gs2_space();
  const gs2::Gs2Surface surface;
  auto db = std::make_shared<gs2::Database>(
      gs2::Database::measure(space, surface, {}));

  util::CsvWriter csv(std::cout);
  csv.header({"noise", "K", "avg_total_time", "avg_best_clean"});

  // clean_quality[noise_kind][k-1]
  double quality[2][3] = {};
  for (int kind = 0; kind < 2; ++kind) {
    for (int k = 1; k <= 3; ++k) {
      struct RepOut {
        double total, clean;
      };
      const auto outs = bench::per_rep(reps, [&](long rep) {
        const std::uint64_t seed =
            bench::seed() + 211ULL * static_cast<std::uint64_t>(rep);
        auto pro = core::make_strategy("pro:k=" + std::to_string(k), space,
                                       bench::seed());
        // kind 0: i.i.d. per-rank Pareto noise; kind 1: the correlated
        // shock trace (shared system-wide + per-rank events).
        auto machine =
            kind == 0
                ? cluster::make_evaluator(
                      "simulated:ranks=6", db,
                      varmodel::make_noise("pareto:rho=0.25,alpha=1.7"),
                      seed)
                : cluster::make_evaluator(
                      "trace:ranks=6,big_p=0.04,small_p=0.04", db, nullptr,
                      seed);
        const core::SessionResult r = core::run_session(
            *pro, *machine, {.steps = 200, .record_series = false});
        return RepOut{r.total_time, r.best_clean};
      });
      double acc_total = 0.0, acc_clean = 0.0;
      for (const auto& o : outs) {
        acc_total += o.total;
        acc_clean += o.clean;
      }
      const double q = acc_clean / static_cast<double>(reps);
      quality[kind][k - 1] = q;
      csv.row(kind == 0 ? "iid_pareto" : "correlated_shocks", k,
              acc_total / static_cast<double>(reps), q);
    }
  }
  std::cout << "K=1 final quality: iid=" << quality[0][0]
            << "  correlated=" << quality[1][0] << "\n";

  std::cout << "note: absolute NTT/quality between the two noise rows is "
               "not directly comparable (different effective disturbance "
               "levels); the mechanism check below isolates the "
               "correlation effect.\n";

  // Mechanism check: within one time step, configurations f and 1.05 f are
  // compared.  A *shared* shock (same draw added to both) can never flip
  // the ordering; *idiosyncratic* shocks of the same magnitude can.
  util::Rng rng(bench::seed());
  const stats::Pareto shock(1.7, 0.2);
  constexpr int kTrials = 40000;
  int shared_correct = 0, idio_correct = 0;
  const double f1 = 1.0, f2 = 1.05;
  for (int t = 0; t < kTrials; ++t) {
    const double s_shared = rng.bernoulli(0.3) ? shock.sample(rng) : 0.0;
    shared_correct += (f1 + s_shared) < (f2 + s_shared);
    const double n1 = rng.bernoulli(0.3) ? shock.sample(rng) : 0.0;
    const double n2 = rng.bernoulli(0.3) ? shock.sample(rng) : 0.0;
    idio_correct += (f1 + n1) < (f2 + n2);
  }
  const double acc_shared = static_cast<double>(shared_correct) / kTrials;
  const double acc_idio = static_cast<double>(idio_correct) / kTrials;
  std::cout << "within-step ranking accuracy: shared-shock=" << acc_shared
            << "  idiosyncratic=" << acc_idio << "\n";
  bench::check(acc_shared > 0.999,
               "shared (correlated) shocks never flip within-step "
               "comparisons");
  bench::check(acc_idio < acc_shared,
               "idiosyncratic (i.i.d.) shocks do flip comparisons — the "
               "paper's footnote-3 worst case is the independent one");
  return 0;
}
