// Ablation (§5.1): which K-sample estimator should feed the optimizer —
// min (the paper's proposal), mean (the conventional choice), median, or a
// single raw sample — under heavy-tailed (Pareto), light-tailed
// (exponential, Gaussian) and zero noise?
//
// Two layers of evidence:
//   1. Pure ranking reliability: probability that the estimator correctly
//      orders two configurations whose clean times differ by 5%, as a
//      function of K (no optimizer in the loop).
//   2. End-to-end: average NTT and final-configuration quality of PRO with
//      each estimator on the GS2 database.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "cluster/simulated_cluster.h"
#include "core/estimator.h"
#include "core/session.h"
#include "core/strategy_spec.h"
#include "gs2/database.h"
#include "gs2/surface.h"
#include "util/csv.h"
#include "varmodel/noise_spec.h"

using namespace protuner;

namespace {

double ranking_accuracy(const varmodel::NoiseModel& noise,
                        core::EstimatorKind kind, int k, long trials,
                        util::Rng& rng) {
  // f1 < f2 by 5%; count correct orderings of the K-sample estimates.
  const double f1 = 10.0, f2 = 10.5;
  long correct = 0;
  std::vector<double> s1(static_cast<std::size_t>(k));
  std::vector<double> s2(static_cast<std::size_t>(k));
  for (long t = 0; t < trials; ++t) {
    for (int i = 0; i < k; ++i) {
      s1[static_cast<std::size_t>(i)] = noise.observe(f1, rng);
      s2[static_cast<std::size_t>(i)] = noise.observe(f2, rng);
    }
    correct += core::reduce_samples(kind, s1) < core::reduce_samples(kind, s2);
  }
  return static_cast<double>(correct) / static_cast<double>(trials);
}

}  // namespace

int main() {
  const long reps = bench::reps(150);
  bench::header(
      "Ablation §5.1 — min vs mean vs median vs single-sample estimators",
      "under heavy tails the average misorders configurations; the min "
      "operator converges (Pareto min-of-K is Pareto(K alpha))");

  const std::vector<std::pair<const char*,
                              std::shared_ptr<const varmodel::NoiseModel>>>
      noises{
          {"pareto(rho=0.3,a=1.7)",
           varmodel::make_noise("pareto:rho=0.3,alpha=1.7")},
          {"pareto(rho=0.3,a=1.3)",
           varmodel::make_noise("pareto:rho=0.3,alpha=1.3")},
          {"exponential(rho=0.3)", varmodel::make_noise("exp:rho=0.3")},
          {"gaussian(rho=0.3,cv=0.5)",
           varmodel::make_noise("gauss:rho=0.3,cv=0.5")},
      };
  const std::vector<std::pair<const char*, core::EstimatorKind>> kinds{
      {"min", core::EstimatorKind::kMin},
      {"mean", core::EstimatorKind::kMean},
      {"median", core::EstimatorKind::kMedian},
  };

  std::cout << "\n--- ranking accuracy: P[estimator orders f vs 1.05 f "
               "correctly] ---\n";
  util::Rng rng(bench::seed());
  util::CsvWriter csv(std::cout);
  csv.header({"noise", "estimator", "K", "accuracy"});
  double min_acc_k5_pareto = 0.0, mean_acc_k5_pareto = 0.0;
  for (const auto& [nname, noise] : noises) {
    for (const auto& [ename, kind] : kinds) {
      for (int k : {1, 2, 3, 5, 10}) {
        const double acc = ranking_accuracy(*noise, kind, k, 20000, rng);
        csv.row(nname, ename, k, acc);
        if (std::string(nname) == "pareto(rho=0.3,a=1.7)" && k == 5) {
          if (kind == core::EstimatorKind::kMin) min_acc_k5_pareto = acc;
          if (kind == core::EstimatorKind::kMean) mean_acc_k5_pareto = acc;
        }
      }
    }
  }
  bench::check(min_acc_k5_pareto > mean_acc_k5_pareto,
               "heavy tail, K=5: min orders configurations more reliably "
               "than the average");
  bench::check(min_acc_k5_pareto > 0.85,
               "heavy tail, K=5: min operator is a dependable comparator");

  std::cout << "\n--- end-to-end: PRO(K=3) with each estimator on the GS2 "
               "database, rho = 0.3 ---\n";
  const auto space = gs2::gs2_space();
  const gs2::Gs2Surface surface;
  auto db = std::make_shared<gs2::Database>(
      gs2::Database::measure(space, surface, {}));
  auto pnoise = varmodel::make_noise("pareto:rho=0.3,alpha=1.7");

  util::CsvWriter csv2(std::cout);
  csv2.header({"estimator", "avg_ntt", "avg_best_clean"});
  double ntt_min = 0.0, ntt_mean = 0.0, clean_min = 0.0, clean_mean = 0.0;
  for (const auto& [ename, kind] : kinds) {
    struct RepOut {
      double ntt, clean;
    };
    const auto outs = bench::per_rep(reps, [&, ename](long rep) {
      cluster::SimulatedCluster machine(
          db, pnoise,
          {.ranks = 6,
           .seed = bench::seed() + 17ULL * static_cast<std::uint64_t>(rep)});
      auto pro = core::make_strategy(
          std::string("pro:k=3,refresh=0,est=") + ename, space,
          bench::seed());
      const core::SessionResult r = core::run_session(
          *pro, machine, {.steps = 400, .record_series = false});
      return RepOut{r.ntt, r.best_clean};
    });
    double acc_ntt = 0.0, acc_clean = 0.0;
    for (const auto& o : outs) {
      acc_ntt += o.ntt;
      acc_clean += o.clean;
    }
    const double a_ntt = acc_ntt / static_cast<double>(reps);
    const double a_clean = acc_clean / static_cast<double>(reps);
    csv2.row(ename, a_ntt, a_clean);
    if (kind == core::EstimatorKind::kMin) {
      ntt_min = a_ntt;
      clean_min = a_clean;
    }
    if (kind == core::EstimatorKind::kMean) {
      ntt_mean = a_ntt;
      clean_mean = a_clean;
    }
  }
  bench::check(clean_min <= clean_mean * 1.03,
               "end-to-end: min estimator finds a final configuration at "
               "least as good as the mean estimator");
  bench::check(ntt_min <= ntt_mean * 1.05,
               "end-to-end: min estimator's NTT is no worse than the mean "
               "estimator's");
  return 0;
}
