// Figure 10: average Normalized Total Time vs number of samples K (1..5)
// for idle throughput rho in {0, 0.05, ..., 0.4} — the paper's headline
// experiment for the min-of-K modification (§6.2).
//
// Setup mirrors the paper: PRO exactly as Algorithm 2 (vertex estimates
// measured once — no incumbent refresh), performance variability i.i.d.
// Pareto with alpha = 1.7 and beta from Eq. 17, samples for one point taken
// in *subsequent time steps* (no parallel-sampling advantage — worst case),
// NTT = (1 - rho) Total_Time (Eq. 23).  The paper averaged 2000 simulations
// per configuration; default here is 200 (REPRO_REPS raises it).
//
// Two panels are produced:
//   * Total_Time(100) — the paper's horizon.  On our surrogate landscape
//     the sampling overhead dominates at this horizon and K* = 1; the
//     quality column shows the §5 mechanism is nevertheless active (the
//     final configuration improves with K at high rho).
//   * Total_Time(800) — an extended horizon where the transient amortizes;
//     here the paper's interior optimum emerges at high rho (K* > 1).
// EXPERIMENTS.md discusses the discrepancy at the short horizon.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "cluster/simulated_cluster.h"
#include "core/session.h"
#include "core/strategy_spec.h"
#include "gs2/database.h"
#include "gs2/surface.h"
#include "util/ascii_plot.h"
#include "util/csv.h"
#include "util/env.h"
#include "varmodel/noise_model.h"
#include "varmodel/pareto_noise.h"

using namespace protuner;

namespace {

constexpr int kMaxSamples = 5;
constexpr double kAlpha = 1.7;

const std::vector<double> kRhos{0.0,  0.05, 0.10, 0.15, 0.20,
                                0.25, 0.30, 0.35, 0.40};

struct Grid {
  // [rho_index][k-1]
  std::vector<std::vector<double>> ntt;
  std::vector<std::vector<double>> clean;
};

Grid run_grid(const core::ParameterSpace& space, core::LandscapePtr db,
              std::size_t steps, long reps) {
  Grid g;
  g.ntt.assign(kRhos.size(), std::vector<double>(kMaxSamples, 0.0));
  g.clean.assign(kRhos.size(), std::vector<double>(kMaxSamples, 0.0));
  for (std::size_t ri = 0; ri < kRhos.size(); ++ri) {
    std::shared_ptr<const varmodel::NoiseModel> noise;
    if (kRhos[ri] == 0.0) {
      noise = std::make_shared<varmodel::NoNoise>();
    } else {
      noise = std::make_shared<varmodel::ParetoNoise>(kRhos[ri], kAlpha);
    }
    for (int k = 1; k <= kMaxSamples; ++k) {
      struct RepOut {
        double ntt, clean;
      };
      const auto outs = bench::per_rep(reps, [&](long rep) {
        cluster::SimulatedCluster machine(
            db, noise,
            {.ranks = 6,
             .seed = bench::seed() +
                     1000003ULL * static_cast<std::uint64_t>(rep + 1)});
        // refresh=0: paper-literal Algorithm 2; est=min, replicas=0
        // (sequential samples, the worst case) are the defaults.
        auto pro = core::make_strategy(
            "pro:refresh=0,k=" + std::to_string(k), space, bench::seed());
        const core::SessionResult r = core::run_session(
            *pro, machine, {.steps = steps, .record_series = false});
        return RepOut{r.ntt, r.best_clean};
      });
      double acc = 0.0, acc_clean = 0.0;
      for (const auto& o : outs) {
        acc += o.ntt;
        acc_clean += o.clean;
      }
      g.ntt[ri][static_cast<std::size_t>(k - 1)] =
          acc / static_cast<double>(reps);
      g.clean[ri][static_cast<std::size_t>(k - 1)] =
          acc_clean / static_cast<double>(reps);
    }
  }
  return g;
}

std::size_t argmin_k(const std::vector<double>& v) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] < v[best]) best = i;
  }
  return best + 1;  // K is 1-based
}

void print_panel(const char* title, const Grid& g) {
  std::cout << "\n--- " << title << " ---\n";
  util::CsvWriter csv(std::cout);
  csv.header({"rho", "samples", "avg_ntt", "avg_best_clean"});
  for (std::size_t ri = 0; ri < kRhos.size(); ++ri) {
    for (int k = 1; k <= kMaxSamples; ++k) {
      csv.row(kRhos[ri], k, g.ntt[ri][static_cast<std::size_t>(k - 1)],
              g.clean[ri][static_cast<std::size_t>(k - 1)]);
    }
  }
  const std::vector<double> ks{1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<util::Series> series;
  for (std::size_t ri = 0; ri < kRhos.size(); ri += 2) {
    series.push_back(
        {"rho=" + std::to_string(kRhos[ri]).substr(0, 4), ks, g.ntt[ri]});
  }
  util::PlotOptions po;
  po.title = "avg NTT vs #samples";
  std::cout << util::line_plot(series, po);
  std::cout << "optimal K per rho:";
  for (std::size_t ri = 0; ri < kRhos.size(); ++ri) {
    std::cout << "  " << kRhos[ri] << "->" << argmin_k(g.ntt[ri]);
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  const long reps = bench::reps(200);
  const auto paper_steps =
      static_cast<std::size_t>(util::env_long("REPRO_STEPS", 100));
  bench::header("Fig. 10 — avg NTT vs #samples K for rho = 0 .. 0.4",
                "K is pure overhead at rho = 0; under heavy variability an "
                "interior optimum K* > 1 appears");
  std::cout << "repetitions per configuration: " << reps
            << " (paper used 2000; set REPRO_REPS; REPRO_THREADS "
               "parallelizes the repetitions without changing any output "
               "byte)\n";

  const auto space = gs2::gs2_space();
  const gs2::Gs2Surface surface;
  auto db = std::make_shared<gs2::Database>(
      gs2::Database::measure(space, surface, {}));

  const Grid short_h = run_grid(space, db, paper_steps, reps);
  // Long horizon: same order of simulated work, fewer reps.
  const Grid long_h = run_grid(space, db, 8 * paper_steps,
                               std::max<long>(20, reps / 2));

  print_panel("panel 1: Total_Time(100), the paper's horizon", short_h);
  print_panel("panel 2: Total_Time(800), extended horizon", long_h);

  // ---- shape checks --------------------------------------------------
  bool rho0_monotone = true;
  for (int k = 1; k < kMaxSamples; ++k) {
    if (short_h.ntt[0][static_cast<std::size_t>(k)] <
        short_h.ntt[0][static_cast<std::size_t>(k - 1)]) {
      rho0_monotone = false;
    }
  }
  bench::check(rho0_monotone,
               "rho = 0: NTT increases with K (sampling is pure overhead)");

  const double slope1 = short_h.ntt[0][1] - short_h.ntt[0][0];
  const double slope4 = short_h.ntt[0][4] - short_h.ntt[0][3];
  bench::check(slope1 > 0.0 && slope4 > 0.0 && slope4 < 3.0 * slope1 + 1.0,
               "rho = 0: growth with K is linear");

  bench::check(short_h.ntt[8][0] > short_h.ntt[1][0],
               "system performance degrades as variability grows");

  // Quality mechanism (§5): at high rho the *final configuration* found
  // with multi-sampling is at least as good as with single sampling.
  bench::check(short_h.clean[8][1] < short_h.clean[8][0] * 1.02,
               "rho = 0.4: min-of-K reaches a final configuration at least "
               "as good as single sampling (estimator mechanism active)");

  // The paper's interior optimum: on our surrogate it emerges once the
  // transient can amortize (extended horizon, high rho).
  bench::check(argmin_k(long_h.ntt[8]) > 1,
               "rho = 0.4, extended horizon: interior optimum K* > 1 "
               "(multiple samples beat single sampling)");
  bench::check(argmin_k(long_h.ntt[8]) >= argmin_k(long_h.ntt[1]),
               "optimal K* does not decrease as rho grows (extended "
               "horizon)");

  const double best0 = short_h.ntt[0][argmin_k(short_h.ntt[0]) - 1];
  const double best005 = short_h.ntt[1][argmin_k(short_h.ntt[1]) - 1];
  std::cout << "rho=0 best NTT=" << best0
            << "  rho=0.05 best NTT=" << best005
            << (best005 < best0
                    ? "  (reproduces the paper's 'helpful noise' anomaly)"
                    : "  (anomaly not visible at this rep count)")
            << "\n";
  return 0;
}
