// Ablation — the §3.2.2 probe continuation policy and the incumbent
// estimate policy:
//   * faithful: continue with the 2N probe points only (the paper's text),
//     incumbent estimate measured once (stale);
//   * conservative: carry the incumbent into the new simplex;
//   * refreshed: re-measure the incumbent every round.
// Under noise these differ in how easily the search loses a good
// configuration to a spurious probe escape — the fragility min-of-K fixes.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "cluster/simulated_cluster.h"
#include "core/pro.h"
#include "core/session.h"
#include "gs2/database.h"
#include "gs2/surface.h"
#include "util/csv.h"
#include "varmodel/pareto_noise.h"

using namespace protuner;

int main() {
  const long reps = bench::reps(200);
  bench::header("Ablation — probe continuation and incumbent policies",
                "dropping the incumbent after a probe (paper-literal) "
                "exposes the search to losing its best point under noise");

  const auto space = gs2::gs2_space();
  const gs2::Gs2Surface surface;
  auto db = std::make_shared<gs2::Database>(
      gs2::Database::measure(space, surface, {}));

  struct Variant {
    const char* name;
    bool keep_incumbent;
    bool refresh;
  };
  const std::vector<Variant> variants{
      {"faithful (drop incumbent, stale)", false, false},
      {"keep incumbent, stale", true, false},
      {"faithful, refreshed incumbent", false, true},
      {"keep incumbent, refreshed", true, true},
  };

  util::CsvWriter csv(std::cout);
  csv.header({"variant", "K", "avg_ntt_200", "avg_best_clean",
              "avg_probes"});

  // quality[variant][k=1 or 3]
  double quality[4][2] = {};
  for (std::size_t v = 0; v < variants.size(); ++v) {
    for (int ki = 0; ki < 2; ++ki) {
      const int k = ki == 0 ? 1 : 3;
      auto noise = std::make_shared<varmodel::ParetoNoise>(0.3, 1.7);
      struct RepOut {
        double ntt, clean, probes;
      };
      const auto outs = bench::per_rep(reps, [&](long rep) {
        cluster::SimulatedCluster machine(
            db, noise,
            {.ranks = 6,
             .seed = bench::seed() + 401ULL * static_cast<std::uint64_t>(rep)});
        core::ProOptions opts;
        opts.samples = k;
        opts.keep_incumbent_after_probe = variants[v].keep_incumbent;
        opts.refresh_best = variants[v].refresh;
        core::ProStrategy pro(space, opts);
        const core::SessionResult r = core::run_session(
            pro, machine, {.steps = 200, .record_series = false});
        return RepOut{r.ntt, r.best_clean,
                      static_cast<double>(pro.probes_run())};
      });
      double acc_ntt = 0.0, acc_clean = 0.0, acc_probes = 0.0;
      for (const auto& o : outs) {
        acc_ntt += o.ntt;
        acc_clean += o.clean;
        acc_probes += o.probes;
      }
      quality[v][ki] = acc_clean / static_cast<double>(reps);
      csv.row(variants[v].name, k, acc_ntt / static_cast<double>(reps),
              quality[v][ki], acc_probes / static_cast<double>(reps));
    }
  }

  // Multi-sampling must close (or shrink) whatever gap the fragile policy
  // opens: the K=3 spread across policies is no wider than the K=1 spread.
  const auto spread = [&](int ki) {
    double lo = quality[0][ki], hi = quality[0][ki];
    for (int v = 1; v < 4; ++v) {
      lo = std::min(lo, quality[v][ki]);
      hi = std::max(hi, quality[v][ki]);
    }
    return hi - lo;
  };
  std::cout << "final-quality spread across policies: K=1 -> " << spread(0)
            << ", K=3 -> " << spread(1) << "\n";
  bench::check(spread(1) <= spread(0) + 0.01,
               "min-of-3 sampling makes the search robust to the probe/"
               "incumbent policy choice (spread does not widen)");
  return 0;
}
