// EXTENSION: racing multi-sampling.
//
// The paper's multi-sample modification re-measures EVERY candidate K
// times.  Since the step cost is the max over the batch (Eq. 1), the K-1
// re-measurements of clearly-losing candidates are the most expensive part
// of the round and carry no information the min-estimator will use.
// Racing drops a candidate from later sampling rounds once its running
// minimum exceeds (1 + margin) x the round leader's minimum.
//
// This bench sweeps rho and compares PRO K=3 plain vs raced: equal (or
// better) final quality with lower Total_Time under heavy variability.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "cluster/simulated_cluster.h"
#include "core/session.h"
#include "core/strategy_spec.h"
#include "gs2/database.h"
#include "gs2/surface.h"
#include "util/csv.h"
#include "varmodel/noise_model.h"
#include "varmodel/pareto_noise.h"

using namespace protuner;

int main() {
  const long reps = bench::reps(200);
  bench::header("Extension — racing multi-sampling",
                "drop clear losers from later sample rounds: same min-of-K "
                "estimates where they matter, cheaper T_k");

  const auto space = gs2::gs2_space();
  const gs2::Gs2Surface surface;
  auto db = std::make_shared<gs2::Database>(
      gs2::Database::measure(space, surface, {}));

  util::CsvWriter csv(std::cout);
  csv.header({"rho", "variant", "avg_ntt_400", "avg_best_clean"});

  bool racing_never_worse = true;
  for (const double rho : {0.1, 0.2, 0.3, 0.4}) {
    auto noise = std::make_shared<varmodel::ParetoNoise>(rho, 1.7);
    double ntt_plain = 0.0, ntt_raced = 0.0;
    for (const bool racing : {false, true}) {
      struct RepOut {
        double ntt, clean;
      };
      const auto outs = bench::per_rep(reps, [&, racing](long rep) {
        cluster::SimulatedCluster machine(
            db, noise,
            {.ranks = 6,
             .seed = bench::seed() + 733ULL * static_cast<std::uint64_t>(rep)});
        auto pro = core::make_strategy(racing ? "pro:k=3,racing=1"
                                              : "pro:k=3",
                                       space, bench::seed());
        const auto r = core::run_session(
            *pro, machine, {.steps = 400, .record_series = false});
        return RepOut{r.ntt, r.best_clean};
      });
      double acc = 0.0, acc_clean = 0.0;
      for (const auto& o : outs) {
        acc += o.ntt;
        acc_clean += o.clean;
      }
      const double ntt = acc / static_cast<double>(reps);
      csv.row(rho, racing ? "K=3 raced" : "K=3 plain", ntt,
              acc_clean / static_cast<double>(reps));
      (racing ? ntt_raced : ntt_plain) = ntt;
    }
    std::cout << "rho=" << rho << ": plain=" << ntt_plain
              << " raced=" << ntt_raced << "  ("
              << 100.0 * (1.0 - ntt_raced / ntt_plain) << "% saved)\n";
    if (ntt_raced > ntt_plain * 1.01) racing_never_worse = false;
  }

  bench::check(racing_never_worse,
               "racing never costs more than plain K=3 sampling (within 1%) "
               "and typically saves");
  return 0;
}
