// Google-benchmark microbenchmarks for the core primitives: projection,
// simplex transforms, PRO stepping, database interpolation, noise sampling
// and the two-priority-queue simulator.  These guard the library's
// per-operation costs (the tuning layer must be negligible next to one
// application iteration).
#include <benchmark/benchmark.h>

#include <atomic>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/simulated_cluster.h"
#include "core/pro.h"
#include "core/projection.h"
#include "core/round_engine.h"
#include "core/session.h"
#include "core/simplex.h"
#include "gs2/database.h"
#include "gs2/surface.h"
#include "stats/pareto.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "varmodel/pareto_noise.h"
#include "varmodel/two_job_sim.h"

using namespace protuner;

namespace {

void BM_Projection(benchmark::State& state) {
  const auto space = gs2::gs2_space();
  const core::Point center = space.center();
  core::Point x{33.1, 17.7, 41.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::project(space, center, x));
  }
}
BENCHMARK(BM_Projection);

void BM_SimplexReflections(benchmark::State& state) {
  const auto space = gs2::gs2_space();
  core::Simplex s = core::axial_2n_simplex(space, 0.2);
  s.set_values(std::vector<double>{1, 2, 3, 4, 5, 6});
  s.order();
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.reflections(space));
  }
}
BENCHMARK(BM_SimplexReflections);

void BM_SurfaceEval(benchmark::State& state) {
  const gs2::Gs2Surface surface;
  const core::Point x{32.0, 16.0, 16.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(surface.clean_time(x));
  }
}
BENCHMARK(BM_SurfaceEval);

void BM_DatabaseExactLookup(benchmark::State& state) {
  const auto space = gs2::gs2_space();
  const gs2::Gs2Surface surface;
  const gs2::Database db = gs2::Database::measure(space, surface, {});
  const core::Point x{16.0, 8.0, 4.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.clean_time(x));
  }
}
BENCHMARK(BM_DatabaseExactLookup);

void BM_DatabaseInterpolatedLookupCached(benchmark::State& state) {
  const auto space = gs2::gs2_space();
  const gs2::Gs2Surface surface;
  const gs2::Database db = gs2::Database::measure(space, surface, {});
  const core::Point x{16.0, 9.0, 4.0};  // off the stride-2 grid
  (void)db.clean_time(x);               // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.clean_time(x));
  }
}
BENCHMARK(BM_DatabaseInterpolatedLookupCached);

// --- Interpolation-miss cost: indexed k-d-tree path vs the brute-force
// reference, on the real GS2 database (stride 2, ~2k entries at stride 1)
// and on a large 4-D grid (~28k entries).  Both variants bypass the memo
// cache, so these measure the pure per-miss interpolation work that every
// cold lookup pays.  The two must return bit-identical values
// (test_database_index); the indexed path must be >= 10x faster at
// database scale (EXPERIMENTS.md records the measured ratio).

gs2::Database make_gs2_db() {
  return gs2::Database::measure(gs2::gs2_space(), gs2::Gs2Surface{}, {});
}

gs2::Database make_large_db() {
  const core::ParameterSpace space({
      core::Parameter::integer("a", 0, 12),
      core::Parameter::integer("b", 0, 12),
      core::Parameter::integer("c", 0, 12),
      core::Parameter::integer("d", 0, 12),
  });
  const core::QuadraticLandscape bowl(core::Point{6.0, 5.0, 7.0, 4.0}, 1.0,
                                      0.1);
  return gs2::Database::measure(space, bowl, {.stride = 1});
}

std::vector<core::Point> off_grid_queries(const core::ParameterSpace& space,
                                          int n) {
  util::Rng rng(99);
  std::vector<core::Point> pts;
  for (int i = 0; i < n; ++i) {
    core::Point x(space.size());
    for (std::size_t d = 0; d < space.size(); ++d) {
      x[d] = rng.uniform(space.param(d).lower(), space.param(d).upper());
    }
    pts.push_back(std::move(x));
  }
  return pts;
}

void BM_DatabaseInterpolate_Reference(benchmark::State& state) {
  const gs2::Database db = state.range(0) == 0 ? make_gs2_db()
                                               : make_large_db();
  const auto pts = off_grid_queries(db.space(), 64);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.interpolate_reference(pts[i]));
    i = (i + 1) % pts.size();
  }
  state.SetLabel(state.range(0) == 0 ? "gs2" : "large");
  state.counters["entries"] = static_cast<double>(db.entries());
}
BENCHMARK(BM_DatabaseInterpolate_Reference)->Arg(0)->Arg(1);

void BM_DatabaseInterpolate_Indexed(benchmark::State& state) {
  const gs2::Database db = state.range(0) == 0 ? make_gs2_db()
                                               : make_large_db();
  const auto pts = off_grid_queries(db.space(), 64);
  (void)db.interpolate_uncached(pts[0]);  // build the index up front
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.interpolate_uncached(pts[i]));
    i = (i + 1) % pts.size();
  }
  state.SetLabel(state.range(0) == 0 ? "gs2" : "large");
  state.counters["entries"] = static_cast<double>(db.entries());
}
BENCHMARK(BM_DatabaseInterpolate_Indexed)->Arg(0)->Arg(1);

// Cold-start cost of one index build (measure/load pay this once; insert
// pays it on the next lookup) — context for the per-miss wins above.
void BM_DatabaseIndexBuild(benchmark::State& state) {
  const gs2::Database db = state.range(0) == 0 ? make_gs2_db()
                                               : make_large_db();
  std::ostringstream dump;
  db.save(dump);
  const std::string csv = dump.str();
  const core::Point probe = off_grid_queries(db.space(), 1)[0];
  for (auto _ : state) {
    std::istringstream in(csv);
    gs2::Database fresh =
        gs2::Database::load(in, db.space(), {});
    benchmark::DoNotOptimize(fresh.interpolate_uncached(probe));
  }
  state.SetLabel(state.range(0) == 0 ? "gs2" : "large");
  state.counters["entries"] = static_cast<double>(db.entries());
}
BENCHMARK(BM_DatabaseIndexBuild)->Arg(0)->Arg(1);

// Batch landscape lookup vs a scalar loop over the same warm batch: the
// shape SimulatedCluster::run_step drives every step (one config per rank,
// duplicates from replicated sampling).
void BM_DatabaseBatchLookup(benchmark::State& state) {
  const gs2::Database db = make_gs2_db();
  auto pts = off_grid_queries(db.space(), 6);
  pts.push_back(pts[0]);  // replicated-sampling duplicates
  pts.push_back(pts[1]);
  std::vector<double> out(pts.size());
  db.clean_times(pts, out);  // warm
  for (auto _ : state) {
    db.clean_times(pts, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pts.size()));
}
BENCHMARK(BM_DatabaseBatchLookup);

void BM_DatabaseScalarLoopLookup(benchmark::State& state) {
  const gs2::Database db = make_gs2_db();
  auto pts = off_grid_queries(db.space(), 6);
  pts.push_back(pts[0]);
  pts.push_back(pts[1]);
  std::vector<double> out(pts.size());
  db.clean_times(pts, out);  // warm
  for (auto _ : state) {
    for (std::size_t i = 0; i < pts.size(); ++i) {
      out[i] = db.clean_time(pts[i]);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pts.size()));
}
BENCHMARK(BM_DatabaseScalarLoopLookup);

// One full simulated cluster step (8 ranks, mixed on/off-grid configs)
// through the batched landscape path — the per-step cost the optimizer
// loop pays.
void BM_ClusterStep(benchmark::State& state) {
  const auto space = gs2::gs2_space();
  auto db = std::make_shared<gs2::Database>(make_gs2_db());
  auto noise = std::make_shared<varmodel::ParetoNoise>(0.2, 1.7);
  cluster::SimulatedCluster machine(db, noise, {.ranks = 8, .seed = 5});
  auto configs = off_grid_queries(space, 6);
  configs.push_back(configs[0]);
  configs.push_back(core::Point{16.0, 8.0, 4.0});  // exact hit
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine.run_step(configs));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8);
}
BENCHMARK(BM_ClusterStep);

// Concurrent interpolated lookups: each benchmark thread walks a disjoint
// set of off-grid points against one shared database.  Guards the cache
// sharding — with the old single global lock this serialized and throughput
// collapsed as ->Threads() grew.
void BM_DatabaseLookup_Concurrent(benchmark::State& state) {
  static const auto space = gs2::gs2_space();
  static const gs2::Gs2Surface surface;
  static const gs2::Database db = gs2::Database::measure(space, surface, {});
  // Off-grid points, distinct per thread so threads touch different shards.
  std::vector<core::Point> pts;
  util::Rng rng(static_cast<std::uint64_t>(state.thread_index()) + 1);
  for (int i = 0; i < 64; ++i) {
    core::Point x(space.size());
    for (std::size_t d = 0; d < space.size(); ++d) {
      x[d] = rng.uniform(space.param(d).lower(), space.param(d).upper());
    }
    pts.push_back(std::move(x));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.clean_time(pts[i]));
    i = (i + 1) % pts.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DatabaseLookup_Concurrent)->Threads(1)->Threads(4)->Threads(8);

// Round-trip cost of dispatching one trivial task through the pool — the
// per-repetition overhead floor of exp::run_repetitions.  Must stay
// microseconds: repetitions are whole tuning sessions (milliseconds+).
void BM_ThreadPool_Dispatch(benchmark::State& state) {
  util::ThreadPool pool(2);
  for (auto _ : state) {
    auto f = pool.submit([] { return 1; });
    benchmark::DoNotOptimize(f.get());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ThreadPool_Dispatch);

// Batch dispatch: 256 tasks submitted at once, then drained — the shape
// run_repetitions actually uses (queue everything, join once).
void BM_ThreadPool_BatchDispatch(benchmark::State& state) {
  for (auto _ : state) {
    std::atomic<int> done{0};
    {
      util::ThreadPool pool(4);
      for (int i = 0; i < 256; ++i) {
        pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
      }
    }
    benchmark::DoNotOptimize(done.load());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_ThreadPool_BatchDispatch);

void BM_ParetoNoiseSample(benchmark::State& state) {
  const varmodel::ParetoNoise noise(0.3, 1.7);
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(noise.sample(1.0, rng));
  }
}
BENCHMARK(BM_ParetoNoiseSample);

void BM_TwoJobSimRun(benchmark::State& state) {
  varmodel::TwoJobConfig cfg;
  cfg.arrival_rate = 0.3;
  cfg.service = std::make_shared<stats::Pareto>(1.7, 0.41);
  const varmodel::TwoJobSimulator sim(cfg);
  util::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run_application(5.0, rng));
  }
}
BENCHMARK(BM_TwoJobSimRun);

void BM_ProTuningStep(benchmark::State& state) {
  const auto space = gs2::gs2_space();
  const gs2::Gs2Surface surface;
  auto db = std::make_shared<gs2::Database>(
      gs2::Database::measure(space, surface, {}));
  auto noise = std::make_shared<varmodel::ParetoNoise>(0.2, 1.7);
  cluster::SimulatedCluster machine(db, noise, {.ranks = 6, .seed = 3});
  core::ProStrategy pro(space, {});
  core::RoundEngineOptions eo;
  eo.width = 6;
  eo.record_series = false;
  core::RoundEngine engine(pro, eo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.step(machine));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 6);
}
BENCHMARK(BM_ProTuningStep);

void BM_FullTuningSession100(benchmark::State& state) {
  const auto space = gs2::gs2_space();
  const gs2::Gs2Surface surface;
  auto db = std::make_shared<gs2::Database>(
      gs2::Database::measure(space, surface, {}));
  auto noise = std::make_shared<varmodel::ParetoNoise>(0.2, 1.7);
  for (auto _ : state) {
    cluster::SimulatedCluster machine(db, noise, {.ranks = 6, .seed = 4});
    core::ProStrategy pro(space, {});
    benchmark::DoNotOptimize(
        core::run_session(pro, machine, {.steps = 100}));
  }
}
BENCHMARK(BM_FullTuningSession100);

}  // namespace

BENCHMARK_MAIN();
