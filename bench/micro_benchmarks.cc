// Google-benchmark microbenchmarks for the core primitives: projection,
// simplex transforms, PRO stepping, database interpolation, noise sampling
// and the two-priority-queue simulator.  These guard the library's
// per-operation costs (the tuning layer must be negligible next to one
// application iteration).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cassert>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/simulated_cluster.h"
#include "core/fixed.h"
#include "core/pro.h"
#include "core/projection.h"
#include "core/round_engine.h"
#include "core/session.h"
#include "core/simplex.h"
#include "gs2/database.h"
#include "gs2/surface.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/pareto.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/thread_pool.h"
#include "varmodel/composite_noise.h"
#include "varmodel/pareto_noise.h"
#include "varmodel/simple_noise.h"
#include "varmodel/two_job_sim.h"

using namespace protuner;

namespace {

void BM_Projection(benchmark::State& state) {
  const auto space = gs2::gs2_space();
  const core::Point center = space.center();
  core::Point x{33.1, 17.7, 41.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::project(space, center, x));
  }
}
BENCHMARK(BM_Projection);

void BM_SimplexReflections(benchmark::State& state) {
  const auto space = gs2::gs2_space();
  core::Simplex s = core::axial_2n_simplex(space, 0.2);
  s.set_values(std::vector<double>{1, 2, 3, 4, 5, 6});
  s.order();
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.reflections(space));
  }
}
BENCHMARK(BM_SimplexReflections);

void BM_SurfaceEval(benchmark::State& state) {
  const gs2::Gs2Surface surface;
  const core::Point x{32.0, 16.0, 16.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(surface.clean_time(x));
  }
}
BENCHMARK(BM_SurfaceEval);

void BM_DatabaseExactLookup(benchmark::State& state) {
  const auto space = gs2::gs2_space();
  const gs2::Gs2Surface surface;
  const gs2::Database db = gs2::Database::measure(space, surface, {});
  const core::Point x{16.0, 8.0, 4.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.clean_time(x));
  }
}
BENCHMARK(BM_DatabaseExactLookup);

void BM_DatabaseInterpolatedLookupCached(benchmark::State& state) {
  const auto space = gs2::gs2_space();
  const gs2::Gs2Surface surface;
  const gs2::Database db = gs2::Database::measure(space, surface, {});
  const core::Point x{16.0, 9.0, 4.0};  // off the stride-2 grid
  (void)db.clean_time(x);               // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.clean_time(x));
  }
}
BENCHMARK(BM_DatabaseInterpolatedLookupCached);

// --- Interpolation-miss cost: indexed k-d-tree path vs the brute-force
// reference, on the real GS2 database (stride 2, ~2k entries at stride 1)
// and on a large 4-D grid (~28k entries).  Both variants bypass the memo
// cache, so these measure the pure per-miss interpolation work that every
// cold lookup pays.  The two must return bit-identical values
// (test_database_index); the indexed path must be >= 10x faster at
// database scale (EXPERIMENTS.md records the measured ratio).

gs2::Database make_gs2_db() {
  return gs2::Database::measure(gs2::gs2_space(), gs2::Gs2Surface{}, {});
}

gs2::Database make_large_db() {
  const core::ParameterSpace space({
      core::Parameter::integer("a", 0, 12),
      core::Parameter::integer("b", 0, 12),
      core::Parameter::integer("c", 0, 12),
      core::Parameter::integer("d", 0, 12),
  });
  const core::QuadraticLandscape bowl(core::Point{6.0, 5.0, 7.0, 4.0}, 1.0,
                                      0.1);
  return gs2::Database::measure(space, bowl, {.stride = 1});
}

std::vector<core::Point> off_grid_queries(const core::ParameterSpace& space,
                                          int n) {
  util::Rng rng(99);
  std::vector<core::Point> pts;
  for (int i = 0; i < n; ++i) {
    core::Point x(space.size());
    for (std::size_t d = 0; d < space.size(); ++d) {
      x[d] = rng.uniform(space.param(d).lower(), space.param(d).upper());
    }
    pts.push_back(std::move(x));
  }
  return pts;
}

void BM_DatabaseInterpolate_Reference(benchmark::State& state) {
  const gs2::Database db = state.range(0) == 0 ? make_gs2_db()
                                               : make_large_db();
  const auto pts = off_grid_queries(db.space(), 64);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.interpolate_reference(pts[i]));
    i = (i + 1) % pts.size();
  }
  state.SetLabel(state.range(0) == 0 ? "gs2" : "large");
  state.counters["entries"] = static_cast<double>(db.entries());
}
BENCHMARK(BM_DatabaseInterpolate_Reference)->Arg(0)->Arg(1);

void BM_DatabaseInterpolate_Indexed(benchmark::State& state) {
  const gs2::Database db = state.range(0) == 0 ? make_gs2_db()
                                               : make_large_db();
  const auto pts = off_grid_queries(db.space(), 64);
  (void)db.interpolate_uncached(pts[0]);  // build the index up front
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.interpolate_uncached(pts[i]));
    i = (i + 1) % pts.size();
  }
  state.SetLabel(state.range(0) == 0 ? "gs2" : "large");
  state.counters["entries"] = static_cast<double>(db.entries());
}
BENCHMARK(BM_DatabaseInterpolate_Indexed)->Arg(0)->Arg(1);

/// Restores the process-wide fast-math knob when a simd-variant benchmark
/// finishes, so interleaved deterministic benchmarks stay on the default
/// path.
class ScopedFastMath {
 public:
  explicit ScopedFastMath(bool on) : prev_(util::simd::fast_math_enabled()) {
    util::simd::set_fast_math(on);
  }
  ~ScopedFastMath() { util::simd::set_fast_math(prev_); }

 private:
  bool prev_;
};

// The same per-miss interpolation work with the simd:: fast-math kernels
// opted in: SoA fma distance scans in both the full-scan reference and the
// k-d-tree leaf path.  Compare against the deterministic variants above at
// the same Arg (the "large" database holds 28k+ entries, the scale the
// acceptance criterion names).  backend label records which ISA ran.
void BM_DatabaseInterpolate_ReferenceSimd(benchmark::State& state) {
  const ScopedFastMath fast(true);
  const gs2::Database db = state.range(0) == 0 ? make_gs2_db()
                                               : make_large_db();
  const auto pts = off_grid_queries(db.space(), 64);
  (void)db.interpolate_reference(pts[0]);  // build the SoA index up front
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.interpolate_reference(pts[i]));
    i = (i + 1) % pts.size();
  }
  state.SetLabel(std::string(state.range(0) == 0 ? "gs2/" : "large/") +
                 util::simd::backend_name());
  state.counters["entries"] = static_cast<double>(db.entries());
}
BENCHMARK(BM_DatabaseInterpolate_ReferenceSimd)->Arg(0)->Arg(1);

void BM_DatabaseInterpolate_IndexedSimd(benchmark::State& state) {
  const ScopedFastMath fast(true);
  const gs2::Database db = state.range(0) == 0 ? make_gs2_db()
                                               : make_large_db();
  const auto pts = off_grid_queries(db.space(), 64);
  (void)db.interpolate_uncached(pts[0]);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.interpolate_uncached(pts[i]));
    i = (i + 1) % pts.size();
  }
  state.SetLabel(std::string(state.range(0) == 0 ? "gs2/" : "large/") +
                 util::simd::backend_name());
  state.counters["entries"] = static_cast<double>(db.entries());
}
BENCHMARK(BM_DatabaseInterpolate_IndexedSimd)->Arg(0)->Arg(1);

// Cold-start cost of one index build (measure/load pay this once; insert
// pays it on the next lookup) — context for the per-miss wins above.
void BM_DatabaseIndexBuild(benchmark::State& state) {
  const gs2::Database db = state.range(0) == 0 ? make_gs2_db()
                                               : make_large_db();
  std::ostringstream dump;
  db.save(dump);
  const std::string csv = dump.str();
  const core::Point probe = off_grid_queries(db.space(), 1)[0];
  for (auto _ : state) {
    std::istringstream in(csv);
    gs2::Database fresh =
        gs2::Database::load(in, db.space(), {});
    benchmark::DoNotOptimize(fresh.interpolate_uncached(probe));
  }
  state.SetLabel(state.range(0) == 0 ? "gs2" : "large");
  state.counters["entries"] = static_cast<double>(db.entries());
}
BENCHMARK(BM_DatabaseIndexBuild)->Arg(0)->Arg(1);

// Batch landscape lookup vs a scalar loop over the same warm batch: the
// shape SimulatedCluster::run_step drives every step (one config per rank,
// duplicates from replicated sampling).
void BM_DatabaseBatchLookup(benchmark::State& state) {
  const gs2::Database db = make_gs2_db();
  auto pts = off_grid_queries(db.space(), 6);
  pts.push_back(pts[0]);  // replicated-sampling duplicates
  pts.push_back(pts[1]);
  std::vector<double> out(pts.size());
  db.clean_times(pts, out);  // warm
  for (auto _ : state) {
    db.clean_times(pts, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pts.size()));
}
BENCHMARK(BM_DatabaseBatchLookup);

void BM_DatabaseScalarLoopLookup(benchmark::State& state) {
  const gs2::Database db = make_gs2_db();
  auto pts = off_grid_queries(db.space(), 6);
  pts.push_back(pts[0]);
  pts.push_back(pts[1]);
  std::vector<double> out(pts.size());
  db.clean_times(pts, out);  // warm
  for (auto _ : state) {
    for (std::size_t i = 0; i < pts.size(); ++i) {
      out[i] = db.clean_time(pts[i]);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pts.size()));
}
BENCHMARK(BM_DatabaseScalarLoopLookup);

// One full simulated cluster step (8 ranks, mixed on/off-grid configs)
// through the batched landscape path — the per-step cost the optimizer
// loop pays.
void BM_ClusterStep(benchmark::State& state) {
  const auto space = gs2::gs2_space();
  auto db = std::make_shared<gs2::Database>(make_gs2_db());
  auto noise = std::make_shared<varmodel::ParetoNoise>(0.2, 1.7);
  cluster::SimulatedCluster machine(db, noise, {.ranks = 8, .seed = 5});
  auto configs = off_grid_queries(space, 6);
  configs.push_back(configs[0]);
  configs.push_back(core::Point{16.0, 8.0, 4.0});  // exact hit
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine.run_step(configs));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8);
}
BENCHMARK(BM_ClusterStep);

// Concurrent interpolated lookups: each benchmark thread walks a disjoint
// set of off-grid points against one shared database.  Guards the cache
// sharding — with the old single global lock this serialized and throughput
// collapsed as ->Threads() grew.
void BM_DatabaseLookup_Concurrent(benchmark::State& state) {
  static const auto space = gs2::gs2_space();
  static const gs2::Gs2Surface surface;
  static const gs2::Database db = gs2::Database::measure(space, surface, {});
  // Off-grid points, distinct per thread so threads touch different shards.
  std::vector<core::Point> pts;
  util::Rng rng(static_cast<std::uint64_t>(state.thread_index()) + 1);
  for (int i = 0; i < 64; ++i) {
    core::Point x(space.size());
    for (std::size_t d = 0; d < space.size(); ++d) {
      x[d] = rng.uniform(space.param(d).lower(), space.param(d).upper());
    }
    pts.push_back(std::move(x));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.clean_time(pts[i]));
    i = (i + 1) % pts.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DatabaseLookup_Concurrent)->Threads(1)->Threads(4)->Threads(8);

// Round-trip cost of dispatching one trivial task through the pool — the
// per-repetition overhead floor of exp::run_repetitions.  Must stay
// microseconds: repetitions are whole tuning sessions (milliseconds+).
void BM_ThreadPool_Dispatch(benchmark::State& state) {
  util::ThreadPool pool(2);
  for (auto _ : state) {
    auto f = pool.submit([] { return 1; });
    benchmark::DoNotOptimize(f.get());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ThreadPool_Dispatch);

// Batch dispatch: 256 tasks submitted at once, then drained — the shape
// run_repetitions actually uses (queue everything, join once).
void BM_ThreadPool_BatchDispatch(benchmark::State& state) {
  for (auto _ : state) {
    std::atomic<int> done{0};
    {
      util::ThreadPool pool(4);
      for (int i = 0; i < 256; ++i) {
        pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
      }
    }
    benchmark::DoNotOptimize(done.load());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_ThreadPool_BatchDispatch);

void BM_ParetoNoiseSample(benchmark::State& state) {
  const varmodel::ParetoNoise noise(0.3, 1.7);
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(noise.sample(1.0, rng));
  }
}
BENCHMARK(BM_ParetoNoiseSample);

void BM_TwoJobSimRun(benchmark::State& state) {
  varmodel::TwoJobConfig cfg;
  cfg.arrival_rate = 0.3;
  cfg.service = std::make_shared<stats::Pareto>(1.7, 0.41);
  const varmodel::TwoJobSimulator sim(cfg);
  util::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run_application(5.0, rng));
  }
}
BENCHMARK(BM_TwoJobSimRun);

void BM_ProTuningStep(benchmark::State& state) {
  const auto space = gs2::gs2_space();
  const gs2::Gs2Surface surface;
  auto db = std::make_shared<gs2::Database>(
      gs2::Database::measure(space, surface, {}));
  auto noise = std::make_shared<varmodel::ParetoNoise>(0.2, 1.7);
  cluster::SimulatedCluster machine(db, noise, {.ranks = 6, .seed = 3});
  core::ProStrategy pro(space, {});
  core::RoundEngineOptions eo;
  eo.width = 6;
  eo.record_series = false;
  core::RoundEngine engine(pro, eo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.step(machine));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 6);
}
BENCHMARK(BM_ProTuningStep);

void BM_FullTuningSession100(benchmark::State& state) {
  const auto space = gs2::gs2_space();
  const gs2::Gs2Surface surface;
  auto db = std::make_shared<gs2::Database>(
      gs2::Database::measure(space, surface, {}));
  auto noise = std::make_shared<varmodel::ParetoNoise>(0.2, 1.7);
  for (auto _ : state) {
    cluster::SimulatedCluster machine(db, noise, {.ranks = 6, .seed = 4});
    core::ProStrategy pro(space, {});
    benchmark::DoNotOptimize(
        core::run_session(pro, machine, {.steps = 100}));
  }
}
BENCHMARK(BM_FullTuningSession100);

// ------------------------------------------------------------------
// Simulation hot path: the batched zero-allocation step pipeline vs a
// faithful replica of the pre-batching scalar path, plus the noise layer
// in isolation.  BENCH_cluster.json tracks these.

std::shared_ptr<gs2::Database> hot_path_db() {
  static auto db = std::make_shared<gs2::Database>(
      gs2::Database::measure(gs2::gs2_space(), gs2::Gs2Surface{}, {}));
  return db;
}

// One distinct off-grid vertex per rank, the shape a PRO round hands the
// cluster: every rank evaluates its own simplex point, and the same
// rank->config assignment repeats step after step within the round.
std::vector<core::Point> hot_path_configs(std::size_t ranks) {
  std::vector<core::Point> configs;
  configs.reserve(ranks);
  for (std::size_t i = 0; i < ranks; ++i) {
    configs.push_back(core::Point{33.0 + 0.25 * static_cast<double>(i % 8),
                                  17.0 + 0.125 * static_cast<double>(i % 16),
                                  41.0 + 0.0625 * static_cast<double>(i)});
  }
  return configs;
}

// The converged-loop shape: the same per-rank assignment every step, which
// is what a tuning session spends almost all of its steps on once the
// strategy has pinned its simplex.
void RunStepBench(benchmark::State& state,
                  std::shared_ptr<const varmodel::NoiseModel> noise) {
  const auto ranks = static_cast<std::size_t>(state.range(0));
  auto db = hot_path_db();
  cluster::SimulatedCluster machine(db, std::move(noise),
                                    {.ranks = ranks, .seed = 11});
  const std::vector<core::Point> configs = hot_path_configs(ranks);
  std::vector<double> out(ranks);
  for (auto _ : state) {
    machine.run_step_into({configs.data(), configs.size()},
                          {out.data(), out.size()});
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ranks));
}

void BM_RunStep_simple(benchmark::State& state) {
  RunStepBench(state, std::make_shared<varmodel::ExponentialNoise>(0.2));
}
BENCHMARK(BM_RunStep_simple)->Arg(8)->Arg(64);

void BM_RunStep_pareto(benchmark::State& state) {
  RunStepBench(state, std::make_shared<varmodel::ParetoNoise>(0.2, 1.7));
}
BENCHMARK(BM_RunStep_pareto)->Arg(8)->Arg(64);

// Reference: the step as it was before the batch pipeline — a fresh result
// vector per call, the full landscape lookup every step (no repeat-replay)
// and one virtual scalar noise draw per rank.  The BM_RunStep_pareto /
// BM_RunStep_prechange ratio is the headline speedup.
void BM_RunStep_prechange(benchmark::State& state) {
  const auto ranks = static_cast<std::size_t>(state.range(0));
  auto db = hot_path_db();
  const auto noise = std::make_shared<varmodel::ParetoNoise>(0.2, 1.7);
  std::vector<util::Rng> rngs = util::Rng(11).split_streams(ranks);
  const std::vector<core::Point> configs = hot_path_configs(ranks);
  std::vector<double> clean(ranks);
  for (auto _ : state) {
    std::vector<double> out(ranks);
    db->clean_times({configs.data(), configs.size()},
                    {clean.data(), clean.size()});
    for (std::size_t p = 0; p < ranks; ++p) {
      assert(clean[p] > 0.0);  // the old path's per-rank debug check
      out[p] = clean[p] + noise->sample(clean[p], rngs[p]);
    }
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ranks));
}
BENCHMARK(BM_RunStep_prechange)->Arg(8)->Arg(64);

// The whole converged round through the engine: propose_into recycling,
// batched evaluation, Eq. 1/2 accounting.
void BM_SessionThroughput(benchmark::State& state) {
  const auto ranks = static_cast<std::size_t>(state.range(0));
  auto db = hot_path_db();
  auto noise = std::make_shared<varmodel::ParetoNoise>(0.2, 1.7);
  cluster::SimulatedCluster machine(db, noise, {.ranks = ranks, .seed = 5});
  core::FixedStrategy fx(core::Point{33.0, 17.0, 41.0});
  core::RoundEngineOptions eo;
  eo.width = ranks;
  eo.record_series = false;
  core::RoundEngine engine(fx, eo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.step(machine));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ranks));
}
BENCHMARK(BM_SessionThroughput)->Arg(8)->Arg(64);

// ------------------------------------------------------------------
// Telemetry cost contract (BENCH_obs.json): the hot-path record
// operations in isolation, and the converged step loop with the full
// per-step telemetry attached.  Acceptance: BM_RunStep_instrumented
// within 3% of BM_RunStep_pareto at the same rank count.

void BM_MetricRecord_counter(benchmark::State& state) {
  obs::Counter& c =
      obs::Registry::global().counter("bench_record_total", "",
                                      {{"session", "bench"}});
  for (auto _ : state) {
    c.add();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricRecord_counter);

void BM_MetricRecord_histogram(benchmark::State& state) {
  obs::Histogram& h =
      obs::Registry::global().histogram("bench_record_hist", "",
                                        {{"session", "bench"}});
  // Walk values across four decades so the CAS-max path and different
  // buckets both get exercised, like a real heavy-tailed cost stream.
  double v = 1.0;
  for (auto _ : state) {
    h.record(v);
    v = v < 1e4 ? v * 1.7 : 1.0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricRecord_histogram);

void BM_MetricRecord_span_disabled(benchmark::State& state) {
  obs::Tracer tracer;  // disabled: the cost is one relaxed load
  for (auto _ : state) {
    const obs::ScopedSpan span(tracer, "bench/span");
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricRecord_span_disabled);

void BM_MetricRecord_span_enabled(benchmark::State& state) {
  obs::Tracer tracer;
  tracer.configure(true, 1);
  { const obs::ScopedSpan warm(tracer, "bench/span"); }  // ring creation
  for (auto _ : state) {
    const obs::ScopedSpan span(tracer, "bench/span");
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricRecord_span_enabled);

// The converged-loop step with the exact per-round telemetry the engine
// adds in the SHIPPED configuration — metrics always on (one counter add +
// one histogram record per round), tracing disabled (four inert ScopedSpans,
// one relaxed load each), on the same machine/configs as BM_RunStep_pareto.
// The 3%-overhead acceptance compares this against BM_RunStep_pareto.
void RunStepInstrumentedBench(benchmark::State& state, bool trace) {
  const auto ranks = static_cast<std::size_t>(state.range(0));
  auto db = hot_path_db();
  cluster::SimulatedCluster machine(
      db, std::make_shared<varmodel::ParetoNoise>(0.2, 1.7),
      {.ranks = ranks, .seed = 11});
  const std::vector<core::Point> configs = hot_path_configs(ranks);
  std::vector<double> out(ranks);
  obs::Counter& rounds =
      obs::Registry::global().counter("bench_step_rounds_total", "",
                                      {{"session", "bench"}});
  obs::Histogram& cost =
      obs::Registry::global().histogram("bench_step_cost", "",
                                        {{"session", "bench"}});
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.configure(trace, 1);
  if (trace) {
    const obs::ScopedSpan warm(tracer, "bench/step");  // ring creation
  }
  for (auto _ : state) {
    // Mirror the engine's span sites: step wrapping assign/collect/advance.
    const obs::ScopedSpan step_span(tracer, "bench/step");
    { const obs::ScopedSpan assign(tracer, "bench/assign"); }
    {
      const obs::ScopedSpan collect(tracer, "bench/collect");
      machine.run_step_into({configs.data(), configs.size()},
                            {out.data(), out.size()});
    }
    const obs::ScopedSpan advance(tracer, "bench/advance");
    rounds.add();
    cost.record(out[0]);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  tracer.configure(false);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ranks));
}

void BM_RunStep_instrumented(benchmark::State& state) {
  RunStepInstrumentedBench(state, /*trace=*/false);
}
BENCHMARK(BM_RunStep_instrumented)->Arg(8)->Arg(64);

// The opt-in debug configuration (OBS_TRACE=1): every span recorded.  Not
// subject to the 3% bar — this is the "pay for what you ask for" mode; the
// per-span cost is two steady_clock reads plus a ring write.
void BM_RunStep_traced(benchmark::State& state) {
  RunStepInstrumentedBench(state, /*trace=*/true);
}
BENCHMARK(BM_RunStep_traced)->Arg(8)->Arg(64);

std::shared_ptr<const varmodel::NoiseModel> bench_noise_model(int idx) {
  switch (idx) {
    case 0:
      return std::make_shared<varmodel::ExponentialNoise>(0.2);
    case 1:
      return std::make_shared<varmodel::ParetoNoise>(0.2, 1.7);
    case 2:
      return std::make_shared<varmodel::GaussianNoise>(0.2, 0.5);
    default:
      return std::make_shared<varmodel::CompositeNoise>(
          std::make_shared<varmodel::ExponentialNoise>(0.1),
          std::make_shared<varmodel::ParetoNoise>(0.15, 1.7));
  }
}

void BM_NoiseSample_scalar(benchmark::State& state) {
  constexpr std::size_t kRanks = 64;
  const auto model = bench_noise_model(static_cast<int>(state.range(0)));
  std::vector<util::Rng> rngs = util::Rng(3).split_streams(kRanks);
  const std::vector<double> clean(kRanks, 2.5);
  std::vector<double> out(kRanks);
  for (auto _ : state) {
    for (std::size_t i = 0; i < kRanks; ++i) {
      out[i] = model->sample(clean[i], rngs[i]);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kRanks);
  state.SetLabel(model->name());
}
BENCHMARK(BM_NoiseSample_scalar)->DenseRange(0, 3);

void BM_NoiseSample_batch(benchmark::State& state) {
  constexpr std::size_t kRanks = 64;
  const auto model = bench_noise_model(static_cast<int>(state.range(0)));
  std::vector<util::Rng> rngs = util::Rng(3).split_streams(kRanks);
  const std::vector<double> clean(kRanks, 2.5);
  std::vector<double> out(kRanks);
  for (auto _ : state) {
    model->sample_batch({clean.data(), clean.size()},
                        {rngs.data(), rngs.size()},
                        {out.data(), out.size()});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kRanks);
  state.SetLabel(model->name());
}
BENCHMARK(BM_NoiseSample_batch)->DenseRange(0, 3);

// The batched path with the simd:: fast-math kernels opted in — the
// vectorized inverse-CDF transform replacing the serialising std::pow /
// std::log1p.  The BM_NoiseSample_batch / BM_NoiseSample_simd ratio at
// Arg(1) (Pareto) is the headline transcendental speedup; rng draw order
// and end states are identical to the deterministic path by contract.
void BM_NoiseSample_simd(benchmark::State& state) {
  const ScopedFastMath fast(true);
  constexpr std::size_t kRanks = 64;
  const auto model = bench_noise_model(static_cast<int>(state.range(0)));
  std::vector<util::Rng> rngs = util::Rng(3).split_streams(kRanks);
  const std::vector<double> clean(kRanks, 2.5);
  std::vector<double> out(kRanks);
  for (auto _ : state) {
    model->sample_batch({clean.data(), clean.size()},
                        {rngs.data(), rngs.size()},
                        {out.data(), out.size()});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kRanks);
  state.SetLabel(model->name() + "/" + util::simd::backend_name());
}
BENCHMARK(BM_NoiseSample_simd)->DenseRange(0, 3);

}  // namespace

BENCHMARK_MAIN();
