// Figures 4-7: heavy-tail diagnostics of the GS2 trace data.
//   Fig. 4: pdf of all 64 ranks' iteration times — non-negligible tail bars.
//   Fig. 5: log-log 1-cdf — approximately linear tail.
//   Fig. 6: pdf after truncating samples > 5 — the *small* spikes alone.
//   Fig. 7: log-log 1-cdf of the truncated data — still heavy.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "gs2/surface.h"
#include "gs2/trace.h"
#include "stats/ecdf.h"
#include "stats/histogram.h"
#include "stats/tail.h"
#include "util/ascii_plot.h"
#include "util/csv.h"

using namespace protuner;

namespace {

void pdf_figure(const char* label, const std::vector<double>& data,
                std::size_t bins) {
  const stats::Histogram h = stats::Histogram::fit(data, bins);
  std::cout << "\n--- " << label << " (pdf) ---\n";
  util::CsvWriter csv(std::cout);
  csv.header({"bin_lo", "bin_hi", "density", "count"});
  const auto edges = h.edges();
  const auto dens = h.density();
  for (std::size_t i = 0; i < h.bin_count(); ++i) {
    csv.row(edges[i], edges[i + 1], dens[i], h.count(i));
  }
  util::PlotOptions po;
  po.title = std::string(label) + " — histogram (log-scaled bars)";
  po.log_y = true;
  std::cout << util::histogram_plot(edges, h.counts(), po);
}

stats::TailReport ccdf_figure(const char* label,
                              const std::vector<double>& data) {
  const stats::Ecdf ecdf(data);
  const auto tail = ecdf.log_log_tail();
  std::cout << "\n--- " << label << " (1-cdf, log-log) ---\n";
  util::CsvWriter csv(std::cout);
  csv.header({"log10_x", "log10_P_gt_x"});
  const std::size_t stride = std::max<std::size_t>(1, tail.x.size() / 40);
  for (std::size_t i = 0; i < tail.x.size(); i += stride) {
    csv.row(tail.x[i], tail.q[i]);
  }
  util::PlotOptions po;
  po.title = std::string(label) + " — log10 P[X > x] vs log10 x";
  std::cout << util::line_plot("1-cdf", tail.x, tail.q, po);

  const stats::TailReport report = stats::diagnose_tail(data);
  std::cout << "hill_alpha=" << report.hill_alpha
            << " slope_alpha=" << report.slope_alpha
            << " tail_r2=" << report.tail_r2
            << " heavy=" << (report.heavy ? "yes" : "no") << "\n";
  return report;
}

}  // namespace

int main() {
  bench::header("Figs. 4-7 — pdf and 1-cdf of GS2 data, full and truncated",
                "performance variability on the cluster is heavy tailed; "
                "truncating the big spikes still leaves a heavy tail");

  const gs2::Gs2Surface surface;
  gs2::TraceConfig cfg;
  cfg.ranks = 64;
  cfg.iterations = 800;
  cfg.seed = bench::seed();
  const auto trace =
      gs2::generate_trace(surface, {32.0, 16.0, 16.0}, cfg);
  const std::vector<double> all = gs2::flatten(trace);

  pdf_figure("Fig. 4 — all data", all, 24);
  const auto full = ccdf_figure("Fig. 5 — all data", all);

  const std::vector<double> truncated = stats::truncate_above(all, 5.0);
  std::cout << "\ntruncation at 5.0 kept " << truncated.size() << " of "
            << all.size() << " samples\n";
  pdf_figure("Fig. 6 — truncated data", truncated, 24);
  const auto trunc = ccdf_figure("Fig. 7 — truncated data", truncated);

  bench::check(full.heavy, "full data is diagnosed heavy-tailed (Fig. 5)");
  bench::check(full.tail_r2 > 0.8,
               "log-log tail of the full data is approximately linear");
  bench::check(trunc.tail_r2 > 0.7,
               "truncated data still shows an approximately linear tail "
               "(Fig. 7: small spikes are heavy too)");
  bench::check(truncated.size() < all.size(),
               "truncation actually removed the big spikes");
  return 0;
}
