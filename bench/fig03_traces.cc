// Figure 3: running time of 800 iterations of GS2 (fixed parameters) on 4
// of 64 parallel processors.  The measured traces show two spike
// populations (big and small) and strong cross-processor correlation; we
// regenerate them from the correlated-shock model over the GS2 surface.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "gs2/surface.h"
#include "gs2/trace.h"
#include "util/ascii_plot.h"
#include "util/csv.h"
#include "util/summary.h"

using namespace protuner;

int main() {
  bench::header("Fig. 3 — GS2 iteration-time traces, 4 of 64 ranks",
                "two distinct spike populations (big/small) and high "
                "cross-processor correlation");

  const gs2::Gs2Surface surface;
  gs2::TraceConfig cfg;
  cfg.ranks = 64;
  cfg.iterations = 800;
  cfg.seed = bench::seed();
  const core::Point params{32.0, 16.0, 16.0};  // fixed, as in the paper
  const auto trace = gs2::generate_trace(surface, params, cfg);
  const double clean = surface.clean_time(params);

  util::CsvWriter csv(std::cout);
  csv.header({"iteration", "rank0", "rank1", "rank2", "rank3"});
  for (std::size_t k = 0; k < cfg.iterations; k += 8) {
    csv.row(k, trace[0][k], trace[1][k], trace[2][k], trace[3][k]);
  }

  std::vector<double> xs(cfg.iterations);
  for (std::size_t k = 0; k < xs.size(); ++k) xs[k] = static_cast<double>(k);
  std::vector<util::Series> series;
  for (std::size_t p = 0; p < 4; ++p) {
    series.push_back({"rank" + std::to_string(p), xs, trace[p]});
  }
  util::PlotOptions po;
  po.title = "iteration time, 4 ranks (overlaid)";
  std::cout << util::line_plot(series, po);

  // Spike census per rank 0: big spikes >> clean, small spikes moderate.
  const auto census = [&](const std::vector<double>& row) {
    int big = 0, small = 0;
    for (double t : row) {
      if (t > clean + 4.0) {
        ++big;
      } else if (t > clean * 1.15) {
        ++small;
      }
    }
    return std::pair{big, small};
  };
  const auto [big0, small0] = census(trace[0]);
  std::cout << "rank0: clean=" << clean << " big_spikes=" << big0
            << " small_spikes=" << small0 << "\n";

  double min_corr = 1.0;
  for (std::size_t p = 1; p < 4; ++p) {
    min_corr =
        std::min(min_corr, gs2::rank_correlation(trace[0], trace[p]));
  }
  std::cout << "min pairwise correlation among shown ranks: " << min_corr
            << "\n";

  bench::check(big0 > 0 && small0 > 0,
               "both spike populations present (big and small)");
  bench::check(small0 > big0, "small spikes are more frequent than big ones");
  bench::check(min_corr > 0.3,
               "high correlation and similarity between the curves");
  const auto s = util::summarize(gs2::flatten(trace));
  std::cout << "all-rank sample: n=" << s.count << " mean=" << s.mean
            << " p95=" << s.p95 << " max=" << s.max << "\n";
  bench::check(s.max > 5.0 * s.median,
               "worst iteration is many times the typical one (heavy tail "
               "evidence)");
  return 0;
}
