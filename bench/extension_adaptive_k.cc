// EXTENSION (the paper's §5.2 future work, implemented): adaptive K.
//
// "In practice, it is not easy to find a fixed value for K.  Currently, we
// are working on optimization algorithms that update K adaptively."
//
// Our adaptive rule estimates, from the incumbent's repeated observations,
// the per-sample probability q of landing within lambda of the noise
// floor, and solves Eq. 11/22 ((1-q)^K <= eps) for K each round.  This
// bench sweeps rho and compares adaptive K against every fixed K in 1..5
// on the Fig. 10 setup: the adaptive tuner should track the best fixed K
// without being told the noise level.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "cluster/simulated_cluster.h"
#include "core/pro.h"  // concrete type: the adaptive arm reads current_samples()
#include "core/session.h"
#include "core/strategy_spec.h"
#include "gs2/database.h"
#include "gs2/surface.h"
#include "util/csv.h"
#include "varmodel/noise_model.h"
#include "varmodel/pareto_noise.h"

using namespace protuner;

int main() {
  const long reps = bench::reps(200);
  bench::header("Extension — adaptive K (the paper's §5.2 future work)",
                "one tuner, no K knob: tracks the best fixed K across the "
                "whole rho range");

  const auto space = gs2::gs2_space();
  const gs2::Gs2Surface surface;
  auto db = std::make_shared<gs2::Database>(
      gs2::Database::measure(space, surface, {}));

  const std::vector<double> rhos{0.0, 0.1, 0.2, 0.3, 0.4};
  constexpr std::size_t kSteps = 400;  // horizon where K choice matters

  util::CsvWriter csv(std::cout);
  csv.header({"rho", "policy", "avg_ntt", "avg_best_clean", "avg_final_k"});

  bool adaptive_tracks = true;
  for (const double rho : rhos) {
    std::shared_ptr<const varmodel::NoiseModel> noise;
    if (rho == 0.0) {
      noise = std::make_shared<varmodel::NoNoise>();
    } else {
      noise = std::make_shared<varmodel::ParetoNoise>(rho, 1.7);
    }

    double best_fixed = 1e300;
    double worst_fixed = 0.0;
    for (int k = 1; k <= 5; ++k) {
      struct RepOut {
        double ntt, clean;
      };
      const auto outs = bench::per_rep(reps, [&, k](long rep) {
        cluster::SimulatedCluster machine(
            db, noise,
            {.ranks = 6,
             .seed = bench::seed() + 613ULL * static_cast<std::uint64_t>(rep)});
        auto pro = core::make_strategy("pro:k=" + std::to_string(k), space,
                                       bench::seed());
        const auto r = core::run_session(
            *pro, machine, {.steps = kSteps, .record_series = false});
        return RepOut{r.ntt, r.best_clean};
      });
      double acc = 0.0, acc_clean = 0.0;
      for (const auto& o : outs) {
        acc += o.ntt;
        acc_clean += o.clean;
      }
      const double ntt = acc / static_cast<double>(reps);
      csv.row(rho, "fixed K=" + std::to_string(k), ntt,
              acc_clean / static_cast<double>(reps), k);
      best_fixed = std::min(best_fixed, ntt);
      worst_fixed = std::max(worst_fixed, ntt);
    }

    struct AdaptiveOut {
      double ntt, clean, k;
    };
    const auto adaptive_outs = bench::per_rep(reps, [&](long rep) {
      cluster::SimulatedCluster machine(
          db, noise,
          {.ranks = 6,
           .seed = bench::seed() + 613ULL * static_cast<std::uint64_t>(rep)});
      core::ProOptions opts;
      opts.adaptive_samples = true;
      opts.max_samples = 5;
      core::ProStrategy pro(space, opts);
      const auto r = core::run_session(
          pro, machine, {.steps = kSteps, .record_series = false});
      return AdaptiveOut{r.ntt, r.best_clean,
                         static_cast<double>(pro.current_samples())};
    });
    double acc = 0.0, acc_clean = 0.0, acc_k = 0.0;
    for (const auto& o : adaptive_outs) {
      acc += o.ntt;
      acc_clean += o.clean;
      acc_k += o.k;
    }
    const double ntt_adaptive = acc / static_cast<double>(reps);
    csv.row(rho, "adaptive", ntt_adaptive,
            acc_clean / static_cast<double>(reps),
            acc_k / static_cast<double>(reps));

    // Track = land in the better half of the fixed-K envelope.
    const double mid = 0.5 * (best_fixed + worst_fixed);
    if (ntt_adaptive > mid) adaptive_tracks = false;
    std::cout << "rho=" << rho << ": fixed-K envelope [" << best_fixed
              << ", " << worst_fixed << "], adaptive " << ntt_adaptive
              << "\n";
  }

  bench::check(adaptive_tracks,
               "adaptive K stays in the better half of the fixed-K envelope "
               "at every rho, with no tuning of K");
  return 0;
}
