// Serving-tier soak benchmark: the contention-free fetch/report hot path
// (DESIGN.md §12) vs. a faithful replica of the pre-change server, at the
// loadgen's workload shape — N sessions × P ranks driven by phase-locked
// multiplexing workers with heavy-tailed (Pareto) reported times, with and
// without a monitor antagonist sweeping the accounting accessors.
//
// The replica (`prechange::Server`) is the server as it stood before this
// optimization pass: one mutex across fetch/report/tick/accessors, fetch
// returning a fresh Point by value.  Semantics are identical (same engine,
// same protocol, same telemetry), so the throughput ratio isolates the
// locking/allocation work: the double-buffered lock-free Collecting path,
// fetch_into's recycled capacity, and the atomics-backed stats cache.
//
// BENCH_serving.json (bench_smoke_serving ctest / bench-smoke target) is
// the committed trajectory file for the serving tier.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <latch>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/fixed.h"
#include "core/round_engine.h"
#include "harmony/server.h"
#include "util/rng.h"
#include "varmodel/pareto_noise.h"

namespace {

using namespace protuner;

// ---------------------------------------------------------------------------
// Pre-change replica: harmony::Server as of PR 6 (single mutex over the
// whole protocol and every accessor), preserved verbatim minus the deadline
// machinery the soak does not exercise (report_timeout stays 0 here, under
// which the original's deadline branches were dead code).
// ---------------------------------------------------------------------------
namespace prechange {

class Server {
 public:
  Server(core::TuningStrategyPtr strategy, std::size_t clients,
         harmony::ServerOptions options)
      : strategy_(std::move(strategy)),
        clients_(clients),
        options_(std::move(options)),
        obs_fetch_ns_(options_.metrics->histogram(
            "protuner_harmony_fetch_ns", "", labels())),
        obs_report_ns_(options_.metrics->histogram(
            "protuner_harmony_report_ns", "", labels())),
        obs_round_wall_ns_(options_.metrics->histogram(
            "protuner_harmony_round_wall_ns", "", labels())),
        engine_(*strategy_, engine_options()) {
    rank_round_.assign(clients_, 0);
    fetched_.assign(clients_, false);
    const std::scoped_lock lock(mutex_);
    engine_.open_round();
    round_opened_ = std::chrono::steady_clock::now();
  }

  core::Point fetch(std::size_t rank) {
    const auto entered = std::chrono::steady_clock::now();
    std::unique_lock lock(mutex_);
    if (fetched_[rank] && rank_round_[rank] == round_ &&
        engine_.expected(rank)) {
      throw harmony::ProtocolError("double fetch");
    }
    for (;;) {
      if (rank_round_[rank] == round_ && engine_.expected(rank)) break;
      if (rank_round_[rank] <= round_) {
        fetched_[rank] = false;
        engine_.reactivate(rank);
        rank_round_[rank] = round_ + 1;
      }
      round_ready_.wait(lock);
    }
    fetched_[rank] = true;
    obs_fetch_ns_.record(elapsed_ns(entered));
    return engine_.assignment_for(rank);
  }

  void report(std::size_t rank, double time) {
    const auto entered = std::chrono::steady_clock::now();
    const std::scoped_lock lock(mutex_);
    if (!fetched_[rank]) {
      throw harmony::ProtocolError("report without fetch");
    }
    fetched_[rank] = false;
    if (rank_round_[rank] < round_) {
      ++rank_round_[rank];
      return;
    }
    engine_.submit(rank, time);
    rank_round_[rank] = round_ + 1;
    if (engine_.complete()) {
      obs_round_wall_ns_.record(elapsed_ns(round_opened_));
      engine_.close_round();
      engine_.open_round();
      round_ = engine_.rounds_completed();
      round_opened_ = std::chrono::steady_clock::now();
      round_ready_.notify_all();
    }
    obs_report_ns_.record(elapsed_ns(entered));
  }

  // The original accounting accessors: every one serializes against the
  // traffic mutex.
  double total_time() const {
    const std::scoped_lock lock(mutex_);
    return engine_.total_time();
  }
  std::size_t rounds_completed() const {
    const std::scoped_lock lock(mutex_);
    return engine_.rounds_completed();
  }
  core::Point best_point() const {
    const std::scoped_lock lock(mutex_);
    return strategy_->best_point();
  }
  bool converged() const {
    const std::scoped_lock lock(mutex_);
    return strategy_->converged();
  }
  std::optional<std::size_t> convergence_round() const {
    const std::scoped_lock lock(mutex_);
    return engine_.convergence_round();
  }
  std::size_t active_ranks() const {
    const std::scoped_lock lock(mutex_);
    return engine_.active_count();
  }
  std::string strategy_name() const {
    const std::scoped_lock lock(mutex_);
    return strategy_->name();
  }

 private:
  core::RoundEngineOptions engine_options() const {
    core::RoundEngineOptions eo;
    eo.width = clients_;
    eo.pad_assignment = true;
    eo.record_series = false;
    eo.metrics = options_.metrics;
    eo.session = options_.session;
    return eo;
  }
  obs::Labels labels() const { return {{"session", options_.session}}; }
  static double elapsed_ns(std::chrono::steady_clock::time_point since) {
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - since)
            .count());
  }

  core::TuningStrategyPtr strategy_;
  const std::size_t clients_;
  const harmony::ServerOptions options_;
  obs::Histogram& obs_fetch_ns_;
  obs::Histogram& obs_report_ns_;
  obs::Histogram& obs_round_wall_ns_;
  mutable std::mutex mutex_;
  std::condition_variable round_ready_;
  core::RoundEngine engine_;
  std::size_t round_ = 0;
  std::vector<std::size_t> rank_round_;
  std::vector<bool> fetched_;
  std::chrono::steady_clock::time_point round_opened_;
};

// Fetch/report through the pre-change API: fetch allocates its returned
// Point, reports go through the same single mutex.
inline void drive_rank_op(Server& server, std::size_t rank, double think,
                          core::Point& scratch) {
  scratch = server.fetch(rank);
  server.report(rank, think);
}

}  // namespace prechange

// ---------------------------------------------------------------------------
// Soak driver, shared by both server types.
// ---------------------------------------------------------------------------

struct SoakShape {
  std::size_t sessions;
  std::size_t ranks;
  std::size_t workers;  ///< per session
  std::size_t rounds;
  bool monitor;
};

template <class ServerT>
std::vector<std::unique_ptr<ServerT>> make_servers(const SoakShape& shape,
                                                   obs::Registry& registry) {
  std::vector<std::unique_ptr<ServerT>> servers;
  servers.reserve(shape.sessions);
  for (std::size_t s = 0; s < shape.sessions; ++s) {
    harmony::ServerOptions so;
    so.metrics = &registry;
    so.record_series = false;
    so.session = "soak-" + std::to_string(s);
    servers.push_back(std::make_unique<ServerT>(
        std::make_unique<core::FixedStrategy>(core::Point(4, 1.0)),
        shape.ranks, so));
  }
  return servers;
}

// One soak run; returns completed fetch+report op count.  Worker shape
// matches apps::run_loadgen: per-session phase-locked multiplexers, think
// times drawn from the paper's Pareto noise and reported as virtual time.
template <class ServerT, class FetchReport>
std::size_t run_soak(const SoakShape& shape,
                     std::vector<std::unique_ptr<ServerT>>& servers,
                     FetchReport&& fetch_report) {
  std::latch start(1);
  std::atomic<bool> stop{false};
  const varmodel::ParetoNoise think(0.3, 1.7);
  std::vector<std::jthread> threads;
  threads.reserve(shape.sessions * shape.workers + 1);
  for (std::size_t s = 0; s < shape.sessions; ++s) {
    for (std::size_t w = 0; w < shape.workers; ++w) {
      threads.emplace_back([&, s, w] {
        ServerT& server = *servers[s];
        const std::size_t lo = w * shape.ranks / shape.workers;
        const std::size_t hi = (w + 1) * shape.ranks / shape.workers;
        util::Rng rng(0x9e3779b97f4a7c15ULL * (s * shape.workers + w + 1));
        core::Point scratch;
        start.wait();
        for (std::size_t round = 0; round < shape.rounds; ++round) {
          for (std::size_t r = lo; r < hi; ++r) {
            fetch_report(server, r, think.observe(50e-6, rng), scratch);
          }
        }
      });
    }
  }
  if (shape.monitor) {
    threads.emplace_back([&] {
      start.wait();
      while (!stop.load(std::memory_order_relaxed)) {
        // The SessionManager::stats_all sweep, per session: the same seven
        // accessors stats_of reads.
        for (const auto& server : servers) {
          benchmark::DoNotOptimize(server->strategy_name());
          benchmark::DoNotOptimize(server->active_ranks());
          benchmark::DoNotOptimize(server->rounds_completed());
          benchmark::DoNotOptimize(server->total_time());
          benchmark::DoNotOptimize(server->converged());
          benchmark::DoNotOptimize(server->convergence_round());
          benchmark::DoNotOptimize(server->best_point());
        }
      }
    });
  }
  start.count_down();
  for (std::size_t i = 0; i < shape.sessions * shape.workers; ++i) {
    threads[i].join();
  }
  stop.store(true, std::memory_order_relaxed);
  threads.clear();
  return shape.sessions * shape.ranks * shape.rounds * 2;
}

SoakShape shape_from(const benchmark::State& state) {
  return SoakShape{static_cast<std::size_t>(state.range(0)),
                   static_cast<std::size_t>(state.range(1)),
                   static_cast<std::size_t>(state.range(2)),
                   static_cast<std::size_t>(state.range(3)),
                   state.range(4) != 0};
}

void BM_Serving_prechange(benchmark::State& state) {
  const SoakShape shape = shape_from(state);
  std::size_t ops = 0;
  for (auto _ : state) {
    obs::Registry registry;
    auto servers = make_servers<prechange::Server>(shape, registry);
    ops += run_soak(shape, servers,
                    [](prechange::Server& server, std::size_t rank,
                       double think, core::Point& scratch) {
                      prechange::drive_rank_op(server, rank, think, scratch);
                    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}

void BM_Serving_sharded(benchmark::State& state) {
  const SoakShape shape = shape_from(state);
  std::size_t ops = 0;
  for (auto _ : state) {
    obs::Registry registry;
    auto servers = make_servers<harmony::Server>(shape, registry);
    ops += run_soak(shape, servers,
                    [](harmony::Server& server, std::size_t rank,
                       double think, core::Point& scratch) {
                      server.fetch_into(rank, scratch);
                      server.report(rank, think);
                    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}

// Args: {sessions, ranks, workers/session, rounds, monitor}.
// The headline acceptance shape is 8 sessions × 64 ranks; the smaller
// shapes track how the win scales down, and the monitored rows measure
// exporter interference (the production serving shape: something is
// always scraping).  workers=1 is the event-loop row: one thread drives
// all 64 ranks and closes every round inline, so nothing ever blocks and
// the pure per-op cost shows through without scheduler noise.
#define SERVING_SHAPES(BM)                           \
  BENCHMARK(BM)                                      \
      ->Args({1, 16, 2, 40, 0})                      \
      ->Args({4, 16, 2, 40, 0})                      \
      ->Args({8, 64, 1, 40, 0})                      \
      ->Args({8, 64, 2, 20, 0})                      \
      ->Args({8, 64, 2, 20, 1})                      \
      ->Args({8, 64, 8, 20, 0})                      \
      ->Args({8, 64, 16, 20, 0})                     \
      ->Args({8, 64, 64, 10, 0})                     \
      ->Unit(benchmark::kMillisecond)                \
      ->MeasureProcessCPUTime()                      \
      ->UseRealTime()

SERVING_SHAPES(BM_Serving_prechange);
SERVING_SHAPES(BM_Serving_sharded);

}  // namespace

BENCHMARK_MAIN();
