// Ablation — closed-form Pareto noise (Eq. 17, used by the paper's Fig. 10
// simulation) vs the mechanistic two-priority-queue machine (§4.1, the
// paper's own explanation of where the noise comes from).
//
// With a heavy-tailed first-priority service distribution the queue's
// completion-time noise is heavy too; this bench verifies that PRO behaves
// consistently under both models at matched idle throughput, closing the
// modelling loop between §4.1 and §6.2.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "cluster/simulated_cluster.h"
#include "core/session.h"
#include "core/strategy_spec.h"
#include "gs2/database.h"
#include "gs2/surface.h"
#include "stats/pareto.h"
#include "util/csv.h"
#include "varmodel/pareto_noise.h"
#include "varmodel/two_job_sim.h"

using namespace protuner;

int main() {
  const long reps = bench::reps(120);
  bench::header("Ablation — Eq. 17 closed-form noise vs the two-job queue",
                "the mechanistic §4.1 machine and the closed-form Fig. 10 "
                "noise produce consistent tuning behaviour at matched rho");

  const auto space = gs2::gs2_space();
  const gs2::Gs2Surface surface;
  auto db = std::make_shared<gs2::Database>(
      gs2::Database::measure(space, surface, {}));

  constexpr double kRho = 0.25;
  constexpr double kAlpha = 1.7;

  // Queue with Pareto service of mean 1 and arrival rate rho.
  varmodel::TwoJobConfig qcfg;
  qcfg.arrival_rate = kRho;
  qcfg.service =
      std::make_shared<stats::Pareto>(kAlpha, (kAlpha - 1.0) / kAlpha);

  util::CsvWriter csv(std::cout);
  csv.header({"noise_model", "K", "avg_ntt_200", "avg_best_clean"});

  double clean_q[2] = {0.0, 0.0};  // K=1 quality per model
  for (int model = 0; model < 2; ++model) {
    std::shared_ptr<const varmodel::NoiseModel> noise;
    if (model == 0) {
      noise = std::make_shared<varmodel::ParetoNoise>(kRho, kAlpha);
    } else {
      noise = std::make_shared<varmodel::QueueNoise>(qcfg);
    }
    for (int k : {1, 3}) {
      struct RepOut {
        double ntt, clean;
      };
      const auto outs = bench::per_rep(reps, [&, k](long rep) {
        cluster::SimulatedCluster machine(
            db, noise,
            {.ranks = 6,
             .seed = bench::seed() + 503ULL * static_cast<std::uint64_t>(rep)});
        auto pro = core::make_strategy("pro:k=" + std::to_string(k), space,
                                       bench::seed());
        const core::SessionResult r = core::run_session(
            *pro, machine, {.steps = 200, .record_series = false});
        return RepOut{r.ntt, r.best_clean};
      });
      double acc_ntt = 0.0, acc_clean = 0.0;
      for (const auto& o : outs) {
        acc_ntt += o.ntt;
        acc_clean += o.clean;
      }
      const double q = acc_clean / static_cast<double>(reps);
      if (k == 1) clean_q[model] = q;
      csv.row(model == 0 ? "eq17_pareto" : "two_job_queue", k,
              acc_ntt / static_cast<double>(reps), q);
    }
  }

  std::cout << "K=1 final quality: closed-form=" << clean_q[0]
            << "  queue=" << clean_q[1] << "\n";
  bench::check(std::abs(clean_q[0] - clean_q[1]) < 0.08,
               "tuning outcomes under the mechanistic queue match the "
               "closed-form Eq. 17 model at equal rho");
  return 0;
}
