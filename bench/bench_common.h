// Shared helpers for the figure-reproduction harnesses.
//
// Every harness prints:
//   * a provenance header (what paper artifact it regenerates, seed, reps),
//   * the series as CSV (machine-readable),
//   * an ASCII rendering of the figure's shape,
//   * a PASS/CHECK line for each qualitative claim the paper makes.
// Repetition counts are laptop-scale by default and grow via REPRO_REPS;
// repetitions execute across a thread pool sized by REPRO_THREADS (see
// exp/parallel_runner.h — aggregate output is bit-identical for every
// thread count, so raising REPRO_THREADS only changes wall-clock time).
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <string_view>

#include "exp/parallel_runner.h"
#include "util/env.h"

namespace protuner::bench {

inline void header(std::string_view figure, std::string_view claim) {
  std::cout << "==================================================\n"
            << "Reproduces: " << figure << "\n"
            << "Paper claim: " << claim << "\n"
            << "==================================================\n";
}

inline long reps(long fallback) {
  return util::env_long("REPRO_REPS", fallback);
}

inline std::uint64_t seed() {
  return static_cast<std::uint64_t>(util::env_long("REPRO_SEED", 20050712));
}

/// Worker count the repetition runner will use (REPRO_THREADS, default
/// hardware_concurrency) — printed by harnesses for provenance.
inline unsigned threads() { return exp::default_threads(); }

/// Runs `fn(rep)` for rep in [0, reps) across the repetition pool and
/// returns the per-rep results in repetition order.  The harnesses derive
/// their own per-rep seeds from bench::seed() and the rep index (kept
/// identical to the historical serial loops), so `fn` only needs the index;
/// the runner guarantees ordered, thread-count-independent merging.
template <typename Fn>
auto per_rep(long reps, Fn&& fn) {
  return exp::run_repetitions(
      reps, seed(),
      [&fn](const exp::RepContext& ctx) { return fn(ctx.rep); });
}

/// Prints a qualitative-shape check result.  These are the paper's claims;
/// the absolute numbers are ours.
inline void check(bool ok, std::string_view what) {
  std::cout << (ok ? "[SHAPE-OK]   " : "[SHAPE-MISS] ") << what << "\n";
}

}  // namespace protuner::bench
