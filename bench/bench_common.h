// Shared helpers for the figure-reproduction harnesses.
//
// Every harness prints:
//   * a provenance header (what paper artifact it regenerates, seed, reps),
//   * the series as CSV (machine-readable),
//   * an ASCII rendering of the figure's shape,
//   * a PASS/CHECK line for each qualitative claim the paper makes.
// Repetition counts are laptop-scale by default and grow via REPRO_REPS.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <string_view>

#include "util/env.h"

namespace protuner::bench {

inline void header(std::string_view figure, std::string_view claim) {
  std::cout << "==================================================\n"
            << "Reproduces: " << figure << "\n"
            << "Paper claim: " << claim << "\n"
            << "==================================================\n";
}

inline long reps(long fallback) {
  return util::env_long("REPRO_REPS", fallback);
}

inline std::uint64_t seed() {
  return static_cast<std::uint64_t>(util::env_long("REPRO_SEED", 20050712));
}

/// Prints a qualitative-shape check result.  These are the paper's claims;
/// the absolute numbers are ours.
inline void check(bool ok, std::string_view what) {
  std::cout << (ok ? "[SHAPE-OK]   " : "[SHAPE-MISS] ") << what << "\n";
}

}  // namespace protuner::bench
