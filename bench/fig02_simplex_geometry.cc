// Figure 2: the three simplex transformations (reflection, shrink,
// expansion) of a 3-point simplex in 2-D space, all taken around the best
// vertex v^0.  Prints the transformed coordinates and an ASCII rendering.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/simplex.h"
#include "util/ascii_plot.h"
#include "util/csv.h"

using namespace protuner;

int main() {
  bench::header("Fig. 2 — simplex transformations around the best vertex",
                "reflection r = 2v0 - v, expansion e = 3v0 - 2v, shrink "
                "s = (v0 + v)/2");

  const core::ParameterSpace space(
      {core::Parameter::continuous("x", -20.0, 20.0),
       core::Parameter::continuous("y", -20.0, 20.0)});

  core::Simplex s({core::Point{0.0, 0.0},   // v0 (best)
                   core::Point{4.0, 1.0},   // v1
                   core::Point{1.0, 4.0}}); // v2
  s.set_values(std::vector<double>{1.0, 2.0, 3.0});
  s.order();

  const auto refl = s.reflections(space);
  const auto expa = s.expansions(space);
  const auto shri = s.shrinks(space);

  util::CsvWriter csv(std::cout);
  csv.header({"set", "vertex", "x", "y"});
  for (std::size_t j = 0; j < s.size(); ++j) {
    csv.row("original", j, s.vertex(j)[0], s.vertex(j)[1]);
  }
  for (std::size_t j = 0; j < refl.size(); ++j) {
    csv.row("reflection", j + 1, refl[j][0], refl[j][1]);
  }
  for (std::size_t j = 0; j < expa.size(); ++j) {
    csv.row("expansion", j + 1, expa[j][0], expa[j][1]);
  }
  for (std::size_t j = 0; j < shri.size(); ++j) {
    csv.row("shrink", j + 1, shri[j][0], shri[j][1]);
  }

  const auto to_series = [](std::string name,
                            const std::vector<core::Point>& pts) {
    util::Series out;
    out.name = std::move(name);
    for (const auto& p : pts) {
      out.xs.push_back(p[0]);
      out.ys.push_back(p[1]);
    }
    return out;
  };
  std::vector<util::Series> series;
  series.push_back(to_series("original", s.vertices()));
  series.push_back(to_series("reflection", refl));
  series.push_back(to_series("expansion", expa));
  series.push_back(to_series("shrink", shri));
  util::PlotOptions po;
  po.title = "simplex transformations (v0 at origin)";
  po.height = 20;
  std::cout << util::line_plot(series, po);

  // Shape checks: algebraic identities of Fig. 2.
  bench::check(refl[0] == core::Point{-4.0, -1.0} &&
                   refl[1] == core::Point{-1.0, -4.0},
               "reflection mirrors each vertex through v0");
  bench::check(expa[0] == core::Point{-8.0, -2.0} &&
                   expa[1] == core::Point{-2.0, -8.0},
               "expansion doubles the reflected offset");
  bench::check(shri[0] == core::Point{2.0, 0.5} &&
                   shri[1] == core::Point{0.5, 2.0},
               "shrink halves each edge toward v0");
  return 0;
}
