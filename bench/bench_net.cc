// Network serving tier benchmark (DESIGN.md §14): the epoll loop + binary
// wire protocol measured at two shapes —
//
//   BM_NetFetchReportRoundTrip   one connection, width-1 session: the
//                                localhost round-trip floor of a fetch +
//                                report pair (encode → send → epoll →
//                                decode → serve → reply → decode).
//   BM_NetManyConnections/C      a C-connection soak (64 / 256 / 1024)
//                                through apps::run_loadgen's loopback
//                                mode: one rank per connection, sessions
//                                of 256 ranks, phase-locked rounds.  The
//                                p99 counters come from the obs:: wire
//                                histograms the server publishes anyway.
//   BM_NetSoakWithScrapes/Hz     the 256-connection soak with an HTTP
//                                /metrics scraper antagonist hitting the
//                                same epoll loop at Hz (0 = baseline).
//                                ops_per_sec at /50 vs /0 is the recorded
//                                cost of serving the exporter in-loop
//                                (acceptance: <= 3%).
//
// BENCH_net.json (bench_smoke_net ctest / bench-smoke target) is the
// committed trajectory file; its 1024-connection entry is the C10k-style
// acceptance record for the tier.
#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>

#include "apps/harmony_loadgen.h"
#include "core/fixed.h"
#include "harmony/session_manager.h"
#include "net/client.h"
#include "net/net_server.h"
#include "obs/metrics.h"

namespace {

using namespace protuner;

void BM_NetFetchReportRoundTrip(benchmark::State& state) {
  obs::Registry registry;
  harmony::SessionManager manager;
  harmony::ServerOptions so;
  so.metrics = &registry;
  so.record_series = false;
  so.session = "bench-rtt";
  manager.create("bench-rtt",
                 std::make_unique<core::FixedStrategy>(core::Point{1.0, 2.0}),
                 1, so);
  net::NetServerOptions no;
  no.metrics = &registry;
  no.poll_interval = std::chrono::milliseconds(1);
  net::NetServer net(manager, no);
  std::thread loop([&net] { net.run(); });
  {
    net::ClientOptions co;
    co.port = net.port();
    net::HarmonyClient client(co);
    client.attach("bench-rtt", 0);
    core::Point scratch;
    for (auto _ : state) {
      client.fetch_into(0, scratch);
      client.report(0, 1.0);
    }
    client.detach(0);
  }
  net.stop();
  loop.join();
  state.SetItemsProcessed(state.iterations() * 2);  // fetch + report
  const obs::RegistrySnapshot snap = registry.snapshot();
  const obs::HistogramSnapshot wire =
      apps::aggregate_histogram(snap, "protuner_net_fetch_wire_ns");
  state.counters["fetch_wire_p50_ns"] = wire.p50();
  state.counters["fetch_wire_p99_ns"] = wire.p99();
}
BENCHMARK(BM_NetFetchReportRoundTrip);

void BM_NetManyConnections(benchmark::State& state) {
  const std::size_t connections = static_cast<std::size_t>(state.range(0));
  apps::LoadgenOptions options;
  options.mode = apps::LoadgenMode::kLoopback;
  // One rank per connection; sessions cap at 256 ranks so round width (and
  // with it round wall time) stays bounded as the connection count grows.
  options.sessions = std::max<std::size_t>(1, connections / 256);
  options.workers = connections / options.sessions;
  options.ranks = options.workers;
  options.rounds = std::max<std::size_t>(10, 40960 / connections);
  options.heavy_tail = true;
  apps::LoadgenReport rep;
  for (auto _ : state) {
    rep = apps::run_loadgen(options);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>((rep.fetch_ops + rep.report_ops) *
                                state.iterations()));
  state.counters["connections"] =
      static_cast<double>(rep.net_connections);
  state.counters["ops_per_sec"] = rep.ops_per_sec;
  // The acceptance quantile: server-side fetch wire latency (decode to
  // reply queued, including the wait for the round to open) from obs::.
  state.counters["fetch_wire_p50_ns"] = rep.wire_fetch_p50_ns;
  state.counters["fetch_wire_p99_ns"] = rep.wire_fetch_p99_ns;
  state.counters["fetch_wire_p999_ns"] = rep.wire_fetch_p999_ns;
  // Serving-core fetch latency (the in-process histogram), for comparing
  // the wire overhead against the direct-call soak in BENCH_serving.json.
  state.counters["fetch_p99_ns"] = rep.fetch_p99_ns;
}
BENCHMARK(BM_NetManyConnections)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_NetSoakWithScrapes(benchmark::State& state) {
  apps::LoadgenOptions options;
  options.mode = apps::LoadgenMode::kLoopback;
  options.sessions = 1;
  options.ranks = 256;
  options.workers = 256;
  options.rounds = 160;
  options.heavy_tail = true;
  options.scrape_hz = static_cast<double>(state.range(0));
  apps::LoadgenReport rep;
  for (auto _ : state) {
    rep = apps::run_loadgen(options);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>((rep.fetch_ops + rep.report_ops) *
                                state.iterations()));
  state.counters["ops_per_sec"] = rep.ops_per_sec;
  state.counters["scrapes"] = static_cast<double>(rep.scrapes);
  state.counters["fetch_wire_p99_ns"] = rep.wire_fetch_p99_ns;
}
BENCHMARK(BM_NetSoakWithScrapes)->Arg(0)->Arg(50)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main: the 1024-connection soak needs headroom above the common
// 1024 soft fd limit (each connection is a client fd + an accepted fd).
int main(int argc, char** argv) {
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) == 0 && rl.rlim_cur < 16384) {
    rl.rlim_cur = std::min<rlim_t>(rl.rlim_max, 16384);
    ::setrlimit(RLIMIT_NOFILE, &rl);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
