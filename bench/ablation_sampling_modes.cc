// Ablation (§5.2): sequential multi-sampling (samples in subsequent time
// steps — the paper's Fig. 10 worst case) vs parallel replicated sampling
// (spare processors measure extra samples of the same candidates — the
// paper's "if there are 64 parallel processors ... we can set K = 10 with
// no additional cost").  Also covers the incumbent-estimate policy:
// paper-literal stale estimates vs continuous re-measurement.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "cluster/simulated_cluster.h"
#include "core/session.h"
#include "core/strategy_spec.h"
#include "gs2/database.h"
#include "gs2/surface.h"
#include "util/csv.h"
#include "varmodel/pareto_noise.h"

using namespace protuner;

namespace {

struct Variant {
  const char* name;
  const char* spec;  ///< declarative PRO spec (DESIGN.md §13)
  std::size_t ranks;
};

}  // namespace

int main() {
  const long reps = bench::reps(150);
  bench::header("Ablation §5.2 — sequential vs parallel multi-sampling, "
                "stale vs refreshed incumbent",
                "with enough processors extra samples are free; sequential "
                "sampling pays K time steps per round");

  const auto space = gs2::gs2_space();
  const gs2::Gs2Surface surface;
  auto db = std::make_shared<gs2::Database>(
      gs2::Database::measure(space, surface, {}));
  auto noise = std::make_shared<varmodel::ParetoNoise>(0.3, 1.7);

  const std::vector<Variant> variants{
      {"K1-seq-stale", "pro:k=1,replicas=0,refresh=0", 6},
      {"K3-seq-stale", "pro:k=3,replicas=0,refresh=0", 6},
      {"K3-par-stale (18 ranks)", "pro:k=3,replicas=1,refresh=0", 18},
      {"K5-par-stale (30 ranks)", "pro:k=5,replicas=1,refresh=0", 30},
      {"K1-seq-refresh", "pro:k=1,replicas=0,refresh=1", 6},
      {"K3-seq-refresh", "pro:k=3,replicas=0,refresh=1", 6},
  };

  util::CsvWriter csv(std::cout);
  csv.header({"variant", "avg_ntt_200", "avg_best_clean", "avg_conv_step"});

  std::vector<double> ntt(variants.size(), 0.0);
  std::vector<double> clean(variants.size(), 0.0);
  std::vector<double> conv(variants.size(), 0.0);
  for (std::size_t v = 0; v < variants.size(); ++v) {
    struct RepOut {
      double ntt, clean, conv;
    };
    const auto outs = bench::per_rep(reps, [&](long rep) {
      cluster::SimulatedCluster machine(
          db, noise,
          {.ranks = variants[v].ranks,
           .seed = bench::seed() + 101ULL * static_cast<std::uint64_t>(rep)});
      auto pro_ptr =
          core::make_strategy(variants[v].spec, space, bench::seed());
      core::TuningStrategy& pro = *pro_ptr;
      const core::SessionResult r = core::run_session(
          pro, machine, {.steps = 200, .record_series = false});
      return RepOut{r.ntt, r.best_clean,
                    static_cast<double>(r.convergence_step.value_or(0))};
    });
    double acc_ntt = 0.0, acc_clean = 0.0, acc_conv = 0.0;
    for (const auto& o : outs) {
      acc_ntt += o.ntt;
      acc_clean += o.clean;
      acc_conv += o.conv;
    }
    ntt[v] = acc_ntt / static_cast<double>(reps);
    clean[v] = acc_clean / static_cast<double>(reps);
    conv[v] = acc_conv / static_cast<double>(reps);
    csv.row(variants[v].name, ntt[v], clean[v], conv[v]);
  }

  // K3 parallel pays fewer time steps per round than K3 sequential, so its
  // search progresses ~3x faster; it must reach at least as good a final
  // configuration.
  bench::check(clean[2] <= clean[1] * 1.05,
               "parallel replicated sampling reaches a final configuration "
               "within 5% of sequential sampling");
  bench::check(conv[2] > 0.0 && (conv[1] == 0.0 || conv[2] < conv[1]),
               "parallel replicated sampling certifies convergence in fewer "
               "time steps (the §5.2 'no additional cost' effect)");
  bench::check(clean[1] <= clean[0] * 1.02,
               "K=3 sampling finds a configuration at least as good as "
               "K=1 under heavy variability");
  std::cout << "note: parallel-replica rows run on larger machines (their "
               "step cost is a max over more noisy draws), so NTT values "
               "are comparable only within the same rank count.\n";
  return 0;
}
