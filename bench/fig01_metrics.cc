// Figure 1: per-iteration time T_k vs cumulative Total_Time for three
// tuning algorithms.  The paper's point: the algorithm that looks best by
// final iteration time (panel a) is not the one with the best Total_Time
// (panel b) — transient behaviour decides on-line tuning, which is also why
// §2 rules out randomized optimizers (they converge eventually but pay a
// terrible transient).
//
// Variants:
//   Algorithm 1: PRO, 2N simplex, r = 0.2      (strong transient)
//   Algorithm 2: SRO, 2N simplex, r = 0.2      (sequential: slow transient)
//   Algorithm 3: parallel simulated annealing (random start, global
//                exploration: best final configuration, poor transient)
// Series are averaged over REPRO_REPS repetitions with shared noise seeds.
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cluster/simulated_cluster.h"
#include "core/session.h"
#include "core/strategy_spec.h"
#include "gs2/database.h"
#include "gs2/surface.h"
#include "util/ascii_plot.h"
#include "util/csv.h"
#include "varmodel/pareto_noise.h"

namespace {

using namespace protuner;

constexpr std::size_t kSteps = 300;

core::TuningStrategyPtr make_variant(int variant,
                                     const core::ParameterSpace& space,
                                     std::uint64_t seed) {
  switch (variant) {
    case 1:
      // refresh=0: paper-literal Algorithm 2 throughout.
      return core::make_strategy("pro:refresh=0", space, seed);
    case 2:
      return core::make_strategy("sro", space, seed);
    default:
      // Randomized global search: converges to the best configuration of
      // the three eventually (the landscape is trap-dense and PRO is
      // local), but pays a brutal random-start transient — the §2 argument
      // against randomized optimizers for on-line tuning.
      return core::make_strategy("anneal:decay=0.985,migrate=25", space,
                                 seed);
  }
}

}  // namespace

int main() {
  const long reps = bench::reps(20);
  bench::header(
      "Fig. 1 — Single Iteration Time and Total Time for 3 algorithms",
      "ranking by final iteration time and by Total_Time(K) disagree; "
      "transient behaviour decides on-line tuning");
  std::cout << "repetitions averaged: " << reps << "\n";

  const auto space = gs2::gs2_space();
  const gs2::Gs2Surface surface;
  auto db = std::make_shared<gs2::Database>(
      gs2::Database::measure(space, surface, {}));
  auto noise = std::make_shared<varmodel::ParetoNoise>(0.15, 1.7);

  // avg_cost[v][k], avg_cum[v][k]
  std::vector<std::vector<double>> avg_cost(3,
                                            std::vector<double>(kSteps, 0.0));
  std::vector<std::vector<double>> avg_cum(3,
                                           std::vector<double>(kSteps, 0.0));
  std::vector<double> avg_total(3, 0.0);

  // One repetition = three sessions (one per variant); repetitions run
  // across the pool, and the rep-ordered merge below reproduces the serial
  // accumulation bit for bit.
  const auto rep_results =
      bench::per_rep(reps, [&](long rep) -> std::vector<core::SessionResult> {
        const std::uint64_t rep_seed =
            bench::seed() + 7919ULL * static_cast<std::uint64_t>(rep);
        std::vector<core::SessionResult> per_variant;
        per_variant.reserve(3);
        for (int v = 1; v <= 3; ++v) {
          cluster::SimulatedCluster machine(db, noise,
                                            {.ranks = 6, .seed = rep_seed});
          auto strategy = make_variant(v, space, rep_seed ^ 0x5bdULL);
          per_variant.push_back(core::run_session(
              *strategy, machine, {.steps = kSteps, .record_series = true}));
        }
        return per_variant;
      });
  for (const auto& per_variant : rep_results) {
    for (std::size_t vi = 0; vi < 3; ++vi) {
      const core::SessionResult& r = per_variant[vi];
      for (std::size_t k = 0; k < kSteps; ++k) {
        avg_cost[vi][k] += r.step_costs[k] / static_cast<double>(reps);
        avg_cum[vi][k] += r.cumulative[k] / static_cast<double>(reps);
      }
      avg_total[vi] += r.total_time / static_cast<double>(reps);
    }
  }

  util::CsvWriter csv(std::cout);
  csv.header({"step", "Tk_alg1", "Tk_alg2", "Tk_alg3", "total_alg1",
              "total_alg2", "total_alg3"});
  for (std::size_t k = 0; k < kSteps; k += 5) {
    csv.row(k + 1, avg_cost[0][k], avg_cost[1][k], avg_cost[2][k],
            avg_cum[0][k], avg_cum[1][k], avg_cum[2][k]);
  }

  std::vector<double> xs(kSteps);
  for (std::size_t k = 0; k < kSteps; ++k) xs[k] = static_cast<double>(k + 1);
  std::vector<util::Series> panel_a, panel_b;
  for (std::size_t v = 0; v < 3; ++v) {
    panel_a.push_back({"alg" + std::to_string(v + 1), xs, avg_cost[v]});
    panel_b.push_back({"alg" + std::to_string(v + 1), xs, avg_cum[v]});
  }
  util::PlotOptions po;
  po.title = "(a) avg iteration time T_k";
  std::cout << util::line_plot(panel_a, po);
  po.title = "(b) avg Total_Time (cumulative)";
  std::cout << util::line_plot(panel_b, po);

  const auto tail_mean = [&](std::size_t v) {
    double s = 0.0;
    for (std::size_t k = kSteps - 30; k < kSteps; ++k) s += avg_cost[v][k];
    return s / 30.0;
  };
  const double f1 = tail_mean(0), f2 = tail_mean(1), f3 = tail_mean(2);
  std::cout << "final iteration time: alg1=" << f1 << " alg2=" << f2
            << " alg3=" << f3 << "\n";
  std::cout << "Total_Time(" << kSteps << "):      alg1=" << avg_total[0]
            << " alg2=" << avg_total[1] << " alg3=" << avg_total[2] << "\n";

  // The paper's tuning horizon is Total_Time(100): at that horizon the
  // cheap-transient variant leads, even though algorithm 3 converges to the
  // better configuration — the exact Fig. 1 discrepancy.
  const std::size_t h = 100;
  std::cout << "Total_Time(100):      alg1=" << avg_cum[0][h - 1]
            << " alg2=" << avg_cum[1][h - 1] << " alg3=" << avg_cum[2][h - 1]
            << "\n";
  bench::check(avg_cum[0][h - 1] < avg_cum[1][h - 1] &&
                   avg_cum[0][h - 1] < avg_cum[2][h - 1],
               "single-sample PRO wins on the on-line metric Total_Time(100)");
  bench::check(f3 < f1 && f3 < f2,
               "the randomized variant converges to the best final "
               "iteration time (panel-a winner)");
  bench::check(f3 < f1 ? avg_cum[0][h - 1] < avg_cum[2][h - 1] : false,
               "rankings by the two metrics disagree (the Fig. 1 "
               "discrepancy)");
  bench::check(avg_cum[2][kSteps / 3] > avg_cum[0][kSteps / 3],
               "the randomized variant's transient is more expensive "
               "(slower early progress)");
  return 0;
}
