// Algorithm shoot-out on the on-line metric: PRO vs SRO vs Nelder-Mead vs
// compass search vs simulated annealing vs genetic vs random vs no-tuning,
// all on the GS2 database with moderate heavy-tailed variability.
// The paper's claims (§2, §3): PRO exploits the parallel machine and has
// the best Total_Time; randomized global optimizers pay a prohibitive
// transient; Nelder-Mead is erratic on discrete spaces.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "cluster/simulated_cluster.h"
#include "core/annealing.h"
#include "core/compass.h"
#include "core/fixed.h"
#include "core/genetic.h"
#include "core/nelder_mead.h"
#include "core/pro.h"
#include "core/random_search.h"
#include "core/session.h"
#include "core/sro.h"
#include "gs2/database.h"
#include "gs2/surface.h"
#include "util/csv.h"
#include "varmodel/pareto_noise.h"

using namespace protuner;

namespace {

core::TuningStrategyPtr make(const std::string& which,
                             const core::ParameterSpace& space,
                             std::uint64_t seed) {
  if (which == "PRO") {
    return std::make_unique<core::ProStrategy>(space, core::ProOptions{});
  }
  if (which == "PRO-K3") {
    core::ProOptions o;
    o.samples = 3;
    return std::make_unique<core::ProStrategy>(space, o);
  }
  if (which == "SRO") {
    return std::make_unique<core::SroStrategy>(space, core::SroOptions{});
  }
  if (which == "NelderMead") {
    core::NelderMeadOptions o;
    o.max_iterations = 200;
    return std::make_unique<core::NelderMeadStrategy>(space, o);
  }
  if (which == "Compass") {
    return std::make_unique<core::CompassStrategy>(space,
                                                   core::CompassOptions{});
  }
  if (which == "Annealing") {
    core::AnnealingOptions o;
    o.seed = seed;
    return std::make_unique<core::AnnealingStrategy>(space, o);
  }
  if (which == "Genetic") {
    core::GeneticOptions o;
    o.seed = seed;
    return std::make_unique<core::GeneticStrategy>(space, o);
  }
  if (which == "Random") {
    return std::make_unique<core::RandomSearchStrategy>(space, seed);
  }
  return std::make_unique<core::FixedStrategy>(space.center());
}

}  // namespace

int main() {
  const long reps = bench::reps(60);
  bench::header("Ablation — tuning algorithms on the on-line metric",
                "PRO leads on Total_Time; randomized optimizers and "
                "no-tuning lose; SRO pays for sequentiality");

  const auto space = gs2::gs2_space();
  const gs2::Gs2Surface surface;
  auto db = std::make_shared<gs2::Database>(
      gs2::Database::measure(space, surface, {}));
  auto noise = std::make_shared<varmodel::ParetoNoise>(0.1, 1.7);

  const std::vector<std::string> algos{"PRO",     "PRO-K3",  "SRO",
                                       "NelderMead", "Compass", "Annealing",
                                       "Genetic", "Random",  "NoTuning"};

  util::CsvWriter csv(std::cout);
  csv.header({"algorithm", "avg_ntt_100", "avg_best_clean",
              "avg_convergence_step"});

  std::vector<double> ntt(algos.size(), 0.0);
  for (std::size_t a = 0; a < algos.size(); ++a) {
    struct RepOut {
      double ntt, clean, conv;
    };
    const auto outs = bench::per_rep(reps, [&](long rep) {
      const std::uint64_t seed =
          bench::seed() + 61ULL * static_cast<std::uint64_t>(rep);
      cluster::SimulatedCluster machine(db, noise, {.ranks = 8, .seed = seed});
      auto strategy = make(algos[a], space, seed ^ 0xabcdULL);
      const core::SessionResult r = core::run_session(
          *strategy, machine, {.steps = 100, .record_series = false});
      return RepOut{r.ntt, r.best_clean,
                    static_cast<double>(r.convergence_step.value_or(0))};
    });
    double acc_ntt = 0.0, acc_clean = 0.0, acc_conv = 0.0;
    for (const auto& o : outs) {
      acc_ntt += o.ntt;
      acc_clean += o.clean;
      acc_conv += o.conv;
    }
    ntt[a] = acc_ntt / static_cast<double>(reps);
    csv.row(algos[a], ntt[a], acc_clean / static_cast<double>(reps),
            acc_conv / static_cast<double>(reps));
  }

  const auto idx = [&](const std::string& n) {
    for (std::size_t i = 0; i < algos.size(); ++i) {
      if (algos[i] == n) return i;
    }
    return std::size_t{0};
  };
  bench::check(ntt[idx("PRO")] < ntt[idx("SRO")],
               "PRO beats SRO: parallel candidate evaluation pays");
  bench::check(ntt[idx("PRO")] < ntt[idx("Annealing")] &&
                   ntt[idx("PRO")] < ntt[idx("Random")],
               "PRO beats the pure randomized optimizers (annealing, random "
               "search) on Total_Time — the §2 argument");
  if (ntt[idx("Genetic")] < ntt[idx("PRO")]) {
    std::cout << "finding: an elitist tournament GA is competitive on this "
                 "trap-dense surrogate (see EXPERIMENTS.md discussion); the "
                 "paper's blanket §2 claim holds for SA/random here.\n";
  }
  bench::check(ntt[idx("PRO")] < ntt[idx("NoTuning")],
               "tuning beats running the default configuration");
  bench::check(ntt[idx("PRO")] < ntt[idx("NelderMead")],
               "PRO beats the Nelder-Mead baseline used by the original "
               "Active Harmony");
  return 0;
}
