// Algorithm shoot-out on the on-line metric: PRO vs SRO vs Nelder-Mead vs
// compass search vs simulated annealing vs genetic vs random vs no-tuning,
// all on the GS2 database with moderate heavy-tailed variability.
// The paper's claims (§2, §3): PRO exploits the parallel machine and has
// the best Total_Time; randomized global optimizers pay a prohibitive
// transient; Nelder-Mead is erratic on discrete spaces.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "cluster/simulated_cluster.h"
#include "core/session.h"
#include "core/strategy_spec.h"
#include "gs2/database.h"
#include "gs2/surface.h"
#include "util/csv.h"
#include "varmodel/pareto_noise.h"

using namespace protuner;

namespace {

// Display label + declarative spec (DESIGN.md §13); the per-rep seed feeds
// the stochastic strategies exactly as the hand-rolled factories did.
struct Algo {
  std::string label;
  std::string spec;
};

}  // namespace

int main() {
  const long reps = bench::reps(60);
  bench::header("Ablation — tuning algorithms on the on-line metric",
                "PRO leads on Total_Time; randomized optimizers and "
                "no-tuning lose; SRO pays for sequentiality");

  const auto space = gs2::gs2_space();
  const gs2::Gs2Surface surface;
  auto db = std::make_shared<gs2::Database>(
      gs2::Database::measure(space, surface, {}));
  auto noise = std::make_shared<varmodel::ParetoNoise>(0.1, 1.7);

  const std::vector<Algo> algos{
      {"PRO", "pro"},           {"PRO-K3", "pro:k=3"},
      {"SRO", "sro"},           {"NelderMead", "nm:iters=200"},
      {"Compass", "compass"},   {"Annealing", "anneal"},
      {"Genetic", "genetic"},   {"Random", "random"},
      {"NoTuning", "fixed"}};

  util::CsvWriter csv(std::cout);
  csv.header({"algorithm", "avg_ntt_100", "avg_best_clean",
              "avg_convergence_step"});

  std::vector<double> ntt(algos.size(), 0.0);
  for (std::size_t a = 0; a < algos.size(); ++a) {
    struct RepOut {
      double ntt, clean, conv;
    };
    const auto outs = bench::per_rep(reps, [&](long rep) {
      const std::uint64_t seed =
          bench::seed() + 61ULL * static_cast<std::uint64_t>(rep);
      cluster::SimulatedCluster machine(db, noise, {.ranks = 8, .seed = seed});
      auto strategy = core::make_strategy(algos[a].spec, space,
                                          seed ^ 0xabcdULL);
      const core::SessionResult r = core::run_session(
          *strategy, machine, {.steps = 100, .record_series = false});
      return RepOut{r.ntt, r.best_clean,
                    static_cast<double>(r.convergence_step.value_or(0))};
    });
    double acc_ntt = 0.0, acc_clean = 0.0, acc_conv = 0.0;
    for (const auto& o : outs) {
      acc_ntt += o.ntt;
      acc_clean += o.clean;
      acc_conv += o.conv;
    }
    ntt[a] = acc_ntt / static_cast<double>(reps);
    csv.row(algos[a].label, ntt[a], acc_clean / static_cast<double>(reps),
            acc_conv / static_cast<double>(reps));
  }

  const auto idx = [&](const std::string& n) {
    for (std::size_t i = 0; i < algos.size(); ++i) {
      if (algos[i].label == n) return i;
    }
    return std::size_t{0};
  };
  bench::check(ntt[idx("PRO")] < ntt[idx("SRO")],
               "PRO beats SRO: parallel candidate evaluation pays");
  bench::check(ntt[idx("PRO")] < ntt[idx("Annealing")] &&
                   ntt[idx("PRO")] < ntt[idx("Random")],
               "PRO beats the pure randomized optimizers (annealing, random "
               "search) on Total_Time — the §2 argument");
  if (ntt[idx("Genetic")] < ntt[idx("PRO")]) {
    std::cout << "finding: an elitist tournament GA is competitive on this "
                 "trap-dense surrogate (see EXPERIMENTS.md discussion); the "
                 "paper's blanket §2 claim holds for SA/random here.\n";
  }
  bench::check(ntt[idx("PRO")] < ntt[idx("NoTuning")],
               "tuning beats running the default configuration");
  bench::check(ntt[idx("PRO")] < ntt[idx("NelderMead")],
               "PRO beats the Nelder-Mead baseline used by the original "
               "Active Harmony");
  return 0;
}
