// Randomized property tests for BatchState: for arbitrary combinations of
// batch size, rank count, sample count and replica mode, the bookkeeping
// must deliver exactly K samples per point (trimmed), consume consistent
// assignments, and terminate.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/batch_state.h"
#include "util/rng.h"

namespace protuner::core {
namespace {

TEST(BatchFuzz, RandomConfigurationsAllTerminateWithExactEstimates) {
  util::Rng rng(20250707);
  for (int trial = 0; trial < 300; ++trial) {
    const auto n_points =
        static_cast<std::size_t>(rng.uniform_int(1, 12));
    const auto ranks = static_cast<std::size_t>(rng.uniform_int(1, 10));
    const int samples = static_cast<int>(rng.uniform_int(1, 6));
    const bool replicas = rng.bernoulli(0.5);

    std::vector<Point> pts;
    for (std::size_t i = 0; i < n_points; ++i) {
      pts.push_back(Point{static_cast<double>(i)});
    }

    BatchState::Options opts;
    opts.samples = samples;
    opts.estimator = EstimatorKind::kMin;
    opts.parallel_replicas = replicas;

    BatchState b;
    b.reset(pts, ranks, opts);

    // Feed deterministic times: time(point i, occurrence c) = 100*i + c.
    // The min over occurrences is then exactly 100*i.
    std::map<double, int> occurrence;
    int steps = 0;
    while (!b.done()) {
      const auto assignment = b.next_assignment();
      ASSERT_FALSE(assignment.empty());
      ASSERT_LE(assignment.size(),
                ranks * (replicas ? 1u : 1u) * 1u + ranks * 5u);
      std::vector<double> times;
      times.reserve(assignment.size());
      for (const auto& p : assignment) {
        const int c = occurrence[p[0]]++;
        times.push_back(100.0 * p[0] + static_cast<double>(c));
      }
      b.feed(times);
      ++steps;
      ASSERT_LT(steps, 500) << "no termination: trial " << trial;
    }

    const auto& est = b.estimates();
    ASSERT_EQ(est.size(), n_points);
    for (std::size_t i = 0; i < n_points; ++i) {
      // Min over occurrences 0..(>=samples-1) is occurrence 0.
      EXPECT_DOUBLE_EQ(est[i], 100.0 * static_cast<double>(i))
          << "trial " << trial;
      // Every point was evaluated at least `samples` times.
      EXPECT_GE(occurrence[static_cast<double>(i)], samples)
          << "trial " << trial;
    }

    // Step-count sanity: without replicas each wave of w points takes
    // exactly `samples` steps and waves partition the batch.
    if (!replicas) {
      const auto waves = (n_points + ranks - 1) / ranks;
      EXPECT_EQ(static_cast<std::size_t>(steps),
                waves * static_cast<std::size_t>(samples))
          << "trial " << trial;
    }
  }
}

TEST(BatchFuzz, MeanEstimatorUsesExactlyKSamples) {
  // With the mean estimator, trimming to exactly K samples is observable:
  // occurrences beyond K must not affect the estimate.
  util::Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    const auto n_points = static_cast<std::size_t>(rng.uniform_int(1, 6));
    const auto ranks = static_cast<std::size_t>(rng.uniform_int(2, 12));
    const int samples = static_cast<int>(rng.uniform_int(1, 4));

    std::vector<Point> pts;
    for (std::size_t i = 0; i < n_points; ++i) {
      pts.push_back(Point{static_cast<double>(i)});
    }
    BatchState::Options opts;
    opts.samples = samples;
    opts.estimator = EstimatorKind::kMean;
    opts.parallel_replicas = true;  // replication can oversample
    BatchState b;
    b.reset(pts, ranks, opts);

    std::map<double, int> occurrence;
    while (!b.done()) {
      const auto assignment = b.next_assignment();
      std::vector<double> times;
      for (const auto& p : assignment) {
        const int c = occurrence[p[0]]++;
        // Occurrences 0..K-1 get value 10; later ones get a poison value
        // that would shift the mean if (incorrectly) included.
        times.push_back(c < samples ? 10.0 : 1e6);
      }
      b.feed(times);
    }
    for (double e : b.estimates()) {
      EXPECT_DOUBLE_EQ(e, 10.0) << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace protuner::core
