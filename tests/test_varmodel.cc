// Tests for the performance-variability models: Eq. 7/17 scaling for the
// noise models, the two-priority-queue simulator (Eq. 6), and the
// correlated shock trace generator.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "stats/common_distributions.h"
#include "stats/pareto.h"
#include "stats/tail.h"
#include "util/rng.h"
#include "util/summary.h"
#include "varmodel/noise_model.h"
#include "varmodel/pareto_noise.h"
#include "varmodel/shock_model.h"
#include "varmodel/simple_noise.h"
#include "varmodel/two_job_sim.h"

namespace protuner::varmodel {
namespace {

TEST(NoNoise, AlwaysZero) {
  NoNoise n;
  util::Rng rng(1);
  EXPECT_DOUBLE_EQ(n.sample(10.0, rng), 0.0);
  EXPECT_DOUBLE_EQ(n.observe(10.0, rng), 10.0);
  EXPECT_DOUBLE_EQ(n.n_min(10.0), 0.0);
  EXPECT_DOUBLE_EQ(n.rho(), 0.0);
}

TEST(ParetoNoise, BetaMatchesEq17) {
  const ParetoNoise n(0.2, 1.7);
  // beta = (alpha-1) rho / ((1-rho) alpha) * f
  const double expected = 0.7 * 0.2 / (0.8 * 1.7) * 10.0;
  EXPECT_NEAR(n.beta(10.0), expected, 1e-12);
  EXPECT_DOUBLE_EQ(n.n_min(10.0), n.beta(10.0));
}

TEST(ParetoNoise, NMinIncreasesWithCleanTime) {
  // Required for min-of-K rank ordering to be valid (§5.1).
  const ParetoNoise n(0.3, 1.7);
  EXPECT_LT(n.n_min(5.0), n.n_min(6.0));
}

TEST(ParetoNoise, ExpectedMatchesEq7) {
  const ParetoNoise n(0.25, 1.7);
  EXPECT_NEAR(n.expected(8.0), 0.25 / 0.75 * 8.0, 1e-12);
}

TEST(ParetoNoise, EmpiricalMeanMatchesEq7) {
  // alpha = 2.5 keeps the variance finite so the sample mean converges
  // quickly enough for a tight test.
  const ParetoNoise n(0.2, 2.5);
  util::Rng rng(3);
  double s = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) s += n.sample(4.0, rng);
  EXPECT_NEAR(s / kN, n.expected(4.0), 0.02);
}

TEST(ParetoNoise, SamplesAtLeastBeta) {
  const ParetoNoise n(0.3, 1.7);
  util::Rng rng(4);
  for (int i = 0; i < 5000; ++i) EXPECT_GE(n.sample(3.0, rng), n.beta(3.0));
}

TEST(ParetoNoise, RhoZeroIsNoiseless) {
  const ParetoNoise n(0.0, 1.7);
  util::Rng rng(5);
  EXPECT_DOUBLE_EQ(n.sample(3.0, rng), 0.0);
}

TEST(ParetoNoise, HeavyFlagTracksAlpha) {
  EXPECT_TRUE(ParetoNoise(0.1, 1.7).heavy_tailed());
  EXPECT_FALSE(ParetoNoise(0.1, 2.5).heavy_tailed());
}

TEST(ExponentialNoise, MeanMatchesEq7) {
  const ExponentialNoise n(0.3);
  util::Rng rng(6);
  double s = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) s += n.sample(5.0, rng);
  EXPECT_NEAR(s / kN, 0.3 / 0.7 * 5.0, 0.03);
  EXPECT_FALSE(n.heavy_tailed());
  EXPECT_DOUBLE_EQ(n.n_min(5.0), 0.0);
}

TEST(GaussianNoise, NonNegativeAndCentered) {
  const GaussianNoise n(0.2, 0.3);
  util::Rng rng(7);
  std::vector<double> xs(50000);
  for (auto& x : xs) {
    x = n.sample(4.0, rng);
    EXPECT_GE(x, 0.0);
  }
  EXPECT_NEAR(util::mean(xs), n.expected(4.0), 0.05);
}

TEST(TraceNoise, ReplaysInOrderAndCycles) {
  TraceNoise n({0.1, 0.2, 0.3});
  util::Rng rng(8);
  EXPECT_DOUBLE_EQ(n.sample(10.0, rng), 1.0);
  EXPECT_DOUBLE_EQ(n.sample(10.0, rng), 2.0);
  EXPECT_DOUBLE_EQ(n.sample(10.0, rng), 3.0);
  EXPECT_DOUBLE_EQ(n.sample(10.0, rng), 1.0);  // wraps
  EXPECT_DOUBLE_EQ(n.n_min(10.0), 1.0);
  EXPECT_NEAR(n.expected(10.0), 2.0, 1e-12);
}

// ------------------------------------------------------------- two-job sim

TwoJobConfig make_queue(double lambda, double mean_service,
                        bool heavy = false) {
  TwoJobConfig cfg;
  cfg.arrival_rate = lambda;
  if (heavy) {
    // Pareto with the requested mean: mean = alpha beta/(alpha-1).
    const double alpha = 1.7;
    cfg.service = std::make_shared<stats::Pareto>(
        alpha, mean_service * (alpha - 1.0) / alpha);
  } else {
    cfg.service = std::make_shared<stats::Exponential>(1.0 / mean_service);
  }
  return cfg;
}

TEST(TwoJobSim, NoArrivalsMeansCleanTime) {
  TwoJobConfig cfg = make_queue(0.0, 1.0);
  const TwoJobSimulator sim(cfg);
  util::Rng rng(1);
  EXPECT_DOUBLE_EQ(sim.run_application(5.0, rng), 5.0);
  EXPECT_DOUBLE_EQ(sim.rho(), 0.0);
}

TEST(TwoJobSim, RhoIsLambdaTimesMeanService) {
  const TwoJobSimulator sim(make_queue(0.25, 0.8));
  EXPECT_NEAR(sim.rho(), 0.2, 1e-12);
}

TEST(TwoJobSim, CompletionAtLeastCleanTime) {
  const TwoJobSimulator sim(make_queue(0.5, 0.5));
  util::Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    EXPECT_GE(sim.run_application(2.0, rng), 2.0);
  }
}

TEST(TwoJobSim, MeanCompletionMatchesEq6) {
  // E[y] = f / (1 - rho) for idle-start admission (paper Eq. 6).
  const double rho = 0.3;
  const TwoJobSimulator sim(make_queue(rho / 0.5, 0.5));
  ASSERT_NEAR(sim.rho(), rho, 1e-12);
  util::Rng rng(3);
  double s = 0.0;
  constexpr int kReps = 4000;
  const double f = 50.0;  // long job averages over many busy periods
  for (int i = 0; i < kReps; ++i) s += sim.run_application(f, rng);
  EXPECT_NEAR(s / kReps, f / (1.0 - rho), f / (1.0 - rho) * 0.02);
}

TEST(TwoJobSim, WarmupAddsInitialBacklogDelay) {
  TwoJobConfig idle = make_queue(0.4, 1.0);
  TwoJobConfig warm = make_queue(0.4, 1.0);
  warm.warmup_time = 200.0;
  const TwoJobSimulator sim_idle(idle);
  const TwoJobSimulator sim_warm(warm);
  util::Rng r1(4), r2(4);
  double s_idle = 0.0, s_warm = 0.0;
  for (int i = 0; i < 2000; ++i) {
    s_idle += sim_idle.run_application(5.0, r1);
    s_warm += sim_warm.run_application(5.0, r2);
  }
  EXPECT_GT(s_warm, s_idle);  // stationary backlog can only add delay
}

TEST(TwoJobSim, HeavyServiceMakesNoiseHeavyTailed) {
  QueueNoise noise(make_queue(0.2, 1.0, /*heavy=*/true));
  EXPECT_TRUE(noise.heavy_tailed());
  util::Rng rng(5);
  std::vector<double> ns(20000);
  for (auto& n : ns) n = noise.sample(1.0, rng) + 1e-9;
  // The positive part of the noise should carry a heavy tail signature.
  std::vector<double> positive;
  for (double n : ns) {
    if (n > 0.01) positive.push_back(n);
  }
  ASSERT_GT(positive.size(), 1000u);
  const auto report = stats::diagnose_tail(positive);
  EXPECT_LT(report.hill_alpha, 2.5);
}

TEST(QueueNoise, ExpectedFollowsEq7) {
  QueueNoise noise(make_queue(0.25, 1.0));
  EXPECT_NEAR(noise.expected(8.0), noise.rho() / (1.0 - noise.rho()) * 8.0,
              1e-9);
}

// ------------------------------------------------------------ shock traces

TEST(ShockTrace, DimensionsAndPositivity) {
  ShockConfig cfg;
  ShockTraceGenerator gen(cfg, 8, 11);
  const auto trace = gen.generate(2.0, 100);
  ASSERT_EQ(trace.size(), 8u);
  for (const auto& row : trace) {
    ASSERT_EQ(row.size(), 100u);
    for (double t : row) EXPECT_GE(t, 2.0);
  }
}

TEST(ShockTrace, Deterministic) {
  ShockConfig cfg;
  ShockTraceGenerator a(cfg, 4, 99);
  ShockTraceGenerator b(cfg, 4, 99);
  EXPECT_EQ(a.generate(1.0, 50), b.generate(1.0, 50));
}

TEST(ShockTrace, SharedShocksCorrelateRanks) {
  ShockConfig cfg;
  cfg.big_prob = 0.05;
  cfg.correlation = 1.0;
  ShockTraceGenerator gen(cfg, 2, 7);
  const auto trace = gen.generate(1.0, 4000);
  // Count iterations where both ranks spike together.
  int both = 0, either = 0;
  for (std::size_t k = 0; k < 4000; ++k) {
    const bool a = trace[0][k] > 3.0;
    const bool b = trace[1][k] > 3.0;
    both += (a && b);
    either += (a || b);
  }
  ASSERT_GT(either, 50);
  EXPECT_GT(static_cast<double>(both) / either, 0.5);
}

TEST(ShockTrace, ZeroProbabilityMeansOnlyJitter) {
  ShockConfig cfg;
  cfg.big_prob = 0.0;
  cfg.small_prob = 0.0;
  cfg.jitter_cv = 0.0;
  ShockTraceGenerator gen(cfg, 3, 13);
  const auto trace = gen.generate(1.5, 50);
  for (const auto& row : trace) {
    for (double t : row) EXPECT_DOUBLE_EQ(t, 1.5);
  }
}

}  // namespace
}  // namespace protuner::varmodel
