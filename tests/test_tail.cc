// Tests for the heavy-tail estimators (Hill, tail slope, verdict) and the
// least-squares line fit.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/common_distributions.h"
#include "stats/linreg.h"
#include "stats/pareto.h"
#include "stats/tail.h"
#include "util/rng.h"

namespace protuner::stats {
namespace {

std::vector<double> draw(const Distribution& d, std::size_t n,
                         std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = d.sample(rng);
  return xs;
}

TEST(LineFit, ExactLine) {
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> ys{1.0, 3.0, 5.0, 7.0};
  const LineFit f = fit_line(xs, ys);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(LineFit, NoisyLineRecoversSlope) {
  util::Rng rng(3);
  std::vector<double> xs, ys;
  for (int i = 0; i < 500; ++i) {
    const double x = i * 0.01;
    xs.push_back(x);
    ys.push_back(-2.5 * x + 1.0 + rng.normal(0.0, 0.05));
  }
  const LineFit f = fit_line(xs, ys);
  EXPECT_NEAR(f.slope, -2.5, 0.05);
  EXPECT_GT(f.r2, 0.95);
}

TEST(LineFit, DegenerateInputs) {
  EXPECT_EQ(fit_line(std::vector<double>{1.0}, std::vector<double>{2.0}).n,
            1u);
  // Zero x-variance: fit returns zero slope rather than dividing by zero.
  const std::vector<double> xs{2.0, 2.0, 2.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(fit_line(xs, ys).slope, 0.0);
}

TEST(Hill, RecoversParetoAlpha) {
  const Pareto p(1.7, 1.0);
  const auto xs = draw(p, 50000, 21);
  const double alpha = hill_estimator(xs, 2500);
  EXPECT_NEAR(alpha, 1.7, 0.15);
}

TEST(Hill, RecoversSmallAlpha) {
  const Pareto p(0.8, 1.0);  // infinite mean
  const auto xs = draw(p, 50000, 22);
  EXPECT_NEAR(hill_estimator(xs, 2500), 0.8, 0.1);
}

TEST(Hill, LargeForExponentialData) {
  // Light tails have no finite power-law index; the Hill estimate at a
  // fixed k grows well above the heavy-tail range.
  const Exponential e(1.0);
  const auto xs = draw(e, 50000, 23);
  EXPECT_GT(hill_estimator(xs, 500), 3.0);
}

TEST(HillSweep, StablePlateauForPareto) {
  const Pareto p(1.5, 1.0);
  const auto xs = draw(p, 40000, 31);
  const HillSweep sweep = hill_sweep(xs, 500, 4000, 500);
  ASSERT_GE(sweep.k.size(), 4u);
  for (double a : sweep.alpha) EXPECT_NEAR(a, 1.5, 0.25);
}

TEST(TailSlope, MatchesParetoAlpha) {
  const Pareto p(1.7, 1.0);
  const auto xs = draw(p, 30000, 41);
  const LineFit f = tail_slope(xs, 0.25);
  EXPECT_NEAR(-f.slope, 1.7, 0.35);
  EXPECT_GT(f.r2, 0.9);
}

TEST(Diagnose, ParetoIsHeavy) {
  const Pareto p(1.7, 1.0);
  const auto xs = draw(p, 30000, 51);
  const TailReport r = diagnose_tail(xs);
  EXPECT_TRUE(r.heavy);
  EXPECT_NEAR(r.hill_alpha, 1.7, 0.3);
}

TEST(Diagnose, InfiniteMeanParetoIsHeavy) {
  const Pareto p(0.9, 1.0);
  const auto xs = draw(p, 30000, 52);
  EXPECT_TRUE(diagnose_tail(xs).heavy);
}

TEST(Diagnose, ExponentialIsNotHeavy) {
  const Exponential e(1.0);
  const auto xs = draw(e, 30000, 53);
  EXPECT_FALSE(diagnose_tail(xs).heavy);
}

TEST(Diagnose, NormalIsNotHeavy) {
  const Normal n(10.0, 1.0);
  const auto xs = draw(n, 30000, 54);
  EXPECT_FALSE(diagnose_tail(xs).heavy);
}

TEST(Diagnose, TooFewSamplesGivesNoVerdict) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_FALSE(diagnose_tail(xs).heavy);
}

}  // namespace
}  // namespace protuner::stats
